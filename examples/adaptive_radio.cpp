// Runtime adaptation scenario: a cognitive radio (paper ref [1]) that
// switches between spectrum sensing and transmission modes driven by a
// Markov environment model. Demonstrates the reconfiguration controller and
// the difference between the paper's uniform-pair proxy and the realised
// probability-weighted cost (the paper's stated future work).
#include <iostream>

#include "core/partitioner.hpp"
#include "core/report.hpp"
#include "design/builder.hpp"
#include "reconfig/controller.hpp"
#include "reconfig/markov.hpp"
#include "reconfig/prefetch.hpp"
#include "synth/ip_library.hpp"
#include "util/strings.hpp"

int main() {
  using namespace prpart;

  const synth::IpLibrary ip = synth::IpLibrary::standard();
  const Design design =
      DesignBuilder("cognitive-radio")
          .static_base(ip.lookup("icap_controller").area)
          .module("frontend", {{"sense", ip.lookup("spectrum_sensor").area},
                               {"tx_ofdm", ip.lookup("ofdm_tx").area},
                               {"tx_gsm", ip.lookup("gsm_tx").area}})
          .module("codec", {{"viterbi", ip.lookup("decoder.viterbi").area},
                            {"turbo", ip.lookup("decoder.turbo").area}})
          .configuration("sensing", {{"frontend", "sense"}})
          .configuration("ofdm_v", {{"frontend", "tx_ofdm"},
                                    {"codec", "viterbi"}})
          .configuration("ofdm_t", {{"frontend", "tx_ofdm"},
                                    {"codec", "turbo"}})
          .configuration("gsm_v", {{"frontend", "tx_gsm"},
                                   {"codec", "viterbi"}})
          .build();

  const ResourceVec budget{3600, 40, 96};
  const PartitionerResult result = partition_design(design, budget);
  if (!result.feasible) {
    std::cerr << "infeasible budget\n";
    return 1;
  }
  std::cout << "Partitioning:\n"
            << render_scheme_partitions(design, result.base_partitions,
                                        result.proposed.scheme)
            << "\n";

  // Environment: mostly alternating sensing <-> transmission, occasional
  // codec/waveform changes.
  const std::size_t n = design.configurations().size();
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  // sensing -> one of the tx modes; tx -> mostly back to sensing.
  p[0] = {0.0, 0.5, 0.2, 0.3};
  p[1] = {0.7, 0.0, 0.2, 0.1};
  p[2] = {0.7, 0.2, 0.0, 0.1};
  p[3] = {0.8, 0.1, 0.1, 0.0};
  const MarkovChain env(p);

  ReconfigurationController ctl(design, result.proposed.scheme,
                                result.proposed.eval);
  ctl.boot(0);
  Rng rng(2026);
  std::size_t state = 0;
  const int steps = 10000;
  for (int i = 0; i < steps; ++i) {
    state = env.sample_next(rng, state);
    ctl.transition(state);
  }

  const RuntimeStats& stats = ctl.stats();
  const double mean_frames =
      static_cast<double>(stats.total_frames) / static_cast<double>(steps);
  const double uniform_proxy = expected_frames_per_transition(
      result.proposed.eval, n, MarkovChain::uniform(n));
  const double weighted_model =
      expected_frames_per_transition(result.proposed.eval, n, env);

  std::cout << "Simulated " << steps << " environment-driven transitions:\n";
  std::cout << "  realised mean        : " << fixed(mean_frames, 1)
            << " frames/transition ("
            << fixed(static_cast<double>(stats.total_ns) / steps / 1000.0, 1)
            << " us)\n";
  std::cout << "  uniform-pair proxy   : " << fixed(uniform_proxy, 1)
            << " frames/transition (paper's Eq. 10 averaged)\n";
  std::cout << "  Markov-weighted model: " << fixed(weighted_model, 1)
            << " frames/transition\n";
  std::cout << "  worst observed       : "
            << with_commas(stats.worst_transition_frames) << " frames ("
            << with_commas(result.proposed.eval.worst_frames)
            << " possible)\n";

  // Same walk with configuration prefetching: idle regions are preloaded
  // for the predicted next configuration during quiet periods.
  PrefetchingController pref(design, result.proposed.scheme,
                             result.proposed.eval, env);
  Rng rng2(2026);
  pref.boot(0);
  std::size_t state2 = 0;
  for (int i = 0; i < steps; ++i) {
    state2 = env.sample_next(rng2, state2);
    pref.transition(state2);
  }
  const PrefetchStats& ps = pref.stats();
  std::cout << "\nWith configuration prefetching (same walk):\n";
  std::cout << "  stall mean           : "
            << fixed(static_cast<double>(ps.stall_frames) / steps, 1)
            << " frames/transition ("
            << fixed(100.0 * (1.0 - static_cast<double>(ps.stall_frames) /
                                        static_cast<double>(
                                            stats.total_frames)),
                     1)
            << "% hidden)\n";
  std::cout << "  prefetch accuracy    : " << ps.useful_prefetches
            << " useful / " << ps.wasted_prefetches << " wasted\n";
  return 0;
}
