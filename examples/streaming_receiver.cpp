// Co-simulation of the case study as a running system: the wireless video
// receiver's five modules form a streaming chain (F -> R -> M -> D -> V);
// channel events drive an adaptation policy; each reconfiguration takes the
// affected pipeline stages offline for the ICAP-accurate number of cycles,
// and the FIFOs between stages decide whether samples survive the outage.
#include <iostream>

#include "core/partitioner.hpp"
#include "reconfig/controller.hpp"
#include "reconfig/policy.hpp"
#include "stream/pipeline.hpp"
#include "synth/ip_library.hpp"
#include "util/strings.hpp"

int main() {
  using namespace prpart;

  const Design design = synth::wireless_receiver_design();
  PartitionerOptions opt;
  opt.search.max_candidate_sets = 64;
  opt.search.max_move_evaluations = 2'000'000;
  const PartitionerResult result =
      partition_design(design, {6800, 64, 150}, opt);
  if (!result.feasible) {
    std::cerr << "infeasible\n";
    return 1;
  }

  // Adaptation policy: channel events move between configurations.
  AdaptationPolicy policy(design.configurations().size());
  policy.add_rule(AdaptationPolicy::kAnyConfig, "channel_clean", 0);
  policy.add_rule(0, "bitrate_up", 1);
  policy.add_rule(1, "bitrate_up", 2);
  policy.add_rule(AdaptationPolicy::kAnyConfig, "deep_fade", 3);
  policy.add_rule(3, "fade_recover", 4);

  const std::vector<std::string> trace = {
      "bitrate_up", "bitrate_up", "deep_fade",  "fade_recover",
      "channel_clean", "bitrate_up", "deep_fade", "channel_clean"};

  // Which pipeline stage is offline during a region reload: the stage of
  // every module whose needed mode is provided by that region.
  auto stages_of_region = [&](std::size_t region, std::size_t config) {
    std::vector<std::size_t> stages;
    const Region& reg = result.proposed.scheme.regions[region];
    for (std::size_t m = 0; m < design.modules().size(); ++m) {
      const std::uint32_t mode =
          design.configurations()[config].mode_of_module[m];
      if (mode == 0) continue;
      const std::size_t gid =
          design.global_mode_id(static_cast<std::uint32_t>(m), mode);
      for (std::size_t p : reg.members)
        if (result.base_partitions[p].modes.test(gid)) stages.push_back(m);
    }
    return stages;
  };

  const double clock_hz = 200e6;
  const std::uint64_t dwell_cycles = 2'000'000;  // 10 ms between events

  for (const std::size_t fifo_depth : {1024u, 32768u, 262144u}) {
    std::vector<StageSpec> stages;
    for (const Module& m : design.modules())
      stages.push_back({m.name, 2, fifo_depth});
    StreamingPipeline pipe(std::move(stages), /*arrival_interval=*/4);

    ReconfigurationController ctl(design, result.proposed.scheme,
                                  result.proposed.eval);
    ctl.boot(0);

    for (const std::string& event : trace) {
      pipe.run(dwell_cycles);
      const auto target = policy.target(ctl.current_config(), event);
      if (!target || *target == ctl.current_config()) continue;
      const std::size_t to = *target;
      for (const ReconfigEvent& ev : ctl.transition(to)) {
        const auto outage_cycles = static_cast<std::uint64_t>(
            static_cast<double>(ev.ns) * 1e-9 * clock_hz);
        for (std::size_t s : stages_of_region(ev.region, to))
          pipe.set_offline(s, true);
        pipe.run(outage_cycles);
        for (std::size_t s : stages_of_region(ev.region, to))
          pipe.set_offline(s, false);
      }
    }
    pipe.run(dwell_cycles);

    const PipelineStats& s = pipe.stats();
    std::cout << "FIFO depth " << fifo_depth << ": arrived "
              << with_commas(s.arrived) << ", delivered "
              << with_commas(s.delivered) << ", dropped "
              << with_commas(s.dropped) << " ("
              << fixed(100.0 * static_cast<double>(s.dropped) /
                           static_cast<double>(s.arrived),
                       2)
              << "%)\n";
  }
  std::cout << "\nReconfigurations were driven by the adaptation policy "
               "through the controller. Moderate FIFOs absorb the small "
               "regions' reloads but not the video decoder's; hiding that "
               "one takes a quarter-million-sample buffer -- the motivation "
               "for minimising reconfiguration time at partitioning time "
               "instead of buffering it away.\n";
  return 0;
}
