// Mini version of the paper's synthetic evaluation (§V): generate a few
// dozen designs, partition each on its smallest workable device, and show
// how often the proposed scheme beats the two baselines.
#include <iostream>

#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "util/histogram.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace prpart;

  const std::size_t count = argc > 1 ? parse_u64(argv[1]) : 40;
  const auto suite = generate_synthetic_suite(2013, count);
  const DeviceLibrary lib = DeviceLibrary::virtex5();

  PartitionerOptions opt;
  opt.search.max_move_evaluations = 400'000;

  Histogram vs_modular(-10, 100, 11);
  std::size_t better = 0, evaluated = 0;

  for (const SyntheticDesign& s : suite) {
    const DevicePartitionResult r =
        partition_on_smallest_device(s.design, lib, opt);
    if (!r.result.feasible) continue;
    ++evaluated;
    const double proposed =
        static_cast<double>(r.result.proposed.eval.total_frames);
    const double modular =
        static_cast<double>(r.result.modular.eval.total_frames);
    if (modular > 0) {
      const double improvement = 100.0 * (modular - proposed) / modular;
      vs_modular.add(improvement);
      if (proposed < modular) ++better;
    }
    std::cout << s.design.name() << " on " << r.device->name()
              << ": proposed " << with_commas(r.result.proposed.eval.total_frames)
              << " vs modular " << with_commas(r.result.modular.eval.total_frames)
              << " vs single " << with_commas(r.result.single_region.eval.total_frames)
              << " frames\n";
  }

  std::cout << "\n"
            << vs_modular.render(
                   "Improvement over one-module-per-region (% of total "
                   "reconfiguration time)");
  std::cout << "\nproposed beats modular on " << better << "/" << evaluated
            << " designs\n";
  return 0;
}
