// Partition–floorplan co-optimization (DESIGN.md §6): the search's Eq. 10
// frame estimates assume every region's tiles pack perfectly, but a real
// placement rounds each region up to whole columns on the device grid — so
// two schemes that tie on the estimate can differ once placed, and a scheme
// can have no legal floorplan at all. This example reproduces the committed
// case study: on XC5VFX70T, four enumerated schemes tie at the Eq. 10
// estimate, the placement-true cost overturns the Eq. 10 winner, and two
// schemes are vetoed outright with a fix-it naming the smallest device that
// would rescue them.
#include <iostream>

#include "core/partitioner.hpp"
#include "floorplan/rerank.hpp"
#include "design/synthetic.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace prpart;

  // Seed 16 / logic class is the committed overturn example; other seeds
  // let users explore (most either agree with Eq. 10 or veto everything).
  const std::uint64_t seed = argc > 1 ? parse_u64(argv[1]) : std::uint64_t{16};
  Rng rng(seed);
  const SyntheticDesign s = generate_synthetic(rng, CircuitClass::Logic);
  const Design& design = s.design;

  const DeviceLibrary lib = DeviceLibrary::extended();
  const Device& device = lib.by_name("XC5VFX70T");
  std::cout << "Synthetic design (seed " << seed << ", "
            << to_string(s.circuit_class) << ") on " << device.name() << " ("
            << device.capacity().to_string() << ")\n\n";

  const PartitionerResult result =
      partition_design(design, device.capacity());
  if (!result.feasible) {
    std::cout << "design does not fit the device\n";
    return 1;
  }

  std::cout << "Eq. 10 ranking (perfect-packing estimates):\n";
  for (std::size_t i = 0; i < result.alternatives.size(); ++i)
    std::cout << "  scheme " << i + 1 << ": "
              << with_commas(result.alternatives[i].total_frames)
              << " frames\n";

  const FloorplanRerank rerank = floorplan_rerank(
      design, result, device, device.capacity(), {}, &lib);
  std::cout << "\nPlacement-true re-ranking (" << rerank.ranked.size()
            << " schemes floorplanned, " << rerank.vetoed_count
            << " vetoed):\n";
  for (std::size_t rank = 0; rank < rerank.ranked.size(); ++rank) {
    const FloorplanCandidate& c = rerank.ranked[rank];
    std::cout << "  #" << rank + 1 << " scheme " << c.source_index + 1
              << ": estimate " << with_commas(c.estimated_total);
    if (c.vetoed) {
      std::cout << " — VETOED";
      for (const auto& d : c.plan.verdict.diagnostics)
        if (!d.fixit.empty()) std::cout << " (" << d.fixit << ")";
    } else {
      std::cout << ", placed " << with_commas(c.placement_total) << " frames ("
                << to_string(c.plan.stage) << ")";
    }
    std::cout << "\n";
  }

  if (!rerank.any_feasible) {
    std::cout << "\nno enumerated scheme has a legal floorplan\n";
    return 2;
  }
  std::cout << "\nEq. 10 proposed scheme 1; placement-true winner is scheme "
            << rerank.winner_source + 1
            << (rerank.overturned ? " — the estimate ranking was overturned"
                                  : " — the estimate ranking held")
            << "\n";

  // The winner's placed rectangles on the device's row/column grid.
  const FloorplanCandidate& winner = rerank.ranked.front();
  std::cout << "\nWinner floorplan on " << device.name() << ":\n";
  for (std::size_t r = 0; r < winner.plan.placements.size(); ++r) {
    const RegionPlacement& p = winner.plan.placements[r];
    std::cout << "  PRR" << r + 1 << ": rows " << p.row << ".."
              << p.row + p.height - 1 << ", cols " << p.col << ".."
              << p.col + p.width - 1 << " ("
              << with_commas(winner.plan.placed_frames[r]) << " frames)\n";
  }
  return 0;
}
