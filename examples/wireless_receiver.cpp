// The paper's §V case study end to end: the wireless video receiver on a
// Virtex-5 FX70T, including floorplanning and bitstream generation.
#include <iostream>

#include "bitstream/bitstream.hpp"
#include "core/partitioner.hpp"
#include "core/report.hpp"
#include "floorplan/floorplanner.hpp"
#include "synth/ip_library.hpp"
#include "util/strings.hpp"

int main() {
  using namespace prpart;

  const Design design = synth::wireless_receiver_design();
  // The paper's published budget is 6800/50/150; under its own tile
  // equations (Eqs. 3-5) no multi-region scheme fits 50 BRAMs, so this
  // example uses the BRAM-relaxed budget that restores the paper's
  // comparison (see EXPERIMENTS.md; bench_table_case_study prints both).
  const ResourceVec budget{6800, 64, 150};

  PartitionerOptions opt;
  opt.search.max_candidate_sets = 64;
  opt.search.max_move_evaluations = 4'000'000;

  std::cout << "Design: " << design.name() << " ("
            << design.modules().size() << " modules, "
            << design.mode_count() << " modes, "
            << design.configurations().size() << " configurations)\n";
  std::cout << "PR budget: " << budget.to_string() << "\n\n";

  const PartitionerResult result = partition_design(design, budget, opt);
  if (!result.feasible) {
    std::cerr << "infeasible on the FX70T budget\n";
    return 1;
  }

  std::cout << "Scheme comparison (Table IV):\n"
            << render_scheme_comparison(result) << "\n";
  std::cout << "Proposed partitioning (Table III):\n"
            << render_scheme_partitions(design, result.base_partitions,
                                        result.proposed.scheme)
            << "\n";

  // Floorplan on the FX70T.
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const Device& fx70t = lib.by_name("XC5VFX70T");
  const Floorplanner fp(fx70t);
  const FloorplanResult plan = fp.place_scheme(result.proposed.eval);
  if (plan.success) {
    std::cout << "Floorplan on " << fx70t.name() << ":\n";
    for (const RegionPlacement& p : plan.placements) {
      if (p.width == 0) continue;
      std::cout << "  PRR" << p.region + 1 << ": rows [" << p.row << ","
                << p.row + p.height << ") cols [" << p.col << ","
                << p.col + p.width << ")\n";
    }
    std::cout << "\nUCF constraints:\n" << to_ucf(fx70t, plan.placements);
  } else {
    std::cout << "floorplanning failed for region " << plan.failed_region
              << "\n";
  }

  // Bitstream inventory.
  const auto bitstreams = generate_bitstreams(
      design, result.base_partitions, result.proposed.scheme,
      result.proposed.eval);
  std::cout << "\nPartial bitstreams (" << bitstreams.size() << " total, "
            << with_commas(total_bytes(bitstreams)) << " bytes):\n";
  for (const Bitstream& b : bitstreams)
    std::cout << "  " << b.name << ": " << with_commas(b.bytes())
              << " bytes (" << b.frames << " frames)\n";
  return 0;
}
