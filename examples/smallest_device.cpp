// Device-selection mode (§IV-C): "can suggest the smallest FPGA suitable to
// implement the given design". Walks the Virtex-5 library from the smallest
// device up and reports where the design becomes implementable and where a
// non-trivial partitioning first succeeds.
#include <iostream>

#include "core/partitioner.hpp"
#include "core/report.hpp"
#include "design/synthetic.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace prpart;

  // Seed selectable from the command line so users can explore.
  const std::uint64_t seed =
      argc > 1 ? parse_u64(argv[1]) : std::uint64_t{12};
  Rng rng(seed);
  const SyntheticDesign s = generate_synthetic(rng, CircuitClass::DspAndMemory);
  const Design& design = s.design;

  std::cout << "Synthetic design (seed " << seed << ", "
            << to_string(s.circuit_class) << "): "
            << design.modules().size() << " modules, " << design.mode_count()
            << " modes, " << design.configurations().size()
            << " configurations\n";
  std::cout << "Single-region lower bound: "
            << (design.largest_configuration_area() + design.static_base())
                   .to_string()
            << "\n\n";

  const DeviceLibrary lib = DeviceLibrary::virtex5();
  for (const Device& dev : lib.devices()) {
    const PartitionerResult r = partition_design(design, dev.capacity());
    std::cout << dev.name() << " (" << dev.capacity().to_string() << "): ";
    if (!r.feasible) {
      std::cout << "does not fit\n";
      continue;
    }
    std::cout << (r.proposed_from_search ? "partitioned" : "single-region only")
              << ", total recon " << with_commas(r.proposed.eval.total_frames)
              << " frames, worst " << with_commas(r.proposed.eval.worst_frames)
              << "\n";
  }

  std::cout << "\nChosen device: ";
  const DevicePartitionResult chosen =
      partition_on_smallest_device(design, lib);
  std::cout << chosen.device->name()
            << (chosen.escalated ? " (escalated past the smallest feasible)"
                                 : "")
            << "\n";
  std::cout << "\n"
            << render_scheme_comparison(chosen.result);
  return 0;
}
