// Quickstart: partition the paper's running example (§III) in ~50 lines.
//
// A PR design is described as modules with modes plus the valid
// configurations; the partitioner returns region assignments minimising
// total reconfiguration time for a given resource budget.
#include <iostream>

#include "core/partitioner.hpp"
#include "core/report.hpp"
#include "design/builder.hpp"
#include "util/strings.hpp"

int main() {
  using namespace prpart;

  // The example design of Fig. 1: modules A, B, C with modes A1-A3, B1-B2,
  // C1-C3 (areas invented; the paper gives none for this example).
  const Design design =
      DesignBuilder("quickstart")
          .module("A", {{"A1", {100, 0, 0}},
                        {"A2", {260, 1, 2}},
                        {"A3", {180, 0, 4}}})
          .module("B", {{"B1", {400, 2, 0}}, {"B2", {90, 0, 1}}})
          .module("C", {{"C1", {150, 1, 0}},
                        {"C2", {310, 0, 8}},
                        {"C3", {55, 0, 0}}})
          .configuration({{"A", "A3"}, {"B", "B2"}, {"C", "C3"}})
          .configuration({{"A", "A1"}, {"B", "B1"}, {"C", "C1"}})
          .configuration({{"A", "A3"}, {"B", "B2"}, {"C", "C1"}})
          .configuration({{"A", "A1"}, {"B", "B2"}, {"C", "C2"}})
          .configuration({{"A", "A2"}, {"B", "B2"}, {"C", "C3"}})
          .build();

  // Resources available for the reconfigurable part of the system.
  const ResourceVec budget{1000, 8, 16};

  const PartitionerResult result = partition_design(design, budget);
  if (!result.feasible) {
    std::cerr << "design does not fit the budget\n";
    return 1;
  }

  std::cout << "Base partitions (Table I style):\n"
            << render_base_partitions(design, result.base_partitions) << "\n";
  std::cout << "Proposed partitioning:\n"
            << render_scheme_partitions(design, result.base_partitions,
                                        result.proposed.scheme)
            << "\n";
  std::cout << "Scheme comparison:\n" << render_scheme_comparison(result);
  std::cout << "\nProposed total reconfiguration cost: "
            << with_commas(result.proposed.eval.total_frames)
            << " frames (vs " << with_commas(result.modular.eval.total_frames)
            << " for one-module-per-region)\n";
  return 0;
}
