// Ablation: what the frame-count objective buys at application level. The
// paper's intro motivates PR partitioning with adaptive streaming systems
// (cognitive radio, video receivers) where "long reconfiguration times can
// adversely impact system performance"; here we measure that impact
// directly: input items lost during reconfiguration stalls under the three
// partitioning schemes, across dwell times from aggressive (1 ms) to
// relaxed (100 ms) adaptation.
#include <iostream>

#include "core/partitioner.hpp"
#include "reconfig/application.hpp"
#include "synth/ip_library.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace prpart;

  const Design design = synth::wireless_receiver_design();
  PartitionerOptions opt;
  opt.search.max_candidate_sets = 64;
  opt.search.max_move_evaluations = 2'000'000;
  // BRAM-relaxed case-study budget (see EXPERIMENTS.md) so all three
  // schemes are comparable.
  const PartitionerResult r = partition_design(design, {6800, 64, 150}, opt);
  if (!r.feasible) {
    std::cerr << "case study infeasible\n";
    return 1;
  }

  const std::size_t n = design.configurations().size();
  ApplicationModel app;
  app.items_per_second.assign(n, 40e6);  // 40 Msample/s receiver chain
  app.arrival_items_per_second = 25e6;   // 25 Msample/s channel

  std::cout << "=== Ablation: application-level impact of partitioning ===\n";
  std::cout << "wireless video receiver, 25 Msample/s input, 3000 "
               "environment-driven transitions per cell\n\n";

  TextTable t({"Mean dwell", "Scheme", "Availability", "Samples lost",
               "Loss fraction"});
  for (const double dwell_ms : {1.0, 10.0, 100.0}) {
    app.mean_dwell_ns = dwell_ms * 1e6;
    struct Row {
      const char* name;
      const SchemeEvaluation* eval;
    };
    const Row rows[] = {{"proposed", &r.proposed.eval},
                        {"modular", &r.modular.eval},
                        {"single region", &r.single_region.eval}};
    for (const Row& row : rows) {
      Rng rng(42);  // identical dwell/walk sequence for all schemes
      const ApplicationStats s = simulate_application(
          design, *row.eval, app, MarkovChain::uniform(n), 3000, rng);
      t.add_row({fixed(dwell_ms, 0) + " ms", row.name,
                 fixed(100.0 * s.availability, 2) + "%",
                 with_commas(static_cast<std::uint64_t>(s.items_lost)),
                 fixed(100.0 * s.loss_fraction, 3) + "%"});
    }
    t.add_rule();
  }
  std::cout << t.render();
  std::cout << "\nReading: at aggressive adaptation rates the partitioning "
               "choice decides a multi-point availability gap; as dwells "
               "grow the schemes converge, which is why the paper targets "
               "fast-adapting systems.\n";
  return 0;
}
