// Reproduces the §V case study: Table II (module resources), Table III
// (partitions found), Table IV (scheme comparison), and Table V (modified
// configuration set), on the Virtex-5 FX70T budget.
//
// Accounting note (see EXPERIMENTS.md): our model applies the paper's own
// tile-rounding equations (Eqs. 3-5) to every resource type, which the
// paper's Table IV numbers do not do consistently (its modular BRAM count
// of 48 is below the raw sum of 56). We therefore print the comparison on
// the published budget (6800/50/150) and additionally on a BRAM-relaxed
// budget where the one-module-per-region scheme fits, which restores the
// paper's three-way comparison.
#include <chrono>
#include <iostream>

#include "core/partitioner.hpp"
#include "core/report.hpp"
#include "synth/ip_library.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace prpart;

PartitionerOptions case_study_options() {
  PartitionerOptions opt;
  opt.search.max_candidate_sets = 64;
  opt.search.max_move_evaluations = 4'000'000;
  return opt;
}

void print_table2(const Design& design) {
  std::cout << "=== Table II: resource utilisation of the reconfigurable "
               "modules ===\n";
  TextTable t({"Module", "Mode", "CLBs", "BR", "DSP"});
  for (const Module& m : design.modules())
    for (const Mode& mode : m.modes)
      t.add_row({m.name, mode.name, std::to_string(mode.area.clbs),
                 std::to_string(mode.area.brams),
                 std::to_string(mode.area.dsps)});
  std::cout << t.render() << "\n";
}

void run_case(const Design& design, const ResourceVec& budget,
              const char* heading, std::uint64_t paper_modular,
              std::uint64_t paper_proposed) {
  std::cout << "=== " << heading << " (budget " << budget.to_string()
            << ") ===\n";
  const auto started = std::chrono::steady_clock::now();
  const PartitionerResult r =
      partition_design(design, budget, case_study_options());
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  if (!r.feasible) {
    std::cout << "infeasible\n\n";
    return;
  }
  std::cout << render_scheme_comparison(r);
  std::cout << "Proposed partitioning:\n"
            << render_scheme_partitions(design, r.base_partitions,
                                        r.proposed.scheme);
  if (r.modular.eval.fits && r.proposed.eval.total_frames > 0) {
    const double gain =
        100.0 *
        (static_cast<double>(r.modular.eval.total_frames) -
         static_cast<double>(r.proposed.eval.total_frames)) /
        static_cast<double>(r.modular.eval.total_frames);
    std::cout << "Proposed vs modular: " << fixed(gain, 1)
              << "% lower total reconfiguration time\n";
  }
  if (paper_modular != 0)
    std::cout << "Paper reported: modular " << with_commas(paper_modular)
              << " frames, proposed " << with_commas(paper_proposed)
              << " frames\n";
  std::cout << "Search: " << r.stats.move_evaluations
            << " move evaluations, " << r.stats.candidate_sets
            << " candidate sets, " << fixed(secs, 2)
            << " s (paper: seconds to one minute in Python)\n\n";
}

}  // namespace

int main() {
  const Design design = synth::wireless_receiver_design();
  print_table2(design);

  // Tables III & IV on the published budget.
  run_case(design, synth::wireless_receiver_budget(),
           "Tables III & IV: eight-configuration case study", 244872, 235266);

  // Same with the BRAM budget relaxed to cover tile-granular modular.
  run_case(design, {6800, 64, 150},
           "Tables III & IV on the BRAM-relaxed budget (modular fits)",
           244872, 235266);

  // Table V: modified configuration set.
  const Design modified = synth::wireless_receiver_modified_design();
  run_case(modified, synth::wireless_receiver_budget(),
           "Table V: modified configuration set", 0, 92120);
  run_case(modified, {6800, 64, 150},
           "Table V on the BRAM-relaxed budget", 0, 92120);
  return 0;
}
