// Ablation (paper's future work): partition FOR the environment. When
// transition probabilities are known, the search can minimise the
// probability-weighted cost instead of the uniform Eq. 10 proxy. We compare
// the two resulting schemes under the true environment across synthetic
// designs with skewed Markov environments.
#include <iostream>

#include "core/clustering.hpp"
#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "reconfig/markov.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace prpart;

/// Integer pair weights from a chain's stationary flow:
/// w[i][j] ~ (pi_i P_ij + pi_j P_ji) scaled to 10^6.
PairWeights weights_from_chain(const MarkovChain& chain) {
  const std::size_t n = chain.states();
  const std::vector<double> pi = chain.stationary();
  PairWeights w(n, std::vector<std::uint32_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double flow =
          pi[i] * chain.probability(i, j) + pi[j] * chain.probability(j, i);
      w[i][j] = static_cast<std::uint32_t>(flow * 1e6) + 1;
    }
  return w;
}

}  // namespace

int main() {
  const std::size_t designs = 40;
  std::cout << "=== Ablation: environment-aware (weighted) partitioning ===\n";
  std::cout << designs << " synthetic designs, each with a random skewed "
               "Markov environment\n\n";

  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const auto suite = generate_synthetic_suite(31337, designs);

  std::size_t compared = 0, weighted_wins = 0, ties = 0;
  double sum_improvement = 0.0, best_improvement = 0.0;

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const Design& d = suite[i].design;
    const std::size_t n = d.configurations().size();
    if (n < 3) continue;
    Rng rng(500 + i);
    const MarkovChain env = MarkovChain::random(rng, n);
    const PairWeights w = weights_from_chain(env);

    PartitionerOptions uniform_opt;
    uniform_opt.search.max_move_evaluations = 400'000;
    PartitionerOptions weighted_opt = uniform_opt;
    weighted_opt.search.pair_weights = &w;

    // Same device for both: smallest workable under the uniform objective.
    const DevicePartitionResult base =
        partition_on_smallest_device(d, lib, uniform_opt);
    if (!base.result.feasible) continue;
    const PartitionerResult weighted =
        partition_design(d, base.device->capacity(), weighted_opt);
    if (!weighted.feasible) continue;

    const double cost_uniform_scheme = expected_frames_per_transition(
        base.result.proposed.eval, n, env);
    const double cost_weighted_scheme =
        expected_frames_per_transition(weighted.proposed.eval, n, env);
    ++compared;
    if (cost_weighted_scheme < cost_uniform_scheme - 1e-9) ++weighted_wins;
    if (std::abs(cost_weighted_scheme - cost_uniform_scheme) <= 1e-9) ++ties;
    if (cost_uniform_scheme > 0) {
      const double improvement =
          (cost_uniform_scheme - cost_weighted_scheme) / cost_uniform_scheme *
          100.0;
      sum_improvement += improvement;
      best_improvement = std::max(best_improvement, improvement);
    }
  }

  TextTable t({"Metric", "Value"});
  t.add_row({"designs compared", std::to_string(compared)});
  t.add_row({"weighted scheme strictly better", std::to_string(weighted_wins)});
  t.add_row({"ties", std::to_string(ties)});
  t.add_row({"mean expected-cost improvement",
             prpart::fixed(sum_improvement / static_cast<double>(compared ? compared : 1),
                          2) +
                 "%"});
  t.add_row({"best improvement", prpart::fixed(best_improvement, 2) + "%"});
  std::cout << t.render();
  std::cout << "\nReading: when the adaptation statistics are known, feeding "
               "them into the search (the paper's proposed future work) "
               "lowers the realised reconfiguration cost; with unknown "
               "statistics the uniform Eq. 10 proxy remains the right "
               "default.\n";
  return 0;
}
