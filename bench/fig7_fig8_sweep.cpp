// Reproduces Figs. 7 and 8: total and worst-case reconfiguration time of
// the proposed scheme vs the one-module-per-region and single-region
// schemes over the synthetic design suite, sorted by target FPGA size.
// Also reports the §V text statistics (escalated designs, designs fitting a
// smaller FPGA than modular needs).
//
// Series data is written to fig7.csv / fig8.csv in the working directory;
// the console shows per-device aggregates (the figures' visual shape).
#include <fstream>
#include <iostream>
#include <map>

#include "bench/sweep_common.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace prpart;
  using namespace prpart::bench;

  const std::size_t count = sweep_design_count();
  std::cout << "=== Figs. 7 & 8: synthetic sweep over " << count
            << " designs (paper: 1000; set PRPART_DESIGNS to override) ===\n";
  const SweepResult sweep = run_sweep(2013, count);
  const auto rows = sorted_by_device(sweep);

  // CSV dumps: one row per design in device-sorted order (the x-axis).
  {
    std::ofstream f7("fig7.csv");
    CsvWriter csv(f7, {"x", "device", "class", "proposed_total",
                       "modular_total", "single_total"});
    std::size_t x = 0;
    for (const SweepRow* r : rows)
      csv.row({std::to_string(x++), r->device, to_string(r->circuit_class),
               std::to_string(r->proposed_total),
               std::to_string(r->modular_total),
               std::to_string(r->single_total)});
    std::ofstream f8("fig8.csv");
    CsvWriter csv8(f8, {"x", "device", "proposed_worst", "modular_worst",
                        "single_worst"});
    x = 0;
    for (const SweepRow* r : rows)
      csv8.row({std::to_string(x++), r->device,
                std::to_string(r->proposed_worst),
                std::to_string(r->modular_worst),
                std::to_string(r->single_worst)});
  }
  std::cout << "wrote fig7.csv and fig8.csv (" << rows.size() << " rows)\n\n";

  // Console shape: per-device mean of each series.
  struct Agg {
    std::size_t n = 0;
    double p_total = 0, m_total = 0, s_total = 0;
    double p_worst = 0, m_worst = 0, s_worst = 0;
  };
  std::map<std::size_t, std::pair<std::string, Agg>> per_device;
  for (const SweepRow* r : rows) {
    auto& [name, a] = per_device[r->device_index];
    name = r->device;
    ++a.n;
    a.p_total += static_cast<double>(r->proposed_total);
    a.m_total += static_cast<double>(r->modular_total);
    a.s_total += static_cast<double>(r->single_total);
    a.p_worst += static_cast<double>(r->proposed_worst);
    a.m_worst += static_cast<double>(r->modular_worst);
    a.s_worst += static_cast<double>(r->single_worst);
  }

  std::cout << "Fig. 7 shape: mean TOTAL reconfiguration time (frames) per "
               "target device\n";
  TextTable t7({"Device", "Designs", "Proposed", "1 Module/Region",
                "Single region"});
  for (auto& [idx, entry] : per_device) {
    auto& [name, a] = entry;
    const auto n = static_cast<double>(a.n);
    t7.add_row({name, std::to_string(a.n),
                with_commas(static_cast<std::uint64_t>(a.p_total / n)),
                with_commas(static_cast<std::uint64_t>(a.m_total / n)),
                with_commas(static_cast<std::uint64_t>(a.s_total / n))});
  }
  std::cout << t7.render() << "\n";

  std::cout << "Fig. 8 shape: mean WORST-CASE reconfiguration time (frames) "
               "per target device\n";
  TextTable t8({"Device", "Designs", "Proposed", "1 Module/Region",
                "Single region"});
  for (auto& [idx, entry] : per_device) {
    auto& [name, a] = entry;
    const auto n = static_cast<double>(a.n);
    t8.add_row({name, std::to_string(a.n),
                with_commas(static_cast<std::uint64_t>(a.p_worst / n)),
                with_commas(static_cast<std::uint64_t>(a.m_worst / n)),
                with_commas(static_cast<std::uint64_t>(a.s_worst / n))});
  }
  std::cout << t8.render() << "\n";

  // §V text statistics.
  std::size_t beats_modular_total = 0, beats_single_total = 0;
  std::size_t beats_modular_worst = 0, ge_single_worst = 0;
  for (const SweepRow* r : rows) {
    if (r->proposed_total < r->modular_total) ++beats_modular_total;
    if (r->proposed_total < r->single_total) ++beats_single_total;
    if (r->proposed_worst < r->modular_worst) ++beats_modular_worst;
    if (r->proposed_worst <= r->single_worst) ++ge_single_worst;
  }
  const auto pct = [&](std::size_t n) {
    return fixed(100.0 * static_cast<double>(n) /
                     static_cast<double>(sweep.designs),
                 1) +
           "%";
  };
  std::cout << "Sweep statistics (paper values in parentheses):\n";
  std::cout << "  designs escalated to a larger FPGA : " << sweep.escalated
            << "/" << sweep.designs << " = " << pct(sweep.escalated)
            << "  (201/1000 = 20.1%)\n";
  std::cout << "  designs on a smaller FPGA than modular needs: "
            << sweep.smaller_than_modular << " (13)\n";
  std::cout << "  proposed beats modular on total time: "
            << pct(beats_modular_total) << " (73%)\n";
  std::cout << "  proposed beats single-region on total time: "
            << pct(beats_single_total) << " (100%)\n";
  std::cout << "  proposed beats modular on worst case: "
            << pct(beats_modular_worst) << " (70%)\n";
  std::cout << "  proposed <= single-region on worst case: "
            << pct(ge_single_worst) << " (87.5%)\n";
  std::cout << "  sweep wall time: " << fixed(sweep.seconds, 1) << " s ("
            << fixed(sweep.seconds / static_cast<double>(sweep.designs) * 1e3,
                     1)
            << " ms/design; paper: seconds to one minute per design)\n";

  // Machine-readable summary for CI trend tracking: summed frame counts per
  // scheme, the speedup ratios the paper argues from, and the wall clock.
  {
    std::uint64_t proposed_total = 0, modular_total = 0, single_total = 0;
    std::uint64_t proposed_worst = 0, modular_worst = 0, single_worst = 0;
    for (const SweepRow* r : rows) {
      proposed_total += r->proposed_total;
      modular_total += r->modular_total;
      single_total += r->single_total;
      proposed_worst += r->proposed_worst;
      modular_worst += r->modular_worst;
      single_worst += r->single_worst;
    }
    const auto ratio = [](std::uint64_t base, std::uint64_t ours) {
      return ours == 0 ? 0.0
                       : static_cast<double>(base) / static_cast<double>(ours);
    };
    json::Value doc = json::Value::object();
    doc.set("designs", json::Value(static_cast<std::uint64_t>(sweep.designs)));
    doc.set("escalated",
            json::Value(static_cast<std::uint64_t>(sweep.escalated)));
    doc.set("smaller_than_modular",
            json::Value(static_cast<std::uint64_t>(sweep.smaller_than_modular)));
    json::Value totals = json::Value::object();
    totals.set("proposed", json::Value(proposed_total));
    totals.set("modular", json::Value(modular_total));
    totals.set("single_region", json::Value(single_total));
    doc.set("total_frames", totals);
    json::Value worsts = json::Value::object();
    worsts.set("proposed", json::Value(proposed_worst));
    worsts.set("modular", json::Value(modular_worst));
    worsts.set("single_region", json::Value(single_worst));
    doc.set("worst_frames", worsts);
    json::Value speedup = json::Value::object();
    speedup.set("total_vs_modular", json::Value(ratio(modular_total, proposed_total)));
    speedup.set("total_vs_single", json::Value(ratio(single_total, proposed_total)));
    speedup.set("worst_vs_modular", json::Value(ratio(modular_worst, proposed_worst)));
    speedup.set("worst_vs_single", json::Value(ratio(single_worst, proposed_worst)));
    doc.set("speedup", speedup);
    // Deterministic branch-and-bound effort counters summed over every
    // design's accepted search (thread-count independent, so the CI gate
    // can compare them against the committed baseline).
    std::uint64_t su = 0, sp = 0, sme = 0, ssr = 0;
    for (const SweepRow* r : rows) {
      su += r->search_units;
      sp += r->search_units_pruned;
      sme += r->search_move_evaluations;
      ssr += r->search_states_recorded;
    }
    json::Value search = json::Value::object();
    search.set("units", json::Value(su));
    search.set("units_pruned", json::Value(sp));
    search.set("move_evaluations", json::Value(sme));
    search.set("states_recorded", json::Value(ssr));
    doc.set("search", search);
    doc.set("wall_seconds", json::Value(sweep.seconds));
    doc.set("ms_per_design",
            json::Value(sweep.seconds * 1e3 /
                        static_cast<double>(sweep.designs)));
    std::ofstream bench_json("BENCH_sweep.json");
    bench_json << doc.dump() << "\n";
    std::cout << "wrote BENCH_sweep.json\n";
  }
  return 0;
}
