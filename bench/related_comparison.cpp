// Related-work comparison (paper §II): the communication-driven clustering
// of Rana et al. [5] vs this paper's configuration-driven partitioning,
// evaluated under both objectives. [5] needs the designer to fix the number
// of regions and optimises communication locality; the proposed method
// derives the regions itself and optimises reconfiguration time. We show
// the trade-off both ways on synthetic designs with random communication
// graphs.
#include <iostream>

#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "related/rana_clustering.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace prpart;

  const std::size_t designs = 60;
  std::cout << "=== Related work: communication clustering [5] vs proposed "
               "===\n";
  std::cout << designs << " synthetic designs with random communication "
               "graphs; [5] gets regions = ceil(modules/2)\n\n";

  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const auto suite = generate_synthetic_suite(777, designs);
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 400'000;

  std::size_t compared = 0, proposed_wins_time = 0, rana_fits = 0;
  double time_ratio_sum = 0.0;

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const Design& d = suite[i].design;
    const DevicePartitionResult dp =
        partition_on_smallest_device(d, lib, opt);
    if (!dp.result.feasible) continue;

    Rng rng(600 + i);
    const CommunicationGraph comm =
        CommunicationGraph::random(rng, d.modules().size(), 0.6);
    const std::size_t target = (d.modules().size() + 1) / 2;
    const ModuleGrouping grouping = communication_clustering(comm, target);
    const SchemeEvaluation rana =
        evaluate_module_grouping(d, grouping, dp.device->capacity());
    const SchemeEvaluation& proposed = dp.result.proposed.eval;

    ++compared;
    if (rana.fits) ++rana_fits;
    if (proposed.total_frames <= rana.total_frames) ++proposed_wins_time;
    if (proposed.total_frames > 0)
      time_ratio_sum += static_cast<double>(rana.total_frames) /
                        static_cast<double>(proposed.total_frames);
  }

  TextTable t({"Metric", "Value"});
  t.add_row({"designs compared", std::to_string(compared)});
  t.add_row({"[5] grouping fits the chosen device",
             std::to_string(rana_fits)});
  t.add_row({"proposed <= [5] on total reconfiguration time",
             std::to_string(proposed_wins_time)});
  t.add_row({"mean reconfig-time ratio [5]/proposed",
             fixed(time_ratio_sum / static_cast<double>(compared ? compared : 1), 2) + "x"});
  std::cout << t.render();
  std::cout << "\nReading: as the paper argues in §II, optimising "
               "communication locality with a designer-fixed region count "
               "leaves large reconfiguration-time gains on the table -- and "
               "the gap is exactly what the configuration-aware clustering "
               "recovers. [5] still wins on its own objective "
               "(intra-region bandwidth), which the proposed method does "
               "not model.\n";
  return 0;
}
