// Ablation: floorplanning strategies on the partitioner's output. Greedy
// first-fit (fast), greedy best-fit (less waste), and joint simulated
// annealing (related work [7]'s approach) are compared on success rate,
// wasted frames, and runtime, across synthetic designs placed on their
// smallest workable device (the tightest realistic instances).
#include <chrono>
#include <iostream>

#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "floorplan/annealing.hpp"
#include "floorplan/floorplanner.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace prpart;

  const std::size_t designs = 80;
  std::cout << "=== Ablation: floorplanning strategies ===\n";
  std::cout << designs << " synthetic designs, each partitioned on its "
               "smallest workable device\n\n";

  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const auto suite = generate_synthetic_suite(246, designs);
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 400'000;

  struct Tally {
    std::size_t placed = 0;
    std::uint64_t waste = 0;
    double seconds = 0.0;
  };
  Tally first, best, anneal;
  std::size_t instances = 0;

  for (const SyntheticDesign& s : suite) {
    const DevicePartitionResult dp =
        partition_on_smallest_device(s.design, lib, opt);
    if (!dp.result.feasible) continue;
    ++instances;
    std::vector<TileCount> need;
    for (const RegionReport& r : dp.result.proposed.eval.regions)
      need.push_back(r.tiles);

    auto run = [&](Tally& tally, auto&& place) {
      const auto t0 = std::chrono::steady_clock::now();
      const FloorplanResult r = place();
      tally.seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (r.success) {
        ++tally.placed;
        tally.waste +=
            floorplan_stats(*dp.device, need, r.placements).waste_frames;
      }
    };
    run(first, [&] { return Floorplanner(*dp.device).place(need); });
    run(best, [&] {
      return Floorplanner(*dp.device, {PlacementStrategy::BestFit})
          .place(need);
    });
    run(anneal, [&] { return anneal_place(*dp.device, need); });
  }

  TextTable t({"Strategy", "Placed", "Mean waste (frames)", "Total time"});
  auto row = [&](const char* name, const Tally& tally) {
    const double n = tally.placed ? static_cast<double>(tally.placed) : 1.0;
    t.add_row({name,
               std::to_string(tally.placed) + "/" + std::to_string(instances),
               fixed(static_cast<double>(tally.waste) / n, 0),
               fixed(tally.seconds, 2) + " s"});
  };
  row("greedy first-fit", first);
  row("greedy best-fit", best);
  row("simulated annealing [7]", anneal);
  std::cout << t.render();
  std::cout << "\nReading: on resource-tight devices the joint optimiser "
               "places instances the greedy strategies wedge on; best-fit "
               "trims waste per region but fragments rows and succeeds less "
               "often. The flow therefore runs greedy first-fit first and "
               "escalates to annealing only when it wedges (the §VI "
               "feedback loop).\n";
  return 0;
}
