// Partition–floorplan co-optimization bench (DESIGN.md §6): partitions a
// synthetic design suite on the smallest suitable library device, then runs
// the placement-true veto/re-rank pass over each search's enumerated top-K
// schemes and gates the subsystem's two contracts in CI:
//
//   placement_dominates_agreement — every legal floorplan's frame total must
//     be >= its Eq. 10 estimate (frames are rounded up to whole placed
//     tiles, never down); hard floor 1.0 in tools/check_bench.py.
//   thread_identity_agreement — the full re-ranking (order, totals and every
//     placed rectangle) must be byte-identical whether the search ran with
//     1, 4 or 16 threads; hard floor 1.0.
//
// The remaining counters (veto rate, overturns, placement inflation) are
// deterministic functions of the fixed seed and are regression-gated
// against the committed BENCH_floorplan.json.
//
//   PRPART_FP_DESIGNS=40 ./bench_floorplan
//
// The design count is a fixed knob (not PRPART_DESIGNS): the committed
// baseline's counters only line up when CI runs the same scale.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "floorplan/rerank.hpp"
#include "util/json.hpp"

namespace prpart::bench {
namespace {

std::size_t env_count(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name))
    return static_cast<std::size_t>(std::max(1, std::atoi(value)));
  return fallback;
}

/// One partitioned design pinned to the device the selection walk chose.
struct FpCase {
  Design design;
  const Device* device = nullptr;
  PartitionerResult result;
};

bool same_rerank(const FloorplanRerank& a, const FloorplanRerank& b) {
  if (a.any_feasible != b.any_feasible || a.overturned != b.overturned ||
      a.winner_source != b.winner_source || a.vetoed_count != b.vetoed_count ||
      a.ranked.size() != b.ranked.size())
    return false;
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    const FloorplanCandidate& x = a.ranked[i];
    const FloorplanCandidate& y = b.ranked[i];
    if (x.source_index != y.source_index || x.vetoed != y.vetoed ||
        x.estimated_total != y.estimated_total ||
        x.placement_total != y.placement_total ||
        x.placement_worst != y.placement_worst ||
        x.plan.stage != y.plan.stage ||
        x.plan.placements.size() != y.plan.placements.size())
      return false;
    for (std::size_t r = 0; r < x.plan.placements.size(); ++r) {
      const RegionPlacement& p = x.plan.placements[r];
      const RegionPlacement& q = y.plan.placements[r];
      if (p.row != q.row || p.height != q.height || p.col != q.col ||
          p.width != q.width)
        return false;
    }
  }
  return true;
}

int main_impl() {
  const std::size_t count = env_count("PRPART_FP_DESIGNS", 40);

  PartitionerOptions options;
  options.search.max_move_evaluations = 60'000;
  options.search.keep_alternatives = 4;
  options.search.threads = 1;
  const DeviceLibrary library = DeviceLibrary::extended();
  const auto suite = generate_synthetic_suite(2013, count);

  // Device selection keeps each instance tight: the smallest device that can
  // implement the design at all is exactly where fragmentation vetoes and
  // estimate/placement divergence show up.
  std::vector<FpCase> cases;
  for (const SyntheticDesign& sd : suite) {
    try {
      DevicePartitionResult dp =
          partition_on_smallest_device(sd.design, library, options);
      if (!dp.result.feasible) continue;
      cases.push_back(FpCase{sd.design, dp.device, std::move(dp.result)});
    } catch (const DeviceError&) {
      continue;  // fits no library device at all
    }
  }
  std::printf("partition–floorplan co-optimization bench: %zu designs "
              "(%zu feasible on their smallest device)\n\n",
              suite.size(), cases.size());

  // Leg 1 — the veto/re-rank pass plus the dominance property: every legal
  // placement's frame total must cover its Eq. 10 estimate.
  std::uint64_t candidates = 0, vetoed = 0, overturns = 0, all_vetoed = 0;
  std::uint64_t estimate_frames = 0, placed_frames = 0;
  std::uint64_t dominance_checked = 0, dominance_held = 0;
  std::vector<FloorplanRerank> reranks;
  reranks.reserve(cases.size());
  auto started = std::chrono::steady_clock::now();
  for (const FpCase& c : cases) {
    reranks.push_back(floorplan_rerank(c.design, c.result, *c.device,
                                       c.device->capacity(), {}, &library));
    const FloorplanRerank& rerank = reranks.back();
    candidates += rerank.ranked.size();
    vetoed += rerank.vetoed_count;
    if (rerank.overturned) ++overturns;
    if (!rerank.any_feasible) ++all_vetoed;
    for (const FloorplanCandidate& cand : rerank.ranked) {
      if (cand.vetoed) continue;
      ++dominance_checked;
      if (cand.placement_total >= cand.estimated_total) ++dominance_held;
      estimate_frames += cand.estimated_total;
      placed_frames += cand.placement_total;
    }
  }
  const double rerank_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  const double dominance =
      dominance_checked == 0 ? 0.0
                             : static_cast<double>(dominance_held) /
                                   static_cast<double>(dominance_checked);
  const double inflation =
      estimate_frames == 0 ? 0.0
                           : static_cast<double>(placed_frames) /
                                 static_cast<double>(estimate_frames);
  std::printf("re-rank leg:     %llu candidates (%llu vetoed, %llu designs "
              "overturned, %llu fully vetoed) in %.3f s\n",
              static_cast<unsigned long long>(candidates),
              static_cast<unsigned long long>(vetoed),
              static_cast<unsigned long long>(overturns),
              static_cast<unsigned long long>(all_vetoed), rerank_seconds);
  std::printf("dominance leg:   placement >= estimate on %llu/%llu legal "
              "floorplans (floor 1.0), frame inflation %.4fx\n",
              static_cast<unsigned long long>(dominance_held),
              static_cast<unsigned long long>(dominance_checked), inflation);
  if (dominance != 1.0) {
    std::printf("\nFAIL: a placed floorplan undercut its Eq. 10 estimate\n");
    return 1;
  }

  // Leg 2 — determinism: the entire re-ranking must be identical whether
  // the search that produced the candidate set ran with 1, 4 or 16 threads
  // (the same discipline the CLI/server JSON encoders rely on for cache
  // hits and cross-frontend byte identity).
  std::uint64_t identity_checked = 0, identity_held = 0;
  started = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const FpCase& c = cases[i];
    bool identical = true;
    for (unsigned threads : {4u, 16u}) {
      PartitionerOptions opt = options;
      opt.search.threads = threads;
      const PartitionerResult result =
          partition_design(c.design, c.device->capacity(), opt);
      const FloorplanRerank rerank = floorplan_rerank(
          c.design, result, *c.device, c.device->capacity(), {}, &library);
      identical = identical && same_rerank(reranks[i], rerank);
    }
    ++identity_checked;
    if (identical) ++identity_held;
  }
  const double identity_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  const double identity =
      identity_checked == 0 ? 0.0
                            : static_cast<double>(identity_held) /
                                  static_cast<double>(identity_checked);
  std::printf("thread identity: re-ranking at threads {1, 4, 16} identical "
              "on %llu/%llu designs (floor 1.0) in %.3f s\n",
              static_cast<unsigned long long>(identity_held),
              static_cast<unsigned long long>(identity_checked),
              identity_seconds);
  if (identity != 1.0) {
    std::printf("\nFAIL: re-ranking diverged across search thread counts\n");
    return 1;
  }

  // Machine-readable summary for the CI regression gate. Wall-clock keys
  // are skipped by check_bench.py; everything else is a deterministic
  // function of the fixed seed and scale knob.
  {
    json::Value doc = json::Value::object();
    doc.set("designs", json::Value(static_cast<std::uint64_t>(suite.size())));
    doc.set("feasible", json::Value(static_cast<std::uint64_t>(cases.size())));
    doc.set("candidates", json::Value(candidates));
    doc.set("vetoed", json::Value(vetoed));
    doc.set("overturns", json::Value(overturns));
    doc.set("all_vetoed", json::Value(all_vetoed));
    doc.set("estimate_frames", json::Value(estimate_frames));
    doc.set("placed_frames", json::Value(placed_frames));
    doc.set("placement_inflation", json::Value(inflation));
    doc.set("rerank_wall_seconds", json::Value(rerank_seconds));
    // Floor-gated (== 1.0 in tools/check_bench.py).
    doc.set("placement_dominates_agreement", json::Value(dominance));
    doc.set("thread_identity_agreement", json::Value(identity));
    doc.set("identity_wall_seconds", json::Value(identity_seconds));
    std::ofstream bench_json("BENCH_floorplan.json");
    bench_json << doc.dump() << "\n";
    std::printf("wrote BENCH_floorplan.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace prpart::bench

int main() { return prpart::bench::main_impl(); }
