// Microbenchmarks of the algorithm stages (google-benchmark): clustering,
// covering, compatibility, and the full search, as a function of design
// size. The paper reports "a few seconds to one minute" per design for its
// Python implementation; these benches document the C++ costs.
#include <benchmark/benchmark.h>

#include "core/clustering.hpp"
#include "core/compatibility.hpp"
#include "core/covering.hpp"
#include "core/partitioner.hpp"
#include "core/search.hpp"
#include "design/synthetic.hpp"
#include "synth/ip_library.hpp"

namespace {

using namespace prpart;

/// Deterministic synthetic design with `modules` modules (seeded by size).
Design sized_design(std::uint32_t modules) {
  SyntheticOptions opt;
  opt.min_modules = modules;
  opt.max_modules = modules;
  Rng rng(9000 + modules);
  return generate_synthetic(rng, CircuitClass::DspAndMemory, opt).design;
}

void BM_ConnectivityMatrix(benchmark::State& state) {
  const Design d = sized_design(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    ConnectivityMatrix m(d);
    benchmark::DoNotOptimize(m.modes());
  }
}
BENCHMARK(BM_ConnectivityMatrix)->Arg(2)->Arg(4)->Arg(6);

void BM_Clustering(benchmark::State& state) {
  const Design d = sized_design(static_cast<std::uint32_t>(state.range(0)));
  const ConnectivityMatrix m(d);
  for (auto _ : state) {
    auto partitions = enumerate_base_partitions(d, m);
    benchmark::DoNotOptimize(partitions.size());
  }
}
BENCHMARK(BM_Clustering)->Arg(2)->Arg(4)->Arg(6);

void BM_CoveringAllCandidateSets(benchmark::State& state) {
  const Design d = sized_design(static_cast<std::uint32_t>(state.range(0)));
  const ConnectivityMatrix m(d);
  const auto partitions = enumerate_base_partitions(d, m);
  const auto order = covering_order(partitions);
  for (auto _ : state) {
    std::size_t sets = 0;
    for (std::size_t skip = 0; skip < order.size(); ++skip) {
      if (!cover(partitions, m, order, skip).complete) break;
      ++sets;
    }
    benchmark::DoNotOptimize(sets);
  }
}
BENCHMARK(BM_CoveringAllCandidateSets)->Arg(2)->Arg(4)->Arg(6);

void BM_Compatibility(benchmark::State& state) {
  const Design d = sized_design(static_cast<std::uint32_t>(state.range(0)));
  const ConnectivityMatrix m(d);
  const auto partitions = enumerate_base_partitions(d, m);
  for (auto _ : state) {
    CompatibilityTable compat(m, partitions);
    benchmark::DoNotOptimize(compat.size());
  }
}
BENCHMARK(BM_Compatibility)->Arg(2)->Arg(4)->Arg(6);

void BM_EvaluateScheme(benchmark::State& state) {
  const Design d = sized_design(static_cast<std::uint32_t>(state.range(0)));
  const ConnectivityMatrix m(d);
  const auto partitions = enumerate_base_partitions(d, m);
  const CompatibilityTable compat(m, partitions);
  const ResourceVec lower = d.largest_configuration_area() + d.static_base();
  const ResourceVec budget{lower.clbs + lower.clbs / 3, lower.brams + 8,
                           lower.dsps + 8};
  SearchOptions opt;
  opt.max_move_evaluations = 100'000;
  const SearchResult r =
      search_partitioning(d, m, partitions, compat, budget, opt);
  if (!r.feasible) {
    state.SkipWithError("search found no fitting scheme");
    return;
  }
  for (auto _ : state) {
    auto eval = evaluate_scheme(d, m, partitions, r.scheme, budget);
    benchmark::DoNotOptimize(eval.total_frames);
  }
}
BENCHMARK(BM_EvaluateScheme)->Arg(2)->Arg(4)->Arg(6);

void BM_FullSearch(benchmark::State& state) {
  const Design d = sized_design(static_cast<std::uint32_t>(state.range(0)));
  const ResourceVec lower = d.largest_configuration_area() + d.static_base();
  const ResourceVec budget{lower.clbs + lower.clbs / 3, lower.brams + 8,
                           lower.dsps + 8};
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 400'000;
  for (auto _ : state) {
    auto r = partition_design(d, budget, opt);
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_FullSearch)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_CaseStudyPartitioning(benchmark::State& state) {
  const Design d = synth::wireless_receiver_design();
  PartitionerOptions opt;
  opt.search.max_candidate_sets = 64;
  opt.search.max_move_evaluations = 4'000'000;
  for (auto _ : state) {
    auto r = partition_design(d, synth::wireless_receiver_budget(), opt);
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_CaseStudyPartitioning)->Unit(benchmark::kMillisecond);

}  // namespace
