// Microbenchmarks of the algorithm stages (google-benchmark): clustering,
// covering, compatibility, and the full search, as a function of design
// size. The paper reports "a few seconds to one minute" per design for its
// Python implementation; these benches document the C++ costs.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/clustering.hpp"
#include "core/compatibility.hpp"
#include "core/covering.hpp"
#include "core/eval_kernel.hpp"
#include "core/partitioner.hpp"
#include "core/schemes.hpp"
#include "core/search.hpp"
#include "design/synthetic.hpp"
#include "synth/ip_library.hpp"

// Binary-wide allocation counter: the kernel-evaluation benches assert that
// the steady state (shared context + reused scratch and output) performs
// zero heap allocations per evaluation, which is the contract DESIGN.md §4d
// promises the search's inner loop. Counting in the replaced operator new
// observes every std:: container allocation with no instrumentation in the
// code under test.
static std::atomic<std::uint64_t> g_heap_allocations{0};

// GCC pairs new/delete expressions with the *default* operator new it can
// see through inlining and flags the std::free below as mismatched; with
// the whole global new/delete family replaced here the pairing is in fact
// consistent (new -> malloc, delete -> free).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

namespace {

using namespace prpart;

/// Deterministic synthetic design with `modules` modules (seeded by size).
Design sized_design(std::uint32_t modules) {
  SyntheticOptions opt;
  opt.min_modules = modules;
  opt.max_modules = modules;
  Rng rng(9000 + modules);
  return generate_synthetic(rng, CircuitClass::DspAndMemory, opt).design;
}

void BM_ConnectivityMatrix(benchmark::State& state) {
  const Design d = sized_design(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    ConnectivityMatrix m(d);
    benchmark::DoNotOptimize(m.modes());
  }
}
BENCHMARK(BM_ConnectivityMatrix)->Arg(2)->Arg(4)->Arg(6);

void BM_Clustering(benchmark::State& state) {
  const Design d = sized_design(static_cast<std::uint32_t>(state.range(0)));
  const ConnectivityMatrix m(d);
  for (auto _ : state) {
    auto partitions = enumerate_base_partitions(d, m);
    benchmark::DoNotOptimize(partitions.size());
  }
}
BENCHMARK(BM_Clustering)->Arg(2)->Arg(4)->Arg(6);

void BM_CoveringAllCandidateSets(benchmark::State& state) {
  const Design d = sized_design(static_cast<std::uint32_t>(state.range(0)));
  const ConnectivityMatrix m(d);
  const auto partitions = enumerate_base_partitions(d, m);
  const auto order = covering_order(partitions);
  for (auto _ : state) {
    std::size_t sets = 0;
    for (std::size_t skip = 0; skip < order.size(); ++skip) {
      if (!cover(partitions, m, order, skip).complete) break;
      ++sets;
    }
    benchmark::DoNotOptimize(sets);
  }
}
BENCHMARK(BM_CoveringAllCandidateSets)->Arg(2)->Arg(4)->Arg(6);

void BM_Compatibility(benchmark::State& state) {
  const Design d = sized_design(static_cast<std::uint32_t>(state.range(0)));
  const ConnectivityMatrix m(d);
  const auto partitions = enumerate_base_partitions(d, m);
  for (auto _ : state) {
    CompatibilityTable compat(m, partitions);
    benchmark::DoNotOptimize(compat.size());
  }
}
BENCHMARK(BM_Compatibility)->Arg(2)->Arg(4)->Arg(6);

void BM_EvaluateScheme(benchmark::State& state) {
  const Design d = sized_design(static_cast<std::uint32_t>(state.range(0)));
  const ConnectivityMatrix m(d);
  const auto partitions = enumerate_base_partitions(d, m);
  const CompatibilityTable compat(m, partitions);
  const ResourceVec lower = d.largest_configuration_area() + d.static_base();
  const ResourceVec budget{lower.clbs + lower.clbs / 3, lower.brams + 8,
                           lower.dsps + 8};
  SearchOptions opt;
  opt.max_move_evaluations = 100'000;
  const SearchResult r =
      search_partitioning(d, m, partitions, compat, budget, opt);
  if (!r.feasible) {
    state.SkipWithError("search found no fitting scheme");
    return;
  }
  for (auto _ : state) {
    auto eval = evaluate_scheme(d, m, partitions, r.scheme, budget);
    benchmark::DoNotOptimize(eval.total_frames);
  }
}
BENCHMARK(BM_EvaluateScheme)->Arg(2)->Arg(4)->Arg(6);

/// Shared fixture state for the evaluation-kernel micro legs: one design,
/// a representative valid scheme (the search winner, or the modular scheme
/// when the tight budget admits none), and the once-per-design EvalContext.
struct KernelFixture {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
  ResourceVec budget;
  PartitionScheme scheme;
  EvalContext context;

  explicit KernelFixture(std::uint32_t modules)
      : design(sized_design(modules)),
        matrix(design),
        partitions(enumerate_base_partitions(design, matrix)),
        context(design, matrix, partitions) {
    const ResourceVec lower =
        design.largest_configuration_area() + design.static_base();
    budget = ResourceVec{lower.clbs + lower.clbs / 3, lower.brams + 8,
                         lower.dsps + 8};
    const CompatibilityTable compat(matrix, partitions);
    SearchOptions opt;
    opt.max_move_evaluations = 100'000;
    const SearchResult r =
        search_partitioning(design, matrix, partitions, compat, budget, opt);
    scheme = r.feasible ? r.scheme
                        : make_modular_scheme(design, matrix, partitions);
  }
};

void BM_EvaluateSchemeReference(benchmark::State& state) {
  const KernelFixture fx(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto eval = evaluate_scheme_reference(fx.design, fx.matrix, fx.partitions,
                                          fx.scheme, fx.budget);
    benchmark::DoNotOptimize(eval.total_frames);
  }
}
BENCHMARK(BM_EvaluateSchemeReference)->Arg(2)->Arg(4)->Arg(6);

// Cold kernel path: the context is shared, but scratch and output are
// constructed per evaluation, so every call re-sizes its buffers. The gap
// to the warm leg below is the price of allocation the scratch exists to
// remove.
void BM_EvaluateSchemeKernelCold(benchmark::State& state) {
  const KernelFixture fx(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    EvalScratch scratch;
    const SchemeEvaluation eval =
        fx.context.evaluate(fx.scheme, fx.budget, scratch);
    benchmark::DoNotOptimize(eval.total_frames);
  }
}
BENCHMARK(BM_EvaluateSchemeKernelCold)->Arg(2)->Arg(4)->Arg(6);

// Warm kernel path: scratch and output reused across calls, the steady
// state of the search and the serve workers. Asserts the §4d contract that
// it allocates nothing after the first evaluation has sized the buffers.
void BM_EvaluateSchemeKernelWarm(benchmark::State& state) {
  const KernelFixture fx(static_cast<std::uint32_t>(state.range(0)));
  EvalScratch scratch;
  SchemeEvaluation eval;
  fx.context.evaluate_into(fx.scheme, fx.budget, scratch, eval);  // size once
  std::uint64_t steady_allocations = 0;
  for (auto _ : state) {
    const std::uint64_t before =
        g_heap_allocations.load(std::memory_order_relaxed);
    fx.context.evaluate_into(fx.scheme, fx.budget, scratch, eval);
    steady_allocations +=
        g_heap_allocations.load(std::memory_order_relaxed) - before;
    benchmark::DoNotOptimize(eval.total_frames);
  }
  state.counters["allocs_per_eval"] = benchmark::Counter(
      static_cast<double>(steady_allocations), benchmark::Counter::kAvgIterations);
  if (steady_allocations != 0)
    state.SkipWithError("steady-state kernel evaluation hit the heap");
}
BENCHMARK(BM_EvaluateSchemeKernelWarm)->Arg(2)->Arg(4)->Arg(6);

void BM_FullSearch(benchmark::State& state) {
  const Design d = sized_design(static_cast<std::uint32_t>(state.range(0)));
  const ResourceVec lower = d.largest_configuration_area() + d.static_base();
  const ResourceVec budget{lower.clbs + lower.clbs / 3, lower.brams + 8,
                           lower.dsps + 8};
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 400'000;
  for (auto _ : state) {
    auto r = partition_design(d, budget, opt);
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_FullSearch)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_CaseStudyPartitioning(benchmark::State& state) {
  const Design d = synth::wireless_receiver_design();
  PartitionerOptions opt;
  opt.search.max_candidate_sets = 64;
  opt.search.max_move_evaluations = 4'000'000;
  for (auto _ : state) {
    auto r = partition_design(d, synth::wireless_receiver_budget(), opt);
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_CaseStudyPartitioning)->Unit(benchmark::kMillisecond);

}  // namespace
