// Ablation (paper's future work, end of §V): how much does the uniform-pair
// proxy (Eq. 10) disagree with a probability-weighted cost when transition
// statistics are known? For a set of synthetic designs we compare the
// scheme ranked best by the proxy against per-design random Markov
// environments, and report how often the proxy's winner stays the winner.
#include <iostream>

#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "reconfig/markov.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace prpart;

  const std::size_t designs = 40;
  const std::size_t chains_per_design = 8;
  std::cout << "=== Ablation: uniform-pair proxy (Eq. 10) vs probability-"
               "weighted cost ===\n";
  std::cout << designs << " synthetic designs x " << chains_per_design
            << " random Markov environments each\n\n";

  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const auto suite = generate_synthetic_suite(77, designs);
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 400'000;

  std::size_t proxy_winner_holds = 0, comparisons = 0;
  double max_rel_gap = 0.0;
  double sum_rel_gap = 0.0;

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const Design& d = suite[i].design;
    const DevicePartitionResult dp =
        partition_on_smallest_device(d, lib, opt);
    if (!dp.result.feasible) continue;
    const std::size_t n = d.configurations().size();
    if (n < 3) continue;

    const SchemeEvaluation& proposed = dp.result.proposed.eval;
    const SchemeEvaluation& modular = dp.result.modular.eval;
    const bool proxy_prefers_proposed =
        proposed.total_frames <= modular.total_frames;

    Rng rng(1000 + i);
    for (std::size_t k = 0; k < chains_per_design; ++k) {
      const MarkovChain env = MarkovChain::random(rng, n);
      const double wp = expected_frames_per_transition(proposed, n, env);
      const double wm = expected_frames_per_transition(modular, n, env);
      const bool weighted_prefers_proposed = wp <= wm;
      ++comparisons;
      if (proxy_prefers_proposed == weighted_prefers_proposed)
        ++proxy_winner_holds;

      const double up = expected_frames_per_transition(
          proposed, n, MarkovChain::uniform(n));
      if (up > 0) {
        const double gap = std::abs(wp - up) / up;
        sum_rel_gap += gap;
        max_rel_gap = std::max(max_rel_gap, gap);
      }
    }
  }

  std::cout << "proxy's preferred scheme also wins under the weighted model: "
            << proxy_winner_holds << "/" << comparisons << " = "
            << fixed(100.0 * static_cast<double>(proxy_winner_holds) /
                         static_cast<double>(comparisons),
                     1)
            << "%\n";
  std::cout << "weighted cost vs uniform proxy for the proposed scheme: mean "
               "relative gap "
            << fixed(100.0 * sum_rel_gap / static_cast<double>(comparisons), 1)
            << "%, max " << fixed(100.0 * max_rel_gap, 1) << "%\n";
  std::cout << "\nReading: the proxy is a good ranking signal when "
               "transition statistics are unknown (the adaptive-systems "
               "setting of the paper), but per-environment costs can deviate "
               "substantially -- the motivation for the paper's future "
               "work.\n";
  return 0;
}
