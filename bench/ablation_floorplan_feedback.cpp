// Ablation (paper's future work, §VI): feedback from the floorplanner into
// the partitioner. A scheme can fit by resource count yet be unplaceable as
// rectangles; the feedback loop tightens the partitioner's budget until the
// chosen scheme floorplans. We measure how often feedback is needed and
// what it costs in reconfiguration time.
#include <iostream>

#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "floorplan/floorplanner.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace prpart;

struct FeedbackOutcome {
  bool placed = false;
  std::size_t iterations = 0;
  std::uint64_t final_total_frames = 0;
  std::uint64_t first_total_frames = 0;
};

/// Partition -> floorplan; on floorplan failure shrink the budget by 10%
/// and retry (up to 6 iterations). This is the simplest closed loop the
/// paper's future work describes.
FeedbackOutcome partition_with_feedback(const Design& design,
                                        const Device& device,
                                        const PartitionerOptions& opt) {
  FeedbackOutcome out;
  ResourceVec budget = device.capacity();
  const Floorplanner fp(device);
  for (out.iterations = 1; out.iterations <= 6; ++out.iterations) {
    const PartitionerResult pr = partition_design(design, budget, opt);
    if (!pr.feasible) return out;
    if (out.iterations == 1)
      out.first_total_frames = pr.proposed.eval.total_frames;
    const FloorplanResult plan = fp.place_scheme(pr.proposed.eval);
    if (plan.success) {
      out.placed = true;
      out.final_total_frames = pr.proposed.eval.total_frames;
      return out;
    }
    budget = ResourceVec{budget.clbs - budget.clbs / 10,
                         budget.brams - budget.brams / 10,
                         budget.dsps - budget.dsps / 10};
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t designs = 60;
  std::cout << "=== Ablation: floorplan feasibility feedback (paper future "
               "work) ===\n";
  std::cout << designs << " synthetic designs, each partitioned on its "
               "smallest workable device, then floorplanned\n\n";

  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const auto suite = generate_synthetic_suite(555, designs);
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 400'000;

  std::size_t first_try = 0, needed_feedback = 0, unplaced = 0;
  double total_cost_increase = 0.0;
  std::size_t cost_samples = 0;

  for (const SyntheticDesign& s : suite) {
    const DevicePartitionResult dp =
        partition_on_smallest_device(s.design, lib, opt);
    if (!dp.result.feasible) continue;
    const FeedbackOutcome out =
        partition_with_feedback(s.design, *dp.device, opt);
    if (!out.placed) {
      ++unplaced;
      continue;
    }
    if (out.iterations == 1) {
      ++first_try;
    } else {
      ++needed_feedback;
      if (out.first_total_frames > 0) {
        total_cost_increase +=
            100.0 *
            (static_cast<double>(out.final_total_frames) -
             static_cast<double>(out.first_total_frames)) /
            static_cast<double>(out.first_total_frames);
        ++cost_samples;
      }
    }
  }

  TextTable t({"Outcome", "Designs"});
  t.add_row({"floorplanned on first try", std::to_string(first_try)});
  t.add_row({"needed budget feedback", std::to_string(needed_feedback)});
  t.add_row({"unplaceable within 6 iterations", std::to_string(unplaced)});
  std::cout << t.render();
  if (cost_samples > 0)
    std::cout << "mean reconfiguration-time increase when feedback fired: "
              << prpart::fixed(total_cost_increase /
                                   static_cast<double>(cost_samples),
                               1)
              << "%\n";
  std::cout << "\nReading: resource-count feasibility (the partitioner's "
               "check) is usually but not always sufficient; the feedback "
               "loop closes the gap the paper describes in §VI.\n";
  return 0;
}
