#include "bench/sweep_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "util/parallel_for.hpp"
#include "util/strings.hpp"

namespace prpart::bench {

std::size_t sweep_design_count(std::size_t fallback) {
  if (const char* env = std::getenv("PRPART_DESIGNS"))
    return static_cast<std::size_t>(parse_u64(env));
  return fallback;
}

SweepResult run_sweep(std::uint64_t seed, std::size_t count) {
  const auto started = std::chrono::steady_clock::now();
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const auto suite = generate_synthetic_suite(seed, count);

  PartitionerOptions opt;
  // Sweep effort: enough for designs of 2-6 modules; the case-study benches
  // use deeper settings.
  opt.search.max_candidate_sets = 24;
  opt.search.max_move_evaluations = 400'000;

  SweepResult result;
  result.rows.resize(suite.size());
  // One design per slot: results are deterministic regardless of the
  // worker count ($PRPART_THREADS, default = hardware concurrency).
  parallel_for(suite.size(), default_thread_count(), [&](std::size_t i) {
    const DevicePartitionResult dp =
        partition_on_smallest_device(suite[i].design, lib, opt);
    const PartitionerResult& pr = dp.result;

    SweepRow row;
    row.index = i;
    row.circuit_class = suite[i].circuit_class;
    row.device = dp.device->name();
    row.device_index = dp.chosen_index;
    row.escalated = dp.escalated;
    row.proposed_total = pr.proposed.eval.total_frames;
    row.proposed_worst = pr.proposed.eval.worst_frames;
    row.modular_total = pr.modular.eval.total_frames;
    row.modular_worst = pr.modular.eval.worst_frames;
    row.single_total = pr.single_region.eval.total_frames;
    row.single_worst = pr.single_region.eval.worst_frames;
    row.modular_fits = pr.modular.eval.fits;
    row.search_units = pr.stats.units;
    row.search_units_pruned = pr.stats.units_pruned;
    row.search_move_evaluations = pr.stats.move_evaluations;
    row.search_states_recorded = pr.stats.states_recorded;

    row.modular_min_device = static_cast<std::size_t>(-1);
    for (std::size_t d = 0; d < lib.devices().size(); ++d) {
      if (pr.modular.eval.total_resources.fits_in(
              lib.devices()[d].capacity())) {
        row.modular_min_device = d;
        break;
      }
    }
    result.rows[i] = row;
  });
  for (const SweepRow& row : result.rows) {
    if (row.modular_min_device == static_cast<std::size_t>(-1) ||
        row.device_index < row.modular_min_device)
      ++result.smaller_than_modular;
    if (row.escalated) ++result.escalated;
  }
  result.designs = result.rows.size();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return result;
}

std::vector<const SweepRow*> sorted_by_device(const SweepResult& result) {
  std::vector<const SweepRow*> rows;
  rows.reserve(result.rows.size());
  for (const SweepRow& r : result.rows) rows.push_back(&r);
  std::stable_sort(rows.begin(), rows.end(),
                   [](const SweepRow* a, const SweepRow* b) {
                     if (a->device_index != b->device_index)
                       return a->device_index < b->device_index;
                     return a->index < b->index;
                   });
  return rows;
}

}  // namespace prpart::bench
