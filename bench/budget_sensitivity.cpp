// Ablation: the area <-> reconfiguration-time trade-off at the heart of the
// paper (§IV-A's worked example generalised). Sweeping the CLB budget for
// the case study shows the proposed algorithm exploiting every extra tile:
// total reconfiguration time falls monotonically from the single-region
// bound towards the static implementation's zero as the budget grows.
#include <iostream>

#include "core/partitioner.hpp"
#include "synth/ip_library.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace prpart;

  const Design design = synth::wireless_receiver_design();
  PartitionerOptions opt;
  opt.search.max_candidate_sets = 64;
  opt.search.max_move_evaluations = 2'000'000;

  std::cout << "=== Budget sensitivity: total reconfiguration time vs CLB "
               "budget (case study, BRAM 64 / DSP 150 fixed) ===\n\n";
  TextTable t({"CLB budget", "Feasible", "From search", "Total recon "
               "(frames)", "Worst (frames)", "Static modes", "Regions"});
  std::uint64_t previous = ~std::uint64_t{0};
  bool monotone = true;
  for (std::uint32_t clbs = 6200; clbs <= 16400; clbs += 600) {
    const PartitionerResult r =
        partition_design(design, {clbs, 64, 150}, opt);
    if (!r.feasible) {
      t.add_row({std::to_string(clbs), "no", "-", "-", "-", "-", "-"});
      continue;
    }
    t.add_row({std::to_string(clbs), "yes",
               r.proposed_from_search ? "yes" : "fallback",
               with_commas(r.proposed.eval.total_frames),
               with_commas(r.proposed.eval.worst_frames),
               std::to_string(r.proposed.scheme.static_members.size()),
               std::to_string(r.proposed.scheme.regions.size())});
    if (r.proposed.eval.total_frames > previous) monotone = false;
    previous = r.proposed.eval.total_frames;
  }
  std::cout << t.render();
  std::cout << "\nTotal time decreases monotonically with budget: "
            << (monotone ? "yes" : "NO (heuristic wobble)") << "\n";

  // With the BRAM cap lifted too, the curve continues to the full-static
  // endpoint (zero reconfiguration time).
  const PartitionerResult unbounded =
      partition_design(design, {16400, 96, 256}, opt);
  if (unbounded.feasible)
    std::cout << "With BRAM/DSP caps lifted (16400/96/256): "
              << with_commas(unbounded.proposed.eval.total_frames)
              << " frames\n";

  std::cout << "Reading: this is the paper's central design point -- "
               "\"make full use of the available resources, since trying to "
               "minimise area would ... likely impact reconfiguration time "
               "significantly\" (§IV-A). The curve plateaus when a "
               "secondary resource (here BRAM) becomes the binding "
               "constraint, and reaches zero once everything fits "
               "statically.\n";
  return 0;
}
