// Serve-path scale bench: the epoll reactor against the legacy
// thread-per-connection layer at equal worker counts, under pipelined
// newline-JSON clients. Three warm legs (64/256/1024 concurrent
// connections, every partition a result-store hit) measure the I/O layer
// itself; the cold leg runs unique designs through the full search; the
// closed-loop leg measures round-trip latency. The headline ratio —
// designs/sec at 1024 pipelined connections, reactor over threads — is
// gated with a hard floor in tools/check_bench.py (serve_speedup_1024).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "design/io_xml.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "synth/ip_library.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace prpart::server {
namespace {

constexpr unsigned kWorkers = 2;
constexpr unsigned kIoWorkers = 2;
constexpr std::size_t kPerConn = 8;      ///< pipelined requests per conn
constexpr std::uint64_t kWarmEvals = 60'000;
constexpr std::uint64_t kColdEvals = 10'000;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Design small_design() {
  std::vector<Module> modules = {
      {"Filter", {{"LowPass", {120, 4, 2}}, {"HighPass", {150, 2, 6}}}},
      {"Codec", {{"Fast", {80, 8, 0}}, {"Dense", {60, 12, 1}}}},
  };
  std::vector<Configuration> configs = {
      {"Receive", {1, 2}},
      {"Transmit", {2, 1}},
  };
  return Design("radio", {40, 1, 0}, std::move(modules), std::move(configs));
}

/// The warm workload: the paper's wireless-receiver case study, whose XML
/// is large enough that a served request is parse-bound — exactly the cost
/// the reactor's request-line cache elides on repeat submissions.
std::string warm_line(const std::string& id) {
  PartitionRequest req;
  req.id = id;
  req.design_xml = design_to_xml(synth::wireless_receiver_design());
  req.budget = ResourceVec{6800, 64, 150};
  req.options = default_partitioner_options();
  req.options.search.max_move_evaluations = kWarmEvals;
  return partition_request_json(req).dump() + "\n";
}

std::string cold_line(const std::string& id, std::uint64_t evals) {
  PartitionRequest req;
  req.id = id;
  req.design_xml = design_to_xml(small_design());
  req.budget = ResourceVec{4000, 60, 60};
  req.options = default_partitioner_options();
  req.options.search.max_move_evaluations = evals;
  return partition_request_json(req).dump() + "\n";
}

ServerOptions bench_options(bool legacy) {
  ServerOptions opt;
  opt.port = 0;
  opt.workers = kWorkers;
  opt.io_workers = kIoWorkers;
  opt.max_queue = 4096;  // the cold leg pipelines every search up front
  opt.legacy_io = legacy;
  return opt;
}

struct Leg {
  std::size_t requests = 0;
  double wall_seconds = 0.0;
  double designs_per_second = 0.0;
};

/// Opens `conns` connections, pipelines `bursts[i]` on each before reading
/// anything, then drains `finals_per_conn` final responses per connection.
/// Wall clock covers first write to last response.
Leg pipelined_leg(std::uint16_t port, std::size_t conns,
                  const std::vector<std::string>& bursts,
                  std::size_t finals_per_conn) {
  std::vector<TcpStream> sockets;
  sockets.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i)
    sockets.push_back(TcpStream::connect("127.0.0.1", port));
  const double started = now_s();
  for (std::size_t i = 0; i < conns; ++i) sockets[i].write_all(bursts[i]);
  for (std::size_t i = 0; i < conns; ++i) {
    std::size_t finals = 0;
    while (finals < finals_per_conn) {
      const std::optional<std::string> line = sockets[i].read_line();
      if (!line) {
        std::fprintf(stderr, "conn %zu closed early\n", i);
        std::exit(1);
      }
      // Interim `queued` notices carry no `ok` key; skip them.
      if (line->find("\"ok\":") == std::string::npos) continue;
      ++finals;
    }
  }
  Leg leg;
  leg.requests = conns * finals_per_conn;
  leg.wall_seconds = now_s() - started;
  leg.designs_per_second =
      leg.wall_seconds > 0.0
          ? static_cast<double>(leg.requests) / leg.wall_seconds
          : 0.0;
  return leg;
}

/// The warm leg: every connection pipelines kPerConn repeats of the warmed
/// design under fresh ids, so the server answers each from the store.
Leg warm_leg(std::uint16_t port, std::size_t conns, const char* mode) {
  std::vector<std::string> bursts;
  bursts.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    std::string burst;
    for (std::size_t j = 0; j < kPerConn; ++j)
      burst += warm_line("w-" + std::string(mode) + "-" +
                         std::to_string(i) + "-" + std::to_string(j));
    bursts.push_back(std::move(burst));
  }
  return pipelined_leg(port, conns, bursts, kPerConn);
}

/// Closed-loop latency: `conns` client threads, each doing `rounds` serial
/// warm round trips; returns all per-request latencies in seconds.
std::vector<double> latency_leg(std::uint16_t port, std::size_t conns,
                                std::size_t rounds, const char* mode) {
  std::vector<double> all;
  std::mutex merge;
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i)
    threads.emplace_back([&, i] {
      TcpStream stream = TcpStream::connect("127.0.0.1", port);
      std::vector<double> mine;
      mine.reserve(rounds);
      for (std::size_t r = 0; r < rounds; ++r) {
        const std::string line =
            warm_line("l-" + std::string(mode) + "-" + std::to_string(i) +
                      "-" + std::to_string(r));
        const double t0 = now_s();
        stream.write_all(line);
        while (true) {
          const std::optional<std::string> reply = stream.read_line();
          if (!reply) std::exit(1);
          if (reply->find("\"ok\":") != std::string::npos) break;
        }
        mine.push_back(now_s() - t0);
      }
      const std::lock_guard<std::mutex> lock(merge);
      all.insert(all.end(), mine.begin(), mine.end());
    });
  for (std::thread& t : threads) t.join();
  std::sort(all.begin(), all.end());
  return all;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

json::Value leg_json(const Leg& leg) {
  json::Value v = json::Value::object();
  v.set("requests", json::Value(std::uint64_t(leg.requests)));
  v.set("wall_seconds", json::Value(leg.wall_seconds));
  v.set("designs_per_second", json::Value(leg.designs_per_second));
  return v;
}

/// All legs against one server mode. `speedup_base` receives the 1024-conn
/// warm throughput for the headline ratio.
json::Value run_mode(bool legacy, double* warm_1024_dps) {
  const char* mode = legacy ? "threads" : "epoll";
  Server server(bench_options(legacy));
  server.start();

  // Warm the result store once; the line is a miss, everything after hits.
  {
    TcpStream stream = TcpStream::connect("127.0.0.1", server.port());
    stream.write_all(warm_line("warmup"));
    while (true) {
      const std::optional<std::string> line = stream.read_line();
      if (!line) std::exit(1);
      if (line->find("\"ok\":") != std::string::npos) break;
    }
  }

  json::Value v = json::Value::object();
  for (const std::size_t conns : {std::size_t{64}, std::size_t{256},
                                  std::size_t{1024}}) {
    const Leg leg = warm_leg(server.port(), conns, mode);
    std::printf("%-8s warm c%-5zu %6zu requests  %7.3f s  %9.0f designs/s\n",
                mode, conns, leg.requests, leg.wall_seconds,
                leg.designs_per_second);
    v.set("warm_c" + std::to_string(conns), leg_json(leg));
    if (conns == 1024) *warm_1024_dps = leg.designs_per_second;
  }

  // Cold leg: 64 pipelined searches over unique jobs (the evals knob is
  // part of the cache key), one per connection.
  {
    std::vector<std::string> bursts;
    for (std::size_t i = 0; i < 64; ++i)
      bursts.push_back(cold_line(
          "c-" + std::string(mode) + "-" + std::to_string(i),
          kColdEvals + i));
    const Leg leg = pipelined_leg(server.port(), 64, bursts, 1);
    std::printf("%-8s cold c64    %6zu requests  %7.3f s  %9.0f designs/s\n",
                mode, leg.requests, leg.wall_seconds, leg.designs_per_second);
    v.set("cold_c64", leg_json(leg));
  }

  // Closed-loop latency at 64 connections, 4 warm rounds each.
  {
    const std::vector<double> lat = latency_leg(server.port(), 64, 4, mode);
    const double p50 = percentile(lat, 0.50);
    const double p99 = percentile(lat, 0.99);
    std::printf("%-8s latency c64 p50 %.0f us, p99 %.0f us\n", mode,
                p50 * 1e6, p99 * 1e6);
    v.set("p50_latency_seconds", json::Value(p50));
    v.set("p99_latency_seconds", json::Value(p99));
  }

  server.stop();
  return v;
}

}  // namespace
}  // namespace prpart::server

int main() {
  using namespace prpart;
  using namespace prpart::server;

  std::printf("=== Serve-path scale: epoll reactor vs thread-per-connection "
              "(workers=%u) ===\n",
              kWorkers);
  double epoll_1024 = 0.0;
  double threads_1024 = 0.0;
  json::Value doc = json::Value::object();
  doc.set("workers", json::Value(std::uint64_t(kWorkers)));
  doc.set("io_workers", json::Value(std::uint64_t(kIoWorkers)));
  doc.set("requests_per_conn", json::Value(std::uint64_t(kPerConn)));
  doc.set("epoll", run_mode(/*legacy=*/false, &epoll_1024));
  doc.set("threads", run_mode(/*legacy=*/true, &threads_1024));

  const double speedup = threads_1024 > 0.0 ? epoll_1024 / threads_1024 : 0.0;
  doc.set("serve_speedup_1024", json::Value(speedup));
  std::printf("\nserve_speedup_1024 (epoll/threads, warm, 1024 conns): "
              "%.2fx (floor 5.0)\n",
              speedup);

  std::ofstream bench_json("BENCH_serve.json");
  bench_json << doc.dump() << "\n";
  std::printf("wrote BENCH_serve.json\n");
  return speedup >= 5.0 ? 0 : 1;
}
