// Ablation: configuration prefetching (related work [4]) on top of the
// proposed partitioning. While the system sits in a configuration, idle
// regions are speculatively loaded for the Markov-predicted successor;
// correct predictions remove those loads from the transition's critical
// path. We measure stall reduction across synthetic designs and predictor
// skews.
#include <iostream>

#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "reconfig/controller.hpp"
#include "reconfig/prefetch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace prpart;

/// A skewed environment: from each state one successor carries probability
/// `hot`, the rest share the remainder. Higher `hot` = more predictable.
MarkovChain skewed_chain(Rng& rng, std::size_t n, double hot) {
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t favourite = (i + 1 + rng.below(n - 1)) % n;
    if (favourite == i) favourite = (i + 1) % n;
    const double rest = (1.0 - hot) / static_cast<double>(n - 1);
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) p[i][j] = rest;
    p[i][favourite] = hot;
    // Renormalise exactly (one `rest` slot was replaced by `hot`).
    double sum = 0;
    for (double v : p[i]) sum += v;
    for (double& v : p[i]) v /= sum;
  }
  return MarkovChain(std::move(p));
}

}  // namespace

int main() {
  const std::size_t designs = 30;
  const int steps = 2000;
  std::cout << "=== Ablation: configuration prefetching ===\n";
  std::cout << designs << " synthetic designs x " << steps
            << " environment-driven transitions, predictor = the true "
               "environment chain\n\n";

  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const auto suite = generate_synthetic_suite(909, designs);
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 400'000;

  TextTable t({"Predictability", "Designs", "Mean stall reduction",
               "Prefetch accuracy"});
  for (const double hot : {0.4, 0.7, 0.95}) {
    double sum_reduction = 0.0;
    double sum_accuracy = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      const Design& d = suite[i].design;
      const std::size_t n = d.configurations().size();
      if (n < 3) continue;
      const DevicePartitionResult dp =
          partition_on_smallest_device(d, lib, opt);
      if (!dp.result.feasible) continue;

      Rng chain_rng(3000 + i);
      const MarkovChain env = skewed_chain(chain_rng, n, hot);
      PrefetchingController pre(d, dp.result.proposed.scheme,
                                dp.result.proposed.eval, env);
      ReconfigurationController plain(d, dp.result.proposed.scheme,
                                      dp.result.proposed.eval);
      Rng walk_rng(4000 + i);
      pre.boot(0);
      plain.boot(0);
      std::size_t state = 0;
      for (int s = 0; s < steps; ++s) {
        state = env.sample_next(walk_rng, state);
        pre.transition(state);
        plain.transition(state);
      }
      if (plain.stats().total_frames == 0) continue;
      ++counted;
      sum_reduction +=
          100.0 *
          (static_cast<double>(plain.stats().total_frames) -
           static_cast<double>(pre.stats().stall_frames)) /
          static_cast<double>(plain.stats().total_frames);
      const std::uint64_t attempts = pre.stats().useful_prefetches +
                                     pre.stats().wasted_prefetches;
      if (attempts > 0)
        sum_accuracy += 100.0 *
                        static_cast<double>(pre.stats().useful_prefetches) /
                        static_cast<double>(attempts);
    }
    const double denom = counted ? static_cast<double>(counted) : 1.0;
    t.add_row({fixed(hot, 2), std::to_string(counted),
               fixed(sum_reduction / denom, 1) + "%",
               fixed(sum_accuracy / denom, 1) + "%"});
  }
  std::cout << t.render();
  std::cout << "\nReading: prefetching rides on the partitioner's output -- "
               "the more predictable the environment, the more of the "
               "remaining reconfiguration time it hides; with near-uniform "
               "environments it approaches a no-op, never a loss.\n";
  return 0;
}
