// Reproduces Fig. 9: histograms of the percentage change of the proposed
// algorithm's reconfiguration time against the two baseline schemes, on the
// same synthetic suite as Figs. 7-8:
//   (a) total  vs one-module-per-region   (b) total  vs single-region
//   (c) worst  vs one-module-per-region   (d) worst  vs single-region
#include <iostream>

#include "bench/sweep_common.hpp"
#include "util/histogram.hpp"
#include "util/strings.hpp"

int main() {
  using namespace prpart;
  using namespace prpart::bench;

  const std::size_t count = sweep_design_count();
  std::cout << "=== Fig. 9: percentage-improvement histograms over " << count
            << " designs (paper: 1000; set PRPART_DESIGNS to override) ===\n\n";
  const SweepResult sweep = run_sweep(2013, count);

  // Buckets match the paper's axis: -10% to 100% in 10% steps.
  Histogram a(-10, 100, 11), b(-10, 100, 11), c(-10, 100, 11),
      d(-10, 100, 11);
  auto change = [](std::uint64_t baseline, std::uint64_t proposed) {
    if (baseline == 0) return 0.0;
    return 100.0 *
           (static_cast<double>(baseline) - static_cast<double>(proposed)) /
           static_cast<double>(baseline);
  };
  for (const SweepRow& r : sweep.rows) {
    a.add(change(r.modular_total, r.proposed_total));
    b.add(change(r.single_total, r.proposed_total));
    c.add(change(r.modular_worst, r.proposed_worst));
    d.add(change(r.single_worst, r.proposed_worst));
  }

  std::cout << a.render(
      "(a) total reconfiguration time vs one module per region");
  std::cout << "\n" << b.render("(b) total reconfiguration time vs single region");
  std::cout << "\n"
            << c.render("(c) worst reconfiguration time vs one module per region");
  std::cout << "\n" << d.render("(d) worst reconfiguration time vs single region");

  std::cout << "\nFractions improved (paper values in parentheses):\n";
  std::cout << "  (a) > 0%: " << fixed(100 * a.fraction_above(0), 1)
            << "% (73%)\n";
  std::cout << "  (b) > 0%: " << fixed(100 * b.fraction_above(0), 1)
            << "% (100%)\n";
  std::cout << "  (c) > 0%: " << fixed(100 * c.fraction_above(0), 1)
            << "% (70%)\n";
  std::cout << "  (d) >= 0%: " << fixed(100 * d.fraction_above(-1e-9), 1)
            << "% (87.5%)\n";
  return 0;
}
