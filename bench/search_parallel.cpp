// Speedup and cache effectiveness of the parallel region-allocation search
// over the Fig. 7 synthetic design set. For every thread count the same
// designs run through search_partitioning; the bench reports wall-clock,
// speedup versus threads=1, the cost-cache hit rate, and — the contract the
// speedup is not allowed to buy — whether every scheme is byte-identical
// (result_io serialisation) to the threads=1 reference. Exits non-zero on
// any mismatch.
//
// A second leg measures the branch-and-bound machinery itself: the default
// configuration (lower-bound pruning + move table) against the exhaustive
// PR 1 search (both disabled) at threads=1, where every counter is exact.
//
// A third leg times the word-parallel evaluation kernel (DESIGN.md §4d)
// against the scalar reference evaluator, separately over the Fig. 7
// designs and over a serve-scale suite of 16-24-module designs, verifying
// identical totals; PRPART_EVAL_REPS scales the repetition count. On the
// serve-scale suite it additionally times the forced-scalar tier (the
// word-loop kernel before SIMD dispatch, DESIGN.md §4e) and the batched
// entry point on the active tier, so BENCH_search.json carries both the
// reference-vs-kernel speedup and the scalar-vs-SIMD+batch speedup. The
// counters and ratios of all legs land in BENCH_search.json for the CI
// regression gate (tools/check_bench.py against the committed baseline;
// hard floors on the serve-scale kernel and batch speedups).
//
//   PRPART_DESIGNS=100 PRPART_EVAL_REPS=60 ./bench_search_parallel
//
// Numbers depend on hardware parallelism: on a single-core host the >1
// thread rows only demonstrate identity, not speedup.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/sweep_common.hpp"
#include "core/clustering.hpp"
#include "core/compatibility.hpp"
#include "core/eval_kernel.hpp"
#include "core/result_io.hpp"
#include "core/schemes.hpp"
#include "core/search.hpp"
#include "design/synthetic.hpp"
#include "device/device.hpp"
#include "util/json.hpp"
#include "util/simd.hpp"

namespace prpart::bench {
namespace {

struct PreparedDesign {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
  CompatibilityTable compat;
  ResourceVec budget;

  // `max_modes` caps the clique enumeration exactly like the partitioner's
  // max_partition_modes option; the serve-scale evaluation designs need it
  // because co-occurring subsets grow as 2^(configuration width).
  explicit PreparedDesign(Design d, const DeviceLibrary& lib,
                          std::size_t max_modes = 0)
      : design(std::move(d)),
        matrix(design),
        partitions(enumerate_base_partitions(design, matrix, max_modes)),
        compat(matrix, partitions) {
    // The budget the Fig. 7/8 sweep actually searches first: the smallest
    // library device covering the resource lower bound. Tight by
    // construction, so the bound and the sterile-completion proofs are
    // exercised the way the sweep exercises them.
    const ResourceVec lower =
        design.largest_configuration_area() + design.static_base();
    if (const Device* dev = lib.smallest_fitting(lower)) {
      budget = dev->capacity();
    } else {
      budget = ResourceVec{lower.clbs + lower.clbs / 3 + 200,
                           lower.brams + lower.brams / 3 + 8,
                           lower.dsps + lower.dsps / 3 + 8};
    }
  }
};

struct RunOutcome {
  double seconds = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t move_evaluations = 0;
  std::uint64_t full_evaluations = 0;
  std::uint64_t moves_rescored = 0;
  std::uint64_t states_recorded = 0;
  std::uint64_t units = 0;
  std::uint64_t units_pruned = 0;
  std::vector<std::string> schemes;  ///< archived XML per design
  /// Winning schemes of feasible designs, kept structurally for the
  /// evaluation-kernel leg (reference vs kernel timing on real winners).
  std::vector<PartitionScheme> winners;
  std::vector<std::size_t> winner_design;  ///< index into `designs`
};

RunOutcome run_all(std::vector<PreparedDesign>& designs, unsigned threads,
                   bool use_bounding, bool use_move_table) {
  SearchOptions opt;
  opt.max_candidate_sets = 24;       // the Fig. 7 sweep's effort settings
  opt.max_move_evaluations = 400'000;
  opt.threads = threads;
  opt.use_bounding = use_bounding;
  opt.use_move_table = use_move_table;

  RunOutcome out;
  out.schemes.reserve(designs.size());
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t d = 0; d < designs.size(); ++d) {
    PreparedDesign& p = designs[d];
    const SearchResult r = search_partitioning(p.design, p.matrix,
                                               p.partitions, p.compat,
                                               p.budget, opt);
    out.cache_hits += r.stats.cache_hits;
    out.cache_misses += r.stats.cache_misses;
    out.move_evaluations += r.stats.move_evaluations;
    out.full_evaluations += r.stats.full_evaluations;
    out.moves_rescored += r.stats.moves_rescored;
    out.states_recorded += r.stats.states_recorded;
    out.units += r.stats.units;
    out.units_pruned += r.stats.units_pruned;
    out.schemes.push_back(
        r.feasible ? partitioning_to_xml(p.design, p.partitions, r.scheme,
                                         r.eval)
                   : std::string("infeasible"));
    if (r.feasible) {
      out.winners.push_back(r.scheme);
      out.winner_design.push_back(d);
    }
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return out;
}

json::Value counters_json(const RunOutcome& r) {
  json::Value v = json::Value::object();
  v.set("wall_seconds", json::Value(r.seconds));
  v.set("move_evaluations", json::Value(r.move_evaluations));
  v.set("full_evaluations", json::Value(r.full_evaluations));
  v.set("moves_rescored", json::Value(r.moves_rescored));
  v.set("states_recorded", json::Value(r.states_recorded));
  v.set("units", json::Value(r.units));
  v.set("units_pruned", json::Value(r.units_pruned));
  return v;
}

int main_impl() {
  const std::size_t count = sweep_design_count(1000);
  const auto suite = generate_synthetic_suite(2013, count);

  const DeviceLibrary lib = DeviceLibrary::virtex5();
  std::vector<PreparedDesign> designs;
  designs.reserve(suite.size());
  for (const SyntheticDesign& s : suite) designs.emplace_back(s.design, lib);

  std::printf("parallel search over the Fig. 7 design set (%zu designs, "
              "seed 2013)\n\n",
              designs.size());
  std::printf("%8s %10s %9s %10s %10s\n", "threads", "seconds", "speedup",
              "hit-rate", "identical");

  const RunOutcome reference = run_all(designs, 1, true, true);
  bool all_identical = true;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const RunOutcome r =
        threads == 1 ? reference : run_all(designs, threads, true, true);
    const std::uint64_t probes = r.cache_hits + r.cache_misses;
    const double hit_rate =
        probes == 0 ? 0.0
                    : static_cast<double>(r.cache_hits) /
                          static_cast<double>(probes);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < designs.size(); ++i)
      if (r.schemes[i] != reference.schemes[i]) ++mismatches;
    all_identical = all_identical && mismatches == 0;
    std::printf("%8u %10.3f %8.2fx %9.1f%% %10s\n", threads, r.seconds,
                reference.seconds / r.seconds, 100.0 * hit_rate,
                mismatches == 0
                    ? "yes"
                    : ("NO (" + std::to_string(mismatches) + ")").c_str());
  }

  if (!all_identical) {
    std::printf("\nFAIL: parallel schemes diverged from the threads=1 "
                "reference\n");
    return 1;
  }
  std::printf("\nall schemes byte-identical to threads=1\n");

  // Branch-and-bound leg: defaults (bounding + move table) vs the
  // exhaustive PR 1 search, both at threads=1 so full_evaluations and
  // moves_rescored are exact rather than scheduling-dependent.
  std::printf("\nbranch-and-bound vs exhaustive search (threads=1)\n\n");
  const RunOutcome exhaustive = run_all(designs, 1, false, false);
  std::size_t bnb_mismatches = 0;
  for (std::size_t i = 0; i < designs.size(); ++i)
    if (exhaustive.schemes[i] != reference.schemes[i]) ++bnb_mismatches;
  const auto ratio = [](double base, double ours) {
    return ours == 0.0 ? 0.0 : base / ours;
  };
  const double speedup = ratio(exhaustive.seconds, reference.seconds);
  const double reduction = ratio(static_cast<double>(exhaustive.full_evaluations),
                                 static_cast<double>(reference.full_evaluations));
  std::printf("%12s %10s %12s %12s %10s %8s\n", "mode", "seconds",
              "move-evals", "full-evals", "rescored", "pruned");
  std::printf("%12s %10.3f %12llu %12llu %10llu %8llu\n", "exhaustive",
              exhaustive.seconds,
              static_cast<unsigned long long>(exhaustive.move_evaluations),
              static_cast<unsigned long long>(exhaustive.full_evaluations),
              static_cast<unsigned long long>(exhaustive.moves_rescored),
              static_cast<unsigned long long>(exhaustive.units_pruned));
  std::printf("%12s %10.3f %12llu %12llu %10llu %8llu\n", "bounded",
              reference.seconds,
              static_cast<unsigned long long>(reference.move_evaluations),
              static_cast<unsigned long long>(reference.full_evaluations),
              static_cast<unsigned long long>(reference.moves_rescored),
              static_cast<unsigned long long>(reference.units_pruned));
  std::printf("\nwall-clock speedup: %.2fx   full-evaluation reduction: "
              "%.2fx   schemes identical: %s\n",
              speedup, reduction,
              bnb_mismatches == 0
                  ? "yes"
                  : ("NO (" + std::to_string(bnb_mismatches) + ")").c_str());
  if (bnb_mismatches != 0) {
    // Bounding may legitimately change results only when the evaluation
    // budget was exhausted mid-search; the Fig. 7 settings never hit it.
    std::printf("\nFAIL: bounded schemes diverged from the exhaustive "
                "search\n");
    return 1;
  }

  // Evaluation-kernel leg: the scalar reference evaluator vs the
  // word-parallel EvalContext kernel over the search winners plus the
  // modular/static baselines of every design — the evaluate_scheme
  // population the partitioner actually runs. Contexts are built once per
  // design and the scratch is reused, matching steady-state search use.
  std::printf("\nscheme evaluation: scalar reference vs word-parallel "
              "kernel\n\n");

  // The Fig. 7 designs are deliberately small (2-6 modules); evaluation on
  // them is near-trivial for both implementations and mostly measures the
  // shared bookkeeping. The kernel's word-level parallelism and signature
  // collapse pay off on the larger adaptive systems `prpart serve` targets,
  // so the leg also times a serve-scale suite (16-24 modules, 4-6 modes
  // each: around a hundred modes and dozens of configurations per design,
  // i.e. multi-word bitset rows). The two populations are timed separately;
  // tools/check_bench.py enforces kernel_wall_speedup >= 1.5 on the
  // serve-scale leg, where the kernel is the enabling optimisation.
  SyntheticOptions big;
  big.min_modules = 16;
  big.max_modules = 24;
  big.min_modes = 4;
  big.max_modes = 6;
  big.max_clbs = 400;
  // Deeply adaptive operating space: hundreds of configurations over the
  // same modules (min_configurations pads past the paper's stop-at-full-
  // coverage rule). This is the dimension serve workloads grow in, and the
  // one the SIMD tiers vectorise over — at the bare coverage minimum
  // (~20-40 configs) the packed rows fit one word and every tier degrades
  // to the same scalar loop.
  big.min_configurations = 192;
  const std::size_t small_count = designs.size();
  for (const SyntheticDesign& s :
       generate_synthetic_suite(77, std::max<std::size_t>(small_count / 25, 8),
                                big))
    designs.emplace_back(s.design, lib, /*max_modes=*/2);

  std::vector<std::unique_ptr<EvalContext>> contexts;
  contexts.reserve(designs.size());
  for (PreparedDesign& p : designs)
    contexts.push_back(
        std::make_unique<EvalContext>(p.design, p.matrix, p.partitions));

  // Greedy first-fit grouping of the modular scheme's members into regions
  // with pairwise disjoint activity: a deterministic, always-valid stand-in
  // for the merged multi-member regions the search produces, so the Eq. 11
  // pair pass runs on every design (modular regions have one member each
  // and skip it).
  const auto first_fit_pack = [](const EvalContext& ctx,
                                 const PartitionScheme& modular) {
    PartitionScheme out;
    std::vector<DynBitset> occ;
    for (const Region& region : modular.regions)
      for (std::size_t p : region.members) {
        bool placed = false;
        for (std::size_t g = 0; g < out.regions.size() && !placed; ++g) {
          if (occ[g].intersects(ctx.activity(p))) continue;
          out.regions[g].members.push_back(p);
          occ[g] |= ctx.activity(p);
          placed = true;
        }
        if (!placed) {
          out.regions.push_back(Region{{p}});
          occ.push_back(ctx.activity(p));
        }
      }
    out.static_members = modular.static_members;
    return out;
  };

  struct EvalJob {
    std::size_t design = 0;
    PartitionScheme scheme;
  };
  std::vector<EvalJob> fig7_jobs, serve_jobs;
  for (std::size_t d = 0; d < designs.size(); ++d) {
    PreparedDesign& p = designs[d];
    std::vector<EvalJob>& jobs = d < small_count ? fig7_jobs : serve_jobs;
    PartitionScheme modular =
        make_modular_scheme(p.design, p.matrix, p.partitions);
    jobs.push_back({d, first_fit_pack(*contexts[d], modular)});
    jobs.push_back({d, std::move(modular)});
    jobs.push_back({d, make_static_scheme(p.design, p.matrix, p.partitions)});
  }
  for (std::size_t w = 0; w < reference.winners.size(); ++w)
    fig7_jobs.push_back({reference.winner_design[w], reference.winners[w]});

  // Enough repetitions that the serve-scale leg runs for a meaningful
  // fraction of a second (the floor below is a wall-clock ratio; a
  // handful-of-milliseconds sample would be all scheduler noise).
  int eval_reps = 60;
  if (const char* reps_env = std::getenv("PRPART_EVAL_REPS"))
    eval_reps = std::max(1, std::atoi(reps_env));
  const int kEvalReps = eval_reps;
  EvalScratch scratch;
  SchemeEvaluation reused;  // steady state: scratch AND output reuse capacity
  std::uint64_t ref_frames = 0, ker_frames = 0, serve_ker_frames = 0;
  const auto time_jobs = [&](const std::vector<EvalJob>& batch, bool kernel,
                             std::uint64_t& frames) {
    const auto started = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kEvalReps; ++rep)
      for (const EvalJob& job : batch) {
        const PreparedDesign& p = designs[job.design];
        if (kernel) {
          contexts[job.design]->evaluate_into(job.scheme, p.budget, scratch,
                                              reused);
          frames += reused.total_frames;
        } else {
          frames += evaluate_scheme_reference(p.design, p.matrix,
                                              p.partitions, job.scheme,
                                              p.budget)
                        .total_frames;
        }
      }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };
  const double fig7_ref_seconds = time_jobs(fig7_jobs, false, ref_frames);
  const double serve_ref_seconds = time_jobs(serve_jobs, false, ref_frames);
  const double fig7_ker_seconds = time_jobs(fig7_jobs, true, ker_frames);
  const double serve_ker_seconds = time_jobs(serve_jobs, true, serve_ker_frames);
  ker_frames += serve_ker_frames;
  if (ref_frames != ker_frames) {
    std::printf("FAIL: kernel total frames %llu != reference %llu\n",
                static_cast<unsigned long long>(ker_frames),
                static_cast<unsigned long long>(ref_frames));
    return 1;
  }
  // SIMD/batch sub-leg (§4e), serve scale only. Three timings share the
  // same job list:
  //   serve_kernel_seconds        active tier, one evaluate_into per scheme
  //   serve_scalar_kernel_seconds forced scalar tier (the pre-SIMD word
  //                               kernel) — the baseline the tiers buy over
  //   serve_batch_seconds         active tier, evaluate_batch_into over the
  //                               3-schemes-per-design groups (the shape of
  //                               the search frontier and the serve path)
  // All three must produce the serve suite's exact frame total.
  std::uint64_t scalar_frames = 0;
  double serve_scalar_seconds = 0.0;
  {
    const simd::ScopedForcedTier forced(simd::Tier::kScalar);
    serve_scalar_seconds = time_jobs(serve_jobs, true, scalar_frames);
  }
  if (scalar_frames != serve_ker_frames) {
    std::printf("FAIL: forced-scalar frames %llu != active tier %llu\n",
                static_cast<unsigned long long>(scalar_frames),
                static_cast<unsigned long long>(serve_ker_frames));
    return 1;
  }

  // serve_jobs was filled three-consecutive-per-design, so batches regroup
  // by run of equal design index.
  struct BatchJob {
    std::size_t design = 0;
    std::vector<const PartitionScheme*> schemes;
  };
  std::vector<BatchJob> serve_batches;
  for (const EvalJob& job : serve_jobs) {
    if (serve_batches.empty() || serve_batches.back().design != job.design)
      serve_batches.push_back({job.design, {}});
    serve_batches.back().schemes.push_back(&job.scheme);
  }
  std::size_t max_batch = 0;
  for (const BatchJob& b : serve_batches)
    max_batch = std::max(max_batch, b.schemes.size());
  std::vector<SchemeEvaluation> batch_evals(max_batch);
  std::uint64_t batch_frames = 0;
  double serve_batch_seconds = 0.0;
  {
    const auto started = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kEvalReps; ++rep)
      for (const BatchJob& b : serve_batches) {
        contexts[b.design]->evaluate_batch_into(
            b.schemes.data(), b.schemes.size(), designs[b.design].budget,
            scratch, batch_evals.data());
        for (std::size_t i = 0; i < b.schemes.size(); ++i)
          batch_frames += batch_evals[i].total_frames;
      }
    serve_batch_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - started)
                              .count();
  }
  if (batch_frames != serve_ker_frames) {
    std::printf("FAIL: batched frames %llu != per-scheme frames %llu\n",
                static_cast<unsigned long long>(batch_frames),
                static_cast<unsigned long long>(serve_ker_frames));
    return 1;
  }

  const double kernel_speedup = ratio(serve_ref_seconds, serve_ker_seconds);
  const double fig7_speedup = ratio(fig7_ref_seconds, fig7_ker_seconds);
  const double simd_kernel_speedup =
      ratio(serve_scalar_seconds, serve_ker_seconds);
  const double batch_eval_speedup =
      ratio(serve_scalar_seconds, serve_batch_seconds);
  std::printf("  fig7 suite:  %zu schemes x %d reps: reference %.3f s, "
              "kernel %.3f s (%.2fx), totals identical\n",
              fig7_jobs.size(), kEvalReps, fig7_ref_seconds, fig7_ker_seconds,
              fig7_speedup);
  std::printf("  serve scale: %zu schemes x %d reps: reference %.3f s, "
              "kernel %.3f s (%.2fx), totals identical\n",
              serve_jobs.size(), kEvalReps, serve_ref_seconds,
              serve_ker_seconds, kernel_speedup);
  std::printf("  simd tier '%s' vs forced scalar (serve scale): scalar "
              "%.3f s, single %.3f s (%.2fx), batched %.3f s (%.2fx)\n",
              simd::tier_name(simd::active_tier()), serve_scalar_seconds,
              serve_ker_seconds, simd_kernel_speedup, serve_batch_seconds,
              batch_eval_speedup);
  std::printf("  kernel evaluations: %llu, signature-collapsed configs: "
              "%llu\n",
              static_cast<unsigned long long>(
                  scratch.stats.kernel_evaluations),
              static_cast<unsigned long long>(
                  scratch.stats.signature_collapsed_configs));

  // Machine-readable summary for the CI regression gate. Everything but
  // the wall-clock fields is deterministic (threads=1 counters).
  {
    json::Value doc = json::Value::object();
    // The search population only; the serve-scale evaluation designs are
    // counted inside the kernel object (serve_schemes / 3 per design).
    doc.set("designs", json::Value(static_cast<std::uint64_t>(small_count)));
    doc.set("bounded", counters_json(reference));
    doc.set("exhaustive", counters_json(exhaustive));
    doc.set("wall_speedup_vs_exhaustive", json::Value(speedup));
    doc.set("full_evaluation_reduction", json::Value(reduction));
    json::Value kernel = json::Value::object();
    kernel.set("fig7_schemes",
               json::Value(static_cast<std::uint64_t>(fig7_jobs.size())));
    kernel.set("serve_schemes",
               json::Value(static_cast<std::uint64_t>(serve_jobs.size())));
    kernel.set("fig7_reference_seconds", json::Value(fig7_ref_seconds));
    kernel.set("fig7_kernel_seconds", json::Value(fig7_ker_seconds));
    kernel.set("serve_reference_seconds", json::Value(serve_ref_seconds));
    kernel.set("serve_kernel_seconds", json::Value(serve_ker_seconds));
    kernel.set("serve_scalar_kernel_seconds",
               json::Value(serve_scalar_seconds));
    kernel.set("serve_batch_seconds", json::Value(serve_batch_seconds));
    kernel.set("kernel_evaluations",
               json::Value(scratch.stats.kernel_evaluations));
    kernel.set("signature_collapsed_configs",
               json::Value(scratch.stats.signature_collapsed_configs));
    doc.set("kernel", kernel);
    // Floor-gated in tools/check_bench.py: the serve-scale reference vs
    // active-tier kernel, and the forced-scalar vs SIMD+batch combination.
    doc.set("kernel_wall_speedup", json::Value(kernel_speedup));
    doc.set("batch_eval_speedup", json::Value(batch_eval_speedup));
    // Informational: the small Fig. 7 designs (dominated by shared setup)
    // and the single-call SIMD gain already folded into batch_eval_speedup.
    doc.set("fig7_eval_speedup", json::Value(fig7_speedup));
    doc.set("simd_kernel_speedup", json::Value(simd_kernel_speedup));
    std::ofstream bench_json("BENCH_search.json");
    bench_json << doc.dump() << "\n";
    std::printf("wrote BENCH_search.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace prpart::bench

int main() { return prpart::bench::main_impl(); }
