// Speedup and cache effectiveness of the parallel region-allocation search
// over the Fig. 7 synthetic design set. For every thread count the same
// designs run through search_partitioning; the bench reports wall-clock,
// speedup versus threads=1, the cost-cache hit rate, and — the contract the
// speedup is not allowed to buy — whether every scheme is byte-identical
// (result_io serialisation) to the threads=1 reference. Exits non-zero on
// any mismatch.
//
//   PRPART_DESIGNS=100 ./bench_search_parallel
//
// Numbers depend on hardware parallelism: on a single-core host the >1
// thread rows only demonstrate identity, not speedup.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/sweep_common.hpp"
#include "core/clustering.hpp"
#include "core/compatibility.hpp"
#include "core/result_io.hpp"
#include "core/search.hpp"
#include "design/synthetic.hpp"

namespace prpart::bench {
namespace {

struct PreparedDesign {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
  CompatibilityTable compat;
  ResourceVec budget;

  explicit PreparedDesign(Design d)
      : design(std::move(d)),
        matrix(design),
        partitions(enumerate_base_partitions(design, matrix)),
        compat(matrix, partitions) {
    // The properties-test budget shape: 1.35x the single-region lower
    // bound keeps the search non-trivial on every design.
    const ResourceVec lower =
        design.largest_configuration_area() + design.static_base();
    budget = ResourceVec{lower.clbs + lower.clbs / 3 + 200,
                         lower.brams + lower.brams / 3 + 8,
                         lower.dsps + lower.dsps / 3 + 8};
  }
};

struct RunOutcome {
  double seconds = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::vector<std::string> schemes;  ///< archived XML per design
};

RunOutcome run_all(std::vector<PreparedDesign>& designs, unsigned threads) {
  SearchOptions opt;
  opt.max_candidate_sets = 24;       // the Fig. 7 sweep's effort settings
  opt.max_move_evaluations = 400'000;
  opt.threads = threads;

  RunOutcome out;
  out.schemes.reserve(designs.size());
  const auto started = std::chrono::steady_clock::now();
  for (PreparedDesign& p : designs) {
    const SearchResult r = search_partitioning(p.design, p.matrix,
                                               p.partitions, p.compat,
                                               p.budget, opt);
    out.cache_hits += r.stats.cache_hits;
    out.cache_misses += r.stats.cache_misses;
    out.schemes.push_back(
        r.feasible ? partitioning_to_xml(p.design, p.partitions, r.scheme,
                                         r.eval)
                   : std::string("infeasible"));
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return out;
}

int main_impl() {
  const std::size_t count = sweep_design_count(1000);
  const auto suite = generate_synthetic_suite(2013, count);

  std::vector<PreparedDesign> designs;
  designs.reserve(suite.size());
  for (const SyntheticDesign& s : suite) designs.emplace_back(s.design);

  std::printf("parallel search over the Fig. 7 design set (%zu designs, "
              "seed 2013)\n\n",
              designs.size());
  std::printf("%8s %10s %9s %10s %10s\n", "threads", "seconds", "speedup",
              "hit-rate", "identical");

  const RunOutcome reference = run_all(designs, 1);
  bool all_identical = true;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const RunOutcome r =
        threads == 1 ? reference : run_all(designs, threads);
    const std::uint64_t probes = r.cache_hits + r.cache_misses;
    const double hit_rate =
        probes == 0 ? 0.0
                    : static_cast<double>(r.cache_hits) /
                          static_cast<double>(probes);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < designs.size(); ++i)
      if (r.schemes[i] != reference.schemes[i]) ++mismatches;
    all_identical = all_identical && mismatches == 0;
    std::printf("%8u %10.3f %8.2fx %9.1f%% %10s\n", threads, r.seconds,
                reference.seconds / r.seconds, 100.0 * hit_rate,
                mismatches == 0
                    ? "yes"
                    : ("NO (" + std::to_string(mismatches) + ")").c_str());
  }

  if (!all_identical) {
    std::printf("\nFAIL: parallel schemes diverged from the threads=1 "
                "reference\n");
    return 1;
  }
  std::printf("\nall schemes byte-identical to threads=1\n");
  return 0;
}

}  // namespace
}  // namespace prpart::bench

int main() { return prpart::bench::main_impl(); }
