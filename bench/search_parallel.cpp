// Speedup and cache effectiveness of the parallel region-allocation search
// over the Fig. 7 synthetic design set. For every thread count the same
// designs run through search_partitioning; the bench reports wall-clock,
// speedup versus threads=1, the cost-cache hit rate, and — the contract the
// speedup is not allowed to buy — whether every scheme is byte-identical
// (result_io serialisation) to the threads=1 reference. Exits non-zero on
// any mismatch.
//
// A second leg measures the branch-and-bound machinery itself: the default
// configuration (lower-bound pruning + move table) against the exhaustive
// PR 1 search (both disabled) at threads=1, where every counter is exact.
// The counters and ratios land in BENCH_search.json for the CI regression
// gate (tools/check_bench.py against the committed baseline).
//
//   PRPART_DESIGNS=100 ./bench_search_parallel
//
// Numbers depend on hardware parallelism: on a single-core host the >1
// thread rows only demonstrate identity, not speedup.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/sweep_common.hpp"
#include "core/clustering.hpp"
#include "core/compatibility.hpp"
#include "core/result_io.hpp"
#include "core/search.hpp"
#include "design/synthetic.hpp"
#include "device/device.hpp"
#include "util/json.hpp"

namespace prpart::bench {
namespace {

struct PreparedDesign {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
  CompatibilityTable compat;
  ResourceVec budget;

  explicit PreparedDesign(Design d, const DeviceLibrary& lib)
      : design(std::move(d)),
        matrix(design),
        partitions(enumerate_base_partitions(design, matrix)),
        compat(matrix, partitions) {
    // The budget the Fig. 7/8 sweep actually searches first: the smallest
    // library device covering the resource lower bound. Tight by
    // construction, so the bound and the sterile-completion proofs are
    // exercised the way the sweep exercises them.
    const ResourceVec lower =
        design.largest_configuration_area() + design.static_base();
    if (const Device* dev = lib.smallest_fitting(lower)) {
      budget = dev->capacity();
    } else {
      budget = ResourceVec{lower.clbs + lower.clbs / 3 + 200,
                           lower.brams + lower.brams / 3 + 8,
                           lower.dsps + lower.dsps / 3 + 8};
    }
  }
};

struct RunOutcome {
  double seconds = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t move_evaluations = 0;
  std::uint64_t full_evaluations = 0;
  std::uint64_t moves_rescored = 0;
  std::uint64_t states_recorded = 0;
  std::uint64_t units = 0;
  std::uint64_t units_pruned = 0;
  std::vector<std::string> schemes;  ///< archived XML per design
};

RunOutcome run_all(std::vector<PreparedDesign>& designs, unsigned threads,
                   bool use_bounding, bool use_move_table) {
  SearchOptions opt;
  opt.max_candidate_sets = 24;       // the Fig. 7 sweep's effort settings
  opt.max_move_evaluations = 400'000;
  opt.threads = threads;
  opt.use_bounding = use_bounding;
  opt.use_move_table = use_move_table;

  RunOutcome out;
  out.schemes.reserve(designs.size());
  const auto started = std::chrono::steady_clock::now();
  for (PreparedDesign& p : designs) {
    const SearchResult r = search_partitioning(p.design, p.matrix,
                                               p.partitions, p.compat,
                                               p.budget, opt);
    out.cache_hits += r.stats.cache_hits;
    out.cache_misses += r.stats.cache_misses;
    out.move_evaluations += r.stats.move_evaluations;
    out.full_evaluations += r.stats.full_evaluations;
    out.moves_rescored += r.stats.moves_rescored;
    out.states_recorded += r.stats.states_recorded;
    out.units += r.stats.units;
    out.units_pruned += r.stats.units_pruned;
    out.schemes.push_back(
        r.feasible ? partitioning_to_xml(p.design, p.partitions, r.scheme,
                                         r.eval)
                   : std::string("infeasible"));
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return out;
}

json::Value counters_json(const RunOutcome& r) {
  json::Value v = json::Value::object();
  v.set("wall_seconds", json::Value(r.seconds));
  v.set("move_evaluations", json::Value(r.move_evaluations));
  v.set("full_evaluations", json::Value(r.full_evaluations));
  v.set("moves_rescored", json::Value(r.moves_rescored));
  v.set("states_recorded", json::Value(r.states_recorded));
  v.set("units", json::Value(r.units));
  v.set("units_pruned", json::Value(r.units_pruned));
  return v;
}

int main_impl() {
  const std::size_t count = sweep_design_count(1000);
  const auto suite = generate_synthetic_suite(2013, count);

  const DeviceLibrary lib = DeviceLibrary::virtex5();
  std::vector<PreparedDesign> designs;
  designs.reserve(suite.size());
  for (const SyntheticDesign& s : suite) designs.emplace_back(s.design, lib);

  std::printf("parallel search over the Fig. 7 design set (%zu designs, "
              "seed 2013)\n\n",
              designs.size());
  std::printf("%8s %10s %9s %10s %10s\n", "threads", "seconds", "speedup",
              "hit-rate", "identical");

  const RunOutcome reference = run_all(designs, 1, true, true);
  bool all_identical = true;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const RunOutcome r =
        threads == 1 ? reference : run_all(designs, threads, true, true);
    const std::uint64_t probes = r.cache_hits + r.cache_misses;
    const double hit_rate =
        probes == 0 ? 0.0
                    : static_cast<double>(r.cache_hits) /
                          static_cast<double>(probes);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < designs.size(); ++i)
      if (r.schemes[i] != reference.schemes[i]) ++mismatches;
    all_identical = all_identical && mismatches == 0;
    std::printf("%8u %10.3f %8.2fx %9.1f%% %10s\n", threads, r.seconds,
                reference.seconds / r.seconds, 100.0 * hit_rate,
                mismatches == 0
                    ? "yes"
                    : ("NO (" + std::to_string(mismatches) + ")").c_str());
  }

  if (!all_identical) {
    std::printf("\nFAIL: parallel schemes diverged from the threads=1 "
                "reference\n");
    return 1;
  }
  std::printf("\nall schemes byte-identical to threads=1\n");

  // Branch-and-bound leg: defaults (bounding + move table) vs the
  // exhaustive PR 1 search, both at threads=1 so full_evaluations and
  // moves_rescored are exact rather than scheduling-dependent.
  std::printf("\nbranch-and-bound vs exhaustive search (threads=1)\n\n");
  const RunOutcome exhaustive = run_all(designs, 1, false, false);
  std::size_t bnb_mismatches = 0;
  for (std::size_t i = 0; i < designs.size(); ++i)
    if (exhaustive.schemes[i] != reference.schemes[i]) ++bnb_mismatches;
  const auto ratio = [](double base, double ours) {
    return ours == 0.0 ? 0.0 : base / ours;
  };
  const double speedup = ratio(exhaustive.seconds, reference.seconds);
  const double reduction = ratio(static_cast<double>(exhaustive.full_evaluations),
                                 static_cast<double>(reference.full_evaluations));
  std::printf("%12s %10s %12s %12s %10s %8s\n", "mode", "seconds",
              "move-evals", "full-evals", "rescored", "pruned");
  std::printf("%12s %10.3f %12llu %12llu %10llu %8llu\n", "exhaustive",
              exhaustive.seconds,
              static_cast<unsigned long long>(exhaustive.move_evaluations),
              static_cast<unsigned long long>(exhaustive.full_evaluations),
              static_cast<unsigned long long>(exhaustive.moves_rescored),
              static_cast<unsigned long long>(exhaustive.units_pruned));
  std::printf("%12s %10.3f %12llu %12llu %10llu %8llu\n", "bounded",
              reference.seconds,
              static_cast<unsigned long long>(reference.move_evaluations),
              static_cast<unsigned long long>(reference.full_evaluations),
              static_cast<unsigned long long>(reference.moves_rescored),
              static_cast<unsigned long long>(reference.units_pruned));
  std::printf("\nwall-clock speedup: %.2fx   full-evaluation reduction: "
              "%.2fx   schemes identical: %s\n",
              speedup, reduction,
              bnb_mismatches == 0
                  ? "yes"
                  : ("NO (" + std::to_string(bnb_mismatches) + ")").c_str());
  if (bnb_mismatches != 0) {
    // Bounding may legitimately change results only when the evaluation
    // budget was exhausted mid-search; the Fig. 7 settings never hit it.
    std::printf("\nFAIL: bounded schemes diverged from the exhaustive "
                "search\n");
    return 1;
  }

  // Machine-readable summary for the CI regression gate. Everything but
  // the wall-clock fields is deterministic (threads=1 counters).
  {
    json::Value doc = json::Value::object();
    doc.set("designs", json::Value(static_cast<std::uint64_t>(designs.size())));
    doc.set("bounded", counters_json(reference));
    doc.set("exhaustive", counters_json(exhaustive));
    doc.set("wall_speedup_vs_exhaustive", json::Value(speedup));
    doc.set("full_evaluation_reduction", json::Value(reduction));
    std::ofstream bench_json("BENCH_search.json");
    bench_json << doc.dump() << "\n";
    std::printf("wrote BENCH_search.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace prpart::bench

int main() { return prpart::bench::main_impl(); }
