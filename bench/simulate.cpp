// Trace-driven simulator bench (DESIGN.md §5): replays workloads against the
// candidate schemes of a synthetic design suite and gates the headline
// contract in CI — ranking schemes by simulated cost over the uniform
// all-pairs trace must agree with the paper's Eq. 10 ranking on every
// candidate pair (uniform_ranking_agreement, hard floor 1.0 in
// tools/check_bench.py). Three further legs measure replay throughput on
// Markov workloads with and without prefetching and verify the fan-out is
// byte-identical across thread counts; all counters except wall-clock and
// rates are deterministic and regression-gated against BENCH_simulate.json.
//
//   PRPART_SIM_DESIGNS=40 PRPART_SIM_STEPS=50000 ./bench_simulate
//
// The design count and step count are fixed knobs (not PRPART_DESIGNS): the
// committed baseline's deterministic counters only line up when CI runs the
// same scale.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/clustering.hpp"
#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "reconfig/markov.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace prpart::bench {
namespace {

using sim::SchemeRef;
using sim::SimulationOptions;
using sim::SimulationResult;
using sim::TransitionTrace;

std::size_t env_count(const char* name, std::size_t fallback) {
  if (const char* value = std::getenv(name))
    return static_cast<std::size_t>(std::max(1, std::atoi(value)));
  return fallback;
}

/// One partitioned design plus every distinct fitting candidate scheme the
/// run produced: the proposal, the paper's baselines and the certified
/// near-optimal alternatives — the population `prpart simulate --rank`
/// replays.
struct SimCase {
  Design design;
  PartitionerResult result;
  std::vector<SchemeEvaluation> alt_evals;  ///< arena, pointers stay stable
  std::vector<SchemeRef> candidates;
  MarkovChain chain;
  TransitionTrace markov;

  SimCase(Design d, PartitionerResult r, MarkovChain c)
      : design(std::move(d)), result(std::move(r)), chain(std::move(c)) {}
};

bool same_result(const SimulationResult& a, const SimulationResult& b) {
  return a.transitions == b.transitions && a.frames_loaded == b.frames_loaded &&
         a.region_loads == b.region_loads &&
         a.prefetched_frames == b.prefetched_frames &&
         a.useful_prefetches == b.useful_prefetches &&
         a.wasted_prefetches == b.wasted_prefetches &&
         a.total_latency_ns == b.total_latency_ns &&
         a.p50_latency_ns == b.p50_latency_ns &&
         a.p95_latency_ns == b.p95_latency_ns &&
         a.p99_latency_ns == b.p99_latency_ns &&
         a.max_latency_ns == b.max_latency_ns &&
         a.makespan_ns == b.makespan_ns &&
         a.transitions_per_second == b.transitions_per_second &&
         a.latency_counts == b.latency_counts;
}

int main_impl() {
  const std::size_t count = env_count("PRPART_SIM_DESIGNS", 40);
  const std::uint64_t steps = env_count("PRPART_SIM_STEPS", 50'000);

  // The paper's §V generator with modest search effort: the bench measures
  // the simulator, not search quality, but the candidate sets must still be
  // real search output so the ranking leg compares genuinely distinct
  // schemes (including exact Eq. 10 ties between runners-up).
  PartitionerOptions options;
  options.search.max_move_evaluations = 60'000;
  options.search.keep_alternatives = 4;
  options.search.threads = 1;
  const ResourceVec budget{20000, 300, 250};
  const auto suite = generate_synthetic_suite(20260807, count);

  std::vector<SimCase> cases;
  Rng chain_rng(4242);
  for (const SyntheticDesign& sd : suite) {
    const std::size_t n = sd.design.configurations().size();
    if (n < 2) continue;
    PartitionerResult result = partition_design(sd.design, budget, options);
    if (!result.feasible) continue;
    MarkovChain chain = MarkovChain::random(chain_rng, n);
    cases.emplace_back(sd.design, std::move(result), std::move(chain));
    Rng trace_rng(9000 + cases.size());
    cases.back().markov = sim::markov_trace(cases.back().chain, trace_rng, steps);
  }

  // Candidate refs point into the SimCase objects, so they can only be
  // taken once the vector has stopped reallocating.
  for (SimCase& c : cases) {
    c.candidates.push_back({&c.result.proposed.scheme, &c.result.proposed.eval});
    if (c.result.modular.eval.valid && c.result.modular.eval.fits)
      c.candidates.push_back({&c.result.modular.scheme, &c.result.modular.eval});
    if (c.result.single_region.eval.valid && c.result.single_region.eval.fits)
      c.candidates.push_back(
          {&c.result.single_region.scheme, &c.result.single_region.eval});
    const ConnectivityMatrix matrix(c.design);
    const auto partitions = enumerate_base_partitions(c.design, matrix);
    c.alt_evals.reserve(c.result.alternatives.size());
    for (std::size_t i = 1; i < c.result.alternatives.size(); ++i) {
      c.alt_evals.push_back(evaluate_scheme(c.design, matrix, partitions,
                                            c.result.alternatives[i].scheme,
                                            budget));
      if (!c.alt_evals.back().valid || !c.alt_evals.back().fits) {
        c.alt_evals.pop_back();
        continue;
      }
      c.candidates.push_back(
          {&c.result.alternatives[i].scheme, &c.alt_evals.back()});
    }
  }

  std::size_t total_candidates = 0;
  for (const SimCase& c : cases) total_candidates += c.candidates.size();
  std::printf("trace-driven simulator bench: %zu designs (%zu feasible, "
              "%zu candidate schemes), %llu markov steps each\n\n",
              suite.size(), cases.size(), total_candidates,
              static_cast<unsigned long long>(steps));

  // Leg 1 — the headline property as a gated ratio: over the Eulerian
  // all-pairs circuit with zero fetch setup cost, simulated total latency
  // must order every candidate pair exactly as Eq. 10 frames do (both
  // directions, ties included), and each scheme must load exactly twice its
  // Eq. 10 frame sum.
  std::uint64_t pairs_checked = 0, pairs_agreeing = 0;
  std::uint64_t frames_identities = 0, uniform_transitions = 0;
  std::uint64_t uniform_frames_loaded = 0;
  auto started = std::chrono::steady_clock::now();
  for (const SimCase& c : cases) {
    const std::size_t n = c.design.configurations().size();
    const TransitionTrace trace = sim::uniform_pair_trace(n);
    SimulationOptions uniform_options;
    uniform_options.icap.fetch_latency_ns = 0;
    std::vector<SimulationResult> results;
    results.reserve(c.candidates.size());
    for (const SchemeRef& ref : c.candidates) {
      results.push_back(sim::simulate_scheme(c.design, *ref.scheme,
                                             *ref.evaluation, trace,
                                             uniform_options));
      uniform_transitions += results.back().transitions;
      uniform_frames_loaded += results.back().frames_loaded;
      if (results.back().frames_loaded ==
          2 * ref.evaluation->total_frames)
        ++frames_identities;
    }
    for (std::size_t a = 0; a < c.candidates.size(); ++a)
      for (std::size_t b = a + 1; b < c.candidates.size(); ++b) {
        const std::uint64_t fa = c.candidates[a].evaluation->total_frames;
        const std::uint64_t fb = c.candidates[b].evaluation->total_frames;
        const std::uint64_t sa = results[a].total_latency_ns;
        const std::uint64_t sb = results[b].total_latency_ns;
        ++pairs_checked;
        if ((fa < fb) == (sa < sb) && (fa == fb) == (sa == sb))
          ++pairs_agreeing;
      }
  }
  const double uniform_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  const double agreement =
      pairs_checked == 0 ? 0.0
                         : static_cast<double>(pairs_agreeing) /
                               static_cast<double>(pairs_checked);
  std::printf("uniform all-pairs leg: %llu candidate pairs, Eq. 10 ranking "
              "agreement %.4f (floor 1.0), frame identity %llu/%zu\n",
              static_cast<unsigned long long>(pairs_checked), agreement,
              static_cast<unsigned long long>(frames_identities),
              total_candidates);
  if (agreement != 1.0 || frames_identities != total_candidates) {
    std::printf("\nFAIL: simulated ranking diverged from Eq. 10\n");
    return 1;
  }

  // Leg 2 — Markov replay throughput (no prefetch) on the proposed scheme.
  std::uint64_t markov_transitions = 0, markov_frames = 0, markov_loads = 0;
  std::uint64_t markov_latency_ns = 0;
  started = std::chrono::steady_clock::now();
  for (const SimCase& c : cases) {
    const SimulationResult r =
        sim::simulate_scheme(c.design, c.result.proposed.scheme,
                             c.result.proposed.eval, c.markov);
    markov_transitions += r.transitions;
    markov_frames += r.frames_loaded;
    markov_loads += r.region_loads;
    markov_latency_ns += r.total_latency_ns;
  }
  const double markov_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  const double markov_rate =
      markov_seconds == 0.0 ? 0.0
                            : static_cast<double>(markov_transitions) /
                                  markov_seconds;
  std::printf("markov leg:            %llu transitions in %.3f s "
              "(%.2fM transitions/s), %llu frames on the critical path\n",
              static_cast<unsigned long long>(markov_transitions),
              markov_seconds, markov_rate / 1e6,
              static_cast<unsigned long long>(markov_frames));

  // Leg 3 — the same traces through the prefetching controller, predictor =
  // the generating chain (the informed upper bound the ablation bench
  // sweeps; here it pins the hit accounting counters end to end). Note the
  // two legs are not ordered in general: the memoryless replay never charges
  // for regions idle at either endpoint of a transition, while the stateful
  // controller pays real reloads when a region comes back from idle — so
  // the counters are gated by the baseline, not by an inequality.
  std::uint64_t pf_frames = 0, pf_prefetched = 0;
  std::uint64_t pf_useful = 0, pf_wasted = 0;
  started = std::chrono::steady_clock::now();
  for (const SimCase& c : cases) {
    SimulationOptions pf;
    pf.prefetch = true;
    pf.predictor = &c.chain;
    const SimulationResult r =
        sim::simulate_scheme(c.design, c.result.proposed.scheme,
                             c.result.proposed.eval, c.markov, pf);
    pf_frames += r.frames_loaded;
    pf_prefetched += r.prefetched_frames;
    pf_useful += r.useful_prefetches;
    pf_wasted += r.wasted_prefetches;
  }
  const double prefetch_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  const double hit_rate =
      pf_useful + pf_wasted == 0
          ? 0.0
          : static_cast<double>(pf_useful) /
                static_cast<double>(pf_useful + pf_wasted);
  std::printf("prefetch leg:          %llu stall frames (memoryless replay "
              "loaded %llu), %llu prefetched, hit rate %.1f%%\n",
              static_cast<unsigned long long>(pf_frames),
              static_cast<unsigned long long>(markov_frames),
              static_cast<unsigned long long>(pf_prefetched),
              100.0 * hit_rate);

  // Leg 4 — determinism: the candidate fan-out must be byte-identical at
  // every thread count (the same discipline the CLI/server JSON encoders
  // rely on for cache hits and cross-frontend identity).
  bool identical = true;
  for (const SimCase& c : cases) {
    const TransitionTrace trace =
        sim::uniform_pair_trace(c.design.configurations().size());
    const auto reference =
        sim::simulate_schemes(c.design, c.candidates, trace, {}, 1);
    for (unsigned threads : {4u, 8u}) {
      const auto run =
          sim::simulate_schemes(c.design, c.candidates, trace, {}, threads);
      for (std::size_t i = 0; i < reference.size(); ++i)
        identical = identical && same_result(reference[i], run[i]);
    }
  }
  std::printf("thread identity:       fan-out at threads {1, 4, 8} %s\n",
              identical ? "byte-identical" : "DIVERGED");
  if (!identical) {
    std::printf("\nFAIL: simulate_schemes diverged across thread counts\n");
    return 1;
  }

  // Machine-readable summary for the CI regression gate. Wall-clock keys
  // and rates are skipped by check_bench.py; everything else is a
  // deterministic function of the fixed seeds and scale knobs.
  {
    json::Value doc = json::Value::object();
    doc.set("designs", json::Value(static_cast<std::uint64_t>(suite.size())));
    doc.set("feasible", json::Value(static_cast<std::uint64_t>(cases.size())));
    doc.set("candidates",
            json::Value(static_cast<std::uint64_t>(total_candidates)));
    json::Value uniform = json::Value::object();
    uniform.set("transitions", json::Value(uniform_transitions));
    uniform.set("frames_loaded", json::Value(uniform_frames_loaded));
    uniform.set("pairs_checked", json::Value(pairs_checked));
    uniform.set("frames_identities", json::Value(frames_identities));
    uniform.set("wall_seconds", json::Value(uniform_seconds));
    doc.set("uniform", uniform);
    // Floor-gated (== 1.0 in tools/check_bench.py): the headline property.
    doc.set("uniform_ranking_agreement", json::Value(agreement));
    json::Value markov = json::Value::object();
    markov.set("transitions", json::Value(markov_transitions));
    markov.set("frames_loaded", json::Value(markov_frames));
    markov.set("region_loads", json::Value(markov_loads));
    markov.set("total_latency_ns", json::Value(markov_latency_ns));
    markov.set("wall_seconds", json::Value(markov_seconds));
    markov.set("transitions_per_second", json::Value(markov_rate));
    doc.set("markov", markov);
    json::Value prefetch = json::Value::object();
    prefetch.set("frames_loaded", json::Value(pf_frames));
    prefetch.set("prefetched_frames", json::Value(pf_prefetched));
    prefetch.set("useful_prefetches", json::Value(pf_useful));
    prefetch.set("wasted_prefetches", json::Value(pf_wasted));
    prefetch.set("prefetch_hit_rate", json::Value(hit_rate));
    prefetch.set("wall_seconds", json::Value(prefetch_seconds));
    doc.set("prefetch", prefetch);
    doc.set("thread_identical",
            json::Value(static_cast<std::uint64_t>(identical ? 1 : 0)));
    std::ofstream bench_json("BENCH_simulate.json");
    bench_json << doc.dump() << "\n";
    std::printf("wrote BENCH_simulate.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace prpart::bench

int main() { return prpart::bench::main_impl(); }
