// Ablation: quality of the paper's greedy-with-restarts heuristic against
// an exact branch-and-bound reference, on small synthetic designs where the
// exact search is tractable. Both are restricted to mode-level candidate
// sets for a like-for-like comparison; the full heuristic (multiple
// candidate sets) is shown as a third column.
#include <chrono>
#include <iostream>

#include "core/clustering.hpp"
#include "core/optimal.hpp"
#include "core/search.hpp"
#include "design/synthetic.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace prpart;

  const std::size_t designs = 60;
  std::cout << "=== Ablation: heuristic search vs exact branch-and-bound ===\n";
  std::cout << designs << " small synthetic designs (<= 3 modules, <= 3 "
               "modes), budget = 1.5x single-region lower bound\n\n";

  SyntheticOptions small;
  small.max_modules = 3;
  small.max_modes = 3;

  std::size_t compared = 0, heuristic_optimal = 0, full_beats_optimal = 0;
  double worst_gap = 0.0, sum_gap = 0.0;
  double opt_seconds = 0.0, heur_seconds = 0.0;

  for (std::uint64_t seed = 0; seed < designs; ++seed) {
    Rng rng(4000 + seed);
    const Design design =
        generate_synthetic(rng, static_cast<CircuitClass>(seed % 4), small)
            .design;
    const ConnectivityMatrix matrix(design);
    const auto partitions = enumerate_base_partitions(design, matrix);
    const CompatibilityTable compat(matrix, partitions);
    const ResourceVec lower =
        design.largest_configuration_area() + design.static_base();
    const ResourceVec budget{lower.clbs + lower.clbs / 2, lower.brams + 6,
                             lower.dsps + 6};

    auto t0 = std::chrono::steady_clock::now();
    const OptimalResult opt = optimal_mode_level_partitioning(
        design, matrix, partitions, compat, budget);
    auto t1 = std::chrono::steady_clock::now();
    SearchOptions one_set;
    one_set.max_candidate_sets = 1;
    const SearchResult heur = search_partitioning(design, matrix, partitions,
                                                  compat, budget, one_set);
    const SearchResult full =
        search_partitioning(design, matrix, partitions, compat, budget);
    auto t2 = std::chrono::steady_clock::now();
    opt_seconds += std::chrono::duration<double>(t1 - t0).count();
    heur_seconds += std::chrono::duration<double>(t2 - t1).count();

    if (!opt.feasible || opt.exhausted || !heur.feasible) continue;
    ++compared;
    const auto o = static_cast<double>(opt.eval.total_frames);
    const auto h = static_cast<double>(heur.eval.total_frames);
    if (heur.eval.total_frames == opt.eval.total_frames) ++heuristic_optimal;
    if (o > 0) {
      const double gap = (h - o) / o * 100.0;
      sum_gap += gap;
      worst_gap = std::max(worst_gap, gap);
    }
    if (full.feasible && full.eval.total_frames < opt.eval.total_frames)
      ++full_beats_optimal;  // multi-mode partitions beat mode-level optimum
  }

  TextTable t({"Metric", "Value"});
  t.add_row({"designs compared", std::to_string(compared)});
  t.add_row({"heuristic == mode-level optimum",
             std::to_string(heuristic_optimal)});
  t.add_row({"mean heuristic gap", fixed(sum_gap / static_cast<double>(compared ? compared : 1), 2) + "%"});
  t.add_row({"worst heuristic gap", fixed(worst_gap, 2) + "%"});
  t.add_row({"full heuristic beats mode-level optimum",
             std::to_string(full_beats_optimal)});
  t.add_row({"exact search time", fixed(opt_seconds, 2) + " s"});
  t.add_row({"heuristic time (both runs)", fixed(heur_seconds, 2) + " s"});
  std::cout << t.render();
  std::cout << "\nReading: the restart heuristic tracks the exact optimum "
               "closely at a fraction of the cost, and occasionally beats "
               "the mode-level optimum outright by using multi-mode base "
               "partitions from deeper candidate sets.\n";
  return 0;
}
