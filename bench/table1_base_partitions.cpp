// Reproduces Table I: the base partitions of the §III example design with
// their frequency weights, as enumerated by the clustering algorithm.
#include <algorithm>
#include <iostream>

#include "core/clustering.hpp"
#include "core/connectivity.hpp"
#include "design/builder.hpp"
#include "util/table.hpp"

int main() {
  using namespace prpart;

  // The §III example (areas are immaterial for Table I).
  const Design design =
      DesignBuilder("table1-example")
          .module("A", {{"A1", {100, 0, 0}},
                        {"A2", {260, 1, 2}},
                        {"A3", {180, 0, 4}}})
          .module("B", {{"B1", {400, 2, 0}}, {"B2", {90, 0, 1}}})
          .module("C", {{"C1", {150, 1, 0}},
                        {"C2", {310, 0, 8}},
                        {"C3", {55, 0, 0}}})
          .configuration({{"A", "A3"}, {"B", "B2"}, {"C", "C3"}})
          .configuration({{"A", "A1"}, {"B", "B1"}, {"C", "C1"}})
          .configuration({{"A", "A3"}, {"B", "B2"}, {"C", "C1"}})
          .configuration({{"A", "A1"}, {"B", "B2"}, {"C", "C2"}})
          .configuration({{"A", "A2"}, {"B", "B2"}, {"C", "C3"}})
          .build();

  const ConnectivityMatrix matrix(design);
  auto partitions = enumerate_base_partitions(design, matrix);
  // Table I lists singletons first, then pairs, then the configurations.
  std::stable_sort(partitions.begin(), partitions.end(),
                   [](const BasePartition& a, const BasePartition& b) {
                     return a.modes.count() < b.modes.count();
                   });

  std::cout << "=== Table I: base partitions with frequency weight ===\n";
  std::cout << "Paper: 26 base partitions (8 singletons, 13 pairs, 5 "
               "configurations)\n";
  std::cout << "Ours : " << partitions.size() << " base partitions\n\n";

  TextTable t({"Base Part'n", "Freq wt"});
  for (const BasePartition& p : partitions)
    t.add_row({p.label(design), std::to_string(p.frequency_weight)});
  std::cout << t.render();

  // The §IV-C spot checks from the text.
  std::cout << "\nSpot checks (paper values in parentheses):\n";
  for (const BasePartition& p : partitions) {
    const std::string label = p.label(design);
    if (label == "{B2}")
      std::cout << "  node weight of B2: " << p.frequency_weight << " (4)\n";
    if (label == "{A3,B2}")
      std::cout << "  edge weight of A3,B2: " << p.frequency_weight
                << " (2)\n";
    if (label == "{A3,B2,C3}")
      std::cout << "  frequency weight of {A3,B2,C3}: " << p.frequency_weight
                << " (1)\n";
  }
  return 0;
}
