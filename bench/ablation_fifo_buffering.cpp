// Ablation: FIFO sizing vs reconfiguration outages. The case study's
// modules talk through registered streaming FIFOs; while a region
// reconfigures, its stage is offline and the upstream FIFO must absorb the
// arrivals or they are dropped. For every region of the proposed
// partitioning we measure (by simulation) the minimum FIFO depth that hides
// one reconfiguration, and compare it with the analytic bound
// arrivals-during-outage. This connects the paper's frame-count objective
// to a concrete buffer-sizing budget: halving a region's frames halves the
// buffering its neighbours need.
#include <iostream>

#include "core/partitioner.hpp"
#include "reconfig/icap.hpp"
#include "stream/pipeline.hpp"
#include "synth/ip_library.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace prpart;

/// True when a two-stage pipeline with the given head-FIFO depth survives
/// an outage of `outage_cycles` on stage 1 without dropping anything.
bool survives(std::size_t depth, std::uint64_t outage_cycles,
              std::uint32_t arrival_interval) {
  StreamingPipeline p({{"up", 1, depth}, {"victim", 1, depth}},
                      arrival_interval);
  p.run(64);  // settle
  p.set_offline(1, true);
  p.run(outage_cycles);
  p.set_offline(1, false);
  p.run(outage_cycles + 1000);  // drain
  return p.stats().dropped == 0;
}

std::size_t min_depth(std::uint64_t outage_cycles,
                      std::uint32_t arrival_interval) {
  std::size_t lo = 1, hi = 1;
  while (!survives(hi, outage_cycles, arrival_interval)) {
    hi *= 2;
    if (hi > (std::size_t{1} << 22)) return hi;  // give up: unbuffably long
  }
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (survives(mid, outage_cycles, arrival_interval))
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

}  // namespace

int main() {
  const Design design = synth::wireless_receiver_design();
  PartitionerOptions opt;
  opt.search.max_candidate_sets = 64;
  opt.search.max_move_evaluations = 2'000'000;
  const PartitionerResult r = partition_design(design, {6800, 64, 150}, opt);
  if (!r.feasible) {
    std::cerr << "case study infeasible\n";
    return 1;
  }

  const IcapModel icap;
  const double stream_clock_hz = 200e6;
  const std::uint32_t arrival_interval = 4;  // one sample every 4 cycles

  std::cout << "=== Ablation: FIFO depth needed to hide one region "
               "reconfiguration ===\n";
  std::cout << "stream clock 200 MHz, one item per " << arrival_interval
            << " cycles; ICAP at "
            << icap.effective_bandwidth_bps() / 1000000 << " MB/s\n\n";

  TextTable t({"Region", "Frames", "Outage", "Arrivals in outage",
               "Min FIFO depth (simulated)"});
  for (std::size_t reg = 0; reg < r.proposed.eval.regions.size(); ++reg) {
    const RegionReport& region = r.proposed.eval.regions[reg];
    if (region.frames == 0) continue;
    const std::uint64_t outage_ns = icap.reconfiguration_ns(region.frames);
    const auto outage_cycles = static_cast<std::uint64_t>(
        static_cast<double>(outage_ns) * 1e-9 * stream_clock_hz);
    const std::uint64_t analytic = outage_cycles / arrival_interval + 1;
    const std::size_t simulated = min_depth(outage_cycles, arrival_interval);
    t.add_row({"PRR" + std::to_string(reg + 1),
               with_commas(region.frames),
               fixed(static_cast<double>(outage_ns) / 1e3, 0) + " us",
               with_commas(analytic), with_commas(simulated)});
  }
  std::cout << t.render();
  std::cout << "\nReading: the simulated minimum is ~half the "
               "arrivals-during-outage bound because the chain has two "
               "FIFOs of that depth sharing the backlog. Either way, large "
               "regions (the video decoder) need ~10^5 buffered samples -- "
               "on-chip FIFOs cannot hide them, which is why minimising "
               "reconfiguration time at the partitioning level (this "
               "paper) rather than buffering it away is the right lever.\n";
  return 0;
}
