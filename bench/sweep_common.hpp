#pragma once

// Shared driver for the paper's synthetic evaluation (§V, Figs. 7-9):
// generates the synthetic suite, partitions every design on its smallest
// workable Virtex-5 device, and returns one row per design.

#include <cstdint>
#include <string>
#include <vector>

#include "core/partitioner.hpp"
#include "design/synthetic.hpp"

namespace prpart::bench {

struct SweepRow {
  std::size_t index = 0;
  CircuitClass circuit_class = CircuitClass::Logic;
  std::string device;
  std::size_t device_index = 0;
  bool escalated = false;

  std::uint64_t proposed_total = 0;
  std::uint64_t proposed_worst = 0;
  std::uint64_t modular_total = 0;
  std::uint64_t modular_worst = 0;
  std::uint64_t single_total = 0;
  std::uint64_t single_worst = 0;
  bool modular_fits = false;
  /// Smallest library device whose capacity covers the modular scheme's
  /// resource bill (size_t(-1) when none does).
  std::size_t modular_min_device = 0;

  // Deterministic search-effort counters of the design's final (accepted)
  // search — the branch-and-bound regression signal in BENCH_sweep.json.
  std::uint64_t search_units = 0;
  std::uint64_t search_units_pruned = 0;
  std::uint64_t search_move_evaluations = 0;
  std::uint64_t search_states_recorded = 0;
};

struct SweepResult {
  std::vector<SweepRow> rows;
  std::size_t designs = 0;
  std::size_t escalated = 0;          ///< §V: "201 of the 1000 designs"
  std::size_t smaller_than_modular = 0;  ///< §V: "in 13 cases ..."
  double seconds = 0.0;
};

/// Number of designs: $PRPART_DESIGNS when set, otherwise `fallback`.
/// The default matches the paper's 1000-design evaluation (~10 s).
std::size_t sweep_design_count(std::size_t fallback = 1000);

/// Runs the sweep, deterministic in `seed`.
SweepResult run_sweep(std::uint64_t seed, std::size_t count);

/// Rows sorted by target device size then index (the x-axis of Figs. 7-8).
std::vector<const SweepRow*> sorted_by_device(const SweepResult& result);

}  // namespace prpart::bench
