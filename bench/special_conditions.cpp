// Reproduces §IV-D "Special Conditions": designs without mode relations
// (the example borrowed from related work [7]: CAN->FIR vs
// Ethernet->FPU->CRC). Each one-off module gets a single mode; absence is
// mode 0 and no connectivity-matrix column is allocated for it. The bench
// prints the matrix and the partitioning found at two budgets.
#include <iostream>

#include "core/connectivity.hpp"
#include "core/partitioner.hpp"
#include "core/report.hpp"
#include "design/builder.hpp"
#include "util/table.hpp"

int main() {
  using namespace prpart;

  const Design design =
      DesignBuilder("special-conditions")
          .module("CAN", {{"C1", {120, 1, 0}}})
          .module("FIR", {{"F1", {200, 0, 6}}})
          .module("Eth", {{"E1", {340, 4, 0}}})
          .module("FPU", {{"P1", {500, 0, 12}}})
          .module("CRC", {{"R1", {60, 0, 0}}})
          .configuration("conf1", {{"CAN", "C1"}, {"FIR", "F1"}})
          .configuration("conf2",
                         {{"Eth", "E1"}, {"FPU", "P1"}, {"CRC", "R1"}})
          .build();

  std::cout << "=== §IV-D special conditions: one-off modules, mode 0 = "
               "absent ===\n\n";

  const ConnectivityMatrix matrix(design);
  std::cout << "Connectivity matrix (" << matrix.configs() << " x "
            << matrix.modes() << "; no column for mode 0):\n";
  TextTable m({"Config", "C1", "F1", "E1", "P1", "R1"});
  for (std::size_t c = 0; c < matrix.configs(); ++c) {
    std::vector<std::string> row = {design.configurations()[c].name};
    for (std::size_t j = 0; j < matrix.modes(); ++j)
      row.push_back(matrix.at(c, j) ? "1" : "0");
    m.add_row(row);
  }
  std::cout << m.render() << "\n";

  for (const ResourceVec budget :
       {ResourceVec{2000, 10, 20}, ResourceVec{960, 5, 16}}) {
    std::cout << "--- budget " << budget.to_string() << " ---\n";
    const PartitionerResult r = partition_design(design, budget);
    if (!r.feasible) {
      std::cout << "infeasible\n\n";
      continue;
    }
    std::cout << render_scheme_comparison(r);
    std::cout << "Proposed partitioning:\n"
              << render_scheme_partitions(design, r.base_partitions,
                                          r.proposed.scheme)
              << "\n";
  }
  std::cout << "Reading: with room to spare, every module sits in its own "
               "never-reconfigured slot (zero total time); when squeezed "
               "below the sum of both configurations, modes of different "
               "configurations share regions, exactly as §IV-D describes.\n";
  return 0;
}
