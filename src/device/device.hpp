#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/resources.hpp"

namespace prpart {

/// Resource column types in the Virtex-5 columnar layout (Fig. 4).
enum class BlockType : std::uint8_t { Clb, Bram, Dsp };

const char* to_string(BlockType t);

/// A target FPGA: total fabric capacity plus the row/column geometry used by
/// the floorplanner substrate.
///
/// Virtex-5 devices are organised in `rows` configuration rows; every block
/// (column of one resource type) spans the full device height, and a tile is
/// the 1-row x 1-block intersection (Fig. 4). A configuration frame spans one
/// row, so the tile is the smallest reconfigurable unit.
class Device {
 public:
  Device(std::string name, ResourceVec capacity, std::uint32_t rows);

  /// Explicit column layout, for tests and custom architectures; capacity
  /// is derived from the columns.
  Device(std::string name, std::uint32_t rows, std::vector<BlockType> columns);

  const std::string& name() const { return name_; }
  /// Total fabric resources.
  const ResourceVec& capacity() const { return capacity_; }
  std::uint32_t rows() const { return rows_; }

  /// Column layout left to right; derived from the capacity so that
  /// rows x columns covers the capacity exactly or with minimal slack.
  const std::vector<BlockType>& columns() const { return columns_; }

  /// Number of columns of the given type.
  std::uint32_t column_count(BlockType t) const;

  /// Resources contained in one tile of column `col`.
  ResourceVec tile_resources(std::size_t col) const;

  /// Total tiles of each type = columns(type) * rows. Capacity expressed in
  /// tiles is what actually bounds PR designs, since regions are whole tiles.
  std::uint32_t tiles_of(BlockType t) const { return column_count(t) * rows_; }

 private:
  void build_columns();

  std::string name_;
  ResourceVec capacity_;
  std::uint32_t rows_;
  std::vector<BlockType> columns_;
};

/// The Virtex-5 device library used by the paper's evaluation (Figs. 7-8 use
/// the family sorted by size; the case study targets the FX70T).
///
/// Capacities follow the family datasheet scaling; the exact values are
/// documented model parameters (see DESIGN.md "What the paper used -> what we
/// build") rather than vendor-exact numbers.
class DeviceLibrary {
 public:
  /// The paper's evaluation subset (the devices on the x-axis of Figs. 7-8
  /// plus the case-study FX70T), ordered smallest to largest.
  static DeviceLibrary virtex5();

  /// The full Virtex-5 family (LX / LXT / SXT / FXT / TXT lines), ordered
  /// smallest to largest by logic capacity.
  static DeviceLibrary virtex5_full();

  /// Cross-family reference parts with hand-authored column layouts, for
  /// exercising the floorplanner against grids the Virtex-5 interleaving
  /// heuristic never produces: a Zynq-7020-like part (BRAM and DSP columns
  /// paired back to back), a BRAM-starved edge part (all memory pushed to
  /// the die edges) and a large Virtex-7-like part (wide uninterrupted CLB
  /// spans). Ordered smallest to largest.
  static DeviceLibrary reference_parts();

  /// virtex5() plus reference_parts() appended: the catalogue `--device`
  /// resolves names against. The Virtex-5 prefix keeps its size order, so
  /// auto-device walks behave exactly as with virtex5() unless a design
  /// fits no Virtex-5 part at all.
  static DeviceLibrary extended();

  /// Devices ordered by ascending size.
  const std::vector<Device>& devices() const { return devices_; }

  /// Lookup by name; throws DeviceError when unknown.
  const Device& by_name(const std::string& name) const;

  /// Index of the named device in size order; throws DeviceError.
  std::size_t index_of(const std::string& name) const;

  /// Smallest device whose capacity covers `required` in whole tiles, or
  /// nullptr when even the largest is too small.
  const Device* smallest_fitting(const ResourceVec& required) const;

  void add(Device d) { devices_.push_back(std::move(d)); }

 private:
  std::vector<Device> devices_;
};

}  // namespace prpart
