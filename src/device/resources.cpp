#include "device/resources.hpp"

namespace prpart {

std::string ResourceVec::to_string() const {
  return std::to_string(clbs) + " CLBs, " + std::to_string(brams) +
         " BRAMs, " + std::to_string(dsps) + " DSPs";
}

}  // namespace prpart
