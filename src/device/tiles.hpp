#pragma once

#include <cstdint>

#include "device/resources.hpp"

namespace prpart {

/// Architecture constants of the Xilinx Virtex-5 configuration fabric, taken
/// verbatim from §IV-B of the paper (and UG191).
namespace arch {
/// Primitives per tile (one row high, one block wide).
inline constexpr std::uint32_t kClbsPerTile = 20;
inline constexpr std::uint32_t kDspsPerTile = 8;
inline constexpr std::uint32_t kBramsPerTile = 4;

/// Configuration frames per tile (W_t in Eqs. 1/6).
inline constexpr std::uint32_t kFramesPerClbTile = 36;
inline constexpr std::uint32_t kFramesPerDspTile = 28;
inline constexpr std::uint32_t kFramesPerBramTile = 30;

/// One frame holds 41 32-bit words = 1312 bits.
inline constexpr std::uint32_t kWordsPerFrame = 41;
inline constexpr std::uint32_t kBitsPerFrame = 1312;
}  // namespace arch

/// Tile requirement of a region, per resource type (Eqs. 3-5).
struct TileCount {
  std::uint32_t clb_tiles = 0;
  std::uint32_t bram_tiles = 0;
  std::uint32_t dsp_tiles = 0;

  constexpr bool operator==(const TileCount&) const = default;

  /// Total configuration frames in these tiles (Eq. 6).
  constexpr std::uint64_t frames() const {
    return std::uint64_t{clb_tiles} * arch::kFramesPerClbTile +
           std::uint64_t{bram_tiles} * arch::kFramesPerBramTile +
           std::uint64_t{dsp_tiles} * arch::kFramesPerDspTile;
  }

  /// Resources actually occupied once rounded up to whole tiles. This is
  /// what the scheme tables report (Table IV's resource columns).
  constexpr ResourceVec resources() const {
    return {clb_tiles * arch::kClbsPerTile, bram_tiles * arch::kBramsPerTile,
            dsp_tiles * arch::kDspsPerTile};
  }
};

/// Rounds a raw resource requirement up to whole tiles (Eqs. 3-5). The paper
/// forbids sharing a tile between regions, so every region's footprint is a
/// whole number of tiles per resource type.
constexpr TileCount tiles_for(const ResourceVec& r) {
  auto ceil_div = [](std::uint32_t a, std::uint32_t b) {
    return (a + b - 1) / b;
  };
  return {ceil_div(r.clbs, arch::kClbsPerTile),
          ceil_div(r.brams, arch::kBramsPerTile),
          ceil_div(r.dsps, arch::kDspsPerTile)};
}

/// Frames needed to reconfigure a region with raw requirement `r` (Eq. 1).
constexpr std::uint64_t frames_for(const ResourceVec& r) {
  return tiles_for(r).frames();
}

}  // namespace prpart
