#pragma once

#include <cstdint>
#include <string>

namespace prpart {

/// Resource requirement / capacity vector over the three reconfigurable
/// primitive types of the paper's architecture model (§IV-B).
///
/// Note on units: the paper uses "CLBs" and "slices" interchangeably in its
/// case study; we follow its prose and call the logic unit a CLB throughout.
struct ResourceVec {
  std::uint32_t clbs = 0;
  std::uint32_t brams = 0;
  std::uint32_t dsps = 0;

  constexpr ResourceVec() = default;
  constexpr ResourceVec(std::uint32_t c, std::uint32_t b, std::uint32_t d)
      : clbs(c), brams(b), dsps(d) {}

  constexpr bool operator==(const ResourceVec&) const = default;

  /// Element-wise sum: the area of modes implemented concurrently.
  constexpr ResourceVec operator+(const ResourceVec& o) const {
    return {clbs + o.clbs, brams + o.brams, dsps + o.dsps};
  }
  ResourceVec& operator+=(const ResourceVec& o) { return *this = *this + o; }

  /// True when every element fits within `capacity` (Eq. 2 fit check).
  constexpr bool fits_in(const ResourceVec& capacity) const {
    return clbs <= capacity.clbs && brams <= capacity.brams &&
           dsps <= capacity.dsps;
  }

  constexpr bool is_zero() const { return clbs == 0 && brams == 0 && dsps == 0; }

  std::string to_string() const;
};

/// Element-wise maximum: the area of a region holding alternatives (Eq. 2).
constexpr ResourceVec elementwise_max(const ResourceVec& a,
                                      const ResourceVec& b) {
  return {a.clbs > b.clbs ? a.clbs : b.clbs,
          a.brams > b.brams ? a.brams : b.brams,
          a.dsps > b.dsps ? a.dsps : b.dsps};
}

}  // namespace prpart
