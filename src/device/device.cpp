#include "device/device.hpp"

#include <algorithm>

#include "device/tiles.hpp"
#include "util/status.hpp"

namespace prpart {

const char* to_string(BlockType t) {
  switch (t) {
    case BlockType::Clb: return "CLB";
    case BlockType::Bram: return "BRAM";
    case BlockType::Dsp: return "DSP";
  }
  return "?";
}

Device::Device(std::string name, ResourceVec capacity, std::uint32_t rows)
    : name_(std::move(name)), capacity_(capacity), rows_(rows) {
  require(rows_ > 0, "device must have at least one row");
  require(capacity_.clbs > 0, "device must have CLBs");
  build_columns();
}

Device::Device(std::string name, std::uint32_t rows,
               std::vector<BlockType> columns)
    : name_(std::move(name)), rows_(rows), columns_(std::move(columns)) {
  require(rows_ > 0, "device must have at least one row");
  require(!columns_.empty(), "device must have columns");
  for (BlockType t : columns_) {
    switch (t) {
      case BlockType::Clb: capacity_.clbs += arch::kClbsPerTile * rows_; break;
      case BlockType::Bram:
        capacity_.brams += arch::kBramsPerTile * rows_;
        break;
      case BlockType::Dsp: capacity_.dsps += arch::kDspsPerTile * rows_; break;
    }
  }
}

void Device::build_columns() {
  auto ceil_div = [](std::uint32_t a, std::uint32_t b) {
    return (a + b - 1) / b;
  };
  const std::uint32_t clb_cols =
      ceil_div(capacity_.clbs, arch::kClbsPerTile * rows_);
  const std::uint32_t bram_cols =
      ceil_div(capacity_.brams, arch::kBramsPerTile * rows_);
  const std::uint32_t dsp_cols =
      ceil_div(capacity_.dsps, arch::kDspsPerTile * rows_);

  // Interleave: Virtex devices scatter BRAM/DSP columns through the CLB
  // fabric. We distribute each special column after an even stride of CLB
  // columns, which is what the floorplanner's rectangle search relies on.
  const std::uint32_t specials = bram_cols + dsp_cols;
  columns_.clear();
  columns_.reserve(clb_cols + specials);
  std::uint32_t bram_left = bram_cols;
  std::uint32_t dsp_left = dsp_cols;
  const std::uint32_t stride = specials == 0 ? clb_cols + 1
                                             : std::max<std::uint32_t>(
                                                   1, clb_cols / (specials + 1));
  std::uint32_t since_special = 0;
  std::uint32_t clb_left = clb_cols;
  bool next_is_bram = true;  // alternate BRAM / DSP columns
  while (clb_left + bram_left + dsp_left > 0) {
    const bool place_special =
        (bram_left + dsp_left > 0) &&
        (clb_left == 0 || since_special >= stride);
    if (place_special) {
      if ((next_is_bram && bram_left > 0) || dsp_left == 0) {
        columns_.push_back(BlockType::Bram);
        --bram_left;
      } else {
        columns_.push_back(BlockType::Dsp);
        --dsp_left;
      }
      next_is_bram = !next_is_bram;
      since_special = 0;
    } else {
      columns_.push_back(BlockType::Clb);
      --clb_left;
      ++since_special;
    }
  }
}

std::uint32_t Device::column_count(BlockType t) const {
  return static_cast<std::uint32_t>(
      std::count(columns_.begin(), columns_.end(), t));
}

ResourceVec Device::tile_resources(std::size_t col) const {
  require(col < columns_.size(), "column index out of range");
  switch (columns_[col]) {
    case BlockType::Clb: return {arch::kClbsPerTile, 0, 0};
    case BlockType::Bram: return {0, arch::kBramsPerTile, 0};
    case BlockType::Dsp: return {0, 0, arch::kDspsPerTile};
  }
  return {};
}

DeviceLibrary DeviceLibrary::virtex5() {
  // Ordered smallest to largest; this ordering is the x-axis of Figs. 7-8.
  // Values follow the Virtex-5 family scaling (see DESIGN.md for the
  // substitution note). Rows follow device height (one row = 20 CLBs high).
  DeviceLibrary lib;
  lib.add(Device("XC5VLX20T", {3120, 26, 24}, 3));
  lib.add(Device("XC5VLX30", {4800, 32, 32}, 4));
  lib.add(Device("XC5VFX30T", {5120, 68, 64}, 4));
  lib.add(Device("XC5VSX35T", {5440, 84, 192}, 4));
  lib.add(Device("XC5VFX50T", {7200, 96, 128}, 6));
  lib.add(Device("XC5VFX70T", {11200, 148, 128}, 8));
  lib.add(Device("XC5VSX70T", {11200, 150, 384}, 8));
  lib.add(Device("XC5VFX95T", {14720, 244, 256}, 8));
  lib.add(Device("XC5VFX130T", {20480, 298, 320}, 10));
  lib.add(Device("XC5VFX200T", {30720, 456, 384}, 12));
  return lib;
}

DeviceLibrary DeviceLibrary::virtex5_full() {
  // Family capacities follow the DS100 scaling; see the DESIGN.md
  // substitution note. Sorted ascending by logic capacity.
  DeviceLibrary lib;
  lib.add(Device("XC5VLX20T", {3120, 26, 24}, 3));
  lib.add(Device("XC5VLX30", {4800, 32, 32}, 4));
  lib.add(Device("XC5VLX30T", {4800, 36, 32}, 4));
  lib.add(Device("XC5VFX30T", {5120, 68, 64}, 4));
  lib.add(Device("XC5VSX35T", {5440, 84, 192}, 4));
  lib.add(Device("XC5VLX50", {7200, 48, 48}, 6));
  lib.add(Device("XC5VLX50T", {7200, 60, 48}, 6));
  lib.add(Device("XC5VFX50T", {7200, 96, 128}, 6));
  lib.add(Device("XC5VSX50T", {8160, 132, 288}, 6));
  lib.add(Device("XC5VFX70T", {11200, 148, 128}, 8));
  lib.add(Device("XC5VSX70T", {11200, 150, 384}, 8));
  lib.add(Device("XC5VLX85", {12960, 96, 48}, 6));
  lib.add(Device("XC5VLX85T", {12960, 108, 48}, 6));
  lib.add(Device("XC5VSX95T", {14720, 244, 640}, 8));
  lib.add(Device("XC5VFX95T", {14720, 244, 256}, 8));
  lib.add(Device("XC5VFX100T", {16000, 228, 256}, 10));
  lib.add(Device("XC5VLX110", {17280, 128, 64}, 8));
  lib.add(Device("XC5VLX110T", {17280, 148, 64}, 8));
  lib.add(Device("XC5VFX130T", {20480, 298, 320}, 10));
  lib.add(Device("XC5VTX150T", {23200, 228, 80}, 10));
  lib.add(Device("XC5VLX155", {24320, 192, 128}, 8));
  lib.add(Device("XC5VLX155T", {24320, 212, 128}, 8));
  lib.add(Device("XC5VFX200T", {30720, 456, 384}, 12));
  lib.add(Device("XC5VLX220", {34560, 192, 128}, 10));
  lib.add(Device("XC5VLX220T", {34560, 212, 128}, 10));
  lib.add(Device("XC5VSX240T", {37440, 516, 1056}, 12));
  lib.add(Device("XC5VTX240T", {37440, 324, 96}, 12));
  lib.add(Device("XC5VLX330", {51840, 288, 192}, 12));
  lib.add(Device("XC5VLX330T", {51840, 324, 192}, 12));
  return lib;
}

namespace {

/// Expands a layout pattern string ('C', 'B', 'D' per column, repeated
/// `repeats` times) into a column vector; spaces are ignored.
std::vector<BlockType> columns_from_pattern(const char* pattern,
                                            std::uint32_t repeats) {
  std::vector<BlockType> columns;
  for (std::uint32_t rep = 0; rep < repeats; ++rep) {
    for (const char* p = pattern; *p != '\0'; ++p) {
      switch (*p) {
        case 'C': columns.push_back(BlockType::Clb); break;
        case 'B': columns.push_back(BlockType::Bram); break;
        case 'D': columns.push_back(BlockType::Dsp); break;
        case ' ': break;
        default: throw InternalError("bad column pattern character");
      }
    }
  }
  return columns;
}

}  // namespace

DeviceLibrary DeviceLibrary::reference_parts() {
  DeviceLibrary lib;
  // Artix-7-35T-like edge part: all BRAM pushed to the left die edge and
  // all DSP to the right, so any region mixing memory and arithmetic must
  // span most of the die width. 3 rows x 16 columns.
  lib.add(Device("XC7A35T", 3, columns_from_pattern("BB CCCCCCCCCCCC DD", 1)));
  // Zynq-7020-like part: BRAM and DSP columns paired back to back in the
  // middle of each fabric stripe (the 7-series pairing), 5 rows x 50
  // columns.
  lib.add(Device("XC7Z020", 5, columns_from_pattern("CCCC BD CCCC", 5)));
  // Virtex-7-585T-like part: long uninterrupted CLB spans with sparse
  // single special columns, 14 rows x 72 columns.
  lib.add(Device("XC7V585T", 14,
                 columns_from_pattern("B CCCCCCCCCCCCCCCC D", 4)));
  return lib;
}

DeviceLibrary DeviceLibrary::extended() {
  DeviceLibrary lib = virtex5();
  const DeviceLibrary ref = reference_parts();
  for (const Device& d : ref.devices()) lib.add(d);
  return lib;
}

const Device& DeviceLibrary::by_name(const std::string& name) const {
  for (const Device& d : devices_)
    if (d.name() == name) return d;
  throw DeviceError("unknown device '" + name + "'");
}

std::size_t DeviceLibrary::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < devices_.size(); ++i)
    if (devices_[i].name() == name) return i;
  throw DeviceError("unknown device '" + name + "'");
}

const Device* DeviceLibrary::smallest_fitting(
    const ResourceVec& required) const {
  for (const Device& d : devices_)
    if (required.fits_in(d.capacity())) return &d;
  return nullptr;
}

}  // namespace prpart
