#pragma once

#include <string>
#include <vector>

#include "bitstream/bitstream.hpp"
#include "core/partitioner.hpp"
#include "floorplan/annealing.hpp"
#include "floorplan/floorplanner.hpp"

namespace prpart {

/// Options for the complete tool flow.
struct FlowOptions {
  /// Partitioner configuration, including `partitioner.search.threads`:
  /// the region-allocation search inside every feedback iteration fans its
  /// work units over that many worker threads (0 = hardware concurrency)
  /// and returns the same schemes for any value, so flow outcomes stay
  /// reproducible while the hot path scales with the machine.
  PartitionerOptions partitioner;
  /// Floorplan feasibility feedback (the paper's §VI future work): when the
  /// chosen scheme cannot be floorplanned, shrink the budget and
  /// re-partition, up to this many iterations.
  std::size_t max_feedback_iterations = 6;
  /// Budget shrink per feedback iteration, in tenths (1 = 10%).
  std::uint32_t budget_shrink_tenths = 1;
  /// When greedy floorplanning fails for the best scheme and all ranked
  /// alternatives, try the simulated-annealing floorplanner before
  /// shrinking the budget (slower, but untangles fragmented instances).
  bool use_annealing_fallback = true;
  /// Knobs of that annealing fallback (seed, iterations, schedule). Flow
  /// outcomes are reproducible because the annealer is a pure function of
  /// these options — change the seed here to explore other packings.
  AnnealingOptions annealing;
};

/// Everything the tool flow of Fig. 2 produces for one design on one
/// device: the partitioning, the floorplan with UCF constraints, and the
/// partial bitstream set ready for external memory.
struct FlowResult {
  bool success = false;
  std::string failure_reason;
  const Device* device = nullptr;
  PartitionerResult partitioning;
  FloorplanResult floorplan;
  std::string ucf;
  std::vector<Bitstream> bitstreams;
  /// 1 = floorplanned on the first try; >1 = feedback iterations used.
  std::size_t iterations = 0;
  /// Index into the partitioner's ranked alternatives that floorplanned
  /// (0 = the best scheme itself).
  std::size_t alternative_used = 0;
};

/// Runs the whole flow on a fixed device: partition (steps 1-4), floorplan
/// (step 5), constraints (step 6), bitstreams (step 7), with the
/// partitioner <- floorplanner feedback loop closing infeasibility gaps.
FlowResult run_flow(const Design& design, const Device& device,
                    const FlowOptions& options = {});

/// Device-selection variant: walks the library from the smallest device up
/// and returns the first device where the full flow (including
/// floorplanning) succeeds. Throws DeviceError when none works.
FlowResult run_flow_auto_device(const Design& design,
                                const DeviceLibrary& library,
                                const FlowOptions& options = {});

}  // namespace prpart
