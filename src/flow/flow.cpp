#include "flow/flow.hpp"

#include "core/connectivity.hpp"
#include "core/eval_kernel.hpp"
#include "floorplan/annealing.hpp"
#include "util/status.hpp"

namespace prpart {

namespace {

/// Finishes a FlowResult from a scheme that floorplanned successfully.
void finish(FlowResult& result, const Design& design,
            PartitionerResult partitioning, FloorplanResult plan,
            const Device& device) {
  result.success = true;
  result.ucf = to_ucf(device, plan.placements);
  result.bitstreams = generate_bitstreams(
      design, partitioning.base_partitions, partitioning.proposed.scheme,
      partitioning.proposed.eval);
  result.partitioning = std::move(partitioning);
  result.floorplan = std::move(plan);
}

}  // namespace

FlowResult run_flow(const Design& design, const Device& device,
                    const FlowOptions& options) {
  FlowResult result;
  result.device = &device;

  ResourceVec budget = device.capacity();
  const Floorplanner floorplanner(device);

  for (result.iterations = 1;
       result.iterations <= options.max_feedback_iterations;
       ++result.iterations) {
    PartitionerResult partitioning =
        partition_design(design, budget, options.partitioner);
    if (!partitioning.feasible) {
      result.failure_reason = "design does not fit " + device.name() +
                              " (budget " + budget.to_string() + ")";
      return result;
    }

    FloorplanResult plan =
        floorplanner.place_scheme(partitioning.proposed.eval);
    if (plan.success) {
      finish(result, design, std::move(partitioning), std::move(plan),
             device);
      return result;
    }

    // First feedback lever (§VI): try the search's ranked runner-up
    // schemes; a slightly costlier grouping often floorplans where the
    // best one fragments.
    if (!partitioning.alternatives.empty()) {
      const ConnectivityMatrix matrix(design);
      const EvalContext context(design, matrix, partitioning.base_partitions);
      EvalScratch scratch;
      for (std::size_t alt = 1; alt < partitioning.alternatives.size();
           ++alt) {
        SchemeEvaluation eval = context.evaluate(
            partitioning.alternatives[alt].scheme, budget, scratch);
        if (!eval.valid || !eval.fits) continue;
        FloorplanResult alt_plan = floorplanner.place_scheme(eval);
        if (!alt_plan.success) continue;
        partitioning.proposed.scheme =
            partitioning.alternatives[alt].scheme;
        partitioning.proposed.eval = std::move(eval);
        partitioning.proposed.name = "Proposed (alternative)";
        result.alternative_used = alt;
        finish(result, design, std::move(partitioning),
               std::move(alt_plan), device);
        return result;
      }
    }

    // Second lever: joint (simulated-annealing) placement of the best
    // scheme's rectangles; first-fit commitments are what usually wedge.
    if (options.use_annealing_fallback) {
      std::vector<TileCount> need;
      need.reserve(partitioning.proposed.eval.regions.size());
      for (const RegionReport& region : partitioning.proposed.eval.regions)
        need.push_back(region.tiles);
      FloorplanResult annealed = anneal_place(device, need, options.annealing);
      if (annealed.success) {
        finish(result, design, std::move(partitioning), std::move(annealed),
               device);
        return result;
      }
    }

    // Last lever: the scheme fit by resource count but not as rectangles;
    // tighten the budget so the next partitioning leaves more slack.
    const std::uint32_t tenths = options.budget_shrink_tenths;
    require(tenths >= 1 && tenths <= 9, "budget shrink must be 1..9 tenths");
    budget = ResourceVec{budget.clbs - budget.clbs * tenths / 10,
                         budget.brams - budget.brams * tenths / 10,
                         budget.dsps - budget.dsps * tenths / 10};
    result.partitioning = std::move(partitioning);
    result.floorplan = std::move(plan);
  }
  --result.iterations;  // loop overshoots by one on failure
  result.failure_reason = "no floorplannable scheme within " +
                          std::to_string(options.max_feedback_iterations) +
                          " feedback iterations on " + device.name();
  return result;
}

FlowResult run_flow_auto_device(const Design& design,
                                const DeviceLibrary& library,
                                const FlowOptions& options) {
  require(!library.devices().empty(), "device library is empty");
  FlowResult last;
  for (const Device& device : library.devices()) {
    last = run_flow(design, device, options);
    if (last.success) return last;
  }
  throw DeviceError("design '" + design.name() +
                    "' completes the flow on no device in the library (last: " +
                    last.failure_reason + ")");
}

}  // namespace prpart
