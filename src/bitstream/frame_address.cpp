#include "bitstream/frame_address.hpp"

#include "device/tiles.hpp"
#include "util/status.hpp"

namespace prpart {

FrameMap::FrameMap(const Device& device) : device_(device) {
  column_offset_.reserve(device.columns().size());
  for (std::uint32_t c = 0; c < device.columns().size(); ++c) {
    column_offset_.push_back(frames_per_row_);
    frames_per_row_ += frames_in_column(c);
  }
  total_frames_ = frames_per_row_ * device.rows();
}

std::uint32_t FrameMap::frames_in_column(std::uint32_t major) const {
  require(major < device_.columns().size(), "column index out of range");
  switch (device_.columns()[major]) {
    case BlockType::Clb: return arch::kFramesPerClbTile;
    case BlockType::Bram: return arch::kFramesPerBramTile;
    case BlockType::Dsp: return arch::kFramesPerDspTile;
  }
  return 0;
}

bool FrameMap::valid(const FrameAddress& a) const {
  return a.row < device_.rows() && a.major < device_.columns().size() &&
         a.minor < frames_in_column(a.major);
}

std::uint64_t FrameMap::linear_index(const FrameAddress& a) const {
  require(valid(a), "invalid frame address");
  return std::uint64_t{a.row} * frames_per_row_ + column_offset_[a.major] +
         a.minor;
}

}  // namespace prpart
