#pragma once

#include <cstdint>

#include "device/device.hpp"

namespace prpart {

/// Address of one configuration frame: device row, block column (major),
/// and frame-within-tile (minor). This mirrors the Virtex-5 frame address
/// register (UG191) with a simplified packing: we keep one flat block type
/// and no top/bottom split.
struct FrameAddress {
  std::uint32_t row = 0;
  std::uint32_t major = 0;
  std::uint32_t minor = 0;

  constexpr bool operator==(const FrameAddress&) const = default;

  /// Packs into a 32-bit FAR word: row[28:22] major[21:10] minor[9:0].
  std::uint32_t pack() const {
    return (row << 22) | ((major & 0xfff) << 10) | (minor & 0x3ff);
  }
  static FrameAddress unpack(std::uint32_t word) {
    return {word >> 22, (word >> 10) & 0xfff, word & 0x3ff};
  }
};

/// Frame-address arithmetic for one device: how many frames each column
/// carries per row (by block type, §IV-B), linearisation for storage, and
/// validity checks.
class FrameMap {
 public:
  explicit FrameMap(const Device& device);

  const Device& device() const { return device_; }

  /// Frames per row-tile of column `major` (36/30/28 for CLB/BRAM/DSP).
  std::uint32_t frames_in_column(std::uint32_t major) const;

  /// Total frames on the device = rows x sum of column frame counts.
  std::uint64_t total_frames() const { return total_frames_; }

  bool valid(const FrameAddress& a) const;

  /// Dense index in [0, total_frames) for storage; row-major by (row,
  /// major, minor). Throws InternalError on invalid addresses.
  std::uint64_t linear_index(const FrameAddress& a) const;

 private:
  const Device& device_;
  std::vector<std::uint64_t> column_offset_;  ///< frame offset of column c in a row
  std::uint64_t frames_per_row_ = 0;
  std::uint64_t total_frames_ = 0;
};

}  // namespace prpart
