#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "design/design.hpp"

namespace prpart {

/// A synthetic partial bitstream: frame-accurate in size, with a small
/// header modelled on the Virtex-5 configuration packets (UG191). This
/// substrate stands in for step 7 of the tool flow ("a complete
/// configuration bitstream and partial bitstreams for each region under
/// different configurations are generated"); the runtime simulator and the
/// benches only depend on sizes being exactly frames * 41 words plus the
/// fixed header.
struct Bitstream {
  std::string name;
  std::size_t region = 0;
  std::size_t partition = 0;  ///< master-list base partition index
  std::uint64_t frames = 0;
  std::vector<std::uint32_t> words;  ///< header + payload

  /// Bytes on the storage medium.
  std::uint64_t bytes() const { return words.size() * 4; }
};

/// Header layout of the synthetic bitstreams.
namespace bitstream_layout {
inline constexpr std::uint32_t kSyncWord = 0xAA995566;
/// sync, region id, partition id, frame count, payload CRC placeholder.
inline constexpr std::size_t kHeaderWords = 5;
}  // namespace bitstream_layout

/// Generates the partial bitstream for one (region, base partition) pair of
/// an evaluated scheme. Payload content is a deterministic function of
/// (region, partition), so regenerated bitstreams are bit-identical.
Bitstream generate_bitstream(const Design& design,
                             const std::vector<BasePartition>& partitions,
                             const SchemeEvaluation& evaluation,
                             std::size_t region, std::size_t member);

/// All partial bitstreams of a scheme: one per (region, member) pair. This
/// is the artefact set a deployment would store in external memory.
std::vector<Bitstream> generate_bitstreams(
    const Design& design, const std::vector<BasePartition>& partitions,
    const PartitionScheme& scheme, const SchemeEvaluation& evaluation);

/// Total storage bytes of a bitstream set.
std::uint64_t total_bytes(const std::vector<Bitstream>& set);

/// Validates header integrity and size of a bitstream; throws ParseError on
/// corruption. Used by tests and the runtime example.
void validate_bitstream(const Bitstream& b);

}  // namespace prpart
