#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitstream/frame_address.hpp"
#include "device/tiles.hpp"
#include "floorplan/floorplanner.hpp"

namespace prpart {

/// Simulated configuration memory of one device: a word array addressed by
/// frame. Placed partial bitstreams are applied through it, which lets the
/// tests verify the central PR safety property — a partial reconfiguration
/// touches exactly the frames of its region's rectangle and nothing else.
class ConfigMemory {
 public:
  explicit ConfigMemory(const Device& device);

  const FrameMap& frame_map() const { return map_; }

  void write_frame(const FrameAddress& a,
                   std::span<const std::uint32_t> words);
  std::span<const std::uint32_t> read_frame(const FrameAddress& a) const;

  /// Total frame writes performed (reconfiguration traffic).
  std::uint64_t frame_writes() const { return frame_writes_; }

  /// Snapshot for diffing in tests.
  std::vector<std::uint32_t> snapshot() const { return words_; }

 private:
  FrameMap map_;
  std::vector<std::uint32_t> words_;
  std::uint64_t frame_writes_ = 0;
};

/// All frame addresses inside a floorplanned region rectangle, in FAR
/// order. A region is reconfigured by rewriting exactly these frames.
std::vector<FrameAddress> frames_of_placement(const Device& device,
                                              const RegionPlacement& placement);

/// A frame-addressed partial bitstream: a header followed by
/// (packed FAR, 41 data words) packets covering a region rectangle.
/// This is the placed counterpart of the size-only Bitstream: its length is
/// determined by the floorplan rather than the resource estimate.
class PlacedBitstream {
 public:
  /// Builds the bitstream for `placement`, with payload words derived
  /// deterministically from `payload_seed`.
  PlacedBitstream(const Device& device, const RegionPlacement& placement,
                  std::uint64_t payload_seed, std::string name);

  const std::string& name() const { return name_; }
  std::uint64_t frames() const { return frames_; }
  std::uint64_t bytes() const { return words_.size() * 4; }
  const std::vector<std::uint32_t>& words() const { return words_; }

  /// Writes every packet into the configuration memory. Throws ParseError
  /// on malformed packets (wrong sync word, bad FAR).
  void apply(ConfigMemory& memory) const;

 private:
  std::string name_;
  std::uint64_t frames_ = 0;
  std::vector<std::uint32_t> words_;
};

}  // namespace prpart
