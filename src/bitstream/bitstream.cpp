#include "bitstream/bitstream.hpp"

#include "device/tiles.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace prpart {

namespace {

std::uint32_t payload_crc(const std::vector<std::uint32_t>& words,
                          std::size_t from) {
  // FNV-1a over the payload words; a stand-in for the device CRC.
  std::uint32_t h = 2166136261u;
  for (std::size_t i = from; i < words.size(); ++i) {
    h ^= words[i];
    h *= 16777619u;
  }
  return h;
}

}  // namespace

Bitstream generate_bitstream(const Design& design,
                             const std::vector<BasePartition>& partitions,
                             const SchemeEvaluation& evaluation,
                             std::size_t region, std::size_t member) {
  require(region < evaluation.regions.size(), "region out of range");
  const RegionReport& report = evaluation.regions[region];

  Bitstream b;
  b.region = region;
  b.frames = report.frames;

  // Which master-list partition this member is requires the scheme; callers
  // use generate_bitstreams for that. Here `member` is already the
  // master-list index.
  require(member < partitions.size(), "partition out of range");
  b.partition = member;
  b.name = design.name() + ".prr" + std::to_string(region + 1) + "." +
           partitions[member].label(design);

  const std::uint64_t payload_words = b.frames * arch::kWordsPerFrame;
  b.words.resize(bitstream_layout::kHeaderWords + payload_words);
  // Deterministic payload: seeded by (region, partition).
  Rng rng((static_cast<std::uint64_t>(region) << 32) ^ member ^
          (0xb17557eaull * design.mode_count()));
  for (std::size_t i = bitstream_layout::kHeaderWords; i < b.words.size(); ++i)
    b.words[i] = static_cast<std::uint32_t>(rng.next());

  b.words[0] = bitstream_layout::kSyncWord;
  b.words[1] = static_cast<std::uint32_t>(region);
  b.words[2] = static_cast<std::uint32_t>(member);
  b.words[3] = static_cast<std::uint32_t>(b.frames);
  b.words[4] = payload_crc(b.words, bitstream_layout::kHeaderWords);
  return b;
}

std::vector<Bitstream> generate_bitstreams(
    const Design& design, const std::vector<BasePartition>& partitions,
    const PartitionScheme& scheme, const SchemeEvaluation& evaluation) {
  require(scheme.regions.size() == evaluation.regions.size(),
          "scheme does not match evaluation");
  std::vector<Bitstream> out;
  for (std::size_t r = 0; r < scheme.regions.size(); ++r)
    for (std::size_t p : scheme.regions[r].members)
      out.push_back(generate_bitstream(design, partitions, evaluation, r, p));
  return out;
}

std::uint64_t total_bytes(const std::vector<Bitstream>& set) {
  std::uint64_t bytes = 0;
  for (const Bitstream& b : set) bytes += b.bytes();
  return bytes;
}

void validate_bitstream(const Bitstream& b) {
  if (b.words.size() !=
      bitstream_layout::kHeaderWords + b.frames * arch::kWordsPerFrame)
    throw ParseError("bitstream '" + b.name + "' has wrong size");
  if (b.words.empty() || b.words[0] != bitstream_layout::kSyncWord)
    throw ParseError("bitstream '" + b.name + "' missing sync word");
  if (b.words[3] != b.frames)
    throw ParseError("bitstream '" + b.name + "' frame count mismatch");
  if (b.words[4] != payload_crc(b.words, bitstream_layout::kHeaderWords))
    throw ParseError("bitstream '" + b.name + "' CRC mismatch");
}

}  // namespace prpart
