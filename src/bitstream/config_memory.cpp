#include "bitstream/config_memory.hpp"

#include "bitstream/bitstream.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace prpart {

ConfigMemory::ConfigMemory(const Device& device) : map_(device) {
  words_.assign(map_.total_frames() * arch::kWordsPerFrame, 0);
}

void ConfigMemory::write_frame(const FrameAddress& a,
                               std::span<const std::uint32_t> words) {
  require(words.size() == arch::kWordsPerFrame,
          "a frame is exactly 41 words");
  const std::uint64_t base = map_.linear_index(a) * arch::kWordsPerFrame;
  for (std::size_t i = 0; i < words.size(); ++i) words_[base + i] = words[i];
  ++frame_writes_;
}

std::span<const std::uint32_t> ConfigMemory::read_frame(
    const FrameAddress& a) const {
  const std::uint64_t base = map_.linear_index(a) * arch::kWordsPerFrame;
  return {words_.data() + base, arch::kWordsPerFrame};
}

std::vector<FrameAddress> frames_of_placement(
    const Device& device, const RegionPlacement& placement) {
  const FrameMap map(device);
  std::vector<FrameAddress> out;
  for (std::uint32_t row = placement.row; row < placement.row + placement.height;
       ++row) {
    for (std::uint32_t col = placement.col;
         col < placement.col + placement.width; ++col) {
      const std::uint32_t minors = map.frames_in_column(col);
      for (std::uint32_t minor = 0; minor < minors; ++minor)
        out.push_back(FrameAddress{row, col, minor});
    }
  }
  return out;
}

PlacedBitstream::PlacedBitstream(const Device& device,
                                 const RegionPlacement& placement,
                                 std::uint64_t payload_seed, std::string name)
    : name_(std::move(name)) {
  const std::vector<FrameAddress> frames = frames_of_placement(device,
                                                               placement);
  frames_ = frames.size();
  // Layout: sync word, frame count, then per frame: packed FAR + 41 words.
  words_.reserve(2 + frames.size() * (1 + arch::kWordsPerFrame));
  words_.push_back(bitstream_layout::kSyncWord);
  words_.push_back(static_cast<std::uint32_t>(frames.size()));
  Rng rng(payload_seed);
  for (const FrameAddress& a : frames) {
    words_.push_back(a.pack());
    for (std::uint32_t w = 0; w < arch::kWordsPerFrame; ++w)
      words_.push_back(static_cast<std::uint32_t>(rng.next()));
  }
}

void PlacedBitstream::apply(ConfigMemory& memory) const {
  if (words_.size() < 2 || words_[0] != bitstream_layout::kSyncWord)
    throw ParseError("placed bitstream '" + name_ + "' missing sync word");
  const std::uint32_t count = words_[1];
  const std::size_t expected = 2 + std::size_t{count} * (1 + arch::kWordsPerFrame);
  if (words_.size() != expected)
    throw ParseError("placed bitstream '" + name_ + "' has wrong size");
  std::size_t pos = 2;
  for (std::uint32_t f = 0; f < count; ++f) {
    const FrameAddress a = FrameAddress::unpack(words_[pos++]);
    if (!memory.frame_map().valid(a))
      throw ParseError("placed bitstream '" + name_ +
                       "' addresses an invalid frame");
    memory.write_frame(a, {words_.data() + pos, arch::kWordsPerFrame});
    pos += arch::kWordsPerFrame;
  }
}

}  // namespace prpart
