#include "stream/pipeline.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace prpart {

StreamingPipeline::StreamingPipeline(std::vector<StageSpec> specs,
                                     std::uint32_t arrival_interval)
    : arrival_interval_(arrival_interval),
      arrival_countdown_(arrival_interval) {
  require(!specs.empty(), "pipeline needs at least one stage");
  require(arrival_interval >= 1, "arrival interval must be >= 1");
  stages_.reserve(specs.size());
  for (StageSpec& s : specs) {
    require(s.cycles_per_item >= 1, "stage service time must be >= 1");
    require(s.fifo_depth >= 1, "stage FIFO depth must be >= 1");
    stages_.push_back(Stage{std::move(s), 0, 0, false, false});
  }
}

void StreamingPipeline::set_offline(std::size_t stage, bool offline) {
  require(stage < stages_.size(), "stage index out of range");
  stages_[stage].offline = offline;
}

bool StreamingPipeline::offline(std::size_t stage) const {
  require(stage < stages_.size(), "stage index out of range");
  return stages_[stage].offline;
}

std::size_t StreamingPipeline::occupancy(std::size_t stage) const {
  require(stage < stages_.size(), "stage index out of range");
  return stages_[stage].fifo;
}

double StreamingPipeline::throughput_bound() const {
  double bound = 1.0 / arrival_interval_;
  for (const Stage& s : stages_)
    bound = std::min(bound, 1.0 / s.spec.cycles_per_item);
  return bound;
}

void StreamingPipeline::run(std::uint64_t cycles) {
  for (std::uint64_t c = 0; c < cycles; ++c) {
    ++stats_.cycles;

    // Source arrival.
    if (--arrival_countdown_ == 0) {
      arrival_countdown_ = arrival_interval_;
      ++stats_.arrived;
      if (stages_.front().fifo < stages_.front().spec.fifo_depth) {
        ++stages_.front().fifo;
        ++stats_.accepted;
      } else {
        ++stats_.dropped;
      }
    }

    // Sink-to-source pass: emissions first (freeing downstream slots this
    // cycle), then intake.
    for (std::size_t i = stages_.size(); i-- > 0;) {
      Stage& s = stages_[i];
      if (s.offline) continue;

      if (s.busy) {
        if (s.countdown > 0) --s.countdown;
        if (s.countdown == 0) {
          if (i + 1 == stages_.size()) {
            ++stats_.delivered;
            s.busy = false;
          } else if (stages_[i + 1].fifo < stages_[i + 1].spec.fifo_depth) {
            ++stages_[i + 1].fifo;
            s.busy = false;
          }
          // else: blocked by back-pressure; retry next cycle.
        }
      }
      if (!s.busy && s.fifo > 0) {
        --s.fifo;
        s.busy = true;
        s.countdown = s.spec.cycles_per_item;
      }
    }
  }
}

}  // namespace prpart
