#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace prpart {

/// One processing stage of a streaming chain: it consumes one item from its
/// input FIFO every `cycles_per_item` cycles (when one is available and the
/// downstream FIFO has space) and emits it downstream.
struct StageSpec {
  std::string name;
  /// Service time; 1 = one item per cycle.
  std::uint32_t cycles_per_item = 1;
  /// Capacity of the FIFO *in front of* this stage.
  std::size_t fifo_depth = 4;
};

/// Statistics of a pipeline run.
struct PipelineStats {
  std::uint64_t cycles = 0;
  std::uint64_t arrived = 0;   ///< items offered by the source
  std::uint64_t accepted = 0;  ///< items that entered the first FIFO
  std::uint64_t dropped = 0;   ///< arrivals rejected by a full first FIFO
  std::uint64_t delivered = 0; ///< items that left the last stage
};

/// Cycle-level simulator of the case study's "simple streaming bus
/// interface, which is registered": a chain of stages decoupled by FIFOs.
/// Items arrive at the head at a fixed interval and are dropped when the
/// head FIFO is full (a radio front end cannot back-pressure the antenna).
///
/// Stages can be taken offline — this is what partial reconfiguration of
/// the region hosting a stage does — and come back with their FIFO contents
/// intact (the region's neighbours keep buffering). The simulator exposes
/// the system-level effect the paper's objective chases: whether a
/// reconfiguration is absorbed by the FIFOs or turns into dropped items.
class StreamingPipeline {
 public:
  /// `arrival_interval`: one item arrives every N cycles (N >= 1).
  StreamingPipeline(std::vector<StageSpec> stages,
                    std::uint32_t arrival_interval);

  std::size_t stages() const { return stages_.size(); }

  /// Takes a stage offline (reconfiguring) or back online.
  void set_offline(std::size_t stage, bool offline);
  bool offline(std::size_t stage) const;

  /// Advances the simulation by `cycles`.
  void run(std::uint64_t cycles);

  /// Items currently buffered in front of `stage`.
  std::size_t occupancy(std::size_t stage) const;

  const PipelineStats& stats() const { return stats_; }

  /// Steady-state throughput bound: the slowest stage's rate or the
  /// arrival rate, whichever is smaller (items per cycle).
  double throughput_bound() const;

 private:
  struct Stage {
    StageSpec spec;
    std::size_t fifo = 0;        ///< items waiting in front of this stage
    std::uint32_t countdown = 0; ///< cycles until the in-flight item emits
    bool busy = false;
    bool offline = false;
  };

  std::vector<Stage> stages_;
  std::uint32_t arrival_interval_;
  std::uint32_t arrival_countdown_ = 1;
  PipelineStats stats_;
};

}  // namespace prpart
