#include "reconfig/icap.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace prpart {

std::uint64_t IcapModel::effective_bandwidth_bps() const {
  const std::uint64_t icap_bps = icap_width_bytes * icap_clock_hz;
  require(icap_bps > 0 && fetch_bandwidth_bps > 0,
          "IcapModel bandwidths must be positive");
  return std::min(icap_bps, fetch_bandwidth_bps);
}

std::uint64_t IcapModel::reconfiguration_ns(std::uint64_t frames) const {
  if (frames == 0) return 0;
  const std::uint64_t bytes = bitstream_bytes(frames);
  const std::uint64_t bw = effective_bandwidth_bps();
  // ns = bytes / (bytes/s) * 1e9, computed without overflow for realistic
  // sizes (bytes < 2^40, so bytes * 1e9 needs 128-bit care; split instead).
  const std::uint64_t whole = bytes / bw;
  const std::uint64_t rem = bytes % bw;
  return fetch_latency_ns + whole * 1'000'000'000ull +
         rem * 1'000'000'000ull / bw;
}

}  // namespace prpart
