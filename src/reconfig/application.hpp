#pragma once

#include <cstdint>
#include <vector>

#include "core/scheme.hpp"
#include "reconfig/icap.hpp"
#include "reconfig/markov.hpp"
#include "util/rng.hpp"

namespace prpart {

/// Application-level model of an adaptive streaming system (the paper's
/// motivating scenarios: cognitive radio, video receiver). The system dwells
/// in one configuration processing a stream, then the environment forces a
/// transition; while regions reconfigure, the registered streaming chain is
/// stalled and input items are lost.
struct ApplicationModel {
  /// Sustained processing rate per configuration, items per second.
  std::vector<double> items_per_second;
  /// Mean dwell time in one configuration before the environment forces a
  /// switch, in nanoseconds (dwells are sampled exponentially).
  double mean_dwell_ns = 10'000'000.0;  // 10 ms
  /// Input arrival rate, items per second (items arriving during a stall
  /// are lost; during a dwell the pipeline keeps up when its rate is >= the
  /// arrival rate).
  double arrival_items_per_second = 1'000'000.0;
};

/// Outcome of one application run.
struct ApplicationStats {
  std::uint64_t transitions = 0;
  std::uint64_t uptime_ns = 0;
  std::uint64_t stall_ns = 0;
  double availability = 0.0;   ///< uptime / (uptime + stall)
  double items_arrived = 0.0;
  double items_processed = 0.0;
  double items_lost = 0.0;     ///< arrivals during stalls + rate shortfall
  double loss_fraction = 0.0;
};

/// Simulates `transitions` environment-driven dwell/switch periods of the
/// partitioned system. Reconfiguration stalls come from the scheme's
/// per-region frame counts through the ICAP model (warm stale-content
/// semantics, like ReconfigurationController). This turns the paper's
/// frame-count objective into the quantity an application designer cares
/// about: lost input items.
ApplicationStats simulate_application(const Design& design,
                                      const SchemeEvaluation& evaluation,
                                      const ApplicationModel& app,
                                      const MarkovChain& environment,
                                      std::size_t transitions, Rng& rng,
                                      IcapModel icap = {});

}  // namespace prpart
