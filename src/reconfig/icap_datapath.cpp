#include "reconfig/icap_datapath.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace prpart {

IcapCompletion IcapDatapath::submit(const IcapRequest& request) {
  require(request.submit_ns >= last_submit_ns_,
          "IcapDatapath requests must be submitted in time order");
  last_submit_ns_ = request.submit_ns;

  IcapCompletion done;
  if (request.frames == 0) {
    done.start_ns = request.submit_ns;
    done.done_ns = request.submit_ns;
    return done;
  }

  done.transfer_ns = timing_.reconfiguration_ns(request.frames);
  done.start_ns = std::max(request.submit_ns, ready_ns_);
  done.wait_ns = done.start_ns - request.submit_ns;
  done.done_ns = done.start_ns + done.transfer_ns;
  ready_ns_ = done.done_ns;

  ++stats_.commands;
  stats_.bytes += timing_.bitstream_bytes(request.frames);
  stats_.busy_ns += done.transfer_ns;
  stats_.total_wait_ns += done.wait_ns;
  stats_.max_wait_ns = std::max(stats_.max_wait_ns, done.wait_ns);
  stats_.last_done_ns = std::max(stats_.last_done_ns, done.done_ns);
  return done;
}

double IcapDatapath::utilization() const {
  if (stats_.last_done_ns == 0) return 0.0;
  return static_cast<double>(stats_.busy_ns) /
         static_cast<double>(stats_.last_done_ns);
}

}  // namespace prpart
