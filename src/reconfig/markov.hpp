#pragma once

#include <cstdint>
#include <vector>

#include "core/scheme.hpp"
#include "util/rng.hpp"

namespace prpart {

/// Row-stochastic transition matrix over a design's configurations, used to
/// model the environment-driven adaptation the paper leaves to future work
/// ("if some statistical information about the probabilities of different
/// configurations occurring is known, this could be factored in").
class MarkovChain {
 public:
  /// `probabilities[i][j]` = probability of switching from configuration i
  /// to j; rows must be non-negative and sum to ~1 (1e-9 tolerance).
  explicit MarkovChain(std::vector<std::vector<double>> probabilities);

  /// Uniform chain over `n` configurations with no self-transitions: the
  /// implicit model behind the paper's Eq. 10 proxy.
  static MarkovChain uniform(std::size_t n);

  /// Random row-stochastic chain (self-transitions excluded), for sweeps.
  static MarkovChain random(Rng& rng, std::size_t n);

  std::size_t states() const { return p_.size(); }
  double probability(std::size_t from, std::size_t to) const;

  /// Stationary distribution by power iteration.
  std::vector<double> stationary(std::size_t iterations = 1000) const;

  /// Samples the next state from `from`.
  std::size_t sample_next(Rng& rng, std::size_t from) const;

 private:
  std::vector<std::vector<double>> p_;
};

/// Per-transition frame counts of a scheme: frames(i -> j) = sum over
/// regions of d_ij * frames_r (Eq. 8 in frames). Symmetric.
std::vector<std::vector<std::uint64_t>> transition_frame_matrix(
    const SchemeEvaluation& evaluation, std::size_t configs);

/// Expected frames per transition under the chain's stationary behaviour:
/// sum_i pi_i * sum_j P_ij * frames(i, j). This is the probability-weighted
/// generalisation of the paper's total-reconfiguration-time proxy.
double expected_frames_per_transition(const SchemeEvaluation& evaluation,
                                      std::size_t configs,
                                      const MarkovChain& chain);

}  // namespace prpart
