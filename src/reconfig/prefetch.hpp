#pragma once

#include <cstdint>

#include "reconfig/controller.hpp"
#include "reconfig/markov.hpp"

namespace prpart {

/// Statistics of a prefetching run. "Stall" is reconfiguration work on the
/// critical path of a transition; prefetched frames are loaded in the
/// background during idle periods and do not stall the application.
struct PrefetchStats {
  std::uint64_t transitions = 0;
  std::uint64_t stall_loads = 0;  ///< region reconfigurations on the critical path
  std::uint64_t stall_frames = 0;
  std::uint64_t stall_ns = 0;
  std::uint64_t worst_stall_frames = 0;
  std::uint64_t prefetched_frames = 0;
  std::uint64_t useful_prefetches = 0;   ///< prefetched region later needed as-is
  std::uint64_t wasted_prefetches = 0;   ///< overwritten before being used
};

/// Configuration prefetching on top of the reconfiguration controller (the
/// technique of the paper's related work [4], adapted to the adaptive-
/// systems setting): while the system sits in configuration c, regions that
/// c does not use are idle and may be speculatively loaded with the
/// partitions the *predicted* next configuration needs. If the prediction
/// holds, those loads vanish from the transition's critical path.
///
/// The predictor is a Markov model of the environment; prefetching is
/// limited per idle period by `idle_frames_budget` (how much the ICAP can
/// stream before the next adaptation arrives).
class PrefetchingController {
 public:
  PrefetchingController(const Design& design, const PartitionScheme& scheme,
                        const SchemeEvaluation& evaluation,
                        const MarkovChain& predictor, IcapModel icap = {},
                        std::uint64_t idle_frames_budget =
                            ~std::uint64_t{0});

  void boot(std::size_t config);

  /// Prefetches for the predicted successor of the current configuration,
  /// then switches to `config`, returning the stall frames of the switch.
  std::uint64_t transition(std::size_t config);

  std::size_t current_config() const { return current_; }
  const PrefetchStats& stats() const { return stats_; }

 private:
  static constexpr int kEmpty = -1;

  void prefetch_for_prediction();

  std::size_t nconf_ = 0;
  std::size_t current_ = 0;
  bool booted_ = false;
  IcapModel icap_;
  std::uint64_t idle_frames_budget_;
  MarkovChain predictor_;  // by value: predictors are small and callers
                           // often pass temporaries

  std::vector<std::vector<int>> active_;  // [region][config]
  std::vector<std::uint64_t> frames_;
  std::vector<int> loaded_;
  std::vector<bool> speculative_;  // loaded_[r] was a prefetch, not yet used
  PrefetchStats stats_;
};

}  // namespace prpart
