#pragma once

#include <cstdint>

#include "reconfig/icap.hpp"

namespace prpart {

/// A partial-bitstream load request submitted to the controller.
struct IcapRequest {
  std::uint64_t submit_ns = 0;  ///< submission time; non-decreasing
  std::uint64_t frames = 0;
};

/// Per-command latency breakdown.
struct IcapCompletion {
  std::uint64_t start_ns = 0;     ///< when the transfer began
  std::uint64_t done_ns = 0;      ///< when the last frame was written
  std::uint64_t wait_ns = 0;      ///< queueing delay behind earlier commands
  std::uint64_t transfer_ns = 0;  ///< fetch latency + streaming time
};

struct IcapDatapathStats {
  std::uint64_t commands = 0;
  std::uint64_t bytes = 0;
  std::uint64_t busy_ns = 0;        ///< time the port was transferring
  std::uint64_t total_wait_ns = 0;  ///< summed queueing delays
  std::uint64_t max_wait_ns = 0;
  std::uint64_t last_done_ns = 0;
};

/// Queueing model of the high-speed ICAP controller of the paper's
/// reference [15]: one command at a time is fetched from external memory
/// and streamed through the ICAP port (the two are pipelined inside a
/// command, which the IcapModel's effective bandwidth captures); commands
/// submitted while the port is busy queue up. Used by the runtime layers
/// to attribute reconfiguration latency to queueing vs transfer.
class IcapDatapath {
 public:
  explicit IcapDatapath(IcapModel timing = {}) : timing_(timing) {}

  const IcapModel& timing() const { return timing_; }

  /// Submits a request; requests must arrive in non-decreasing submit_ns
  /// order (throws InternalError otherwise). Zero-frame requests complete
  /// immediately without occupying the port.
  IcapCompletion submit(const IcapRequest& request);

  /// Time at which the port becomes idle.
  std::uint64_t ready_ns() const { return ready_ns_; }

  const IcapDatapathStats& stats() const { return stats_; }

  /// Port utilisation over [0, last completion].
  double utilization() const;

 private:
  IcapModel timing_;
  std::uint64_t ready_ns_ = 0;
  std::uint64_t last_submit_ns_ = 0;
  IcapDatapathStats stats_;
};

}  // namespace prpart
