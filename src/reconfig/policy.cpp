#include "reconfig/policy.hpp"

#include "util/status.hpp"

namespace prpart {

AdaptationPolicy::AdaptationPolicy(std::size_t configurations)
    : configurations_(configurations) {
  require(configurations_ > 0, "policy needs at least one configuration");
}

void AdaptationPolicy::add_rule(std::size_t from, std::string event,
                                std::size_t to) {
  require(from == kAnyConfig || from < configurations_,
          "rule source configuration out of range");
  require(to < configurations_, "rule target configuration out of range");
  require(!event.empty(), "rule event must be named");
  for (const Rule& r : rules_)
    require(!(r.from == from && r.event == event),
            "duplicate rule for (configuration, event)");
  rules_.push_back(Rule{from, std::move(event), to});
}

std::optional<std::size_t> AdaptationPolicy::target(
    std::size_t current, const std::string& event) const {
  require(current < configurations_, "current configuration out of range");
  std::optional<std::size_t> wildcard;
  for (const Rule& r : rules_) {
    if (r.event != event) continue;
    if (r.from == current) return r.to;  // specific rule wins
    if (r.from == kAnyConfig) wildcard = r.to;
  }
  return wildcard;
}

PolicyRunResult run_policy(ReconfigurationController& controller,
                           const AdaptationPolicy& policy,
                           const std::vector<std::string>& events) {
  PolicyRunResult result;
  result.path.push_back(controller.current_config());
  for (const std::string& event : events) {
    ++result.events;
    const auto to = policy.target(controller.current_config(), event);
    if (!to) {
      ++result.ignored;
      continue;
    }
    if (*to == controller.current_config()) {
      ++result.self_loops;
      continue;
    }
    controller.transition(*to);
    ++result.applied;
    result.path.push_back(*to);
  }
  return result;
}

}  // namespace prpart
