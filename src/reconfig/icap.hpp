#pragma once

#include <cstdint>

#include "device/tiles.hpp"

namespace prpart {

/// Timing model of the reconfiguration datapath: partial bitstreams are
/// fetched from external memory and streamed through the internal
/// configuration access port (ICAP). Defaults model the custom high-speed
/// ICAP controller of the paper's reference [15] (32-bit ICAP at 100 MHz,
/// DDR-backed fetches).
///
/// Reconfiguration time is dominated by the number of frames written
/// (Eq. 9, t_conr proportional to P_r); this model turns frames into
/// nanoseconds so the runtime simulator can report latencies.
struct IcapModel {
  std::uint32_t icap_width_bytes = 4;          ///< ICAP port width
  std::uint64_t icap_clock_hz = 100'000'000;   ///< ICAP clock
  std::uint64_t fetch_bandwidth_bps = 800'000'000;  ///< external memory, bytes/s
  std::uint64_t fetch_latency_ns = 2'000;      ///< per-bitstream setup cost

  /// Payload bytes of a partial bitstream covering `frames` frames.
  std::uint64_t bitstream_bytes(std::uint64_t frames) const {
    return frames * arch::kWordsPerFrame * 4;
  }

  /// Time to load a partial bitstream of `frames` frames, in nanoseconds.
  /// Fetch and ICAP writes are pipelined, so throughput is bounded by the
  /// slower of the two paths, plus the fixed fetch setup latency.
  std::uint64_t reconfiguration_ns(std::uint64_t frames) const;

  /// Effective streaming throughput in bytes per second.
  std::uint64_t effective_bandwidth_bps() const;
};

}  // namespace prpart
