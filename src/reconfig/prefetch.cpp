#include "reconfig/prefetch.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace prpart {

PrefetchingController::PrefetchingController(
    const Design& design, const PartitionScheme& scheme,
    const SchemeEvaluation& evaluation, const MarkovChain& predictor,
    IcapModel icap, std::uint64_t idle_frames_budget)
    : nconf_(design.configurations().size()),
      icap_(icap),
      idle_frames_budget_(idle_frames_budget),
      predictor_(predictor) {
  require(evaluation.valid, "cannot simulate an invalid scheme");
  require(evaluation.regions.size() == scheme.regions.size(),
          "evaluation does not match scheme");
  require(predictor_.states() == nconf_,
          "predictor does not match the design's configurations");
  for (const RegionReport& report : evaluation.regions) {
    require(report.active.size() == nconf_,
            "evaluation active table has wrong arity");
    active_.push_back(report.active);
    frames_.push_back(report.frames);
  }
  loaded_.assign(active_.size(), kEmpty);
  speculative_.assign(active_.size(), false);
}

void PrefetchingController::boot(std::size_t config) {
  require(config < nconf_, "boot configuration out of range");
  for (std::size_t r = 0; r < active_.size(); ++r) {
    loaded_[r] = active_[r][config];
    speculative_[r] = false;
  }
  current_ = config;
  booted_ = true;
  stats_ = {};
  prefetch_for_prediction();
}

void PrefetchingController::prefetch_for_prediction() {
  // Predict the most likely successor; ties resolve to the lowest index,
  // keeping runs deterministic.
  std::size_t predicted = 0;
  double best = -1.0;
  for (std::size_t j = 0; j < nconf_; ++j) {
    const double p = predictor_.probability(current_, j);
    if (p > best) {
      best = p;
      predicted = j;
    }
  }

  // Preload idle regions, largest first (they hurt most when they stall),
  // within the idle bandwidth budget.
  std::vector<std::size_t> idle;
  for (std::size_t r = 0; r < active_.size(); ++r) {
    const int needed = active_[r][predicted];
    if (active_[r][current_] == kEmpty && needed != kEmpty &&
        needed != loaded_[r])
      idle.push_back(r);
  }
  std::stable_sort(idle.begin(), idle.end(), [&](std::size_t a, std::size_t b) {
    return frames_[a] > frames_[b];
  });
  std::uint64_t budget = idle_frames_budget_;
  for (std::size_t r : idle) {
    if (frames_[r] > budget) continue;
    budget -= frames_[r];
    if (speculative_[r]) ++stats_.wasted_prefetches;  // overwritten unused
    loaded_[r] = active_[r][predicted];
    speculative_[r] = true;
    stats_.prefetched_frames += frames_[r];
  }
}

std::uint64_t PrefetchingController::transition(std::size_t config) {
  require(booted_, "controller not booted");
  require(config < nconf_, "configuration out of range");

  std::uint64_t stall = 0;
  for (std::size_t r = 0; r < active_.size(); ++r) {
    const int needed = active_[r][config];
    if (needed == kEmpty) continue;
    if (needed == loaded_[r]) {
      if (speculative_[r]) {
        ++stats_.useful_prefetches;
        speculative_[r] = false;
      }
      continue;
    }
    if (speculative_[r]) {
      ++stats_.wasted_prefetches;
      speculative_[r] = false;
    }
    loaded_[r] = needed;
    ++stats_.stall_loads;
    stall += frames_[r];
  }

  ++stats_.transitions;
  stats_.stall_frames += stall;
  stats_.stall_ns += icap_.reconfiguration_ns(stall);
  stats_.worst_stall_frames = std::max(stats_.worst_stall_frames, stall);
  current_ = config;
  prefetch_for_prediction();
  return stall;
}

}  // namespace prpart
