#include "reconfig/controller.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace prpart {

ReconfigurationController::ReconfigurationController(
    const Design& design, const PartitionScheme& scheme,
    const SchemeEvaluation& evaluation, IcapModel icap)
    : nconf_(design.configurations().size()), icap_(icap) {
  require(evaluation.valid, "cannot simulate an invalid scheme");
  require(evaluation.regions.size() == scheme.regions.size(),
          "evaluation does not match scheme");
  active_.reserve(evaluation.regions.size());
  frames_.reserve(evaluation.regions.size());
  for (const RegionReport& report : evaluation.regions) {
    require(report.active.size() == nconf_,
            "evaluation active table has wrong arity");
    active_.push_back(report.active);
    frames_.push_back(report.frames);
  }
  loaded_.assign(active_.size(), kEmpty);
}

void ReconfigurationController::boot(std::size_t config) {
  require(config < nconf_, "boot configuration out of range");
  // A full-device configuration loads every region's needed partition (and
  // leaves unneeded regions blank).
  for (std::size_t r = 0; r < active_.size(); ++r)
    loaded_[r] = active_[r][config];
  current_ = config;
  booted_ = true;
  stats_ = {};
}

std::uint64_t ReconfigurationController::peek_frames(
    std::size_t config) const {
  require(booted_, "controller not booted");
  require(config < nconf_, "configuration out of range");
  std::uint64_t frames = 0;
  for (std::size_t r = 0; r < active_.size(); ++r) {
    const int needed = active_[r][config];
    if (needed != kEmpty && needed != loaded_[r]) frames += frames_[r];
  }
  return frames;
}

std::vector<ReconfigEvent> ReconfigurationController::transition(
    std::size_t config) {
  require(booted_, "controller not booted");
  require(config < nconf_, "configuration out of range");

  std::vector<ReconfigEvent> events;
  std::uint64_t transition_frames = 0;
  std::uint64_t transition_ns = 0;
  for (std::size_t r = 0; r < active_.size(); ++r) {
    const int needed = active_[r][config];
    if (needed == kEmpty || needed == loaded_[r]) continue;
    ReconfigEvent ev;
    ev.region = r;
    ev.from_config = current_;
    ev.to_config = config;
    ev.frames = frames_[r];
    ev.ns = icap_.reconfiguration_ns(frames_[r]);
    loaded_[r] = needed;
    transition_frames += ev.frames;
    transition_ns += ev.ns;
    ++stats_.region_loads;
    events.push_back(ev);
  }

  ++stats_.transitions;
  stats_.total_frames += transition_frames;
  stats_.total_ns += transition_ns;
  stats_.worst_transition_frames =
      std::max(stats_.worst_transition_frames, transition_frames);
  stats_.worst_transition_ns =
      std::max(stats_.worst_transition_ns, transition_ns);
  current_ = config;
  return events;
}

}  // namespace prpart
