#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "design/design.hpp"
#include "reconfig/icap.hpp"

namespace prpart {

/// One executed reconfiguration of one region.
struct ReconfigEvent {
  std::size_t region = 0;
  std::size_t from_config = 0;
  std::size_t to_config = 0;
  std::uint64_t frames = 0;
  std::uint64_t ns = 0;
};

/// Cumulative runtime statistics of a simulation run.
struct RuntimeStats {
  std::uint64_t transitions = 0;
  std::uint64_t region_loads = 0;
  std::uint64_t total_frames = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t worst_transition_frames = 0;
  std::uint64_t worst_transition_ns = 0;
};

/// Simulates the runtime configuration manager of a PR system (the software
/// on the embedded processor in Fig. 1): it owns the region states, decides
/// which regions must be rewritten for each configuration transition, and
/// accounts frames and nanoseconds through the ICAP model.
///
/// The controller implements the stale-content rule of the cost model: a
/// region whose active partition is not needed by the target configuration
/// keeps its contents, and a region is rewritten only when the target needs
/// a partition different from what is currently loaded. This makes the
/// simulator the ground truth that the closed-form Eq. 10 approximates; the
/// tests cross-check the two.
///
/// Cold-start surcharge: boot(c) loads only the regions configuration c
/// uses; regions c does not use stay blank, so the first transition that
/// needs them pays for their initial load. Eq. 10 models *warm* operation
/// (every region loaded at least once), which the controller matches after
/// each region has been visited; use reset_stats() after a warm-up walk to
/// measure steady-state costs.
class ReconfigurationController {
 public:
  /// `evaluation` must be a valid evaluation of `scheme` for `design`.
  ReconfigurationController(const Design& design, const PartitionScheme& scheme,
                            const SchemeEvaluation& evaluation,
                            IcapModel icap = {});

  std::size_t region_count() const { return active_.size(); }
  std::size_t config_count() const { return nconf_; }

  /// Loads `config` from power-up (full configuration); resets statistics.
  void boot(std::size_t config);

  std::size_t current_config() const { return current_; }

  /// Switches to `config`, reconfiguring exactly the regions whose needed
  /// partition differs from their current contents. Returns the events.
  std::vector<ReconfigEvent> transition(std::size_t config);

  /// Frames that a transition to `config` would write, without doing it.
  std::uint64_t peek_frames(std::size_t config) const;

  const RuntimeStats& stats() const { return stats_; }

  /// Zeroes the statistics without touching region contents; used to
  /// measure steady-state (warm) costs after a warm-up walk.
  void reset_stats() { stats_ = {}; }

 private:
  static constexpr int kEmpty = -1;

  std::size_t nconf_ = 0;
  std::size_t current_ = 0;
  bool booted_ = false;
  IcapModel icap_;
  // active_[r][c]: member index active in region r under configuration c,
  // or -1 (copied from the evaluation's region reports).
  std::vector<std::vector<int>> active_;
  std::vector<std::uint64_t> frames_;  // per region
  std::vector<int> loaded_;            // current member per region
  RuntimeStats stats_;
};

}  // namespace prpart
