#include "reconfig/markov.hpp"

#include <cmath>

#include "util/status.hpp"

namespace prpart {

MarkovChain::MarkovChain(std::vector<std::vector<double>> probabilities)
    : p_(std::move(probabilities)) {
  require(!p_.empty(), "MarkovChain needs at least one state");
  for (const auto& row : p_) {
    require(row.size() == p_.size(), "MarkovChain matrix must be square");
    double sum = 0.0;
    for (double v : row) {
      require(v >= 0.0, "MarkovChain probabilities must be non-negative");
      sum += v;
    }
    require(std::abs(sum - 1.0) < 1e-9, "MarkovChain rows must sum to 1");
  }
}

MarkovChain MarkovChain::uniform(std::size_t n) {
  require(n >= 2, "uniform chain needs at least two states");
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  const double q = 1.0 / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) p[i][j] = q;
  return MarkovChain(std::move(p));
}

MarkovChain MarkovChain::random(Rng& rng, std::size_t n) {
  require(n >= 2, "random chain needs at least two states");
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      p[i][j] = rng.uniform01() + 1e-6;  // keep the chain irreducible
      sum += p[i][j];
    }
    for (std::size_t j = 0; j < n; ++j) p[i][j] /= sum;
  }
  return MarkovChain(std::move(p));
}

double MarkovChain::probability(std::size_t from, std::size_t to) const {
  require(from < p_.size() && to < p_.size(), "state out of range");
  return p_[from][to];
}

std::vector<double> MarkovChain::stationary(std::size_t iterations) const {
  const std::size_t n = p_.size();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (std::size_t it = 0; it < iterations; ++it) {
    for (double& v : next) v = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) next[j] += pi[i] * p_[i][j];
    pi.swap(next);
  }
  return pi;
}

std::size_t MarkovChain::sample_next(Rng& rng, std::size_t from) const {
  require(from < p_.size(), "state out of range");
  double u = rng.uniform01();
  for (std::size_t j = 0; j < p_.size(); ++j) {
    u -= p_[from][j];
    if (u < 0.0) return j;
  }
  return p_.size() - 1;  // numerical tail
}

std::vector<std::vector<std::uint64_t>> transition_frame_matrix(
    const SchemeEvaluation& evaluation, std::size_t configs) {
  std::vector<std::vector<std::uint64_t>> frames(
      configs, std::vector<std::uint64_t>(configs, 0));
  for (const RegionReport& region : evaluation.regions) {
    require(region.active.size() == configs,
            "evaluation active table has wrong arity");
    for (std::size_t i = 0; i < configs; ++i)
      for (std::size_t j = i + 1; j < configs; ++j) {
        const int a = region.active[i];
        const int b = region.active[j];
        if (a >= 0 && b >= 0 && a != b) {
          frames[i][j] += region.frames;
          frames[j][i] += region.frames;
        }
      }
  }
  return frames;
}

double expected_frames_per_transition(const SchemeEvaluation& evaluation,
                                      std::size_t configs,
                                      const MarkovChain& chain) {
  require(chain.states() == configs, "chain does not match design");
  const auto frames = transition_frame_matrix(evaluation, configs);
  const std::vector<double> pi = chain.stationary();
  double expected = 0.0;
  for (std::size_t i = 0; i < configs; ++i)
    for (std::size_t j = 0; j < configs; ++j)
      expected += pi[i] * chain.probability(i, j) *
                  static_cast<double>(frames[i][j]);
  return expected;
}

}  // namespace prpart
