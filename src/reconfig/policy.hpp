#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "reconfig/controller.hpp"

namespace prpart {

/// The configuration-management software of the paper's Fig. 1, modelled as
/// a rule table: "when `event` is observed while in configuration `from`,
/// switch to configuration `to`". This is what runs on the embedded
/// processor and drives the ICAP through the reconfiguration controller;
/// the environment (channel estimates, user requests, ...) is abstracted
/// into named events.
class AdaptationPolicy {
 public:
  /// Wildcard: the rule applies in any current configuration.
  static constexpr std::size_t kAnyConfig = ~std::size_t{0};

  explicit AdaptationPolicy(std::size_t configurations);

  /// Adds a rule; a specific (from != kAnyConfig) rule takes precedence
  /// over a wildcard rule for the same event. Duplicate (from, event)
  /// pairs are rejected.
  void add_rule(std::size_t from, std::string event, std::size_t to);

  std::size_t rules() const { return rules_.size(); }

  /// Target configuration for `event` in `current`, or nullopt when no
  /// rule matches (the event is ignored).
  std::optional<std::size_t> target(std::size_t current,
                                    const std::string& event) const;

 private:
  struct Rule {
    std::size_t from;
    std::string event;
    std::size_t to;
  };
  std::size_t configurations_;
  std::vector<Rule> rules_;
};

/// Outcome of driving a controller with an event trace.
struct PolicyRunResult {
  std::uint64_t events = 0;
  std::uint64_t applied = 0;   ///< events that triggered a transition
  std::uint64_t ignored = 0;   ///< events with no matching rule
  std::uint64_t self_loops = 0;  ///< rules targeting the current config
  std::vector<std::size_t> path;  ///< visited configurations, incl. start
};

/// Feeds `events` through the policy, executing each matched transition on
/// the controller (which must be booted). Reconfiguration costs accumulate
/// in the controller's own stats.
PolicyRunResult run_policy(ReconfigurationController& controller,
                           const AdaptationPolicy& policy,
                           const std::vector<std::string>& events);

}  // namespace prpart
