#include "reconfig/application.hpp"

#include <algorithm>
#include <cmath>

#include "reconfig/controller.hpp"
#include "util/status.hpp"

namespace prpart {

ApplicationStats simulate_application(const Design& design,
                                      const SchemeEvaluation& evaluation,
                                      const ApplicationModel& app,
                                      const MarkovChain& environment,
                                      std::size_t transitions, Rng& rng,
                                      IcapModel icap) {
  const std::size_t n = design.configurations().size();
  require(app.items_per_second.size() == n,
          "ApplicationModel must give a rate per configuration");
  require(environment.states() == n,
          "environment chain does not match the design");
  require(app.mean_dwell_ns > 0 && app.arrival_items_per_second > 0,
          "ApplicationModel rates must be positive");

  // The controller only needs the evaluation's active tables; the scheme
  // argument is unused beyond arity checks, so pass a shape-matching shell.
  PartitionScheme shell;
  shell.regions.resize(evaluation.regions.size());
  ReconfigurationController ctl(design, shell, evaluation, icap);
  ctl.boot(0);

  ApplicationStats stats;
  std::size_t state = 0;
  const double arrival_per_ns = app.arrival_items_per_second * 1e-9;

  for (std::size_t t = 0; t < transitions; ++t) {
    // Dwell: exponential with the configured mean.
    const double u = std::max(1e-12, 1.0 - rng.uniform01());
    const double dwell_ns = -app.mean_dwell_ns * std::log(u);
    const double rate_per_ns = app.items_per_second[state] * 1e-9;
    const double arrived = arrival_per_ns * dwell_ns;
    const double processed = std::min(arrived, rate_per_ns * dwell_ns);
    stats.uptime_ns += static_cast<std::uint64_t>(dwell_ns);
    stats.items_arrived += arrived;
    stats.items_processed += processed;
    stats.items_lost += arrived - processed;  // rate shortfall

    // Switch: everything arriving during the stall is lost.
    const std::size_t next = environment.sample_next(rng, state);
    std::uint64_t stall_ns = 0;
    for (const ReconfigEvent& ev : ctl.transition(next)) stall_ns += ev.ns;
    stats.stall_ns += stall_ns;
    const double lost_in_stall =
        arrival_per_ns * static_cast<double>(stall_ns);
    stats.items_arrived += lost_in_stall;
    stats.items_lost += lost_in_stall;
    state = next;
    ++stats.transitions;
  }

  const double total_ns =
      static_cast<double>(stats.uptime_ns + stats.stall_ns);
  stats.availability =
      total_ns > 0 ? static_cast<double>(stats.uptime_ns) / total_ns : 1.0;
  stats.loss_fraction =
      stats.items_arrived > 0 ? stats.items_lost / stats.items_arrived : 0.0;
  return stats;
}

}  // namespace prpart
