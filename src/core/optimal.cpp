#include "core/optimal.hpp"

#include <optional>

#include "core/covering.hpp"
#include "util/status.hpp"

namespace prpart {

namespace {

std::uint64_t pairs2(std::uint64_t n) { return n * (n - 1) / 2; }

/// Mutable group state during enumeration.
struct Group {
  std::vector<std::size_t> members;
  DynBitset occ;
  ResourceVec raw;
  ResourceVec promote_area;
  std::uint64_t active = 0;
  std::uint64_t same_pairs = 0;

  std::uint64_t frames() const { return frames_for(raw); }
  std::uint64_t contrib() const {
    return (pairs2(active) - same_pairs) * frames();
  }
};

class Enumerator {
 public:
  Enumerator(const Design& design, const std::vector<BasePartition>& partitions,
             const CompatibilityTable& compat, const ResourceVec& budget,
             const std::vector<std::size_t>& candidate,
             const OptimalOptions& options)
      : design_(design),
        partitions_(partitions),
        compat_(compat),
        budget_(budget),
        items_(candidate),
        options_(options) {}

  OptimalResult run() {
    groups_.clear();
    // At most one group per item; reserving up front keeps the references
    // recurse() holds across recursive calls valid (no reallocation).
    groups_.reserve(items_.size());
    static_members_.clear();
    static_extra_ = {};
    recurse(0, 0);

    OptimalResult result;
    result.states_explored = states_;
    result.exhausted = exhausted_;
    if (best_) {
      result.feasible = true;
      result.scheme = std::move(*best_);
      result.scheme.label = "optimal";
    }
    return result;
  }

 private:
  /// Total time of the current partial assignment. Monotone non-decreasing
  /// as further items are assigned, which justifies the bound prune.
  std::uint64_t current_ttotal() const {
    std::uint64_t t = 0;
    for (const Group& g : groups_) t += g.contrib();
    return t;
  }

  ResourceVec current_total() const {
    ResourceVec total = design_.static_base() + static_extra_;
    for (const Group& g : groups_) total += tiles_for(g.raw).resources();
    return total;
  }

  void record_leaf() {
    const ResourceVec total = current_total();
    if (!total.fits_in(budget_)) return;
    const std::uint64_t ttotal = current_ttotal();
    const std::uint64_t area =
        std::uint64_t{total.clbs} + total.brams + total.dsps;
    if (best_ && (ttotal > best_ttotal_ ||
                  (ttotal == best_ttotal_ && area >= best_area_)))
      return;
    best_ttotal_ = ttotal;
    best_area_ = area;
    PartitionScheme scheme;
    for (const Group& g : groups_)
      if (!g.members.empty()) scheme.regions.push_back(Region{g.members});
    scheme.static_members = static_members_;
    best_ = std::move(scheme);
  }

  void recurse(std::size_t idx, std::size_t used_groups) {
    if (exhausted_) return;
    if (++states_ > options_.max_states) {
      exhausted_ = true;
      return;
    }
    // Bound: ttotal never decreases along a path.
    if (best_ && current_ttotal() >= best_ttotal_) return;
    if (idx == items_.size()) {
      record_leaf();
      return;
    }

    const std::size_t item = items_[idx];
    const BasePartition& p = partitions_[item];
    const DynBitset& occ = compat_.occupancy(item);

    // Option 1: join an existing group (compatibility: disjoint occupancy).
    for (std::size_t g = 0; g < used_groups; ++g) {
      Group& group = groups_[g];
      if (group.occ.intersects(occ)) continue;
      const Group saved = group;
      group.members.push_back(item);
      group.occ |= occ;
      group.raw = elementwise_max(group.raw, p.area);
      group.promote_area += p.area;
      group.active += occ.count();
      group.same_pairs += pairs2(occ.count());
      recurse(idx + 1, used_groups);
      group = saved;
      if (exhausted_) return;
    }

    // Option 2: open the next fresh group (symmetry breaking: only one).
    {
      if (groups_.size() <= used_groups)
        groups_.emplace_back(Group{{}, DynBitset(occ.size()), {}, {}, 0, 0});
      Group& group = groups_[used_groups];
      group.members = {item};
      group.occ = occ;
      group.raw = p.area;
      group.promote_area = p.area;
      group.active = occ.count();
      group.same_pairs = pairs2(occ.count());
      recurse(idx + 1, used_groups + 1);
      group.members.clear();
      group.occ = DynBitset(occ.size());
      group.raw = {};
      group.promote_area = {};
      group.active = 0;
      group.same_pairs = 0;
      if (exhausted_) return;
    }

    // Option 3: promote to static.
    if (options_.allow_static_promotion) {
      static_members_.push_back(item);
      static_extra_ += p.area;
      recurse(idx + 1, used_groups);
      static_members_.pop_back();
      static_extra_.clbs -= p.area.clbs;
      static_extra_.brams -= p.area.brams;
      static_extra_.dsps -= p.area.dsps;
    }
  }

  const Design& design_;
  const std::vector<BasePartition>& partitions_;
  const CompatibilityTable& compat_;
  const ResourceVec budget_;
  const std::vector<std::size_t>& items_;
  const OptimalOptions options_;

  std::vector<Group> groups_;
  std::vector<std::size_t> static_members_;
  ResourceVec static_extra_;

  std::uint64_t states_ = 0;
  bool exhausted_ = false;
  std::optional<PartitionScheme> best_;
  std::uint64_t best_ttotal_ = ~std::uint64_t{0};
  std::uint64_t best_area_ = ~std::uint64_t{0};
};

}  // namespace

OptimalResult optimal_partitioning(const Design& design,
                                   const ConnectivityMatrix& matrix,
                                   const std::vector<BasePartition>& partitions,
                                   const CompatibilityTable& compat,
                                   const ResourceVec& budget,
                                   const std::vector<std::size_t>& candidate,
                                   const OptimalOptions& options) {
  Enumerator e(design, partitions, compat, budget, candidate, options);
  OptimalResult result = e.run();
  if (result.feasible) {
    result.eval =
        evaluate_scheme(design, matrix, partitions, result.scheme, budget);
    require(result.eval.valid,
            "optimal search produced an invalid scheme: " +
                result.eval.invalid_reason);
    require(result.eval.fits, "optimal search recorded a non-fitting scheme");
  }
  return result;
}

OptimalResult optimal_mode_level_partitioning(
    const Design& design, const ConnectivityMatrix& matrix,
    const std::vector<BasePartition>& partitions,
    const CompatibilityTable& compat, const ResourceVec& budget,
    const OptimalOptions& options) {
  const std::vector<std::size_t> order = covering_order(partitions);
  const CoverResult cov = cover(partitions, matrix, order, 0);
  require(cov.complete, "mode-level covering failed");
  return optimal_partitioning(design, matrix, partitions, compat, budget,
                              cov.selected, options);
}

}  // namespace prpart
