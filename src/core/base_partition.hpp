#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "design/design.hpp"
#include "device/resources.hpp"
#include "util/bitset.hpp"

namespace prpart {

/// A base partition (§IV-C): a set of modes that will be implemented
/// *concurrently* in one partial bitstream. Base partitions are the units
/// the region-allocation search assigns to regions or promotes into the
/// static logic.
struct BasePartition {
  /// Global mode ids (columns of the connectivity matrix).
  DynBitset modes;
  /// The paper's frequency weight: node weight for singletons, edge weight
  /// for pairs, minimum edge weight for larger sub-graphs.
  std::uint32_t frequency_weight = 0;
  /// Number of edges k of the detected complete sub-graph: C(|modes|, 2).
  std::uint32_t edges = 0;
  /// Raw area: element-wise SUM of the member modes (they coexist in the
  /// bitstream).
  ResourceVec area;
  /// Frames to reconfigure a region exactly this large (Eq. 1).
  std::uint64_t frames = 0;

  /// "{A1,B2}"-style label using the design's mode names.
  std::string label(const Design& design) const;
};

}  // namespace prpart
