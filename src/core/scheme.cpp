#include "core/scheme.hpp"

#include <algorithm>

#include "core/eval_kernel.hpp"
#include "util/status.hpp"

namespace prpart {

SchemeEvaluation evaluate_scheme_reference(
    const Design& design, const ConnectivityMatrix& matrix,
    const std::vector<BasePartition>& partitions, const PartitionScheme& scheme,
    const ResourceVec& budget) {
  const std::size_t nconf = matrix.configs();
  SchemeEvaluation eval;
  eval.valid = true;

  // --- Region footprints (always, for every region) -------------------------
  eval.regions.reserve(scheme.regions.size());
  for (const Region& region : scheme.regions) {
    require(!region.members.empty(), "scheme contains an empty region");
    RegionReport report;
    for (std::size_t p : region.members) {
      require(p < partitions.size(), "scheme references unknown partition");
      report.raw = elementwise_max(report.raw, partitions[p].area);
    }
    report.tiles = tiles_for(report.raw);
    report.frames = report.tiles.frames();
    eval.pr_resources += report.tiles.resources();
    eval.regions.push_back(std::move(report));
  }

  // --- Static logic ---------------------------------------------------------
  eval.static_resources = design.static_base();
  for (std::size_t p : scheme.static_members) {
    require(p < partitions.size(), "scheme references unknown partition");
    eval.static_resources += partitions[p].area;
  }
  eval.total_resources = eval.pr_resources + eval.static_resources;
  eval.fits = eval.total_resources.fits_in(budget);

  // --- Active tables + double-activation (fail fast) ------------------------
  // First conflict in (region, configuration) scan order wins: the table
  // keeps the second claimant at the diagnosed configuration and stops, so
  // invalid schemes skip the rest of the O(R·C·M) walk. Later regions keep
  // empty active tables (their footprints above are still exact).
  for (std::size_t r = 0; r < scheme.regions.size() && eval.valid; ++r) {
    const Region& region = scheme.regions[r];
    RegionReport& report = eval.regions[r];
    report.active.assign(nconf, -1);
    for (std::size_t c = 0; c < nconf && eval.valid; ++c) {
      const DynBitset& row = matrix.row(c);
      for (std::size_t m = 0; m < region.members.size(); ++m) {
        if (!partitions[region.members[m]].modes.intersects(row)) continue;
        if (report.active[c] != -1) {
          eval.valid = false;
          eval.invalid_reason =
              "configuration " + design.configurations()[c].name +
              " activates two partitions in one region (incompatible "
              "members)";
          report.active[c] = static_cast<int>(m);
          break;
        }
        report.active[c] = static_cast<int>(m);
      }
    }
  }
  if (!eval.valid) return eval;

  // --- Coverage: every mode of every configuration must be provided ---------
  DynBitset static_modes(matrix.modes());
  for (std::size_t p : scheme.static_members) static_modes |= partitions[p].modes;
  DynBitset provided(matrix.modes());  // scratch; assignment reuses its words
  for (std::size_t c = 0; c < nconf && eval.valid; ++c) {
    provided = static_modes;
    for (std::size_t r = 0; r < scheme.regions.size(); ++r) {
      const int a = eval.regions[r].active[c];
      if (a >= 0)
        provided |= partitions[scheme.regions[r]
                                   .members[static_cast<std::size_t>(a)]]
                        .modes;
    }
    if (!matrix.row(c).is_subset_of(provided)) {
      eval.valid = false;
      eval.invalid_reason = "configuration " +
                            design.configurations()[c].name +
                            " has modes not provided by any region or static "
                            "logic";
    }
  }
  if (!eval.valid) return eval;

  // --- Reconfiguration time (Eqs. 7-11) -------------------------------------
  // Total: per region, the number of unordered configuration pairs whose
  // active members are both present and differ, times the region's frames.
  std::vector<std::uint64_t> count;  // scratch; assign() keeps the capacity
  for (std::size_t r = 0; r < scheme.regions.size(); ++r) {
    RegionReport& report = eval.regions[r];
    std::uint64_t present = 0;
    std::uint64_t same_pairs = 0;
    // Occurrence count per member; indices are bounded by the member count.
    count.assign(scheme.regions[r].members.size(), 0);
    for (int a : report.active) {
      if (a < 0) continue;
      ++present;
      ++count[static_cast<std::size_t>(a)];
    }
    for (std::uint64_t n : count) same_pairs += n * (n - 1) / 2;
    report.reconfig_pairs = present * (present - 1) / 2 - same_pairs;
    eval.total_frames += report.reconfig_pairs * report.frames;
  }

  // Worst case: max over pairs of the summed frames of regions that differ.
  for (std::size_t i = 0; i < nconf; ++i) {
    for (std::size_t j = i + 1; j < nconf; ++j) {
      std::uint64_t frames = 0;
      for (const RegionReport& report : eval.regions) {
        const int a = report.active[i];
        const int b = report.active[j];
        if (a >= 0 && b >= 0 && a != b) frames += report.frames;
      }
      eval.worst_frames = std::max(eval.worst_frames, frames);
    }
  }

  return eval;
}

SchemeEvaluation evaluate_scheme(const Design& design,
                                 const ConnectivityMatrix& matrix,
                                 const std::vector<BasePartition>& partitions,
                                 const PartitionScheme& scheme,
                                 const ResourceVec& budget) {
  // One-shot convenience path: building the context is O(P·C) word work,
  // negligible next to the evaluation it serves. Hot callers (the search,
  // the partitioner, the flow loop) hold a shared EvalContext instead.
  EvalContext context(design, matrix, partitions);
  EvalScratch scratch;
  return context.evaluate(scheme, budget, scratch);
}

}  // namespace prpart
