#pragma once

#include <cstdint>

#include "core/compatibility.hpp"
#include "core/scheme.hpp"

namespace prpart {

/// Options for the exact reference search.
struct OptimalOptions {
  /// Hard cap on explored assignment states; the search reports
  /// `exhausted = true` when it hits the cap (result is then best-effort).
  std::uint64_t max_states = 2'000'000;
  bool allow_static_promotion = true;
};

struct OptimalResult {
  bool feasible = false;
  /// True when max_states stopped the enumeration before completion.
  bool exhausted = false;
  PartitionScheme scheme;
  SchemeEvaluation eval;
  std::uint64_t states_explored = 0;
};

/// Exact branch-and-bound partitioning over a fixed candidate partition
/// set: enumerates every assignment of the candidate base partitions to
/// regions (respecting compatibility) or to the static logic, and returns
/// the feasible assignment with minimum total reconfiguration time.
///
/// Used as ground truth for the heuristic search: restricted to the same
/// candidate set, the heuristic can never beat this result, and the
/// quality-gap ablation measures how close it gets. The state space is the
/// Bell-number lattice with symmetry breaking (an item may only open the
/// next fresh group), pruned on the monotone total-time bound; it is
/// practical for candidate sets of up to roughly a dozen partitions.
///
/// Deliberately sequential: the incumbent-driven pruning makes the visited
/// state count depend on discovery order, so a parallel variant would
/// either lose determinism or forfeit most pruning. Parallel callers run
/// whole optimal_partitioning invocations per design/candidate-set in
/// parallel_for slots instead (nested parallel_for calls run inline), and
/// the heuristic search's SearchOptions::threads covers the production hot
/// path.
OptimalResult optimal_partitioning(const Design& design,
                                   const ConnectivityMatrix& matrix,
                                   const std::vector<BasePartition>& partitions,
                                   const CompatibilityTable& compat,
                                   const ResourceVec& budget,
                                   const std::vector<std::size_t>& candidate,
                                   const OptimalOptions& options = {});

/// Convenience: exact search over the first candidate partition set (all
/// used modes as singletons).
OptimalResult optimal_mode_level_partitioning(
    const Design& design, const ConnectivityMatrix& matrix,
    const std::vector<BasePartition>& partitions,
    const CompatibilityTable& compat, const ResourceVec& budget,
    const OptimalOptions& options = {});

}  // namespace prpart
