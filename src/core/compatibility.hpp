#pragma once

#include <cstddef>
#include <vector>

#include "core/base_partition.hpp"
#include "core/connectivity.hpp"
#include "util/bitset.hpp"

namespace prpart {

/// Compatibility between base partitions (§IV-C): two partitions are
/// compatible iff their modes never co-occur in any configuration, i.e.
/// their occupancy sets (the configurations each one is active in) are
/// disjoint. Only compatible partitions may share a reconfigurable region —
/// a region can hold a single bitstream at a time, so partitions needed
/// simultaneously must live in different regions.
class CompatibilityTable {
 public:
  CompatibilityTable(const ConnectivityMatrix& matrix,
                     const std::vector<BasePartition>& partitions);

  /// Configurations in which partition `p` is active (its modes intersect
  /// the configuration).
  const DynBitset& occupancy(std::size_t p) const;

  /// True when partitions `a` and `b` may share a region.
  bool compatible(std::size_t a, std::size_t b) const;

  std::size_t size() const { return occupancy_.size(); }

 private:
  std::vector<DynBitset> occupancy_;
};

}  // namespace prpart
