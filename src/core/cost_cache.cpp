#include "core/cost_cache.hpp"

#include "util/status.hpp"

namespace prpart {

std::size_t GroupCostCache::fnv1a(const Key& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t m : key) {
    h ^= m;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

GroupCostCache::GroupCostCache(std::size_t shard_count, HashFn hash)
    : hash_(hash) {
  require(shard_count > 0, "cost cache needs at least one shard");
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>(hash_));
}

std::optional<GroupCost> GroupCostCache::lookup(const Key& key,
                                                std::size_t hash) {
  Shard& shard = shard_for(hash);
  const MutexLock lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void GroupCostCache::store(const Key& key, const GroupCost& cost,
                           std::size_t hash) {
  Shard& shard = shard_for(hash);
  const MutexLock lock(shard.mutex);
  shard.map.emplace(key, cost);
}

GroupCostCache::Stats GroupCostCache::stats() const {
  return {hits_.load(std::memory_order_relaxed),
          misses_.load(std::memory_order_relaxed)};
}

std::size_t GroupCostCache::size() const {
  std::size_t total = 0;
  // One shard at a time: sequential acquisitions of one hierarchy level
  // are legal; holding two shards at once would not be.
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

}  // namespace prpart
