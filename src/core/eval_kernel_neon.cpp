// NEON tier of the evaluation kernel (DESIGN.md §4e). NEON is baseline on
// aarch64, so no extra compile flags and no runtime feature probe beyond
// the architecture itself; on every other architecture this TU reduces to
// the nullptr stub. Bitset words run two per 128-bit op; the int16
// signature masks use the lane-weight trick (AND the 0/0xFFFF compare
// lanes with {1,2,4,...,128}, horizontal-add to a byte mask).

#include "core/eval_kernel_tiers.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace prpart::eval_tiers {

namespace {

struct NeonOps {
  static void conflict_accumulate(std::uint64_t* occ, std::uint64_t* con,
                                  const std::uint64_t* act, std::size_t n) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const uint64x2_t a = vld1q_u64(act + i);
      uint64x2_t o = vld1q_u64(occ + i);
      uint64x2_t c = vld1q_u64(con + i);
      c = vorrq_u64(c, vandq_u64(o, a));
      o = vorrq_u64(o, a);
      vst1q_u64(con + i, c);
      vst1q_u64(occ + i, o);
    }
    for (; i < n; ++i) {
      con[i] |= occ[i] & act[i];
      occ[i] |= act[i];
    }
  }

  static void or_into(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
      vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
    for (; i < n; ++i) dst[i] |= src[i];
  }

  static bool any(const std::uint64_t* w, std::size_t n) {
    std::size_t i = 0;
    uint64x2_t acc = vdupq_n_u64(0);
    for (; i + 2 <= n; i += 2) acc = vorrq_u64(acc, vld1q_u64(w + i));
    std::uint64_t tail = vgetq_lane_u64(acc, 0) | vgetq_lane_u64(acc, 1);
    for (; i < n; ++i) tail |= w[i];
    return tail != 0;
  }

  static bool missing_into(std::uint64_t* dst, const std::uint64_t* used,
                           const std::uint64_t* touched,
                           const std::uint64_t* stat, std::size_t n) {
    std::size_t i = 0;
    uint64x2_t acc = vdupq_n_u64(0);
    for (; i + 2 <= n; i += 2) {
      const uint64x2_t u = vld1q_u64(used + i);
      const uint64x2_t t = vld1q_u64(touched + i);
      const uint64x2_t s = vld1q_u64(stat + i);
      const uint64x2_t m = vbicq_u64(u, vorrq_u64(t, s));
      vst1q_u64(dst + i, m);
      acc = vorrq_u64(acc, m);
    }
    std::uint64_t tail = vgetq_lane_u64(acc, 0) | vgetq_lane_u64(acc, 1);
    for (; i < n; ++i) {
      const std::uint64_t m = used[i] & ~(touched[i] | stat[i]);
      dst[i] = m;
      tail |= m;
    }
    return tail != 0;
  }

  static std::uint64_t active_mask16(const std::int16_t* row, std::size_t k) {
    std::uint64_t mask = 0;
    std::size_t i = 0;
    const uint16x8_t weights = {1, 2, 4, 8, 16, 32, 64, 128};
    for (; i + 8 <= k; i += 8) {
      const int16x8_t v = vld1q_s16(row + i);
      const uint16x8_t ge = vcgeq_s16(v, vdupq_n_s16(0));
      mask |= static_cast<std::uint64_t>(vaddvq_u16(vandq_u16(ge, weights)))
              << i;
    }
    for (; i < k; ++i)
      if (row[i] >= 0) mask |= std::uint64_t{1} << i;
    return mask;
  }

  static std::uint64_t eq_mask16(const std::int16_t* a, const std::int16_t* b,
                                 std::size_t k) {
    std::uint64_t mask = 0;
    std::size_t i = 0;
    const uint16x8_t weights = {1, 2, 4, 8, 16, 32, 64, 128};
    for (; i + 8 <= k; i += 8) {
      const uint16x8_t eq = vceqq_s16(vld1q_s16(a + i), vld1q_s16(b + i));
      mask |= static_cast<std::uint64_t>(vaddvq_u16(vandq_u16(eq, weights)))
              << i;
    }
    for (; i < k; ++i)
      if (a[i] == b[i]) mask |= std::uint64_t{1} << i;
    return mask;
  }
};

}  // namespace

BatchFn neon_fn() { return &run_batch<NeonOps>; }

}  // namespace prpart::eval_tiers

#else  // !__aarch64__

namespace prpart::eval_tiers {

BatchFn neon_fn() { return nullptr; }

}  // namespace prpart::eval_tiers

#endif
