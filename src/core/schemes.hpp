#pragma once

#include <utility>

#include "core/scheme.hpp"

namespace prpart {

/// One-module-per-region baseline (§IV-A): a region per module holding that
/// module's modes as singleton base partitions, sized for the largest mode.
/// Modes that never appear in a configuration are dead and excluded.
/// Evaluate with evaluate_scheme.
PartitionScheme make_modular_scheme(const Design& design,
                                    const ConnectivityMatrix& matrix,
                                    const std::vector<BasePartition>& partitions);

/// Fully static baseline (Table IV row "Static"): every used mode promoted
/// into the static logic, no reconfigurable regions, zero reconfiguration
/// time. Usually does not fit the budget — that is the point of the row.
PartitionScheme make_static_scheme(const Design& design,
                                   const ConnectivityMatrix& matrix,
                                   const std::vector<BasePartition>& partitions);

/// Single-region baseline (§IV-A): all reconfigurable modules in one region;
/// each configuration is one full-region bitstream, so the region is sized
/// for the largest configuration and *every* transition reconfigures it.
///
/// This scheme is evaluated directly rather than through evaluate_scheme:
/// with configurations whose mode sets nest, several full-configuration
/// bitstreams can serve one configuration, which breaks the unique-active-
/// member rule the generic evaluator checks. The returned scheme lists the
/// full-configuration partitions of the single region for reporting.
std::pair<PartitionScheme, SchemeEvaluation> single_region_scheme(
    const Design& design, const ConnectivityMatrix& matrix,
    const std::vector<BasePartition>& partitions, const ResourceVec& budget);

/// Index of the singleton base partition of `mode` in the master list;
/// throws InternalError when absent (i.e. the mode is dead).
std::size_t singleton_partition(const std::vector<BasePartition>& partitions,
                                std::size_t mode);

}  // namespace prpart
