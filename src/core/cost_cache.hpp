#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "device/resources.hpp"
#include "device/tiles.hpp"
#include "util/thread_annotations.hpp"

namespace prpart {

/// The member-set-determined part of a region's cost model: every field is a
/// pure function of the set of base partitions in the region (areas are
/// element-wise maxima, tw_union sums pair weights over the occupancy
/// union), so one entry can be shared by every search branch that forms the
/// same region, no matter through which merge sequence it got there.
struct GroupCost {
  ResourceVec raw;               ///< element-wise max of member areas (Eq. 2)
  TileCount tiles;               ///< Eqs. 3-5 on raw
  std::uint64_t frames = 0;      ///< Eq. 6
  std::uint64_t tw_union = 0;    ///< pair weight over the occupancy union
};

/// Concurrent memo table from a region's member set (sorted master-list
/// indices) to its GroupCost, shared by all worker threads of one
/// region-allocation search.
///
/// Collision safety: the hash only selects the shard and bucket; entries are
/// matched by comparing the full key, so two distinct member sets can never
/// alias each other even under a degenerate hash (unit-tested with a
/// constant hash function).
///
/// Memoisation is semantically transparent: values are pure functions of the
/// key, so hit/miss interleaving across threads cannot change any search
/// result — only the hit/miss counters are scheduling-dependent.
class GroupCostCache {
 public:
  using Key = std::vector<std::size_t>;
  using HashFn = std::size_t (*)(const Key&);

  /// FNV-1a over the member indices (the default hash).
  static std::size_t fnv1a(const Key& key);

  explicit GroupCostCache(std::size_t shard_count = 16,
                          HashFn hash = &fnv1a);

  /// The configured hash of `key` — callers on the miss path compute it
  /// once and pass it to the lookup/store pair below, halving the number of
  /// shard-selection hashes per missed key.
  std::size_t hash_of(const Key& key) const { return hash_(key); }

  /// Returns the cached cost for the sorted member set `key`, or nullopt on
  /// a miss. Thread-safe; counts one hit or one miss.
  std::optional<GroupCost> lookup(const Key& key) {
    return lookup(key, hash_(key));
  }
  /// As above with the shard-selection hash precomputed (== hash_of(key)).
  std::optional<GroupCost> lookup(const Key& key, std::size_t hash);

  /// Inserts `cost` for `key`. Thread-safe; concurrent stores of the same
  /// key are benign because every caller computes the identical value.
  void store(const Key& key, const GroupCost& cost) {
    store(key, cost, hash_(key));
  }
  /// As above with the shard-selection hash precomputed (== hash_of(key)).
  void store(const Key& key, const GroupCost& cost, std::size_t hash);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const;

  /// Number of distinct member sets cached, summed over shards.
  std::size_t size() const;

 private:
  struct KeyHash {
    HashFn fn;
    std::size_t operator()(const Key& key) const { return fn(key); }
  };
  struct Shard {
    explicit Shard(HashFn fn) : map(0, KeyHash{fn}) {}

    /// All shards share one hierarchy level: a thread holds at most one
    /// shard at a time (lookup/store touch exactly the key's shard), and
    /// the lock-order validator enforces it — two shards held at once
    /// abort, which is what makes per-shard locking deadlock-free.
    Mutex mutex{lock_order::Level::kCostCacheShard, "core.cost_cache.shard"};
    std::unordered_map<Key, GroupCost, KeyHash> map PRPART_GUARDED_BY(mutex);
  };

  Shard& shard_for(std::size_t hash) {
    return *shards_[hash % shards_.size()];
  }

  HashFn hash_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace prpart
