#include "core/report.hpp"

#include "util/strings.hpp"
#include "util/table.hpp"

namespace prpart {

std::string render_base_partitions(
    const Design& design, const std::vector<BasePartition>& partitions) {
  TextTable t({"Base Part'n", "Freq wt", "Modes", "Frames"});
  for (const BasePartition& p : partitions)
    t.add_row({p.label(design), std::to_string(p.frequency_weight),
               std::to_string(p.modes.count()), std::to_string(p.frames)});
  return t.render();
}

std::string render_scheme_partitions(
    const Design& design, const std::vector<BasePartition>& partitions,
    const PartitionScheme& scheme) {
  TextTable t({"Region", "Base Partitions"});
  auto label_members = [&](const std::vector<std::size_t>& members) {
    std::string out;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i) out += ", ";
      out += partitions[members[i]].label(design);
    }
    return out;
  };
  if (!scheme.static_members.empty())
    t.add_row({"static", label_members(scheme.static_members)});
  for (std::size_t r = 0; r < scheme.regions.size(); ++r)
    t.add_row({"PRR" + std::to_string(r + 1),
               label_members(scheme.regions[r].members)});
  return t.render();
}

std::string render_scheme_comparison(const PartitionerResult& result) {
  TextTable t({"Scheme", "CLBs", "BRAMs", "DSPs", "Fits", "Total recon (frames)",
               "Worst recon (frames)"});
  auto row = [&](const SchemeSummary& s) {
    const SchemeEvaluation& e = s.eval;
    t.add_row({s.name, std::to_string(e.total_resources.clbs),
               std::to_string(e.total_resources.brams),
               std::to_string(e.total_resources.dsps), e.fits ? "yes" : "NO",
               with_commas(e.total_frames), with_commas(e.worst_frames)});
  };
  row(result.static_impl);
  row(result.modular);
  row(result.single_region);
  if (result.feasible) row(result.proposed);
  return t.render();
}

}  // namespace prpart
