#include "core/eval_kernel.hpp"

#include <algorithm>
#include <cstring>

#include "core/eval_kernel_tiers.hpp"
#include "util/status.hpp"

namespace prpart {

namespace {

// The signature pass packs active-member ids into int16; regions with more
// members than that fall back to the direct pair loop (never hit by the
// generator, but the kernel must stay exact for any input).
constexpr std::size_t kMaxInt16Members = 32766;

// Resolves a vector tier to its compiled batch entry point. A tier only
// reaches this after simd::tier_supported said the CPU can run it; a null
// entry then means the binary was built without that ISA (e.g. a non-x86
// build asked for avx2), which is a build/deployment error, not a fallback.
eval_tiers::BatchFn batch_fn_for(simd::Tier tier) {
  eval_tiers::BatchFn fn = nullptr;
  switch (tier) {
    case simd::Tier::kScalar:
      break;
    case simd::Tier::kNeon:
      fn = eval_tiers::neon_fn();
      break;
    case simd::Tier::kAvx2:
      fn = eval_tiers::avx2_fn();
      break;
    case simd::Tier::kAvx512:
      fn = eval_tiers::avx512_fn();
      break;
  }
  require(fn != nullptr,
          "active SIMD tier is not compiled into this binary");
  return fn;
}

}  // namespace

EvalContext::EvalContext(const Design& design, const ConnectivityMatrix& matrix,
                         const std::vector<BasePartition>& partitions)
    : design_(design), matrix_(matrix), partitions_(partitions) {
  const std::size_t nconf = matrix.configs();
  const std::size_t nmodes = matrix.modes();

  activity_.reserve(partitions.size());
  for (const BasePartition& part : partitions) {
    DynBitset act(nconf);
    for (std::size_t c = 0; c < nconf; ++c)
      if (part.modes.intersects(matrix.row(c))) act.set(c);
    activity_.push_back(std::move(act));
  }

  mode_configs_.assign(nmodes, DynBitset(nconf));
  for (std::size_t c = 0; c < nconf; ++c)
    matrix.row(c).for_each_set_bit(
        [&](std::size_t j) { mode_configs_[j].set(c); });
  for (std::size_t j = 0; j < nmodes; ++j)
    if (mode_configs_[j].any()) used_modes_.push_back(static_cast<std::uint32_t>(j));

  // Vector-tier precomputes (§4e): the rows are immutable, so their
  // popcounts serve Eq. 10 as a table, and the used set doubles as a word
  // mask for the one-pass coverage check.
  activity_count_.reserve(activity_.size());
  for (const DynBitset& act : activity_) activity_count_.push_back(act.count());
  used_mask_ = DynBitset(nmodes);
  for (std::uint32_t j : used_modes_) used_mask_.set(j);
}

void EvalContext::prepare(EvalScratch& s) const {
  const std::size_t nconf = matrix_.configs();
  const std::size_t nmodes = matrix_.modes();
  if (s.region_occ_.size() != nconf || s.static_modes_.size() != nmodes) {
    s.region_occ_ = DynBitset(nconf);
    s.conflicts_ = DynBitset(nconf);
    s.uncovered_ = DynBitset(nconf);
    s.static_modes_ = DynBitset(nmodes);
    s.touched_ = DynBitset(nmodes);
    s.missing_modes_ = DynBitset(nmodes);
    s.providers_.assign(nmodes, DynBitset(nconf));
  }
}

SchemeEvaluation EvalContext::evaluate(const PartitionScheme& scheme,
                                       const ResourceVec& budget,
                                       EvalScratch& scratch) const {
  SchemeEvaluation eval;
  evaluate_into(scheme, budget, scratch, eval);
  return eval;
}

void EvalContext::evaluate_into(const PartitionScheme& scheme,
                                const ResourceVec& budget, EvalScratch& scratch,
                                SchemeEvaluation& eval) const {
  const simd::Tier tier = simd::active_tier();
  if (tier == simd::Tier::kScalar) {
    evaluate_scalar_into(scheme, budget, scratch, eval);
    return;
  }
  const PartitionScheme* one = &scheme;
  batch_fn_for(tier)(*this, &one, 1, budget, scratch, &eval);
}

void EvalContext::evaluate_batch_into(const PartitionScheme* const* schemes,
                                      std::size_t count,
                                      const ResourceVec& budget,
                                      EvalScratch& scratch,
                                      SchemeEvaluation* evals) const {
  if (count == 0) return;
  const simd::Tier tier = simd::active_tier();
  if (tier == simd::Tier::kScalar) {
    for (std::size_t i = 0; i < count; ++i)
      evaluate_scalar_into(*schemes[i], budget, scratch, evals[i]);
    return;
  }
  batch_fn_for(tier)(*this, schemes, count, budget, scratch, evals);
}

void EvalContext::evaluate_batch_into(
    const std::vector<const PartitionScheme*>& schemes,
    const ResourceVec& budget, EvalScratch& scratch,
    std::vector<SchemeEvaluation>& evals) const {
  evals.resize(schemes.size());
  evaluate_batch_into(schemes.data(), schemes.size(), budget, scratch,
                      evals.data());
}

void EvalContext::evaluate_scalar_into(const PartitionScheme& scheme,
                                       const ResourceVec& budget,
                                       EvalScratch& scratch,
                                       SchemeEvaluation& eval) const {
  prepare(scratch);
  ++scratch.stats.kernel_evaluations;

  const std::size_t nconf = matrix_.configs();
  const std::size_t nregions = scheme.regions.size();

  eval.valid = true;
  eval.invalid_reason.clear();
  eval.fits = false;
  eval.pr_resources = {};
  eval.static_resources = {};
  eval.total_resources = {};
  eval.total_frames = 0;
  eval.worst_frames = 0;
  eval.regions.resize(nregions);

  // --- Region footprints (always, for every region) ------------------------
  for (std::size_t r = 0; r < nregions; ++r) {
    const Region& region = scheme.regions[r];
    require(!region.members.empty(), "scheme contains an empty region");
    RegionReport& report = eval.regions[r];
    report.raw = {};
    report.reconfig_pairs = 0;
    report.active.clear();
    for (std::size_t p : region.members) {
      require(p < partitions_.size(), "scheme references unknown partition");
      report.raw = elementwise_max(report.raw, partitions_[p].area);
    }
    report.tiles = tiles_for(report.raw);
    report.frames = report.tiles.frames();
    eval.pr_resources += report.tiles.resources();
  }

  // --- Static logic ---------------------------------------------------------
  eval.static_resources = design_.static_base();
  for (std::size_t p : scheme.static_members) {
    require(p < partitions_.size(), "scheme references unknown partition");
    eval.static_resources += partitions_[p].area;
  }
  eval.total_resources = eval.pr_resources + eval.static_resources;
  eval.fits = eval.total_resources.fits_in(budget);

  // --- Active tables + double-activation (fail fast) ------------------------
  // A region's active table is the union of its members' activity rows; a
  // conflict is any configuration claimed by two members. Diagnosis matches
  // the reference scan order: first region in scheme order with a conflict,
  // lowest conflicting configuration within it.
  for (std::size_t r = 0; r < nregions; ++r) {
    const Region& region = scheme.regions[r];
    RegionReport& report = eval.regions[r];
    scratch.region_occ_.clear_all();
    scratch.conflicts_.clear_all();
    for (std::size_t p : region.members) {
      const DynBitset& act = activity_[p];
      scratch.conflicts_.or_and(scratch.region_occ_, act);
      scratch.region_occ_ |= act;
    }
    if (scratch.conflicts_.any()) {
      const std::size_t cstar = scratch.conflicts_.find_first();
      eval.valid = false;
      eval.invalid_reason =
          "configuration " + design_.configurations()[cstar].name +
          " activates two partitions in one region (incompatible members)";
      // Rebuild the partial table the fail-fast reference leaves behind:
      // configurations before the diagnosed one filled normally (they have
      // at most one active member), the diagnosed one holding the second
      // claimant in member order, later ones untouched.
      report.active.assign(nconf, -1);
      for (std::size_t m = 0; m < region.members.size(); ++m)
        activity_[region.members[m]].for_each_set_bit([&](std::size_t c) {
          if (c < cstar) report.active[c] = static_cast<int>(m);
        });
      int seen = 0;
      for (std::size_t m = 0; m < region.members.size(); ++m) {
        if (!activity_[region.members[m]].test(cstar)) continue;
        if (++seen == 2) {
          report.active[cstar] = static_cast<int>(m);
          break;
        }
      }
      return;  // later regions keep empty active tables, like the reference
    }
    report.active.assign(nconf, -1);
    for (std::size_t m = 0; m < region.members.size(); ++m)
      activity_[region.members[m]].for_each_set_bit(
          [&](std::size_t c) { report.active[c] = static_cast<int>(m); });
  }

  // --- Coverage, mode-major -------------------------------------------------
  // providers_[j] accumulates the configurations in which some region
  // actively implements mode j; a mode is covered when every configuration
  // containing it is in that set (word-parallel subset test, early exit on
  // the first differing word). The union of failures reproduces the
  // reference's first failing configuration as its lowest set bit.
  scratch.static_modes_.clear_all();
  for (std::size_t p : scheme.static_members)
    scratch.static_modes_ |= partitions_[p].modes;
  scratch.touched_.clear_all();
  for (const Region& region : scheme.regions)
    for (std::size_t p : region.members) {
      const DynBitset& act = activity_[p];
      partitions_[p].modes.for_each_set_bit([&](std::size_t j) {
        if (scratch.touched_.test(j)) {
          scratch.providers_[j] |= act;
        } else {
          scratch.providers_[j] = act;
          scratch.touched_.set(j);
        }
      });
    }
  bool covered = true;
  for (std::uint32_t j : used_modes_) {
    if (scratch.static_modes_.test(j)) continue;
    if (scratch.touched_.test(j) &&
        mode_configs_[j].is_subset_of(scratch.providers_[j]))
      continue;
    if (covered) {
      covered = false;
      scratch.uncovered_.clear_all();
    }
    if (scratch.touched_.test(j))
      scratch.uncovered_.or_andnot(mode_configs_[j], scratch.providers_[j]);
    else
      scratch.uncovered_ |= mode_configs_[j];
  }
  if (!covered) {
    eval.valid = false;
    eval.invalid_reason =
        "configuration " +
        design_.configurations()[scratch.uncovered_.find_first()].name +
        " has modes not provided by any region or static logic";
    return;
  }

  // --- Eq. 10 + contributing-region detection -------------------------------
  // Valid schemes activate member m exactly in its activity configurations,
  // so the occurrence counts are plain popcounts. A region can only affect
  // the worst-case pass when at least two distinct members are active
  // somewhere; the rest add zero frames to every pair.
  scratch.kept_.clear();
  scratch.kept_frames_.clear();
  for (std::size_t r = 0; r < nregions; ++r) {
    const Region& region = scheme.regions[r];
    RegionReport& report = eval.regions[r];
    std::uint64_t present = 0;
    std::uint64_t same_pairs = 0;
    std::size_t members_present = 0;
    for (std::size_t p : region.members) {
      const std::uint64_t n = activity_[p].count();
      if (n == 0) continue;
      present += n;
      same_pairs += n * (n - 1) / 2;
      ++members_present;
    }
    report.reconfig_pairs = present * (present - 1) / 2 - same_pairs;
    eval.total_frames += report.reconfig_pairs * report.frames;
    if (members_present >= 2) {
      scratch.kept_.push_back(static_cast<std::uint32_t>(r));
      scratch.kept_frames_.push_back(report.frames);
    }
  }

  // --- Eq. 11, signature-collapsed ------------------------------------------
  const std::size_t nkept = scratch.kept_.size();
  if (nkept == 0 || nconf < 2) return;

  bool fits_int16 = true;
  for (std::uint32_t r : scratch.kept_)
    if (scheme.regions[r].members.size() > kMaxInt16Members) fits_int16 = false;
  if (!fits_int16) {
    // Direct pair loop over the contributing regions; exact but never taken
    // for realistically sized regions.
    for (std::size_t i = 0; i < nconf; ++i)
      for (std::size_t j = i + 1; j < nconf; ++j) {
        std::uint64_t frames = 0;
        for (std::size_t k = 0; k < nkept; ++k) {
          const std::vector<int>& active = eval.regions[scratch.kept_[k]].active;
          const int a = active[i];
          const int b = active[j];
          if (a >= 0 && b >= 0 && a != b) frames += scratch.kept_frames_[k];
        }
        eval.worst_frames = std::max(eval.worst_frames, frames);
      }
    return;
  }

  // Pack each configuration's active ids over the contributing regions into
  // a contiguous int16 row, then sort-group identical rows: equal rows form
  // zero-frame pairs with each other and identical pairs with everyone
  // else, so one representative per signature preserves the maximum.
  scratch.cols_.resize(nconf * nkept);
  for (std::size_t k = 0; k < nkept; ++k) {
    const std::vector<int>& active = eval.regions[scratch.kept_[k]].active;
    for (std::size_t c = 0; c < nconf; ++c)
      scratch.cols_[c * nkept + k] = static_cast<std::int16_t>(active[c]);
  }
  scratch.order_.resize(nconf);
  for (std::size_t c = 0; c < nconf; ++c)
    scratch.order_[c] = static_cast<std::uint32_t>(c);
  const std::size_t row_bytes = nkept * sizeof(std::int16_t);
  const auto row = [&](std::uint32_t c) { return &scratch.cols_[c * nkept]; };
  std::sort(scratch.order_.begin(), scratch.order_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return std::memcmp(row(a), row(b), row_bytes) < 0;
            });
  scratch.reps_.clear();
  for (std::size_t i = 0; i < nconf; ++i)
    if (i == 0 ||
        std::memcmp(row(scratch.order_[i]), row(scratch.order_[i - 1]),
                    row_bytes) != 0)
      scratch.reps_.push_back(scratch.order_[i]);
  scratch.stats.signature_collapsed_configs += nconf - scratch.reps_.size();

  // A pair can reconfigure at most the regions active on both sides, so
  // frames(u, v) <= min(bound(u), bound(v)) with bound(c) the total frames
  // of the regions active in c. Visiting representatives in decreasing
  // bound order makes both loops monotone in that upper bound: as soon as
  // the bound falls to the running maximum, no remaining pair can beat it.
  // Pure pruning -- the surviving pairs produce the exact same maximum.
  const std::size_t nreps = scratch.reps_.size();
  scratch.rep_bound_.resize(nreps);
  for (std::size_t u = 0; u < nreps; ++u) {
    const std::int16_t* ru = row(scratch.reps_[u]);
    std::uint64_t bound = 0;
    for (std::size_t k = 0; k < nkept; ++k)
      if (ru[k] >= 0) bound += scratch.kept_frames_[k];
    scratch.rep_bound_[u] = bound;
  }
  scratch.rep_order_.resize(nreps);
  for (std::size_t u = 0; u < nreps; ++u)
    scratch.rep_order_[u] = static_cast<std::uint32_t>(u);
  std::sort(scratch.rep_order_.begin(), scratch.rep_order_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (scratch.rep_bound_[a] != scratch.rep_bound_[b])
                return scratch.rep_bound_[a] > scratch.rep_bound_[b];
              return a < b;
            });

  for (std::size_t ui = 0; ui < nreps; ++ui) {
    const std::uint32_t u = scratch.rep_order_[ui];
    if (scratch.rep_bound_[u] <= eval.worst_frames) break;
    const std::int16_t* ru = row(scratch.reps_[u]);
    for (std::size_t vi = ui + 1; vi < nreps; ++vi) {
      const std::uint32_t v = scratch.rep_order_[vi];
      if (scratch.rep_bound_[v] <= eval.worst_frames) break;
      const std::int16_t* rv = row(scratch.reps_[v]);
      std::uint64_t frames = 0;
      for (std::size_t k = 0; k < nkept; ++k) {
        const std::int16_t a = ru[k];
        const std::int16_t b = rv[k];
        if (a >= 0 && b >= 0 && a != b) frames += scratch.kept_frames_[k];
      }
      eval.worst_frames = std::max(eval.worst_frames, frames);
    }
  }
}

}  // namespace prpart
