#pragma once

#include <string>
#include <vector>

#include "core/base_partition.hpp"
#include "core/scheme.hpp"
#include "core/search.hpp"
#include "design/design.hpp"
#include "device/device.hpp"

namespace prpart {

struct PartitionerOptions {
  /// Search effort and parallelism. `search.threads` fans the search's
  /// work units across a worker pool (0 = hardware concurrency, 1 =
  /// inline); every thread count yields byte-identical schemes and stats,
  /// so PartitionerResult is reproducible across machines. Surfaced on the
  /// CLI as `--threads N`. `search.pool` and `search.scratch` pass a
  /// persistent WorkerPool and a warm EvalScratch through to both the
  /// search phases and the partitioner's own baseline batch (§4e): the
  /// server's job workers set them so steady-state requests spawn no
  /// threads and allocate nothing in the kernel.
  SearchOptions search;
  /// Cap on enumerated base-partition size passed to the clustering
  /// (0 = unlimited, the paper's behaviour). The number of co-occurring
  /// mode subsets grows as 2^(configuration width), so designs much wider
  /// than the paper's 5-6 modules should set a cap (full-configuration
  /// partitions are kept regardless).
  std::size_t max_partition_modes = 0;
};

/// A named scheme with its evaluation.
struct SchemeSummary {
  std::string name;
  PartitionScheme scheme;
  SchemeEvaluation eval;
};

/// Everything the tool reports for one design on one budget: the proposed
/// partitioning plus the three reference schemes of the paper's evaluation.
struct PartitionerResult {
  /// Whether any PR scheme fits (equivalently, whether the single-region
  /// lower bound fits; §IV-C feasibility check).
  bool feasible = false;

  /// The proposed scheme: the search result, or the single-region scheme
  /// when the search found nothing better that fits.
  SchemeSummary proposed;
  /// True when `proposed` came from the search rather than the fallback.
  bool proposed_from_search = false;

  SchemeSummary modular;        ///< one module per region
  SchemeSummary single_region;  ///< one region for everything
  SchemeSummary static_impl;    ///< fully static (usually does not fit)

  std::vector<BasePartition> base_partitions;
  /// Ranked fitting schemes from the search (ascending objective; first is
  /// `proposed` when proposed_from_search). Used by the flow's floorplan
  /// feedback to try runners-up before shrinking the budget.
  std::vector<RankedScheme> alternatives;
  SearchStats stats;
};

/// Runs the whole §IV flow for `design` against a resource budget:
/// connectivity matrix, clustering, covering, compatibility, search, plus
/// the baseline schemes.
PartitionerResult partition_design(const Design& design,
                                   const ResourceVec& budget,
                                   const PartitionerOptions& options = {});

/// Result of the device-selection mode (§IV-C: the tool "can suggest the
/// smallest FPGA suitable to implement the given design").
struct DevicePartitionResult {
  /// Device the design was finally partitioned on.
  const Device* device = nullptr;
  std::size_t chosen_index = 0;
  /// Smallest device whose capacity covers the single-region lower bound.
  std::size_t first_feasible_index = 0;
  /// True when the search had to escalate past the first feasible device
  /// because only the single-region scheme fit there (§V: 201 of 1000
  /// designs "could not be alternatively arranged on the smallest FPGA").
  bool escalated = false;
  PartitionerResult result;
};

/// Walks the library from the smallest device up: picks the first device
/// where the design is implementable at all, partitions there, and - when
/// no scheme other than single-region is feasible - retries on the next
/// larger device. Throws DeviceError when the design fits no device.
DevicePartitionResult partition_on_smallest_device(
    const Design& design, const DeviceLibrary& library,
    const PartitionerOptions& options = {});

}  // namespace prpart
