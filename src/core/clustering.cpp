#include "core/clustering.hpp"

#include <algorithm>
#include <unordered_set>

#include "device/tiles.hpp"
#include "util/status.hpp"

namespace prpart {

namespace {

ResourceVec sum_area(const Design& design, const DynBitset& modes) {
  ResourceVec area;
  for (std::size_t m : modes.bits()) area += design.mode_area(m);
  return area;
}

std::uint32_t min_edge_weight(const ConnectivityMatrix& matrix,
                              const DynBitset& modes) {
  const std::vector<std::size_t> ms = modes.bits();
  std::uint32_t w = ~0u;
  for (std::size_t a = 0; a < ms.size(); ++a)
    for (std::size_t b = a + 1; b < ms.size(); ++b)
      w = std::min(w, matrix.edge_weight(ms[a], ms[b]));
  return w;
}

BasePartition make_partition(const Design& design,
                             const ConnectivityMatrix& matrix,
                             DynBitset modes) {
  BasePartition p;
  const std::size_t n = modes.count();
  p.frequency_weight = n == 1
                           ? matrix.node_weight(modes.bits().front())
                           : min_edge_weight(matrix, modes);
  p.edges = static_cast<std::uint32_t>(n * (n - 1) / 2);
  p.area = sum_area(design, modes);
  p.frames = frames_for(p.area);
  p.modes = std::move(modes);
  return p;
}

}  // namespace

std::vector<BasePartition> enumerate_base_partitions(
    const Design& design, const ConnectivityMatrix& matrix,
    std::size_t max_modes) {
  require(max_modes == 0 || max_modes >= 2,
          "max_modes must be 0 (unlimited) or at least 2");
  const std::size_t n = matrix.modes();
  std::vector<BasePartition> out;

  // k=0 sub-graphs: every mode that occurs at all, in column order.
  for (std::size_t m = 0; m < n; ++m) {
    if (matrix.node_weight(m) == 0) continue;  // dead mode: no partition
    DynBitset bits(n);
    bits.set(m);
    out.push_back(make_partition(design, matrix, std::move(bits)));
  }

  // Positive-weight links, descending weight (the agglomerative metric),
  // ties broken by column order for determinism.
  struct Link {
    std::size_t a, b;
    std::uint32_t weight;
  };
  std::vector<Link> links;
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b)
      if (const std::uint32_t w = matrix.edge_weight(a, b); w > 0)
        links.push_back({a, b, w});
  // Full total order ((a, b) breaks weight ties), so std::sort is exact.
  std::sort(links.begin(), links.end(), [](const Link& x, const Link& y) {
    if (x.weight != y.weight) return x.weight > y.weight;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });

  std::vector<DynBitset> adjacency(n, DynBitset(n));
  std::unordered_set<DynBitset, DynBitsetHash> seen;

  // Records `set` as a base partition; duplicates would indicate a bug in
  // the "clique found exactly once, when its last edge arrives" argument.
  auto record = [&](const DynBitset& set) {
    require(seen.insert(set).second,
            "clustering produced a duplicate base partition");
    out.push_back(make_partition(design, matrix, set));
  };

  // Depth-first extension of the clique `current` by candidates (indices
  // into `cands` from `from` on), each adjacent to every member of
  // `current`. The co-occurrence filter prunes: if `current` is not a
  // subset of any configuration, no superset is either.
  auto extend = [&](auto&& self, const DynBitset& current,
                    const std::vector<std::size_t>& cands,
                    std::size_t from) -> void {
    record(current);
    if (max_modes != 0 && current.count() >= max_modes) return;
    for (std::size_t i = from; i < cands.size(); ++i) {
      const std::size_t c = cands[i];
      DynBitset next = current;
      next.set(c);
      if (matrix.cooccurrence(next) == 0) continue;
      std::vector<std::size_t> next_cands;
      for (std::size_t j = i + 1; j < cands.size(); ++j)
        if (adjacency[c].test(cands[j])) next_cands.push_back(cands[j]);
      self(self, next, next_cands, 0);
    }
  };

  for (const Link& link : links) {
    adjacency[link.a].set(link.b);
    adjacency[link.b].set(link.a);

    DynBitset pair(n);
    pair.set(link.a);
    pair.set(link.b);
    // Every clique completed by this link contains both endpoints; its other
    // members are common neighbours of them.
    std::vector<std::size_t> common =
        (adjacency[link.a] & adjacency[link.b]).bits();
    extend(extend, pair, common, 0);
  }

  // The full-configuration sets are base partitions by construction (the
  // maximal co-occurring sets); keep them available even when a cap pruned
  // the enumeration, since the single-region scheme is built from them.
  if (max_modes != 0) {
    for (std::size_t c = 0; c < matrix.configs(); ++c) {
      const DynBitset& row = matrix.row(c);
      if (row.count() > 1 && !seen.count(row)) record(row);
    }
  }

  return out;
}

std::vector<BasePartition> enumerate_base_partitions_oracle(
    const Design& design, const ConnectivityMatrix& matrix) {
  const std::size_t n = matrix.modes();
  std::unordered_set<DynBitset, DynBitsetHash> seen;
  std::vector<BasePartition> out;

  for (std::size_t c = 0; c < matrix.configs(); ++c) {
    const std::vector<std::size_t> present = matrix.row(c).bits();
    require(present.size() < 20, "oracle limited to narrow configurations");
    const std::size_t subsets = std::size_t{1} << present.size();
    for (std::size_t mask = 1; mask < subsets; ++mask) {
      DynBitset set(n);
      for (std::size_t i = 0; i < present.size(); ++i)
        if (mask & (std::size_t{1} << i)) set.set(present[i]);
      if (seen.insert(set).second)
        out.push_back(make_partition(design, matrix, std::move(set)));
    }
  }
  return out;
}

}  // namespace prpart
