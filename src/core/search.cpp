#include "core/search.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <utility>

#include "core/cost_cache.hpp"
#include "core/covering.hpp"
#include "util/parallel_for.hpp"
#include "util/status.hpp"

namespace prpart {

namespace {

// Heuristic weights for collapsing a ResourceVec into one scalar: frames per
// primitive (x10), i.e. the configuration-memory cost of one unit of each
// resource. Only used to rank states; all reported numbers stay in frames.
constexpr std::uint64_t kWClb = 18;   // 36 frames / 20 CLBs
constexpr std::uint64_t kWBram = 75;  // 30 frames / 4 BRAMs
constexpr std::uint64_t kWDsp = 35;   // 28 frames / 8 DSPs

std::uint64_t weighted_area(const ResourceVec& r) {
  return r.clbs * kWClb + r.brams * kWBram + r.dsps * kWDsp;
}

std::uint64_t budget_excess(const ResourceVec& used, const ResourceVec& budget) {
  auto over = [](std::uint32_t u, std::uint32_t b) -> std::uint64_t {
    return u > b ? u - b : 0;
  };
  return over(used.clbs, budget.clbs) * kWClb +
         over(used.brams, budget.brams) * kWBram +
         over(used.dsps, budget.dsps) * kWDsp;
}

/// Lexicographic objective: first fit (budget excess), then — once fitting —
/// total reconfiguration time with area as tie-break; while not fitting,
/// area (the route towards fitting) with time as tie-break.
struct Objective {
  std::uint64_t excess;
  std::uint64_t primary;
  std::uint64_t secondary;

  bool operator<(const Objective& o) const {
    if (excess != o.excess) return excess < o.excess;
    if (primary != o.primary) return primary < o.primary;
    return secondary < o.secondary;
  }
};

/// One region-in-progress: a set of base partitions plus the incremental
/// cost-model quantities needed to evaluate moves in O(1).
///
/// The pair bookkeeping is weight-generalised: tw_union is the summed
/// weight of all configuration pairs where the group is active in both,
/// tw_same the part where the *same* member is active in both. Their
/// difference, times frames, is the group's (possibly weighted) Eq. 10
/// term. With uniform weights tw_union = C(|occ|, 2).
///
/// `members` is kept sorted at all times: the sorted member set is the
/// group's identity in the shared cost cache.
struct Group {
  std::vector<std::size_t> members;
  DynBitset occ;             ///< union of member occupancies (configs)
  ResourceVec raw;           ///< element-wise max of member areas (Eq. 2)
  ResourceVec promote_area;  ///< element-wise SUM (cost of going static)
  TileCount tiles;           ///< Eqs. 3-5 on raw
  std::uint64_t frames = 0;  ///< Eq. 6
  std::uint64_t occ_count = 0;     ///< |occ| (uniform-weight fast path)
  std::uint64_t tw_union = 0;      ///< pair weight over occ x occ
  std::uint64_t tw_same = 0;       ///< pair weight kept by one member
  std::uint64_t contrib = 0;       ///< this region's term of Eq. 10
  bool alive = true;
};

std::uint64_t pairs2(std::uint64_t n) { return n * (n - 1) / 2; }

struct State {
  std::vector<Group> groups;
  std::vector<std::size_t> static_members;
  ResourceVec static_extra;  ///< promoted partitions, raw sum
  ResourceVec pr_res;        ///< tile-rounded region footprints, summed
  std::uint64_t ttotal = 0;
  std::size_t alive = 0;

  ResourceVec total_res(const ResourceVec& static_base) const {
    return pr_res + static_base + static_extra;
  }
};

struct Move {
  enum class Kind { Merge, Promote } kind = Kind::Merge;
  std::size_t a = 0, b = 0;
};

/// Summed weight over unordered pairs within `occ`.
std::uint64_t pair_weight_within(const PairWeights* weights,
                                 const DynBitset& occ) {
  if (!weights) return pairs2(occ.count());
  std::uint64_t total = 0;
  const std::vector<std::size_t> bits = occ.bits();
  for (std::size_t a = 0; a < bits.size(); ++a)
    for (std::size_t b = a + 1; b < bits.size(); ++b)
      total += (*weights)[bits[a]][bits[b]];
  return total;
}

/// Summed weight over pairs with one configuration in each (disjoint)
/// occupancy set.
std::uint64_t pair_weight_between(const PairWeights* weights, const Group& a,
                                  const Group& b) {
  if (!weights) return a.occ_count * b.occ_count;
  std::uint64_t total = 0;
  for (std::size_t i : a.occ.bits())
    for (std::size_t j : b.occ.bits()) total += (*weights)[i][j];
  return total;
}

/// All currently valid moves on `s`, in the canonical (i, j) enumeration
/// order shared by every execution mode.
std::vector<Move> moves_of(const State& s, bool allow_static_promotion) {
  std::vector<Move> moves;
  const std::size_t n = s.groups.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!s.groups[i].alive) continue;
    for (std::size_t j = i + 1; j < n; ++j)
      if (s.groups[j].alive) moves.push_back({Move::Kind::Merge, i, j});
    if (allow_static_promotion) moves.push_back({Move::Kind::Promote, i, 0});
  }
  return moves;
}

/// Canonicalised copy of the grouping in `s`: members sorted within each
/// region, regions sorted lexicographically, static members sorted. Equal
/// groupings render identically, so schemes can be deduplicated and ordered
/// independently of the order in which threads discovered them — and the
/// result_io serialisation of the returned scheme is reproducible.
PartitionScheme canonical_scheme(const State& s) {
  PartitionScheme scheme;
  for (const Group& g : s.groups)
    if (g.alive) {
      Region region{g.members};
      std::sort(region.members.begin(), region.members.end());
      scheme.regions.push_back(std::move(region));
    }
  std::sort(
      scheme.regions.begin(), scheme.regions.end(),
      [](const Region& a, const Region& b) { return a.members < b.members; });
  scheme.static_members = s.static_members;
  std::sort(scheme.static_members.begin(), scheme.static_members.end());
  return scheme;
}

/// Injective flat encoding of a canonical scheme (sizes delimit the member
/// lists). Lexicographic order on the encoding is the final tie-break of
/// the leaderboard's total order, and equality is the exact deduplication
/// criterion — no hash collisions can alias two distinct groupings.
std::vector<std::uint64_t> scheme_key(const PartitionScheme& scheme) {
  std::vector<std::uint64_t> key;
  std::size_t total = 2 + scheme.static_members.size();
  for (const Region& r : scheme.regions) total += 1 + r.members.size();
  key.reserve(total);
  key.push_back(scheme.regions.size());
  for (const Region& r : scheme.regions) {
    key.push_back(r.members.size());
    for (std::size_t m : r.members) key.push_back(m);
  }
  key.push_back(scheme.static_members.size());
  for (std::size_t m : scheme.static_members) key.push_back(m);
  return key;
}

struct Kept {
  std::uint64_t ttotal = 0;
  std::uint64_t warea = 0;
  std::vector<std::uint64_t> key;
  PartitionScheme scheme;
};

/// Total order on recorded schemes: objective first, canonical key last.
bool kept_before(const Kept& a, const Kept& b) {
  if (a.ttotal != b.ttotal) return a.ttotal < b.ttotal;
  if (a.warea != b.warea) return a.warea < b.warea;
  return a.key < b.key;
}

/// Inserts `entry` into the sorted leaderboard, dropping exact duplicates
/// and trimming to `keep` entries. Because kept_before is a total order and
/// duplicates compare equal, the final leaderboard is independent of the
/// insertion order — the keystone of thread-count-independent results.
void insert_kept(std::vector<Kept>& kept, Kept entry, std::size_t keep) {
  const auto pos =
      std::lower_bound(kept.begin(), kept.end(), entry, kept_before);
  if (pos != kept.end() && pos->key == entry.key) return;
  kept.insert(pos, std::move(entry));
  if (kept.size() > keep) kept.pop_back();
}

/// One independent greedy descent: a candidate set's initial state,
/// optionally forced through a distinct first move (§IV-C's restarts).
struct Unit {
  std::size_t set = 0;
  std::optional<Move> first;
};

struct UnitOutcome {
  std::vector<Kept> kept;          ///< unit-local leaderboard
  std::uint64_t evals = 0;         ///< move evaluations consumed
  std::uint64_t cap = 0;           ///< evaluation cap the unit ran with
  bool truncated = false;          ///< stopped because evals reached cap
  bool ran = false;
  std::size_t greedy_runs = 0;
  std::uint64_t states_recorded = 0;
};

/// Executes one work unit. Entirely thread-confined apart from the shared
/// read-only inputs and the internally synchronised cost cache, so units
/// can run concurrently in any order.
class UnitRunner {
 public:
  UnitRunner(const Design& design, const ResourceVec& budget,
             const SearchOptions& options, GroupCostCache* cache,
             std::uint64_t cap)
      : design_(design), budget_(budget), options_(options), cache_(cache) {
    out_.cap = cap;
  }

  UnitOutcome run(const State& initial, const std::optional<Move>& first) {
    out_.ran = true;
    State s = initial;
    if (first) {
      apply_move(s, *first);
      record(s);
    }
    greedy(std::move(s));
    return std::move(out_);
  }

 private:
  Objective objective(std::uint64_t excess, std::uint64_t ttotal,
                      std::uint64_t warea) const {
    if (excess > 0) return {excess, warea, ttotal};
    return {0, ttotal, warea};
  }

  Objective state_objective(const State& s) const {
    const ResourceVec total = s.total_res(design_.static_base());
    return objective(budget_excess(total, budget_), s.ttotal,
                     weighted_area(total));
  }

  /// Cost of the region formed by merging `ga` and `gb`, memoised on the
  /// merged member set when the cache is enabled.
  GroupCost merged_cost(const Group& ga, const Group& gb) {
    auto compute = [&] {
      GroupCost cost;
      cost.raw = elementwise_max(ga.raw, gb.raw);
      cost.tiles = tiles_for(cost.raw);
      cost.frames = cost.tiles.frames();
      cost.tw_union = ga.tw_union + gb.tw_union +
                      pair_weight_between(options_.pair_weights, ga, gb);
      return cost;
    };
    if (!cache_) return compute();
    key_buffer_.resize(ga.members.size() + gb.members.size());
    std::merge(ga.members.begin(), ga.members.end(), gb.members.begin(),
               gb.members.end(), key_buffer_.begin());
    if (const std::optional<GroupCost> hit = cache_->lookup(key_buffer_))
      return *hit;
    const GroupCost cost = compute();
    cache_->store(key_buffer_, cost);
    return cost;
  }

  /// Metrics of the state that `move` would produce. Returns nullopt for
  /// invalid moves (incompatible merge). Counts one move evaluation.
  std::optional<Objective> evaluate_move(const State& s, const Move& move) {
    ++out_.evals;
    if (out_.evals >= out_.cap) out_.truncated = true;
    // Cancellation point, gated so the clock read costs nothing on the hot
    // path. 512 evaluations bound the cancel latency to microseconds.
    if ((out_.evals & 511u) == 0) check_cancel(options_.cancel);

    const Group& ga = s.groups[move.a];
    if (move.kind == Move::Kind::Merge) {
      const Group& gb = s.groups[move.b];
      if (ga.occ.intersects(gb.occ)) return std::nullopt;  // incompatible
      const GroupCost cost = merged_cost(ga, gb);
      const std::uint64_t contrib =
          (cost.tw_union - ga.tw_same - gb.tw_same) * cost.frames;
      const ResourceVec pr = s.pr_res + cost.tiles.resources();
      // Subtract the two old footprints (kept as additions to avoid
      // unsigned underflow juggling: compute the new total directly).
      ResourceVec total = pr + design_.static_base() + s.static_extra;
      total.clbs -= ga.tiles.resources().clbs + gb.tiles.resources().clbs;
      total.brams -= ga.tiles.resources().brams + gb.tiles.resources().brams;
      total.dsps -= ga.tiles.resources().dsps + gb.tiles.resources().dsps;
      const std::uint64_t ttotal = s.ttotal - ga.contrib - gb.contrib + contrib;
      return objective(budget_excess(total, budget_), ttotal,
                       weighted_area(total));
    }

    // Promote: the whole group's mode set becomes permanently present.
    ResourceVec total = s.pr_res + design_.static_base() + s.static_extra +
                        ga.promote_area;
    total.clbs -= ga.tiles.resources().clbs;
    total.brams -= ga.tiles.resources().brams;
    total.dsps -= ga.tiles.resources().dsps;
    const std::uint64_t ttotal = s.ttotal - ga.contrib;
    return objective(budget_excess(total, budget_), ttotal,
                     weighted_area(total));
  }

  void apply_move(State& s, const Move& move) {
    Group& ga = s.groups[move.a];
    auto remove_footprint = [&](const Group& g) {
      s.pr_res.clbs -= g.tiles.resources().clbs;
      s.pr_res.brams -= g.tiles.resources().brams;
      s.pr_res.dsps -= g.tiles.resources().dsps;
      s.ttotal -= g.contrib;
    };
    if (move.kind == Move::Kind::Merge) {
      Group& gb = s.groups[move.b];
      remove_footprint(ga);
      remove_footprint(gb);
      const GroupCost cost = merged_cost(ga, gb);
      std::vector<std::size_t> merged(ga.members.size() + gb.members.size());
      std::merge(ga.members.begin(), ga.members.end(), gb.members.begin(),
                 gb.members.end(), merged.begin());
      ga.members = std::move(merged);
      ga.occ |= gb.occ;
      ga.raw = cost.raw;
      ga.promote_area += gb.promote_area;
      ga.tiles = cost.tiles;
      ga.frames = cost.frames;
      ga.occ_count += gb.occ_count;
      ga.tw_union = cost.tw_union;
      ga.tw_same += gb.tw_same;
      ga.contrib = (ga.tw_union - ga.tw_same) * ga.frames;
      gb.alive = false;
      --s.alive;
      s.pr_res += ga.tiles.resources();
      s.ttotal += ga.contrib;
    } else {
      remove_footprint(ga);
      s.static_extra += ga.promote_area;
      s.static_members.insert(s.static_members.end(), ga.members.begin(),
                              ga.members.end());
      ga.alive = false;
      --s.alive;
    }
  }

  /// Records the state when it fits and enters the unit's leaderboard.
  void record(const State& s) {
    const ResourceVec total = s.total_res(design_.static_base());
    if (!total.fits_in(budget_)) return;
    ++out_.states_recorded;
    const std::uint64_t warea = weighted_area(total);
    const std::size_t keep =
        std::max<std::size_t>(1, options_.keep_alternatives);
    if (out_.kept.size() >= keep) {
      const Kept& worst = out_.kept.back();
      // Strictly worse than the current worst: cannot enter. Objective ties
      // fall through to the canonical-key comparison in insert_kept.
      if (s.ttotal > worst.ttotal ||
          (s.ttotal == worst.ttotal && warea > worst.warea))
        return;
    }
    Kept entry;
    entry.ttotal = s.ttotal;
    entry.warea = warea;
    entry.scheme = canonical_scheme(s);
    entry.key = scheme_key(entry.scheme);
    insert_kept(out_.kept, std::move(entry), keep);
  }

  /// Greedy descent: repeatedly apply the objective-minimising move while it
  /// strictly improves; records every visited state.
  void greedy(State s) {
    ++out_.greedy_runs;
    record(s);
    while (s.alive > 0 && !out_.truncated) {
      check_cancel(options_.cancel);
      const Objective current = state_objective(s);
      std::optional<Move> best_move;
      Objective best_obj = current;
      for (const Move& m : moves_of(s, options_.allow_static_promotion)) {
        const std::optional<Objective> obj = evaluate_move(s, m);
        if (out_.truncated) return;
        if (obj && *obj < best_obj) {
          best_obj = *obj;
          best_move = m;
        }
      }
      if (!best_move) return;  // local optimum
      apply_move(s, *best_move);
      record(s);
    }
  }

  const Design& design_;
  const ResourceVec budget_;
  const SearchOptions& options_;
  GroupCostCache* cache_;
  GroupCostCache::Key key_buffer_;
  UnitOutcome out_;
};

class Searcher {
 public:
  Searcher(const Design& design, const ConnectivityMatrix& matrix,
           const std::vector<BasePartition>& partitions,
           const CompatibilityTable& compat, const ResourceVec& budget,
           const SearchOptions& options)
      : design_(design),
        matrix_(matrix),
        partitions_(partitions),
        compat_(compat),
        budget_(budget),
        options_(options) {}

  SearchResult run() {
    if (options_.pair_weights) {
      const PairWeights& w = *options_.pair_weights;
      require(w.size() == matrix_.configs(),
              "pair_weights must have one row per configuration");
      for (const auto& row : w)
        require(row.size() == matrix_.configs(),
                "pair_weights must be square");
    }

    // Phase 1 — enumerate the work: candidate partition sets (successive
    // covering-list removals, §IV-C) and, per set, one unit for the
    // unconstrained descent plus one per distinct valid first move.
    const std::vector<std::size_t> order = covering_order(partitions_);
    std::vector<State> initials;
    std::vector<Unit> units;
    for (std::size_t skip = 0; skip < order.size(); ++skip) {
      check_cancel(options_.cancel);
      if (initials.size() >= options_.max_candidate_sets) break;
      const CoverResult cov = cover(partitions_, matrix_, order, skip);
      if (!cov.complete) break;  // removals only make covering harder
      State initial = initial_state(cov.selected);
      const std::size_t set = initials.size();
      units.push_back(Unit{set, std::nullopt});
      std::size_t first_moves = 0;
      for (const Move& m : moves_of(initial, options_.allow_static_promotion)) {
        if (first_moves >= options_.max_first_moves) break;
        if (m.kind == Move::Kind::Merge &&
            initial.groups[m.a].occ.intersects(initial.groups[m.b].occ))
          continue;  // incompatible merge: not a distinct restart
        units.push_back(Unit{set, m});
        ++first_moves;
      }
      initials.push_back(std::move(initial));
    }
    stats_.units = units.size();

    // Phase 2 — run every unit, fanned out across the worker pool. Each
    // unit speculates with the evaluation budget that is left according to
    // a relaxed global counter; the merge below corrects any unit whose
    // speculative cap disagrees with the canonical sequential one.
    GroupCostCache cache;
    GroupCostCache* cache_ptr = options_.use_cost_cache ? &cache : nullptr;
    std::vector<UnitOutcome> outcomes(units.size());
    std::atomic<std::uint64_t> consumed_hint{0};
    const unsigned threads =
        options_.threads != 0 ? options_.threads : default_thread_count();
    parallel_for(units.size(), threads, [&](std::size_t i) {
      const std::uint64_t hint =
          std::min(consumed_hint.load(std::memory_order_relaxed),
                   options_.max_move_evaluations);
      const std::uint64_t cap = options_.max_move_evaluations - hint;
      if (cap == 0) return;  // almost certainly exhausted; merge re-checks
      UnitRunner runner(design_, budget_, options_, cache_ptr, cap);
      outcomes[i] = runner.run(initials[units[i].set], units[i].first);
      consumed_hint.fetch_add(outcomes[i].evals, std::memory_order_relaxed);
    });

    // Phase 3 — deterministic merge in canonical unit order. A unit is
    // accepted verbatim when its speculative run is exactly what a
    // sequential search would have done with the remaining budget;
    // otherwise it is replayed with the canonical cap. Once the budget is
    // exhausted every later unit is dropped, mirroring the sequential
    // early-out.
    std::vector<Kept> kept;
    const std::size_t keep =
        std::max<std::size_t>(1, options_.keep_alternatives);
    std::uint64_t remaining = options_.max_move_evaluations;
    bool any_unit = false;
    std::size_t last_set = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
      check_cancel(options_.cancel);
      if (stats_.budget_exhausted) break;
      UnitOutcome& out = outcomes[i];
      const bool replay = !out.ran || (out.truncated ? out.cap != remaining
                                                     : out.evals >= remaining);
      if (replay) {
        UnitRunner runner(design_, budget_, options_, cache_ptr, remaining);
        out = runner.run(initials[units[i].set], units[i].first);
        ++stats_.units_replayed;
      }
      remaining -= out.evals;
      stats_.move_evaluations += out.evals;
      stats_.greedy_runs += out.greedy_runs;
      stats_.states_recorded += out.states_recorded;
      if (out.truncated) stats_.budget_exhausted = true;
      any_unit = true;
      last_set = units[i].set;
      for (Kept& entry : out.kept)
        insert_kept(kept, std::move(entry), keep);
    }
    stats_.candidate_sets = any_unit ? last_set + 1 : 0;
    if (cache_ptr) {
      const GroupCostCache::Stats cs = cache.stats();
      stats_.cache_hits = cs.hits;
      stats_.cache_misses = cs.misses;
      stats_.cache_entries = cache.size();
    }

    SearchResult result;
    result.stats = stats_;
    if (!kept.empty()) {
      result.feasible = true;
      result.scheme = kept.front().scheme;
      result.scheme.label = "proposed";
      result.eval = evaluate_scheme(design_, matrix_, partitions_,
                                    result.scheme, budget_);
      require(result.eval.valid, "search produced an invalid scheme: " +
                                     result.eval.invalid_reason);
      require(result.eval.fits, "search recorded a non-fitting scheme");
      result.alternatives.reserve(kept.size());
      for (Kept& k : kept)
        result.alternatives.push_back(
            RankedScheme{std::move(k.scheme), k.ttotal});
      result.alternatives.front().scheme.label = "proposed";
    }
    return result;
  }

 private:
  State initial_state(const std::vector<std::size_t>& candidate) const {
    State s;
    s.groups.reserve(candidate.size());
    for (std::size_t p : candidate) {
      Group g;
      g.members = {p};
      g.occ = compat_.occupancy(p);
      g.raw = partitions_[p].area;
      g.promote_area = partitions_[p].area;
      g.tiles = tiles_for(g.raw);
      g.frames = g.tiles.frames();
      g.occ_count = g.occ.count();
      g.tw_union = pair_weight_within(options_.pair_weights, g.occ);
      g.tw_same = g.tw_union;
      g.contrib = 0;  // a single alternative never reconfigures
      s.groups.push_back(std::move(g));
      s.pr_res += s.groups.back().tiles.resources();
    }
    s.alive = s.groups.size();
    return s;
  }

  const Design& design_;
  const ConnectivityMatrix& matrix_;
  const std::vector<BasePartition>& partitions_;
  const CompatibilityTable& compat_;
  const ResourceVec budget_;
  const SearchOptions options_;

  SearchStats stats_;
};

}  // namespace

std::uint64_t weighted_total_frames(const SchemeEvaluation& evaluation,
                                    const PairWeights& weights) {
  std::uint64_t total = 0;
  for (const RegionReport& region : evaluation.regions) {
    const std::size_t n = region.active.size();
    require(weights.size() == n, "weights do not match the evaluation");
    for (std::size_t i = 0; i < n; ++i) {
      require(weights[i].size() == n, "weights must be square");
      for (std::size_t j = i + 1; j < n; ++j) {
        const int a = region.active[i];
        const int b = region.active[j];
        if (a >= 0 && b >= 0 && a != b) total += weights[i][j] * region.frames;
      }
    }
  }
  return total;
}

SearchResult search_partitioning(const Design& design,
                                 const ConnectivityMatrix& matrix,
                                 const std::vector<BasePartition>& partitions,
                                 const CompatibilityTable& compat,
                                 const ResourceVec& budget,
                                 const SearchOptions& options) {
  return Searcher(design, matrix, partitions, compat, budget, options).run();
}

}  // namespace prpart
