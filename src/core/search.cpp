#include "core/search.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <optional>
#include <utility>

#include "core/cost_cache.hpp"
#include "core/covering.hpp"
#include "core/eval_kernel.hpp"
#include "core/search_internal.hpp"
#include "util/parallel_for.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace prpart {

namespace {

using namespace search_internal;  // NOLINT(google-build-using-namespace)

/// One independent greedy descent: a candidate set's initial state,
/// optionally forced through a distinct first move (§IV-C's restarts).
struct Unit {
  std::size_t set = 0;
  std::optional<Move> first;
};

struct UnitOutcome {
  std::vector<Kept> kept;          ///< unit-local leaderboard
  std::uint64_t evals = 0;         ///< move evaluations consumed
  std::uint64_t cap = 0;           ///< evaluation cap the unit ran with
  bool truncated = false;          ///< stopped because evals reached cap
  bool ran = false;
  bool pruned_speculative = false; ///< skipped on the shared bound hint
  std::size_t greedy_runs = 0;
  std::uint64_t states_recorded = 0;
  std::uint64_t full_evaluations = 0;  ///< merge costs computed from scratch
  std::uint64_t moves_rescored = 0;    ///< served by the move table
};

/// Shared *hint* of the worst kept leaderboard objective, fed by finished
/// units and read (relaxed) by workers to skip units whose completion lower
/// bound cannot enter the board. Purely speculative: the canonical merge
/// re-decides every prune from the deterministic board, replaying units the
/// hint skipped wrongly, so thread interleaving never leaks into results.
class BoundHint {
 public:
  explicit BoundHint(std::size_t keep) : keep_(keep) {}

  /// Worst kept objective once the board is full; UINT64_MAX (prunes
  /// nothing) before that.
  std::uint64_t worst() const { return worst_.load(std::memory_order_relaxed); }

  void offer(const std::vector<Kept>& entries) {
    if (entries.empty()) return;
    const MutexLock lock(mutex_);
    for (const Kept& e : entries)
      insert_kept(kept_, Kept{e.ttotal, e.warea, e.key, {}}, keep_);
    if (kept_.size() >= keep_)
      worst_.store(kept_.back().ttotal, std::memory_order_relaxed);
  }

 private:
  const std::size_t keep_;
  Mutex mutex_{lock_order::Level::kSearchBoundHint, "search.bound_hint"};
  std::vector<Kept> kept_ PRPART_GUARDED_BY(mutex_);  ///< schemes omitted;
                                                      ///< only order matters
  std::atomic<std::uint64_t> worst_{~std::uint64_t{0}};
};

/// Runs the units of one candidate set on one worker. The set's state is
/// copied once; each unit's moves are applied in place and unwound through
/// the undo records afterwards, and merge costs are re-used across the
/// set's restarts through a version-stamped move table (the restarts share
/// the initial state, so step-one move scores differ only around the forced
/// first move). Entirely thread-confined apart from the shared read-only
/// inputs and the internally synchronised cost cache.
class ChunkRunner {
 public:
  ChunkRunner(const Design& design, const ResourceVec& budget,
              const SearchOptions& options, GroupCostCache* cache,
              const State& initial)
      : design_(design), budget_(budget), options_(options), cache_(cache),
        s_(initial) {
    const std::size_t n = s_.groups.size();
    versions_.resize(n);
    for (std::size_t i = 0; i < n; ++i) versions_[i] = i + 1;
    version_counter_ = n;
    alive_list_.reserve(n);
    alive_mask_ = DynBitset(n);
    for (std::size_t i = 0; i < n; ++i)
      if (s_.groups[i].alive) {
        alive_list_.push_back(i);
        alive_mask_.set(i);
      }
    // Undo storage is pooled up front (each move retires one group, so a
    // unit applies at most n): run_unit's apply/undo cycles then reuse the
    // records' member buffers instead of allocating per move.
    undo_stack_.resize(n);
    // The table is quadratic in the candidate-set size; past a few hundred
    // groups its footprint outweighs the rescoring win, so fall back to
    // fresh evaluation (results are identical either way).
    if (options_.use_move_table && n <= kMaxTableGroups) {
      table_.resize(n * n);
      // Pairwise-compatibility rows: bit j of compat_[i] says the groups'
      // occupancies are disjoint, so the greedy scan can reject an
      // incompatible pair on one bit test instead of a table probe. Kept
      // symmetric, and maintained under apply()/unwind() like the stamps.
      compat_.assign(n, DynBitset(n));
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          if (s_.groups[i].occ.intersects(s_.groups[j].occ)) continue;
          compat_[i].set(j);
          compat_[j].set(i);
        }
      }
      // One saved row per possible merge depth; same-size assignments into
      // the pool reuse the rows' word storage.
      row_undo_.assign(n, DynBitset(n));
    }
  }

  UnitOutcome run_unit(const Unit& unit, std::uint64_t cap) {
    out_ = UnitOutcome{};
    out_.cap = cap;
    out_.ran = true;
    if (unit.first) {
      apply(*unit.first);
      record();
    }
    greedy();
    unwind();
    return std::move(out_);
  }

 private:
  /// Merge-cost memo entry, valid while both groups' version stamps match
  /// (stamps change only when a merge rewrites group `a`; undo restores
  /// them, so entries survive across the restarts of the set). Only
  /// compatible merges are entered — the compat_ rows filter the rest
  /// before the table is consulted.
  struct MergeEntry {
    std::uint64_t va = 0, vb = 0;  ///< 0 never matches a live version
    GroupCost cost;
  };

  static constexpr std::size_t kMaxTableGroups = 128;

  Objective objective(std::uint64_t excess, std::uint64_t ttotal,
                      std::uint64_t warea) const {
    if (excess > 0) return {excess, warea, ttotal};
    return {0, ttotal, warea};
  }

  Objective state_objective() const {
    const ResourceVec total = s_.total_res(design_.static_base());
    return objective(budget_excess(total, budget_), s_.ttotal,
                     weighted_area(total));
  }

  /// Cost of the region formed by merging `ga` and `gb`, memoised on the
  /// merged member set when the cache is enabled.
  GroupCost merged_cost(const Group& ga, const Group& gb) {
    if (!cache_) return merged_group_cost(ga, gb, options_.pair_weights);
    key_buffer_.resize(ga.members.size() + gb.members.size());
    std::merge(ga.members.begin(), ga.members.end(), gb.members.begin(),
               gb.members.end(), key_buffer_.begin());
    const std::size_t hash = cache_->hash_of(key_buffer_);
    if (const std::optional<GroupCost> hit = cache_->lookup(key_buffer_, hash))
      return *hit;
    const GroupCost cost = merged_group_cost(ga, gb, options_.pair_weights);
    cache_->store(key_buffer_, cost, hash);
    return cost;
  }

  /// Counts one move evaluation — the deterministic budget unit. Both the
  /// fresh and the rescored path pay it, so truncation points (and with
  /// them every result) are independent of the move table.
  void count_evaluation() {
    ++out_.evals;
    if (out_.evals >= out_.cap) out_.truncated = true;
    // Cancellation point, gated so the clock read costs nothing on the hot
    // path. 512 evaluations bound the cancel latency to microseconds.
    if ((out_.evals & 511u) == 0) check_cancel(options_.cancel);
  }

  /// Counts `k` budget units at once for moves rejected without side
  /// effects (the incompatible pairs the word scan skips wholesale).
  /// Reproduces counting them one by one exactly: the counter stops at the
  /// first increment that reaches the cap, and a cancellation check fires
  /// whenever a 512-evaluation boundary is crossed. Returns true when the
  /// unit truncated.
  bool count_skipped(std::uint64_t k) {
    if (k == 0) return out_.truncated;
    const std::uint64_t before = out_.evals;
    const std::uint64_t need =
        out_.cap > before ? out_.cap - before : std::uint64_t{1};
    if (k >= need) {
      out_.evals = before + need;
      out_.truncated = true;
      return true;
    }
    out_.evals = before + k;
    if ((out_.evals >> 9) != (before >> 9)) check_cancel(options_.cancel);
    return false;
  }

  Objective merge_objective(const Group& ga, const Group& gb,
                            const GroupCost& cost) const {
    const std::uint64_t contrib =
        (cost.tw_union - ga.tw_same - gb.tw_same) * cost.frames;
    // scan_base_ is pr_res + static base + static_extra, hoisted out of the
    // greedy scan (it is invariant across one scan's evaluations; unsigned
    // addition reassociates exactly). Subtract the two old footprints (kept
    // as additions to avoid unsigned underflow juggling: compute the new
    // total directly).
    ResourceVec total = scan_base_ + cost.tiles.resources();
    total.clbs -= ga.tiles.resources().clbs + gb.tiles.resources().clbs;
    total.brams -= ga.tiles.resources().brams + gb.tiles.resources().brams;
    total.dsps -= ga.tiles.resources().dsps + gb.tiles.resources().dsps;
    const std::uint64_t ttotal = s_.ttotal - ga.contrib - gb.contrib + contrib;
    return objective(budget_excess(total, budget_), ttotal,
                     weighted_area(total));
  }

  /// Scan-invariant aggregates of the left-hand group `i`, hoisted out of
  /// the inner partner loop of greedy's table path: the objective of merging
  /// (i, j) only needs these scalars of `ga` plus `gb`'s own fields, so the
  /// per-partner work shrinks to one table probe and a handful of adds.
  /// Unsigned +/- reassociate exactly, so the scores are bit-identical to
  /// merge_objective's.
  struct RowCtx {
    ResourceVec res_base;       ///< scan_base_ - ga footprint
    std::uint64_t tt_base = 0;  ///< s_.ttotal - ga.contrib
    std::uint64_t tw_same = 0;  ///< ga.tw_same
    std::uint64_t version = 0;  ///< versions_[i]
    MergeEntry* row = nullptr;  ///< &table_[i * n]
  };

  RowCtx row_ctx(std::size_t i) {
    const Group& ga = s_.groups[i];
    const ResourceVec ga_res = ga.tiles.resources();
    RowCtx ctx;
    ctx.res_base = scan_base_;
    ctx.res_base.clbs -= ga_res.clbs;
    ctx.res_base.brams -= ga_res.brams;
    ctx.res_base.dsps -= ga_res.dsps;
    ctx.tt_base = s_.ttotal - ga.contrib;
    ctx.tw_same = ga.tw_same;
    ctx.version = versions_[i];
    ctx.row = &table_[i * s_.groups.size()];
    return ctx;
  }

  /// evaluate_merge specialised for the table path with the row context
  /// hoisted; compatibility was already established by the word scan.
  Objective evaluate_merge_row(const RowCtx& ctx, std::size_t i,
                               std::size_t j) {
    count_evaluation();
    const Group& gb = s_.groups[j];
    MergeEntry& entry = ctx.row[j];
    if (entry.va != ctx.version || entry.vb != versions_[j]) {
      ++out_.full_evaluations;
      entry.cost = merged_cost(s_.groups[i], gb);
      entry.va = ctx.version;
      entry.vb = versions_[j];
    } else {
      ++out_.moves_rescored;
    }
    const GroupCost& cost = entry.cost;
    const std::uint64_t contrib =
        (cost.tw_union - ctx.tw_same - gb.tw_same) * cost.frames;
    ResourceVec total = ctx.res_base + cost.tiles.resources();
    const ResourceVec gb_res = gb.tiles.resources();
    total.clbs -= gb_res.clbs;
    total.brams -= gb_res.brams;
    total.dsps -= gb_res.dsps;
    const std::uint64_t ttotal = ctx.tt_base - gb.contrib + contrib;
    return objective(budget_excess(total, budget_), ttotal,
                     weighted_area(total));
  }

  /// Metrics of the state merging groups i and j would produce, nullopt for
  /// incompatible pairs. Counts one move evaluation; serves the score from
  /// the move table when both version stamps still match. With the table
  /// (and its compat_ rows) enabled, the caller has already rejected
  /// incompatible pairs, so only the table-less path re-checks occupancy.
  std::optional<Objective> evaluate_merge(std::size_t i, std::size_t j) {
    count_evaluation();
    const Group& ga = s_.groups[i];
    const Group& gb = s_.groups[j];
    if (table_.empty()) {
      if (ga.occ.intersects(gb.occ)) return std::nullopt;
      ++out_.full_evaluations;
      return merge_objective(ga, gb, merged_cost(ga, gb));
    }
    MergeEntry& entry = table_[i * s_.groups.size() + j];
    if (entry.va == versions_[i] && entry.vb == versions_[j]) {
      ++out_.moves_rescored;
      return merge_objective(ga, gb, entry.cost);
    }
    ++out_.full_evaluations;
    const GroupCost cost = merged_cost(ga, gb);
    entry.va = versions_[i];
    entry.vb = versions_[j];
    entry.cost = cost;
    return merge_objective(ga, gb, cost);
  }

  /// Metrics of promoting group i into the static region: the whole
  /// group's mode set becomes permanently present. Already O(1) from the
  /// group's incremental fields — no table needed.
  Objective evaluate_promote(std::size_t i) {
    count_evaluation();
    const Group& ga = s_.groups[i];
    ResourceVec total = scan_base_ + ga.promote_area;
    total.clbs -= ga.tiles.resources().clbs;
    total.brams -= ga.tiles.resources().brams;
    total.dsps -= ga.tiles.resources().dsps;
    const std::uint64_t ttotal = s_.ttotal - ga.contrib;
    return objective(budget_excess(total, budget_), ttotal,
                     weighted_area(total));
  }

  /// Removes / reinserts an index of the sorted alive list (and mask).
  void alive_erase(std::size_t g) {
    alive_list_.erase(
        std::lower_bound(alive_list_.begin(), alive_list_.end(), g));
    alive_mask_.reset(g);
  }
  void alive_insert(std::size_t g) {
    alive_list_.insert(
        std::lower_bound(alive_list_.begin(), alive_list_.end(), g), g);
    alive_mask_.set(g);
  }

  void apply(const Move& move) {
    GroupCost cost;
    if (move.kind == Move::Kind::Merge) {
      // The scan that chose this move just scored it, so with the table on
      // its entry is almost always still valid — reuse it instead of going
      // back through the shared cost cache (hash + probe + lock).
      const MergeEntry* entry =
          table_.empty() ? nullptr
                         : &table_[move.a * s_.groups.size() + move.b];
      if (entry != nullptr && entry->va == versions_[move.a] &&
          entry->vb == versions_[move.b])
        cost = entry->cost;
      else
        cost = merged_cost(s_.groups[move.a], s_.groups[move.b]);
    }
    UndoRecord& undo = undo_stack_[undo_depth_++];
    apply_move_into(s_, move, &cost, undo);
    undo.prior_version = versions_[move.a];
    alive_erase(move.kind == Move::Kind::Merge ? move.b : move.a);
    if (move.kind == Move::Kind::Merge) {
      versions_[move.a] = ++version_counter_;
      if (!compat_.empty()) {
        // Group a absorbed b's occupancy: a is now compatible with exactly
        // the groups both were compatible with. Row first, then mirror the
        // column so the rows stay symmetric.
        row_undo_[undo_depth_ - 1] = compat_[move.a];
        compat_[move.a] &= compat_[move.b];
        for (std::size_t k = 0; k < compat_.size(); ++k) {
          if (k == move.a) continue;
          if (compat_[move.a].test(k))
            compat_[k].set(move.a);
          else
            compat_[k].reset(move.a);
        }
      }
    }
  }

  /// Reverses every move this unit applied, restoring the set's initial
  /// state (and the groups' version stamps and compatibility rows,
  /// revalidating table entries for the next restart).
  void unwind() {
    while (undo_depth_ > 0) {
      UndoRecord& undo = undo_stack_[--undo_depth_];
      versions_[undo.move.a] = undo.prior_version;
      alive_insert(undo.move.kind == Move::Kind::Merge ? undo.move.b
                                                       : undo.move.a);
      if (undo.move.kind == Move::Kind::Merge && !compat_.empty()) {
        compat_[undo.move.a] = row_undo_[undo_depth_];
        for (std::size_t k = 0; k < compat_.size(); ++k) {
          if (k == undo.move.a) continue;
          if (compat_[undo.move.a].test(k))
            compat_[k].set(undo.move.a);
          else
            compat_[k].reset(undo.move.a);
        }
      }
      undo_move(s_, undo);
    }
  }

  /// Records the state when it fits and enters the unit's leaderboard.
  void record() {
    const ResourceVec total = s_.total_res(design_.static_base());
    if (!total.fits_in(budget_)) return;
    ++out_.states_recorded;
    const std::uint64_t warea = weighted_area(total);
    const std::size_t keep =
        std::max<std::size_t>(1, options_.keep_alternatives);
    if (out_.kept.size() >= keep) {
      const Kept& worst = out_.kept.back();
      // Strictly worse than the current worst: cannot enter. Objective ties
      // fall through to the canonical-key comparison in insert_kept.
      if (s_.ttotal > worst.ttotal ||
          (s_.ttotal == worst.ttotal && warea > worst.warea))
        return;
    }
    Kept entry;
    entry.ttotal = s_.ttotal;
    entry.warea = warea;
    entry.scheme = canonical_scheme(s_);
    entry.key = scheme_key(entry.scheme);
    insert_kept(out_.kept, std::move(entry), keep);
  }

  /// Greedy descent: repeatedly apply the objective-minimising move while it
  /// strictly improves; records every visited state. Evaluation order is
  /// the canonical (i, j)-merges-then-promote enumeration of moves_of().
  void greedy() {
    ++out_.greedy_runs;
    record();
    while (s_.alive > 0 && !out_.truncated) {
      check_cancel(options_.cancel);
      std::optional<Move> best_move;
      scan_base_ = s_.pr_res + design_.static_base() + s_.static_extra;
      Objective best_obj = state_objective();
      if (!compat_.empty()) {
        // Table path: scan the words of (compat row & alive mask) so only
        // compatible alive partners are visited bit by bit; the alive-but-
        // incompatible partners in between are charged to the budget in
        // bulk (they have no side effects), preserving the exact per-pair
        // truncation points of the scalar walk. The enumeration stays the
        // canonical ascending (i, j) order.
        for (std::size_t ii = 0; ii < alive_list_.size(); ++ii) {
          const std::size_t i = alive_list_[ii];
          const DynBitset& row = compat_[i];
          const RowCtx ctx = row_ctx(i);
          const std::size_t start = i + 1;
          for (std::size_t w = start / 64; w < alive_mask_.word_count(); ++w) {
            const std::uint64_t range =
                w == start / 64 ? ~std::uint64_t{0} << (start % 64)
                                : ~std::uint64_t{0};
            const std::uint64_t alive_w = alive_mask_.word(w) & range;
            std::uint64_t comp_w = alive_w & row.word(w);
            const std::uint64_t incomp_w = alive_w & ~row.word(w);
            std::uint64_t skipped_before = 0;
            while (comp_w != 0) {
              const int b = std::countr_zero(comp_w);
              comp_w &= comp_w - 1;
              const std::uint64_t below =
                  b == 0 ? 0 : incomp_w & ((std::uint64_t{1} << b) - 1);
              const std::uint64_t k =
                  static_cast<std::uint64_t>(std::popcount(below)) -
                  skipped_before;
              skipped_before += k;
              if (count_skipped(k)) return;
              const std::size_t j = w * 64 + static_cast<std::size_t>(b);
              const Objective obj = evaluate_merge_row(ctx, i, j);
              if (out_.truncated) return;
              if (obj < best_obj) {
                best_obj = obj;
                best_move = Move{Move::Kind::Merge, i, j};
              }
            }
            const std::uint64_t tail =
                static_cast<std::uint64_t>(std::popcount(incomp_w)) -
                skipped_before;
            if (count_skipped(tail)) return;
          }
          if (options_.allow_static_promotion) {
            const Objective obj = evaluate_promote(i);
            if (out_.truncated) return;
            if (obj < best_obj) {
              best_obj = obj;
              best_move = Move{Move::Kind::Promote, i, 0};
            }
          }
        }
      } else {
        const std::size_t n = s_.groups.size();
        for (std::size_t i = 0; i < n; ++i) {
          if (!s_.groups[i].alive) continue;
          for (std::size_t j = i + 1; j < n; ++j) {
            if (!s_.groups[j].alive) continue;
            const std::optional<Objective> obj = evaluate_merge(i, j);
            if (out_.truncated) return;
            if (obj && *obj < best_obj) {
              best_obj = *obj;
              best_move = Move{Move::Kind::Merge, i, j};
            }
          }
          if (options_.allow_static_promotion) {
            const Objective obj = evaluate_promote(i);
            if (out_.truncated) return;
            if (obj < best_obj) {
              best_obj = obj;
              best_move = Move{Move::Kind::Promote, i, 0};
            }
          }
        }
      }
      if (!best_move) return;  // local optimum
      apply(*best_move);
      record();
    }
  }

  const Design& design_;
  const ResourceVec budget_;
  const SearchOptions& options_;
  GroupCostCache* cache_;
  GroupCostCache::Key key_buffer_;
  State s_;
  std::vector<std::uint64_t> versions_;
  std::uint64_t version_counter_ = 0;
  std::vector<MergeEntry> table_;   ///< empty when the move table is off
  std::vector<DynBitset> compat_;   ///< pairwise compatibility, empty with table_
  std::vector<DynBitset> row_undo_; ///< saved compat_ rows, pooled per depth
  std::vector<std::size_t> alive_list_;  ///< sorted indices of alive groups
  DynBitset alive_mask_;            ///< same set, as a word-scannable mask
  std::vector<UndoRecord> undo_stack_;   ///< pooled records, undo_depth_ used
  std::size_t undo_depth_ = 0;
  ResourceVec scan_base_;  ///< pr_res + static base + extra, per greedy scan
  UnitOutcome out_;
};

class Searcher {
 public:
  Searcher(const Design& design, const ConnectivityMatrix& matrix,
           const std::vector<BasePartition>& partitions,
           const CompatibilityTable& compat, const ResourceVec& budget,
           const SearchOptions& options)
      : design_(design),
        matrix_(matrix),
        partitions_(partitions),
        compat_(compat),
        budget_(budget),
        options_(options) {}

  SearchResult run() {
    if (options_.pair_weights) {
      const PairWeights& w = *options_.pair_weights;
      require(w.size() == matrix_.configs(),
              "pair_weights must have one row per configuration");
      for (const auto& row : w)
        require(row.size() == matrix_.configs(),
                "pair_weights must be square");
    }
    const unsigned threads =
        options_.threads != 0 ? options_.threads : default_thread_count();

    // Phase 1 — enumerate the work: candidate partition sets (successive
    // covering-list removals, §IV-C) and, per set, one unit for the
    // unconstrained descent plus one per distinct valid first move.
    const std::vector<std::size_t> order = covering_order(partitions_);
    std::vector<State> initials;
    std::vector<Unit> units;
    std::vector<std::pair<std::size_t, std::size_t>> set_units;
    for (std::size_t skip = 0; skip < order.size(); ++skip) {
      check_cancel(options_.cancel);
      if (initials.size() >= options_.max_candidate_sets) break;
      const CoverResult cov = cover(partitions_, matrix_, order, skip);
      if (!cov.complete) break;  // removals only make covering harder
      State initial = initial_state(partitions_, compat_,
                                    options_.pair_weights, cov.selected);
      const std::size_t set = initials.size();
      const std::size_t begin = units.size();
      units.push_back(Unit{set, std::nullopt});
      std::size_t first_moves = 0;
      for (const Move& m : moves_of(initial, options_.allow_static_promotion)) {
        if (first_moves >= options_.max_first_moves) break;
        if (m.kind == Move::Kind::Merge &&
            initial.groups[m.a].occ.intersects(initial.groups[m.b].occ))
          continue;  // incompatible merge: not a distinct restart
        units.push_back(Unit{set, m});
        ++first_moves;
      }
      set_units.emplace_back(begin, units.size());
      initials.push_back(std::move(initial));
    }
    stats_.units = units.size();

    // Phase 1b — the branch-and-bound lower bounds. One admissible bound
    // per unit on the weighted total frames of every fitting completion of
    // its start state (the set's initial state pushed through the forced
    // first move). A pure function of the unit, so the fan-out is
    // deterministic by construction.
    std::vector<std::uint64_t> unit_lb;
    if (options_.use_bounding) {
      unit_lb.assign(units.size(), 0);
      parallel_for(options_.pool, initials.size(), threads, [&](std::size_t k) {
        State s = initials[k];  // scratch copy, restored by undo below
        for (std::size_t i = set_units[k].first; i < set_units[k].second;
             ++i) {
          check_cancel(options_.cancel);
          if (!units[i].first) {
            unit_lb[i] = completion_lower_bound(
                s, design_.static_base(), budget_,
                options_.allow_static_promotion);
            continue;
          }
          const Move& m = *units[i].first;
          GroupCost cost;
          if (m.kind == Move::Kind::Merge)
            cost = merged_group_cost(s.groups[m.a], s.groups[m.b],
                                     options_.pair_weights);
          UndoRecord undo = apply_move(s, m, &cost);
          unit_lb[i] = completion_lower_bound(s, design_.static_base(),
                                              budget_,
                                              options_.allow_static_promotion);
          undo_move(s, undo);
        }
      });
    }

    // Phase 2 — run the units, one candidate set per task so the set's
    // restarts share a chunk runner (state copy, undo stack, move table).
    // Each unit speculates twice: with the evaluation budget left according
    // to a relaxed global counter, and with the shared bound hint deciding
    // whether it is worth running at all. The merge below corrects any unit
    // whose speculative cap or prune disagrees with the canonical one.
    GroupCostCache cache;
    GroupCostCache* cache_ptr = options_.use_cost_cache ? &cache : nullptr;
    std::vector<UnitOutcome> outcomes(units.size());
    std::atomic<std::uint64_t> consumed_hint{0};
    const std::size_t keep =
        std::max<std::size_t>(1, options_.keep_alternatives);
    BoundHint hint(keep);
    parallel_for(options_.pool, initials.size(), threads, [&](std::size_t k) {
      ChunkRunner runner(design_, budget_, options_, cache_ptr, initials[k]);
      for (std::size_t i = set_units[k].first; i < set_units[k].second; ++i) {
        if (options_.use_bounding) {
          const std::uint64_t lb = unit_lb[i];
          if (lb == kNoFittingCompletion || lb > hint.worst()) {
            outcomes[i].pruned_speculative = true;
            continue;
          }
        }
        const std::uint64_t consumed =
            std::min(consumed_hint.load(std::memory_order_relaxed),
                     options_.max_move_evaluations);
        const std::uint64_t cap = options_.max_move_evaluations - consumed;
        if (cap == 0) continue;  // almost certainly exhausted; merge re-checks
        outcomes[i] = runner.run_unit(units[i], cap);
        consumed_hint.fetch_add(outcomes[i].evals, std::memory_order_relaxed);
        hint.offer(outcomes[i].kept);
      }
    });

    // Phase 3 — deterministic merge in canonical unit order. A unit is
    // pruned when its lower bound proves it cannot displace any entry of
    // the (canonical) leaderboard — the bound exceeds the worst kept
    // objective of a full board, strictly, so objective ties still compete
    // on the canonical-key order. A surviving unit is accepted verbatim
    // when its speculative run is exactly what a sequential search would
    // have done with the remaining budget; otherwise it is replayed with
    // the canonical cap. Once the budget is exhausted every later unit is
    // dropped, mirroring the sequential early-out.
    std::vector<Kept> kept;
    std::uint64_t remaining = options_.max_move_evaluations;
    bool any_unit = false;
    std::size_t last_set = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
      check_cancel(options_.cancel);
      if (stats_.budget_exhausted) break;
      if (options_.use_bounding) {
        const std::uint64_t lb = unit_lb[i];
        const bool sterile = lb == kNoFittingCompletion;
        const bool dominated =
            kept.size() >= keep && lb > kept.back().ttotal;
        if (sterile || dominated) {
          ++stats_.units_pruned;
          if (!sterile) stats_.bound_gap_sum += lb - kept.back().ttotal;
          any_unit = true;
          last_set = units[i].set;
          continue;
        }
      }
      UnitOutcome& out = outcomes[i];
      const bool replay =
          out.pruned_speculative || !out.ran ||
          (out.truncated ? out.cap != remaining : out.evals >= remaining);
      if (replay) {
        ChunkRunner runner(design_, budget_, options_, cache_ptr,
                           initials[units[i].set]);
        out = runner.run_unit(units[i], remaining);
        ++stats_.units_replayed;
      }
      remaining -= out.evals;
      stats_.move_evaluations += out.evals;
      stats_.greedy_runs += out.greedy_runs;
      stats_.states_recorded += out.states_recorded;
      stats_.full_evaluations += out.full_evaluations;
      stats_.moves_rescored += out.moves_rescored;
      if (out.truncated) stats_.budget_exhausted = true;
      any_unit = true;
      last_set = units[i].set;
      if (options_.use_bounding && !out.kept.empty()) {
        stats_.bound_lb_sum += unit_lb[i];
        stats_.bound_best_sum += out.kept.front().ttotal;
      }
      for (Kept& entry : out.kept)
        insert_kept(kept, std::move(entry), keep);
    }
    stats_.candidate_sets = any_unit ? last_set + 1 : 0;
    for (const UnitOutcome& out : outcomes)
      if (out.pruned_speculative) ++stats_.units_pruned_speculative;
    if (cache_ptr) {
      const GroupCostCache::Stats cs = cache.stats();
      stats_.cache_hits = cs.hits;
      stats_.cache_misses = cs.misses;
      stats_.cache_entries = cache.size();
    }

    SearchResult result;
    result.stats = stats_;
    if (!kept.empty()) {
      result.feasible = true;
      // The full evaluator stays the oracle for accepted leaders: the
      // incremental bookkeeping proposes, the kernel certifies. A caller-
      // provided context (the partitioner's) is reused; otherwise build one
      // for this evaluation.
      std::optional<EvalContext> local_context;
      const EvalContext* context = options_.eval_context;
      if (context == nullptr) {
        local_context.emplace(design_, matrix_, partitions_);
        context = &*local_context;
      }
      EvalScratch local_scratch;
      EvalScratch& scratch =
          options_.scratch != nullptr ? *options_.scratch : local_scratch;
      const std::uint64_t scratch_evals_before =
          scratch.stats.kernel_evaluations;
      const std::uint64_t scratch_collapsed_before =
          scratch.stats.signature_collapsed_configs;
      std::vector<std::uint64_t> wcost;
      if (options_.workload_cost != nullptr) {
        // Workload re-ranking: certify every kept alternative in one kernel
        // batch, then stable-sort by the caller's cost, ascending. The
        // batch scores the same schemes in the same order as per-scheme
        // calls (same counters, same results); the stable sort keeps the
        // Eq. 10 + canonical-key order on cost ties, so the re-ranked
        // result is as deterministic as the unranked one.
        std::vector<const PartitionScheme*> frontier;
        frontier.reserve(kept.size());
        for (const Kept& k : kept) frontier.push_back(&k.scheme);
        std::vector<SchemeEvaluation> evals;
        context->evaluate_batch_into(frontier, budget_, scratch, evals);
        wcost.reserve(kept.size());
        for (std::size_t i = 0; i < kept.size(); ++i)
          wcost.push_back(
              options_.workload_cost->cost(kept[i].scheme, evals[i]));
        std::vector<std::size_t> rank(kept.size());
        for (std::size_t i = 0; i < rank.size(); ++i) rank[i] = i;
        std::stable_sort(rank.begin(), rank.end(),
                         [&](std::size_t a, std::size_t b) {
                           return wcost[a] < wcost[b];
                         });
        std::vector<Kept> ranked;
        std::vector<std::uint64_t> ranked_cost;
        ranked.reserve(kept.size());
        ranked_cost.reserve(kept.size());
        for (const std::size_t i : rank) {
          ranked.push_back(std::move(kept[i]));
          ranked_cost.push_back(wcost[i]);
        }
        kept = std::move(ranked);
        wcost = std::move(ranked_cost);
      }
      result.scheme = kept.front().scheme;
      result.scheme.label = "proposed";
      result.eval = context->evaluate(result.scheme, budget_, scratch);
      // Fold the kernel work of *this call* (the scratch may be a warm
      // caller-provided one carrying earlier jobs' counts).
      result.stats.kernel_evaluations +=
          scratch.stats.kernel_evaluations - scratch_evals_before;
      result.stats.signature_collapsed_configs +=
          scratch.stats.signature_collapsed_configs -
          scratch_collapsed_before;
      require(result.eval.valid, "search produced an invalid scheme: " +
                                     result.eval.invalid_reason);
      require(result.eval.fits, "search recorded a non-fitting scheme");
      result.alternatives.reserve(kept.size());
      for (std::size_t i = 0; i < kept.size(); ++i)
        result.alternatives.push_back(
            RankedScheme{std::move(kept[i].scheme), kept[i].ttotal,
                         wcost.empty() ? 0 : wcost[i]});
      result.alternatives.front().scheme.label = "proposed";
    }
    return result;
  }

 private:
  const Design& design_;
  const ConnectivityMatrix& matrix_;
  const std::vector<BasePartition>& partitions_;
  const CompatibilityTable& compat_;
  const ResourceVec budget_;
  const SearchOptions options_;

  SearchStats stats_;
};

}  // namespace

std::uint64_t weighted_total_frames(const SchemeEvaluation& evaluation,
                                    const PairWeights& weights) {
  std::uint64_t total = 0;
  for (const RegionReport& region : evaluation.regions) {
    const std::size_t n = region.active.size();
    require(weights.size() == n, "weights do not match the evaluation");
    for (std::size_t i = 0; i < n; ++i) {
      require(weights[i].size() == n, "weights must be square");
      for (std::size_t j = i + 1; j < n; ++j) {
        const int a = region.active[i];
        const int b = region.active[j];
        if (a >= 0 && b >= 0 && a != b) total += weights[i][j] * region.frames;
      }
    }
  }
  return total;
}

SearchResult search_partitioning(const Design& design,
                                 const ConnectivityMatrix& matrix,
                                 const std::vector<BasePartition>& partitions,
                                 const CompatibilityTable& compat,
                                 const ResourceVec& budget,
                                 const SearchOptions& options) {
  return Searcher(design, matrix, partitions, compat, budget, options).run();
}

}  // namespace prpart
