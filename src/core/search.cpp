#include "core/search.hpp"

#include <algorithm>
#include <optional>

#include "core/covering.hpp"
#include "util/status.hpp"

namespace prpart {

namespace {

// Heuristic weights for collapsing a ResourceVec into one scalar: frames per
// primitive (x10), i.e. the configuration-memory cost of one unit of each
// resource. Only used to rank states; all reported numbers stay in frames.
constexpr std::uint64_t kWClb = 18;   // 36 frames / 20 CLBs
constexpr std::uint64_t kWBram = 75;  // 30 frames / 4 BRAMs
constexpr std::uint64_t kWDsp = 35;   // 28 frames / 8 DSPs

std::uint64_t weighted_area(const ResourceVec& r) {
  return r.clbs * kWClb + r.brams * kWBram + r.dsps * kWDsp;
}

std::uint64_t budget_excess(const ResourceVec& used, const ResourceVec& budget) {
  auto over = [](std::uint32_t u, std::uint32_t b) -> std::uint64_t {
    return u > b ? u - b : 0;
  };
  return over(used.clbs, budget.clbs) * kWClb +
         over(used.brams, budget.brams) * kWBram +
         over(used.dsps, budget.dsps) * kWDsp;
}

/// Lexicographic objective: first fit (budget excess), then — once fitting —
/// total reconfiguration time with area as tie-break; while not fitting,
/// area (the route towards fitting) with time as tie-break.
struct Objective {
  std::uint64_t excess;
  std::uint64_t primary;
  std::uint64_t secondary;

  bool operator<(const Objective& o) const {
    if (excess != o.excess) return excess < o.excess;
    if (primary != o.primary) return primary < o.primary;
    return secondary < o.secondary;
  }
};

/// One region-in-progress: a set of base partitions plus the incremental
/// cost-model quantities needed to evaluate moves in O(1).
///
/// The pair bookkeeping is weight-generalised: tw_union is the summed
/// weight of all configuration pairs where the group is active in both,
/// tw_same the part where the *same* member is active in both. Their
/// difference, times frames, is the group's (possibly weighted) Eq. 10
/// term. With uniform weights tw_union = C(|occ|, 2).
struct Group {
  std::vector<std::size_t> members;
  DynBitset occ;             ///< union of member occupancies (configs)
  ResourceVec raw;           ///< element-wise max of member areas (Eq. 2)
  ResourceVec promote_area;  ///< element-wise SUM (cost of going static)
  TileCount tiles;           ///< Eqs. 3-5 on raw
  std::uint64_t frames = 0;  ///< Eq. 6
  std::uint64_t occ_count = 0;     ///< |occ| (uniform-weight fast path)
  std::uint64_t tw_union = 0;      ///< pair weight over occ x occ
  std::uint64_t tw_same = 0;       ///< pair weight kept by one member
  std::uint64_t contrib = 0;       ///< this region's term of Eq. 10
  bool alive = true;
};

std::uint64_t pairs2(std::uint64_t n) { return n * (n - 1) / 2; }

struct State {
  std::vector<Group> groups;
  std::vector<std::size_t> static_members;
  ResourceVec static_extra;  ///< promoted partitions, raw sum
  ResourceVec pr_res;        ///< tile-rounded region footprints, summed
  std::uint64_t ttotal = 0;
  std::size_t alive = 0;

  ResourceVec total_res(const ResourceVec& static_base) const {
    return pr_res + static_base + static_extra;
  }
};

struct Move {
  enum class Kind { Merge, Promote } kind = Kind::Merge;
  std::size_t a = 0, b = 0;
};

class Searcher {
 public:
  Searcher(const Design& design, const ConnectivityMatrix& matrix,
           const std::vector<BasePartition>& partitions,
           const CompatibilityTable& compat, const ResourceVec& budget,
           const SearchOptions& options)
      : design_(design),
        matrix_(matrix),
        partitions_(partitions),
        compat_(compat),
        budget_(budget),
        options_(options) {}

  SearchResult run() {
    if (options_.pair_weights) {
      const PairWeights& w = *options_.pair_weights;
      require(w.size() == matrix_.configs(),
              "pair_weights must have one row per configuration");
      for (const auto& row : w)
        require(row.size() == matrix_.configs(),
                "pair_weights must be square");
    }
    const std::vector<std::size_t> order = covering_order(partitions_);
    for (std::size_t skip = 0; skip < order.size(); ++skip) {
      if (stats_.candidate_sets >= options_.max_candidate_sets) break;
      if (stats_.budget_exhausted) break;
      const CoverResult cov = cover(partitions_, matrix_, order, skip);
      if (!cov.complete) break;  // removals only make covering harder
      ++stats_.candidate_sets;
      explore_candidate_set(cov.selected);
    }

    SearchResult result;
    result.stats = stats_;
    if (!kept_.empty()) {
      result.feasible = true;
      result.scheme = kept_.front().scheme;
      result.scheme.label = "proposed";
      result.eval = evaluate_scheme(design_, matrix_, partitions_,
                                    result.scheme, budget_);
      require(result.eval.valid, "search produced an invalid scheme: " +
                                     result.eval.invalid_reason);
      require(result.eval.fits, "search recorded a non-fitting scheme");
      result.alternatives.reserve(kept_.size());
      for (Kept& k : kept_)
        result.alternatives.push_back(
            RankedScheme{std::move(k.scheme), k.ttotal});
      result.alternatives.front().scheme.label = "proposed";
    }
    return result;
  }

 private:
  /// Summed weight over unordered pairs within `occ`.
  std::uint64_t pair_weight_within(const DynBitset& occ) const {
    if (!options_.pair_weights) return pairs2(occ.count());
    const PairWeights& w = *options_.pair_weights;
    std::uint64_t total = 0;
    const std::vector<std::size_t> bits = occ.bits();
    for (std::size_t a = 0; a < bits.size(); ++a)
      for (std::size_t b = a + 1; b < bits.size(); ++b)
        total += w[bits[a]][bits[b]];
    return total;
  }

  /// Summed weight over pairs with one configuration in each (disjoint)
  /// occupancy set.
  std::uint64_t pair_weight_between(const Group& a, const Group& b) const {
    if (!options_.pair_weights) return a.occ_count * b.occ_count;
    const PairWeights& w = *options_.pair_weights;
    std::uint64_t total = 0;
    for (std::size_t i : a.occ.bits())
      for (std::size_t j : b.occ.bits()) total += w[i][j];
    return total;
  }

  State initial_state(const std::vector<std::size_t>& candidate) const {
    State s;
    s.groups.reserve(candidate.size());
    for (std::size_t p : candidate) {
      Group g;
      g.members = {p};
      g.occ = compat_.occupancy(p);
      g.raw = partitions_[p].area;
      g.promote_area = partitions_[p].area;
      g.tiles = tiles_for(g.raw);
      g.frames = g.tiles.frames();
      g.occ_count = g.occ.count();
      g.tw_union = pair_weight_within(g.occ);
      g.tw_same = g.tw_union;
      g.contrib = 0;  // a single alternative never reconfigures
      s.groups.push_back(std::move(g));
      s.pr_res += s.groups.back().tiles.resources();
    }
    s.alive = s.groups.size();
    return s;
  }

  Objective objective(std::uint64_t excess, std::uint64_t ttotal,
                      std::uint64_t warea) const {
    if (excess > 0) return {excess, warea, ttotal};
    return {0, ttotal, warea};
  }

  Objective state_objective(const State& s) const {
    const ResourceVec total = s.total_res(design_.static_base());
    return objective(budget_excess(total, budget_), s.ttotal,
                     weighted_area(total));
  }

  /// Metrics of the state that `move` would produce. Returns nullopt for
  /// invalid moves (incompatible merge). Counts one move evaluation.
  std::optional<Objective> evaluate_move(const State& s, const Move& move) {
    ++stats_.move_evaluations;
    if (stats_.move_evaluations >= options_.max_move_evaluations)
      stats_.budget_exhausted = true;

    const Group& ga = s.groups[move.a];
    if (move.kind == Move::Kind::Merge) {
      const Group& gb = s.groups[move.b];
      if (ga.occ.intersects(gb.occ)) return std::nullopt;  // incompatible
      const ResourceVec raw = elementwise_max(ga.raw, gb.raw);
      const TileCount tiles = tiles_for(raw);
      const std::uint64_t tw_union =
          ga.tw_union + gb.tw_union + pair_weight_between(ga, gb);
      const std::uint64_t contrib =
          (tw_union - ga.tw_same - gb.tw_same) * tiles.frames();
      const ResourceVec pr = s.pr_res + tiles.resources();
      // Subtract the two old footprints (kept as additions to avoid
      // unsigned underflow juggling: compute the new total directly).
      ResourceVec total = pr + design_.static_base() + s.static_extra;
      total.clbs -= ga.tiles.resources().clbs + gb.tiles.resources().clbs;
      total.brams -= ga.tiles.resources().brams + gb.tiles.resources().brams;
      total.dsps -= ga.tiles.resources().dsps + gb.tiles.resources().dsps;
      const std::uint64_t ttotal = s.ttotal - ga.contrib - gb.contrib + contrib;
      return objective(budget_excess(total, budget_), ttotal,
                       weighted_area(total));
    }

    // Promote: the whole group's mode set becomes permanently present.
    ResourceVec total = s.pr_res + design_.static_base() + s.static_extra +
                        ga.promote_area;
    total.clbs -= ga.tiles.resources().clbs;
    total.brams -= ga.tiles.resources().brams;
    total.dsps -= ga.tiles.resources().dsps;
    const std::uint64_t ttotal = s.ttotal - ga.contrib;
    return objective(budget_excess(total, budget_), ttotal,
                     weighted_area(total));
  }

  void apply_move(State& s, const Move& move) const {
    Group& ga = s.groups[move.a];
    auto remove_footprint = [&](const Group& g) {
      s.pr_res.clbs -= g.tiles.resources().clbs;
      s.pr_res.brams -= g.tiles.resources().brams;
      s.pr_res.dsps -= g.tiles.resources().dsps;
      s.ttotal -= g.contrib;
    };
    if (move.kind == Move::Kind::Merge) {
      Group& gb = s.groups[move.b];
      remove_footprint(ga);
      remove_footprint(gb);
      ga.tw_union += gb.tw_union + pair_weight_between(ga, gb);
      ga.members.insert(ga.members.end(), gb.members.begin(), gb.members.end());
      ga.occ |= gb.occ;
      ga.raw = elementwise_max(ga.raw, gb.raw);
      ga.promote_area += gb.promote_area;
      ga.tiles = tiles_for(ga.raw);
      ga.frames = ga.tiles.frames();
      ga.occ_count += gb.occ_count;
      ga.tw_same += gb.tw_same;
      ga.contrib = (ga.tw_union - ga.tw_same) * ga.frames;
      gb.alive = false;
      --s.alive;
      s.pr_res += ga.tiles.resources();
      s.ttotal += ga.contrib;
    } else {
      remove_footprint(ga);
      s.static_extra += ga.promote_area;
      s.static_members.insert(s.static_members.end(), ga.members.begin(),
                              ga.members.end());
      ga.alive = false;
      --s.alive;
    }
  }

  /// Order-independent fingerprint of a state's grouping, used to keep the
  /// alternatives list free of duplicates.
  static std::size_t signature_of(const State& s) {
    auto hash_members = [](std::vector<std::size_t> members) {
      std::sort(members.begin(), members.end());
      std::uint64_t h = 1469598103934665603ull;
      for (std::size_t m : members) {
        h ^= m + 0x9e3779b97f4a7c15ull;
        h *= 1099511628211ull;
      }
      return h;
    };
    std::uint64_t sig = 0;
    for (const Group& g : s.groups)
      if (g.alive) sig ^= hash_members(g.members);  // group order irrelevant
    sig = sig * 1099511628211ull ^ hash_members(s.static_members);
    return static_cast<std::size_t>(sig);
  }

  /// Records the state when it fits and enters the top-K leaderboard.
  void record(const State& s) {
    const ResourceVec total = s.total_res(design_.static_base());
    if (!total.fits_in(budget_)) return;
    ++stats_.states_recorded;
    const std::uint64_t warea = weighted_area(total);
    const std::size_t keep = std::max<std::size_t>(1, options_.keep_alternatives);
    if (kept_.size() >= keep) {
      const Kept& worst = kept_.back();
      if (s.ttotal > worst.ttotal ||
          (s.ttotal == worst.ttotal && warea >= worst.warea))
        return;
    }
    const std::size_t sig = signature_of(s);
    for (const Kept& k : kept_)
      if (k.sig == sig) return;  // same grouping already kept

    Kept entry;
    entry.ttotal = s.ttotal;
    entry.warea = warea;
    entry.sig = sig;
    for (const Group& g : s.groups)
      if (g.alive) entry.scheme.regions.push_back(Region{g.members});
    entry.scheme.static_members = s.static_members;

    const auto pos = std::lower_bound(
        kept_.begin(), kept_.end(), entry, [](const Kept& a, const Kept& b) {
          if (a.ttotal != b.ttotal) return a.ttotal < b.ttotal;
          return a.warea < b.warea;
        });
    kept_.insert(pos, std::move(entry));
    if (kept_.size() > keep) kept_.pop_back();
  }

  /// All currently valid moves on `s`.
  std::vector<Move> moves_of(const State& s) const {
    std::vector<Move> moves;
    const std::size_t n = s.groups.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!s.groups[i].alive) continue;
      for (std::size_t j = i + 1; j < n; ++j)
        if (s.groups[j].alive) moves.push_back({Move::Kind::Merge, i, j});
      if (options_.allow_static_promotion)
        moves.push_back({Move::Kind::Promote, i, 0});
    }
    return moves;
  }

  /// Greedy descent: repeatedly apply the objective-minimising move while it
  /// strictly improves; records every visited state.
  void greedy(State s) {
    ++stats_.greedy_runs;
    record(s);
    while (s.alive > 0 && !stats_.budget_exhausted) {
      Objective current = state_objective(s);
      std::optional<Move> best_move;
      Objective best_obj = current;
      for (const Move& m : moves_of(s)) {
        const std::optional<Objective> obj = evaluate_move(s, m);
        if (stats_.budget_exhausted) return;
        if (obj && *obj < best_obj) {
          best_obj = *obj;
          best_move = m;
        }
      }
      if (!best_move) return;  // local optimum
      apply_move(s, *best_move);
      record(s);
    }
  }

  void explore_candidate_set(const std::vector<std::size_t>& candidate) {
    const State initial = initial_state(candidate);
    // Run 0: unconstrained greedy.
    greedy(initial);
    // Restarts: force each distinct first move (§IV-C: "assigns two
    // compatible base partitions ... distinct from those used to begin the
    // previous iterations").
    std::size_t first_moves = 0;
    for (const Move& m : moves_of(initial)) {
      if (stats_.budget_exhausted) return;
      if (first_moves >= options_.max_first_moves) return;
      const std::optional<Objective> obj = evaluate_move(initial, m);
      if (!obj) continue;  // invalid merge
      ++first_moves;
      State s = initial;
      apply_move(s, m);
      record(s);
      greedy(std::move(s));
    }
  }

  const Design& design_;
  const ConnectivityMatrix& matrix_;
  const std::vector<BasePartition>& partitions_;
  const CompatibilityTable& compat_;
  const ResourceVec budget_;
  const SearchOptions options_;

  SearchStats stats_;
  struct Kept {
    std::uint64_t ttotal = 0;
    std::uint64_t warea = 0;
    std::size_t sig = 0;
    PartitionScheme scheme;
  };
  std::vector<Kept> kept_;  ///< top schemes, ascending (ttotal, warea)
};

}  // namespace

std::uint64_t weighted_total_frames(const SchemeEvaluation& evaluation,
                                    const PairWeights& weights) {
  std::uint64_t total = 0;
  for (const RegionReport& region : evaluation.regions) {
    const std::size_t n = region.active.size();
    require(weights.size() == n, "weights do not match the evaluation");
    for (std::size_t i = 0; i < n; ++i) {
      require(weights[i].size() == n, "weights must be square");
      for (std::size_t j = i + 1; j < n; ++j) {
        const int a = region.active[i];
        const int b = region.active[j];
        if (a >= 0 && b >= 0 && a != b) total += weights[i][j] * region.frames;
      }
    }
  }
  return total;
}

SearchResult search_partitioning(const Design& design,
                                 const ConnectivityMatrix& matrix,
                                 const std::vector<BasePartition>& partitions,
                                 const CompatibilityTable& compat,
                                 const ResourceVec& budget,
                                 const SearchOptions& options) {
  return Searcher(design, matrix, partitions, compat, budget, options).run();
}

}  // namespace prpart
