// AVX2 tier of the evaluation kernel (DESIGN.md §4e). This TU is compiled
// with -mavx2 (see src/core/CMakeLists.txt); nothing in it executes unless
// runtime dispatch selected the tier after __builtin_cpu_supports("avx2"),
// so the vector code never runs on a CPU without the ISA.

#include "core/eval_kernel_tiers.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace prpart::eval_tiers {

namespace {

/// 256-bit word kernels plus SSE 16-bit-lane masks for run_batch. The
/// bitset buffers are u64 vectors of arbitrary length, handled four words
/// per op with a scalar tail; the int16 signature rows are handled eight
/// lanes per op (pack the 0/0xFFFF compare lanes to bytes, then movemask).
struct Avx2Ops {
  static void conflict_accumulate(std::uint64_t* occ, std::uint64_t* con,
                                  const std::uint64_t* act, std::size_t n) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(act + i));
      __m256i o = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(occ + i));
      __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(con + i));
      c = _mm256_or_si256(c, _mm256_and_si256(o, a));
      o = _mm256_or_si256(o, a);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(con + i), c);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(occ + i), o);
    }
    for (; i < n; ++i) {
      con[i] |= occ[i] & act[i];
      occ[i] |= act[i];
    }
  }

  static void or_into(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_or_si256(d, s));
    }
    for (; i < n; ++i) dst[i] |= src[i];
  }

  static bool any(const std::uint64_t* w, std::size_t n) {
    std::size_t i = 0;
    __m256i acc = _mm256_setzero_si256();
    for (; i + 4 <= n; i += 4)
      acc = _mm256_or_si256(
          acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i)));
    std::uint64_t tail = 0;
    for (; i < n; ++i) tail |= w[i];
    return _mm256_testz_si256(acc, acc) == 0 || tail != 0;
  }

  static bool missing_into(std::uint64_t* dst, const std::uint64_t* used,
                           const std::uint64_t* touched,
                           const std::uint64_t* stat, std::size_t n) {
    std::size_t i = 0;
    __m256i acc = _mm256_setzero_si256();
    for (; i + 4 <= n; i += 4) {
      const __m256i u =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(used + i));
      const __m256i t =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(touched + i));
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(stat + i));
      const __m256i m = _mm256_andnot_si256(_mm256_or_si256(t, s), u);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), m);
      acc = _mm256_or_si256(acc, m);
    }
    std::uint64_t tail = 0;
    for (; i < n; ++i) {
      const std::uint64_t m = used[i] & ~(touched[i] | stat[i]);
      dst[i] = m;
      tail |= m;
    }
    return _mm256_testz_si256(acc, acc) == 0 || tail != 0;
  }

  static std::uint64_t active_mask16(const std::int16_t* row, std::size_t k) {
    std::uint64_t mask = 0;
    std::size_t i = 0;
    const __m128i minus1 = _mm_set1_epi16(-1);
    const __m128i zero = _mm_setzero_si128();
    for (; i + 8 <= k; i += 8) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i));
      // active lanes (>= 0) compare 0xFFFF; pack to bytes, movemask to bits.
      const __m128i ge = _mm_cmpgt_epi16(v, minus1);
      const auto bm = static_cast<unsigned>(
                          _mm_movemask_epi8(_mm_packs_epi16(ge, zero))) &
                      0xffu;
      mask |= static_cast<std::uint64_t>(bm) << i;
    }
    for (; i < k; ++i)
      if (row[i] >= 0) mask |= std::uint64_t{1} << i;
    return mask;
  }

  static std::uint64_t eq_mask16(const std::int16_t* a, const std::int16_t* b,
                                 std::size_t k) {
    std::uint64_t mask = 0;
    std::size_t i = 0;
    const __m128i zero = _mm_setzero_si128();
    for (; i + 8 <= k; i += 8) {
      const __m128i va =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      const __m128i vb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
      const __m128i eq = _mm_cmpeq_epi16(va, vb);
      const auto bm = static_cast<unsigned>(
                          _mm_movemask_epi8(_mm_packs_epi16(eq, zero))) &
                      0xffu;
      mask |= static_cast<std::uint64_t>(bm) << i;
    }
    for (; i < k; ++i)
      if (a[i] == b[i]) mask |= std::uint64_t{1} << i;
    return mask;
  }
};

}  // namespace

BatchFn avx2_fn() { return &run_batch<Avx2Ops>; }

}  // namespace prpart::eval_tiers

#else  // !__AVX2__

namespace prpart::eval_tiers {

BatchFn avx2_fn() { return nullptr; }

}  // namespace prpart::eval_tiers

#endif
