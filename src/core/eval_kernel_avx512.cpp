// AVX-512 tier of the evaluation kernel (DESIGN.md §4e). Compiled with
// -mavx512f -mavx512bw -mavx512dq -mavx512vl (src/core/CMakeLists.txt) and
// only dispatched to after runtime checks for the same four features, so
// none of this executes on a CPU without them. Relative to the AVX2 tier:
// eight bitset words per op, the coverage combine as one ternary-logic op,
// and the int16 signature compares produce mask registers directly
// (AVX-512BW), 32 lanes per op with no pack/movemask dance.

#include "core/eval_kernel_tiers.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)

#include <immintrin.h>

namespace prpart::eval_tiers {

namespace {

struct Avx512Ops {
  static void conflict_accumulate(std::uint64_t* occ, std::uint64_t* con,
                                  const std::uint64_t* act, std::size_t n) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m512i a = _mm512_loadu_si512(act + i);
      __m512i o = _mm512_loadu_si512(occ + i);
      __m512i c = _mm512_loadu_si512(con + i);
      c = _mm512_or_si512(c, _mm512_and_si512(o, a));
      o = _mm512_or_si512(o, a);
      _mm512_storeu_si512(con + i, c);
      _mm512_storeu_si512(occ + i, o);
    }
    for (; i < n; ++i) {
      con[i] |= occ[i] & act[i];
      occ[i] |= act[i];
    }
  }

  static void or_into(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
      _mm512_storeu_si512(dst + i,
                          _mm512_or_si512(_mm512_loadu_si512(dst + i),
                                          _mm512_loadu_si512(src + i)));
    for (; i < n; ++i) dst[i] |= src[i];
  }

  static bool any(const std::uint64_t* w, std::size_t n) {
    std::size_t i = 0;
    __m512i acc = _mm512_setzero_si512();
    for (; i + 8 <= n; i += 8)
      acc = _mm512_or_si512(acc, _mm512_loadu_si512(w + i));
    std::uint64_t tail = 0;
    for (; i < n; ++i) tail |= w[i];
    return _mm512_test_epi64_mask(acc, acc) != 0 || tail != 0;
  }

  static bool missing_into(std::uint64_t* dst, const std::uint64_t* used,
                           const std::uint64_t* touched,
                           const std::uint64_t* stat, std::size_t n) {
    std::size_t i = 0;
    __m512i acc = _mm512_setzero_si512();
    for (; i + 8 <= n; i += 8) {
      const __m512i u = _mm512_loadu_si512(used + i);
      const __m512i t = _mm512_loadu_si512(touched + i);
      const __m512i s = _mm512_loadu_si512(stat + i);
      // used & ~(touched | stat): truth-table minterm a·~b·~c = imm 0x10.
      const __m512i m = _mm512_ternarylogic_epi64(u, t, s, 0x10);
      _mm512_storeu_si512(dst + i, m);
      acc = _mm512_or_si512(acc, m);
    }
    std::uint64_t tail = 0;
    for (; i < n; ++i) {
      const std::uint64_t m = used[i] & ~(touched[i] | stat[i]);
      dst[i] = m;
      tail |= m;
    }
    return _mm512_test_epi64_mask(acc, acc) != 0 || tail != 0;
  }

  // The lane-mask kernels run the short tail (k is the number of
  // contributing regions, typically well under 32) through AVX-512BW
  // masked loads instead of a scalar loop: one masked compare covers any
  // residue, which is the whole call for realistic schemes.
  static std::uint64_t active_mask16(const std::int16_t* row, std::size_t k) {
    std::uint64_t mask = 0;
    const __m512i minus1 = _mm512_set1_epi16(-1);
    for (std::size_t i = 0; i < k; i += 32) {
      const std::size_t rem = k - i;
      const __mmask32 lanes =
          rem >= 32 ? ~__mmask32{0}
                    : static_cast<__mmask32>((1u << rem) - 1u);
      const __m512i v = _mm512_maskz_loadu_epi16(lanes, row + i);
      const __mmask32 m = _mm512_mask_cmpgt_epi16_mask(lanes, v, minus1);
      mask |= static_cast<std::uint64_t>(m) << i;
    }
    return mask;
  }

  static std::uint64_t eq_mask16(const std::int16_t* a, const std::int16_t* b,
                                 std::size_t k) {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < k; i += 32) {
      const std::size_t rem = k - i;
      const __mmask32 lanes =
          rem >= 32 ? ~__mmask32{0}
                    : static_cast<__mmask32>((1u << rem) - 1u);
      const __mmask32 m = _mm512_mask_cmpeq_epi16_mask(
          lanes, _mm512_maskz_loadu_epi16(lanes, a + i),
          _mm512_maskz_loadu_epi16(lanes, b + i));
      mask |= static_cast<std::uint64_t>(m) << i;
    }
    return mask;
  }
};

}  // namespace

BatchFn avx512_fn() { return &run_batch<Avx512Ops>; }

}  // namespace prpart::eval_tiers

#else  // missing AVX-512 f/bw/dq/vl

namespace prpart::eval_tiers {

BatchFn avx512_fn() { return nullptr; }

}  // namespace prpart::eval_tiers

#endif
