#include "core/covering.hpp"

#include <algorithm>
#include <numeric>

namespace prpart {

std::vector<std::size_t> covering_order(
    const std::vector<BasePartition>& partitions) {
  std::vector<std::size_t> order(partitions.size());
  std::iota(order.begin(), order.end(), 0);
  // The key is a full lexicographic strict total order (the master-list
  // index breaks every remaining tie), so plain std::sort yields one
  // well-defined permutation — the enumeration order must not lean on
  // sort stability, because downstream parallel chunking replays it.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const BasePartition& pa = partitions[a];
    const BasePartition& pb = partitions[b];
    const std::size_t na = pa.modes.count();
    const std::size_t nb = pb.modes.count();
    if (na != nb) return na < nb;
    if (pa.frequency_weight != pb.frequency_weight)
      return pa.frequency_weight < pb.frequency_weight;
    if (pa.frames != pb.frames) return pa.frames < pb.frames;
    return a < b;
  });
  return order;
}

CoverResult cover(const std::vector<BasePartition>& partitions,
                  const ConnectivityMatrix& matrix,
                  std::span<const std::size_t> order, std::size_t skip) {
  // Working copy of the connectivity matrix rows; selected partitions zero
  // their modes row by row.
  std::vector<DynBitset> remaining;
  remaining.reserve(matrix.configs());
  for (std::size_t c = 0; c < matrix.configs(); ++c)
    remaining.push_back(matrix.row(c));

  auto all_zero = [&] {
    return std::all_of(remaining.begin(), remaining.end(),
                       [](const DynBitset& r) { return r.none(); });
  };

  CoverResult result;
  for (std::size_t i = skip; i < order.size(); ++i) {
    const BasePartition& p = partitions[order[i]];
    bool covers_new = false;
    for (const DynBitset& row : remaining)
      if (row.intersects(p.modes)) {
        covers_new = true;
        break;
      }
    if (!covers_new) continue;  // not considered as a candidate (§IV-C)
    for (DynBitset& row : remaining) row.subtract(p.modes);
    result.selected.push_back(order[i]);
    if (all_zero()) {
      result.complete = true;
      return result;
    }
  }
  result.complete = all_zero();
  return result;
}

}  // namespace prpart
