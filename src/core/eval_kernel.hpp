#pragma once

#include <cstdint>
#include <vector>

#include "core/scheme.hpp"
#include "util/bitset.hpp"
#include "util/simd.hpp"

namespace prpart {

/// Counters the kernel accumulates per scratch (not per context: the context
/// is shared read-only across search threads, so mutable state lives with
/// the caller). Surfaced through SearchStats and the server result stats.
struct EvalStats {
  /// Scheme evaluations served by the kernel.
  std::uint64_t kernel_evaluations = 0;
  /// Configurations dropped from the Eq. 11 pair loop because their active
  /// signature over the contributing regions duplicated an earlier
  /// configuration's (sum of C - distinct over valid evaluations).
  std::uint64_t signature_collapsed_configs = 0;
};

class EvalContext;
struct EvalKernelDetail;

/// Reusable working buffers for EvalContext::evaluate. Sized lazily on first
/// use and kept across calls, so steady-state evaluation performs no heap
/// allocation. One scratch per thread; never shared concurrently. A scratch
/// outlives any one context: the server's job workers keep one per pool
/// thread across jobs, so back-to-back jobs over same-dimension designs
/// evaluate with zero allocations *across* requests (DESIGN.md §4e).
struct EvalScratch {
  EvalStats stats;

 private:
  friend class EvalContext;
  friend struct EvalKernelDetail;
  DynBitset region_occ_;    ///< configs claimed by earlier members of a region
  DynBitset conflicts_;     ///< configs claimed by two members (invalid)
  DynBitset uncovered_;     ///< configs with at least one unprovided mode
  DynBitset static_modes_;  ///< modes provided by the static members
  DynBitset touched_;       ///< modes whose providers_ entry is live this call
  DynBitset missing_modes_; ///< used modes with no provider (vector tiers)
  std::vector<DynBitset> providers_;       ///< per mode: configs providing it
  std::vector<std::uint32_t> kept_;        ///< regions in the Eq. 11 pass
  std::vector<std::uint64_t> kept_frames_; ///< their frame counts
  std::vector<std::int16_t> cols_;   ///< config-major active-signature rows
  std::vector<std::uint32_t> order_; ///< config permutation for signature sort
  std::vector<std::uint32_t> reps_;  ///< one config per distinct signature
  std::vector<std::uint64_t> rep_bound_;  ///< per rep: total active frames
  std::vector<std::uint32_t> rep_order_;  ///< reps by decreasing bound
  std::vector<std::uint32_t> sig_slots_;  ///< signature hash table (vector tiers)
  std::vector<std::uint64_t> rep_mask_;   ///< per rep: active-region bitmask
};

/// Word-parallel scheme-evaluation kernel (DESIGN.md §4d/§4e).
///
/// Built once per design and shared read-only across threads, the context
/// precomputes the partition×configuration activity matrix (partition p is
/// active in configuration c iff its modes intersect column c) and the
/// configuration membership of every mode (the matrix transpose). With
/// those, evaluate() reproduces evaluate_scheme_reference byte-for-byte —
/// same SchemeEvaluation fields, same invalid_reason strings, same
/// first-diagnosed configuration — while replacing the reference's scalar
/// inner loops:
///   - region active tables: one word-AND accumulation per member instead of
///     per-config per-member mode intersections;
///   - coverage: word-parallel subset tests per mode with early exit,
///     instead of rebuilding a `provided` set per configuration;
///   - Eq. 10: popcounts of activity rows (a valid region activates a member
///     in exactly its activity configs), no per-config scan;
///   - Eq. 11: configurations grouped by their packed int16 active signature
///     over the contributing regions, so duplicate rows collapse out of the
///     O(C²·R) pair loop.
///
/// Dispatch (§4e): evaluate_into and evaluate_batch_into route through the
/// SIMD tier from simd::active_tier(). The scalar tier is this file's
/// original word-loop implementation, kept verbatim as the reference; the
/// vector tiers (AVX2 / AVX-512 / NEON) run a restructured batch evaluator
/// over the same packed words. Every tier is byte-identical to the
/// reference for every input, including invalid_reason strings and the
/// deterministic EvalStats counters — pinned by the tier×batch property
/// suite in tests/core.
class EvalContext {
 public:
  EvalContext(const Design& design, const ConnectivityMatrix& matrix,
              const std::vector<BasePartition>& partitions);

  EvalContext(const EvalContext&) = delete;
  EvalContext& operator=(const EvalContext&) = delete;

  const Design& design() const { return design_; }
  const ConnectivityMatrix& matrix() const { return matrix_; }
  const std::vector<BasePartition>& partitions() const { return partitions_; }

  /// Configurations in which partition p has at least one active mode.
  const DynBitset& activity(std::size_t p) const { return activity_[p]; }

  /// Evaluates `scheme` against `budget`. Identical results to
  /// evaluate_scheme_reference for every input.
  SchemeEvaluation evaluate(const PartitionScheme& scheme,
                            const ResourceVec& budget,
                            EvalScratch& scratch) const;

  /// In-place variant: reuses `eval`'s vectors (region reports, active
  /// tables) so a warm scratch + result pair evaluates with zero heap
  /// allocations.
  void evaluate_into(const PartitionScheme& scheme, const ResourceVec& budget,
                     EvalScratch& scratch, SchemeEvaluation& eval) const;

  /// Batch evaluation (§4e): scores `count` candidate schemes of this
  /// design in one dispatched pass over the shared activity matrix,
  /// writing evals[i] for schemes[i]. Equivalent to `count` evaluate_into
  /// calls — same results, same counter increments, same exception on the
  /// first offending scheme — but the per-call dispatch and scratch setup
  /// are hoisted and the vector tiers keep the packed rows hot across
  /// schemes. The search's frontier certification and the server's batch
  /// path are the intended callers.
  void evaluate_batch_into(const PartitionScheme* const* schemes,
                           std::size_t count, const ResourceVec& budget,
                           EvalScratch& scratch,
                           SchemeEvaluation* evals) const;

  /// Convenience overload over parallel vectors (resizes `evals`).
  void evaluate_batch_into(const std::vector<const PartitionScheme*>& schemes,
                           const ResourceVec& budget, EvalScratch& scratch,
                           std::vector<SchemeEvaluation>& evals) const;

 private:
  friend struct EvalKernelDetail;

  void prepare(EvalScratch& scratch) const;
  /// The PR 5 scalar-word path, retained unchanged as the reference tier.
  void evaluate_scalar_into(const PartitionScheme& scheme,
                            const ResourceVec& budget, EvalScratch& scratch,
                            SchemeEvaluation& eval) const;

  const Design& design_;
  const ConnectivityMatrix& matrix_;
  const std::vector<BasePartition>& partitions_;
  std::vector<DynBitset> activity_;      ///< partition -> configs (activity)
  std::vector<DynBitset> mode_configs_;  ///< mode -> configs containing it
  std::vector<std::uint32_t> used_modes_;  ///< modes present in some config
  /// Precomputed |activity_[p]| — Eq. 10 occurrence counts are popcounts of
  /// immutable rows, so the vector tiers read them as a table (§4e).
  std::vector<std::uint64_t> activity_count_;
  /// used_modes_ as a bitset, for the vector tiers' word-parallel coverage
  /// check (used & ~(touched | static) per word).
  DynBitset used_mask_;
};

}  // namespace prpart
