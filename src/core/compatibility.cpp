#include "core/compatibility.hpp"

#include "util/status.hpp"

namespace prpart {

CompatibilityTable::CompatibilityTable(
    const ConnectivityMatrix& matrix,
    const std::vector<BasePartition>& partitions) {
  occupancy_.reserve(partitions.size());
  for (const BasePartition& p : partitions)
    occupancy_.push_back(matrix.occupancy(p.modes));
}

const DynBitset& CompatibilityTable::occupancy(std::size_t p) const {
  require(p < occupancy_.size(), "partition index out of range");
  return occupancy_[p];
}

bool CompatibilityTable::compatible(std::size_t a, std::size_t b) const {
  return !occupancy(a).intersects(occupancy(b));
}

}  // namespace prpart
