#pragma once

#include <string>
#include <vector>

#include "core/base_partition.hpp"
#include "core/partitioner.hpp"
#include "design/design.hpp"

namespace prpart {

/// Renders the base partitions with their frequency weights in the style of
/// the paper's Table I.
std::string render_base_partitions(const Design& design,
                                   const std::vector<BasePartition>& partitions);

/// Renders a scheme's region -> base partition assignment in the style of
/// Table III / Table V (including a "static" row when modes were promoted).
std::string render_scheme_partitions(const Design& design,
                                     const std::vector<BasePartition>& partitions,
                                     const PartitionScheme& scheme);

/// Renders the scheme comparison in the style of Table IV: resources and
/// total/worst reconfiguration time per scheme.
std::string render_scheme_comparison(const PartitionerResult& result);

}  // namespace prpart
