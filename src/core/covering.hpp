#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/base_partition.hpp"
#include "core/connectivity.hpp"

namespace prpart {

/// The paper's list arrangement for the covering step (§IV-C): base
/// partitions in ascending order of (number of modes, frequency weight,
/// area), with the master-list index as a final deterministic tie-break.
/// Fewer modes first keeps regions small (reconfigured less often); among
/// equals, low-frequency partitions are consumed first so high-frequency
/// ones stay available as candidates across iterations.
std::vector<std::size_t> covering_order(
    const std::vector<BasePartition>& partitions);

/// Result of one covering pass.
struct CoverResult {
  /// The candidate partition set: indices into the master partition list,
  /// in selection order.
  std::vector<std::size_t> selected;
  /// True when every 1 in the connectivity matrix was zeroed. Covering can
  /// become incomplete once enough list heads have been removed.
  bool complete = false;
};

/// Runs the covering algorithm over `order`, ignoring its first `skip`
/// entries (the paper generates successive candidate partition sets by
/// removing the top-most base partition from the list and re-covering).
///
/// Partitions are taken in list order; one is selected iff it zeroes at
/// least one still-set element of (a working copy of) the connectivity
/// matrix, i.e. it covers a new mode occurrence.
CoverResult cover(const std::vector<BasePartition>& partitions,
                  const ConnectivityMatrix& matrix,
                  std::span<const std::size_t> order, std::size_t skip);

}  // namespace prpart
