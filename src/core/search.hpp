#pragma once

#include <cstdint>
#include <vector>

#include "core/compatibility.hpp"
#include "core/scheme.hpp"
#include "util/cancel.hpp"

namespace prpart {

class EvalContext;   // core/eval_kernel.hpp
struct EvalScratch;  // core/eval_kernel.hpp
class WorkerPool;    // util/parallel_for.hpp

/// Symmetric per-configuration-pair weights (scaled integers, e.g. relative
/// transition probabilities x 10^6). weight[i][j] scales the cost of the
/// i <-> j transition in the search objective; the uniform Eq. 10 proxy is
/// the special case of all-equal weights.
using PairWeights = std::vector<std::vector<std::uint32_t>>;

/// Sum over unordered configuration pairs of d_ij * weight[i][j] * frames:
/// the probability-weighted generalisation of Eq. 10 (the paper's future
/// work). With all weights 1 this equals SchemeEvaluation::total_frames.
std::uint64_t weighted_total_frames(const SchemeEvaluation& evaluation,
                                    const PairWeights& weights);

/// Workload-level cost of a candidate scheme, used to re-rank the search's
/// near-optimal alternatives by what the running system will actually pay
/// (e.g. simulated tail reconfiguration latency over a transition trace)
/// instead of the summed-frames proxy the search optimises. Implemented in
/// src/sim (SimulatedWorkloadCost); core only sees the interface so the
/// dependency arrow keeps pointing sim -> core.
class WorkloadCost {
 public:
  virtual ~WorkloadCost() = default;
  /// Lower is better. Must be a pure function of its arguments: the search
  /// may evaluate alternatives in any order (ties keep the Eq. 10 order, so
  /// re-ranking with any cost function is still deterministic).
  virtual std::uint64_t cost(const PartitionScheme& scheme,
                             const SchemeEvaluation& evaluation) const = 0;
};

/// Effort knobs of the region-allocation search. Defaults suit a single
/// design run; the synthetic sweep benches lower the evaluation budget.
struct SearchOptions {
  /// How many candidate partition sets to derive by successively removing
  /// the head of the covering list (§IV-C's outermost iteration).
  std::size_t max_candidate_sets = 32;
  /// Cap on distinct first moves per candidate set (the paper restarts the
  /// greedy assignment from every distinct initial pairing).
  std::size_t max_first_moves = 100000;
  /// Deterministic global work budget: total move evaluations across all
  /// candidate sets and restarts. The search stops cleanly when exhausted.
  std::uint64_t max_move_evaluations = 1'000'000;
  /// Allow promoting base partitions into the static region (the paper's
  /// key lever: "moving modes into the static region when possible").
  bool allow_static_promotion = true;
  /// When set (square, symmetric, one row per configuration), the search
  /// minimises the weighted total instead of the uniform Eq. 10 proxy.
  /// Must outlive the search call. The reported SchemeEvaluation still
  /// carries the canonical unweighted Eq. 10/11 numbers.
  const PairWeights* pair_weights = nullptr;
  /// Keep this many distinct best schemes (>= 1). The runners-up feed the
  /// floorplanner feedback loop of the paper's §VI: when the best scheme
  /// cannot be floorplanned, the flow tries the next one before resorting
  /// to budget shrinking.
  std::size_t keep_alternatives = 4;
  /// Worker threads for the search's fan-out over work units (candidate
  /// sets x first-move restarts). 0 = default_thread_count() (hardware
  /// concurrency, overridable via $PRPART_THREADS); 1 runs inline on the
  /// caller. Every value returns bit-identical schemes and deterministic
  /// core stats — see DESIGN.md, "Parallel region-allocation search".
  unsigned threads = 0;
  /// Memoise per-member-set group costs (area, tiles, frames, pair weight)
  /// in a cache shared across all branches and threads of this search.
  /// Results are identical with the cache off; the switch exists for
  /// benchmarking and fault isolation.
  bool use_cost_cache = true;
  /// Branch-and-bound pruning: drop a restart unit without running it when
  /// an admissible lower bound on every fitting completion of its start
  /// state (completion_lower_bound, see DESIGN.md) proves it cannot enter
  /// the final leaderboard. Pruning is sound — any thread count and either
  /// setting of this switch return byte-identical schemes — unless the
  /// evaluation budget runs out, in which case pruning spends the budget on
  /// non-dominated units instead (equal or better results, still
  /// deterministic per setting). Off reproduces the exhaustive unit
  /// schedule; the property suite compares the two.
  bool use_bounding = true;
  /// Reuse merge costs across the restarts of one candidate set through a
  /// version-stamped per-worker move table instead of recomputing them for
  /// every considered move. Purely a wall-clock lever: results and every
  /// deterministic counter (including move_evaluations and the budget
  /// truncation points) are identical with the table off.
  bool use_move_table = true;
  /// Optional shared scheme-evaluation kernel context (nullable; must be
  /// built for the same design/matrix/partitions and outlive the search,
  /// like pair_weights). When set, the final certification of the winning
  /// scheme reuses it instead of precomputing a fresh activity matrix; the
  /// partitioner passes its per-design context here. Results are identical
  /// either way.
  const EvalContext* eval_context = nullptr;
  /// Optional reusable evaluation scratch (nullable; one per calling
  /// thread, like the context it pairs with). When set, the final
  /// certification evaluates into it instead of a call-local scratch, so a
  /// caller that keeps the scratch warm across searches — the server's job
  /// workers — certifies with zero steady-state allocations (§4e). Kernel
  /// counters accumulate in the scratch either way and are folded into the
  /// returned SearchStats identically.
  EvalScratch* scratch = nullptr;
  /// Optional persistent worker pool (nullable; must outlive the search).
  /// When set, the phase fan-outs run on the pool's threads instead of
  /// spawning fresh ones — same dynamic schedule, byte-identical results —
  /// so a server worker holding a pool reaches a thread-spawn-free steady
  /// state across jobs (§4e). `threads` keeps its meaning as the logical
  /// cap; a pooled run uses the pool's fixed thread count.
  WorkerPool* pool = nullptr;
  /// Optional workload-cost re-ranking hook (nullable; must outlive the
  /// search). When set, the kept alternatives are each certified with the
  /// evaluation kernel and stable-sorted by WorkloadCost::cost ascending;
  /// the returned scheme/eval become the cheapest alternative under the
  /// workload instead of the lowest Eq. 10 sum. The search itself (moves,
  /// pruning, budget) is unaffected — only the final ranking changes.
  const WorkloadCost* workload_cost = nullptr;
  /// Cooperative cancellation (nullable; must outlive the search). Workers
  /// poll it at unit boundaries and every few hundred move evaluations;
  /// when it fires the search unwinds with CancelledError instead of
  /// returning a partial result, so a cancelled run can never be mistaken
  /// for a completed one. The serving layer arms it with per-job deadlines
  /// and on graceful shutdown.
  const CancelToken* cancel = nullptr;
};

/// A runner-up scheme with its objective value.
struct RankedScheme {
  PartitionScheme scheme;
  std::uint64_t total_frames = 0;  ///< search objective (weighted if set)
  /// WorkloadCost::cost of the scheme; 0 unless SearchOptions::workload_cost
  /// was set, in which case alternatives are ordered by this field.
  std::uint64_t workload_cost = 0;
};

struct SearchStats {
  // Deterministic core: identical for any SearchOptions::threads value.
  std::uint64_t move_evaluations = 0;
  std::size_t candidate_sets = 0;
  std::size_t greedy_runs = 0;
  std::uint64_t states_recorded = 0;
  bool budget_exhausted = false;
  /// Work units (independent greedy descents) enumerated across all
  /// candidate sets; the grain of the parallel fan-out.
  std::size_t units = 0;
  /// Units the branch-and-bound merge dropped without consuming any
  /// evaluation budget: their completion lower bound exceeded the worst
  /// kept leaderboard entry (or proved no completion could fit).
  std::size_t units_pruned = 0;
  /// Bound-tightness accumulators. Over pruned units: the summed margin by
  /// which the lower bound beat the pruning threshold. Over units that
  /// contributed leaderboard entries: the summed bound vs the summed best
  /// recorded objective (their ratio is the bound's tightness in [0, 1];
  /// 1 would be a perfect oracle).
  std::uint64_t bound_gap_sum = 0;
  std::uint64_t bound_lb_sum = 0;
  std::uint64_t bound_best_sum = 0;
  /// Scheme evaluations served by the word-parallel kernel on behalf of
  /// this search (the certification of the winning scheme; callers sharing
  /// an EvalContext fold their own counts in above this). Deterministic.
  std::uint64_t kernel_evaluations = 0;
  /// Configurations the kernel's Eq. 11 pass collapsed because their active
  /// signature duplicated another configuration's (see DESIGN.md §4d).
  /// Deterministic.
  std::uint64_t signature_collapsed_configs = 0;

  // Scheduling-dependent: these vary with thread interleaving and are NOT
  // part of the determinism contract (they never influence results).
  /// Units re-executed during the deterministic merge because their
  /// speculative evaluation budget disagreed with the canonical one.
  std::size_t units_replayed = 0;
  /// Units skipped during the speculative phase because the shared bound
  /// hint dominated them (the canonical merge re-decides each case).
  std::size_t units_pruned_speculative = 0;
  /// Merge costs computed from scratch (move-table misses plus every
  /// compatible merge consideration when the table is off). Exact at
  /// threads=1; replays perturb it slightly at higher thread counts.
  std::uint64_t full_evaluations = 0;
  /// Move considerations served from the incremental move table.
  std::uint64_t moves_rescored = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t cache_entries = 0;
};

struct SearchResult {
  /// False when no explored allocation fits the budget (the caller then
  /// falls back to the single-region scheme or a larger device).
  bool feasible = false;
  PartitionScheme scheme;
  /// Evaluation of `scheme` (computed with evaluate_scheme, including the
  /// worst-case transition time). Meaningful only when feasible.
  SchemeEvaluation eval;
  /// Best fitting schemes in ascending objective order (ascending workload
  /// cost when SearchOptions::workload_cost is set); the first entry is
  /// `scheme` itself. At most SearchOptions::keep_alternatives entries.
  std::vector<RankedScheme> alternatives;
  SearchStats stats;
};

/// Region-allocation search (§IV-C):
///
///  * every candidate partition set starts with each base partition in its
///    own region — the static-equivalent allocation with minimum (zero)
///    reconfiguration time and maximum area;
///  * moves either merge two compatible groups into one region (area falls,
///    reconfiguration time never falls) or promote a group into the static
///    logic (reconfiguration time falls, area usually grows);
///  * a greedy descent applies the best move by the lexicographic objective
///    (budget excess, then total reconfiguration time, then area), restarted
///    once from every possible first move;
///  * candidate partition sets are regenerated by removing the head of the
///    covering list until covering fails;
///  * the best *fitting* state ever visited is the answer, with ties broken
///    by a total order on (objective, canonical scheme key) so the winner
///    does not depend on discovery order;
///  * the descents are independent work units fanned out across
///    SearchOptions::threads workers; a deterministic merge reconciles the
///    global move-evaluation budget, so any thread count returns the same
///    schemes byte for byte.
SearchResult search_partitioning(const Design& design,
                                 const ConnectivityMatrix& matrix,
                                 const std::vector<BasePartition>& partitions,
                                 const CompatibilityTable& compat,
                                 const ResourceVec& budget,
                                 const SearchOptions& options = {});

}  // namespace prpart
