#include "core/result_io.hpp"

#include "util/status.hpp"
#include "xml/xml.hpp"

namespace prpart {

namespace {

void write_partition(xml::Element& parent, const Design& design,
                     const BasePartition& partition) {
  xml::Element& pe = parent.add_child("partition");
  for (std::size_t mode : partition.modes.bits()) {
    const ModeRef ref = design.mode_ref(mode);
    xml::Element& me = pe.add_child("mode");
    me.set_attr("module", design.modules()[ref.module].name);
    me.set_attr("name",
                design.modules()[ref.module].modes[ref.mode - 1].name);
  }
}

/// Resolves a <partition> element to a master-list index.
std::size_t read_partition(const xml::Element& pe, const Design& design,
                           const std::vector<BasePartition>& partitions) {
  DynBitset modes(design.mode_count());
  for (const xml::Element* me : pe.children_named("mode")) {
    const std::string& module_name = me->attr("module");
    const std::string& mode_name = me->attr("name");
    bool found = false;
    for (std::uint32_t m = 0; m < design.modules().size() && !found; ++m) {
      if (design.modules()[m].name != module_name) continue;
      for (std::uint32_t k = 1; k <= design.modules()[m].modes.size(); ++k) {
        if (design.modules()[m].modes[k - 1].name == mode_name) {
          modes.set(design.global_mode_id(m, k));
          found = true;
          break;
        }
      }
    }
    if (!found)
      throw ParseError("saved partitioning references unknown mode '" +
                       module_name + "." + mode_name + "'");
  }
  if (modes.none())
    throw ParseError("saved partitioning contains an empty partition");
  for (std::size_t p = 0; p < partitions.size(); ++p)
    if (partitions[p].modes == modes) return p;
  throw ParseError(
      "saved partitioning contains a mode set that is not a base partition "
      "of this design (the configurations have changed)");
}

}  // namespace

std::string partitioning_to_xml(const Design& design,
                                const std::vector<BasePartition>& partitions,
                                const PartitionScheme& scheme,
                                const SchemeEvaluation& evaluation) {
  xml::Element root("partitioning");
  root.set_attr("design", design.name());
  root.set_attr("total-frames", std::to_string(evaluation.total_frames));
  root.set_attr("worst-frames", std::to_string(evaluation.worst_frames));

  if (!scheme.static_members.empty()) {
    xml::Element& se = root.add_child("static");
    for (std::size_t p : scheme.static_members)
      write_partition(se, design, partitions.at(p));
  }
  for (std::size_t r = 0; r < scheme.regions.size(); ++r) {
    xml::Element& re = root.add_child("region");
    re.set_attr("id", std::to_string(r + 1));
    for (std::size_t p : scheme.regions[r].members)
      write_partition(re, design, partitions.at(p));
  }
  return "<?xml version=\"1.0\"?>\n" + root.to_string();
}

PartitionScheme partitioning_from_xml(
    const Design& design, const std::vector<BasePartition>& partitions,
    const std::string& xml_text) {
  const auto root = xml::parse(xml_text);
  if (root->name() != "partitioning")
    throw ParseError("expected <partitioning> root, got <" + root->name() +
                     ">");
  if (root->has_attr("design") && root->attr("design") != design.name())
    throw ParseError("saved partitioning is for design '" +
                     root->attr("design") + "', not '" + design.name() + "'");

  PartitionScheme scheme;
  scheme.label = "loaded";
  if (const xml::Element* se = root->find_child("static"))
    for (const xml::Element* pe : se->children_named("partition"))
      scheme.static_members.push_back(read_partition(*pe, design, partitions));
  for (const xml::Element* re : root->children_named("region")) {
    Region region;
    for (const xml::Element* pe : re->children_named("partition"))
      region.members.push_back(read_partition(*pe, design, partitions));
    if (region.members.empty())
      throw ParseError("saved partitioning contains an empty region");
    scheme.regions.push_back(std::move(region));
  }
  if (scheme.regions.empty() && scheme.static_members.empty())
    throw ParseError("saved partitioning is empty");
  return scheme;
}

}  // namespace prpart
