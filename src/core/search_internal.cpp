#include "core/search_internal.hpp"

#include <algorithm>
#include <limits>

namespace prpart::search_internal {

namespace {

std::uint64_t pairs2(std::uint64_t n) { return n * (n - 1) / 2; }

}  // namespace

std::uint64_t pair_weight_within(const PairWeights* weights,
                                 const DynBitset& occ) {
  if (!weights) return pairs2(occ.count());
  std::uint64_t total = 0;
  occ.for_each_set_bit([&](std::size_t a) {
    occ.for_each_set_bit([&](std::size_t b) {
      if (b > a) total += (*weights)[a][b];
    });
  });
  return total;
}

std::uint64_t pair_weight_between(const PairWeights* weights, const Group& a,
                                  const Group& b) {
  if (!weights) return a.occ_count * b.occ_count;
  std::uint64_t total = 0;
  a.occ.for_each_set_bit([&](std::size_t i) {
    b.occ.for_each_set_bit(
        [&](std::size_t j) { total += (*weights)[i][j]; });
  });
  return total;
}

std::vector<Move> moves_of(const State& s, bool allow_static_promotion) {
  std::vector<Move> moves;
  const std::size_t n = s.groups.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!s.groups[i].alive) continue;
    for (std::size_t j = i + 1; j < n; ++j)
      if (s.groups[j].alive) moves.push_back({Move::Kind::Merge, i, j});
    if (allow_static_promotion) moves.push_back({Move::Kind::Promote, i, 0});
  }
  return moves;
}

GroupCost merged_group_cost(const Group& a, const Group& b,
                            const PairWeights* weights) {
  GroupCost cost;
  cost.raw = elementwise_max(a.raw, b.raw);
  cost.tiles = tiles_for(cost.raw);
  cost.frames = cost.tiles.frames();
  cost.tw_union = a.tw_union + b.tw_union + pair_weight_between(weights, a, b);
  return cost;
}

State initial_state(const std::vector<BasePartition>& partitions,
                    const CompatibilityTable& compat,
                    const PairWeights* weights,
                    const std::vector<std::size_t>& candidate) {
  State s;
  s.groups.reserve(candidate.size());
  for (std::size_t p : candidate) {
    Group g;
    g.members = {p};
    g.occ = compat.occupancy(p);
    g.raw = partitions[p].area;
    g.promote_area = partitions[p].area;
    g.tiles = tiles_for(g.raw);
    g.frames = g.tiles.frames();
    g.occ_count = g.occ.count();
    g.tw_union = pair_weight_within(weights, g.occ);
    g.tw_same = g.tw_union;
    g.contrib = 0;  // a single alternative never reconfigures
    s.groups.push_back(std::move(g));
    s.pr_res += s.groups.back().tiles.resources();
  }
  s.alive = s.groups.size();
  return s;
}

UndoRecord apply_move(State& s, const Move& move, const GroupCost* merge_cost) {
  UndoRecord undo;
  apply_move_into(s, move, merge_cost, undo);
  return undo;
}

void apply_move_into(State& s, const Move& move, const GroupCost* merge_cost,
                     UndoRecord& undo) {
  undo.move = move;
  undo.prior_pr_res = s.pr_res;
  undo.prior_static_extra = s.static_extra;
  undo.prior_ttotal = s.ttotal;
  undo.prior_static_count = s.static_members.size();

  Group& ga = s.groups[move.a];
  auto remove_footprint = [&](const Group& g) {
    s.pr_res.clbs -= g.tiles.resources().clbs;
    s.pr_res.brams -= g.tiles.resources().brams;
    s.pr_res.dsps -= g.tiles.resources().dsps;
    s.ttotal -= g.contrib;
  };
  if (move.kind == Move::Kind::Merge) {
    Group& gb = s.groups[move.b];
    remove_footprint(ga);
    remove_footprint(gb);
    const GroupCost& cost = *merge_cost;
    // Copy (not move) the member list: both vectors keep their buffers, so
    // a pooled UndoRecord makes the apply/undo cycle allocation-free once
    // the capacities have grown to their high-water marks.
    undo.prior_members = ga.members;
    undo.prior_raw = ga.raw;
    undo.prior_promote_area = ga.promote_area;
    undo.prior_tiles = ga.tiles;
    undo.prior_frames = ga.frames;
    undo.prior_occ_count = ga.occ_count;
    undo.prior_tw_union = ga.tw_union;
    undo.prior_tw_same = ga.tw_same;
    undo.prior_contrib = ga.contrib;
    ga.members.resize(undo.prior_members.size() + gb.members.size());
    std::merge(undo.prior_members.begin(), undo.prior_members.end(),
               gb.members.begin(), gb.members.end(), ga.members.begin());
    ga.occ |= gb.occ;
    ga.raw = cost.raw;
    ga.promote_area += gb.promote_area;
    ga.tiles = cost.tiles;
    ga.frames = cost.frames;
    ga.occ_count += gb.occ_count;
    ga.tw_union = cost.tw_union;
    ga.tw_same += gb.tw_same;
    ga.contrib = (ga.tw_union - ga.tw_same) * ga.frames;
    gb.alive = false;
    --s.alive;
    s.pr_res += ga.tiles.resources();
    s.ttotal += ga.contrib;
  } else {
    remove_footprint(ga);
    s.static_extra += ga.promote_area;
    s.static_members.insert(s.static_members.end(), ga.members.begin(),
                            ga.members.end());
    ga.alive = false;
    --s.alive;
  }
}

void undo_move(State& s, UndoRecord& undo) {
  Group& ga = s.groups[undo.move.a];
  if (undo.move.kind == Move::Kind::Merge) {
    Group& gb = s.groups[undo.move.b];
    // Merged occupancies are disjoint, so subtracting b's bits restores a's
    // exact prior occupancy — the O(configs) part of the undo.
    ga.occ.subtract(gb.occ);
    ga.members = undo.prior_members;  // copy: the record keeps its buffer
    ga.raw = undo.prior_raw;
    ga.promote_area = undo.prior_promote_area;
    ga.tiles = undo.prior_tiles;
    ga.frames = undo.prior_frames;
    ga.occ_count = undo.prior_occ_count;
    ga.tw_union = undo.prior_tw_union;
    ga.tw_same = undo.prior_tw_same;
    ga.contrib = undo.prior_contrib;
    gb.alive = true;
  } else {
    s.static_members.resize(undo.prior_static_count);
    ga.alive = true;
  }
  ++s.alive;
  s.pr_res = undo.prior_pr_res;
  s.static_extra = undo.prior_static_extra;
  s.ttotal = undo.prior_ttotal;
}

PartitionScheme canonical_scheme(const State& s) {
  PartitionScheme scheme;
  for (const Group& g : s.groups)
    if (g.alive) {
      Region region{g.members};
      std::sort(region.members.begin(), region.members.end());
      scheme.regions.push_back(std::move(region));
    }
  std::sort(
      scheme.regions.begin(), scheme.regions.end(),
      [](const Region& a, const Region& b) { return a.members < b.members; });
  scheme.static_members = s.static_members;
  std::sort(scheme.static_members.begin(), scheme.static_members.end());
  return scheme;
}

std::vector<std::uint64_t> scheme_key(const PartitionScheme& scheme) {
  std::vector<std::uint64_t> key;
  std::size_t total = 2 + scheme.static_members.size();
  for (const Region& r : scheme.regions) total += 1 + r.members.size();
  key.reserve(total);
  key.push_back(scheme.regions.size());
  for (const Region& r : scheme.regions) {
    key.push_back(r.members.size());
    for (std::size_t m : r.members) key.push_back(m);
  }
  key.push_back(scheme.static_members.size());
  for (std::size_t m : scheme.static_members) key.push_back(m);
  return key;
}

bool kept_before(const Kept& a, const Kept& b) {
  if (a.ttotal != b.ttotal) return a.ttotal < b.ttotal;
  if (a.warea != b.warea) return a.warea < b.warea;
  return a.key < b.key;
}

void insert_kept(std::vector<Kept>& kept, Kept entry, std::size_t keep) {
  const auto pos =
      std::lower_bound(kept.begin(), kept.end(), entry, kept_before);
  if (pos != kept.end() && pos->key == entry.key) return;
  kept.insert(pos, std::move(entry));
  if (kept.size() > keep) kept.pop_back();
}

namespace {

/// Exact comparison of the non-negative rationals a/b and c/d (b, d > 0)
/// by synchronous continued-fraction expansion: compare the integer parts,
/// then recurse on the flipped reciprocals of the remainders. Never
/// overflows — the naive cross-multiplication a*d vs c*b does not fit in 64
/// bits for knapsack densities (contribution counts reach ~2^50).
int frac_cmp(std::uint64_t a, std::uint64_t b, std::uint64_t c,
             std::uint64_t d) {
  int sign = 1;
  for (;;) {
    const std::uint64_t qa = a / b;
    const std::uint64_t qc = c / d;
    if (qa != qc) return (qa < qc ? -1 : 1) * sign;
    const std::uint64_t ra = a % b;
    const std::uint64_t rc = c % d;
    if (ra == 0 || rc == 0) {
      if (ra == rc) return 0;
      return (ra == 0 ? -1 : 1) * sign;
    }
    // ra/b vs rc/d compares as the *inverse* of b/ra vs d/rc.
    a = b;
    c = d;
    b = ra;
    d = rc;
    sign = -sign;
  }
}

/// Knapsack item: promoting the group at `slot` frees `value` weighted
/// frames of Eq. 10 contribution at a static-area price of `price`.
struct PromoteItem {
  std::uint64_t value = 0;
  std::uint64_t price = 0;
  std::size_t slot = 0;
};

/// One scalarisation of the element-wise area constraint. A fitting
/// completion satisfies every projection's scalar inequality, so each
/// projection yields an independently admissible bound and the final bound
/// takes their maximum. The single-resource projections catch subtrees that
/// are starved of one resource long before the combined scalar notices.
struct Projection {
  std::uint64_t clb, bram, dsp;
};

constexpr Projection kProjections[] = {
    {kWClb, kWBram, kWDsp},  // the search's combined area scalarisation
    {1, 0, 0},               // CLBs alone
    {0, 1, 0},               // BRAMs alone
    {0, 0, 1},               // DSPs alone
};

std::uint64_t project(const Projection& p, const ResourceVec& r) {
  return r.clbs * p.clb + r.brams * p.bram + r.dsps * p.dsp;
}

/// The bound under one projection. kNoFittingCompletion means the
/// projection alone proves no completion of `s` can fit.
std::uint64_t projected_lower_bound(const State& s, const Projection& proj,
                                    const ResourceVec& static_area,
                                    const ResourceVec& budget,
                                    bool allow_static_promotion) {
  const std::uint64_t pbudget = project(proj, budget);
  const std::uint64_t pstatic = project(proj, static_area);
  // Any fitting total covers the static area element-wise, so a projected
  // static area beyond the projected budget proves the subtree sterile.
  if (pstatic > pbudget) return kNoFittingCompletion;
  // No alive groups: the state is its own only completion.
  if (s.alive == 0) return s.ttotal;
  const std::uint64_t cap0 = pbudget - pstatic;

  // Two exhaustive shapes of a completion. (a) Everything promoted: needs
  // the summed promotion price within cap0. (b) At least one region
  // remains: since regions only grow under merges, some region's footprint
  // is at least the smallest alive group's tile-rounded footprint, leaving
  // at most cap0 - minfoot of capacity for promotions.
  std::uint64_t total_price = 0;
  std::uint64_t minfoot = ~std::uint64_t{0};
  for (const Group& g : s.groups) {
    if (!g.alive) continue;
    total_price += project(proj, g.promote_area);
    minfoot = std::min(minfoot, project(proj, g.tiles.resources()));
  }
  const bool all_promotable = allow_static_promotion && total_price <= cap0;
  const bool region_fits = minfoot <= cap0;
  if (!all_promotable && !region_fits) return kNoFittingCompletion;
  // Merges only ever raise the total (contribution superadditivity), so
  // without promotions the current total is itself the floor.
  if (!allow_static_promotion) return s.ttotal;
  if (all_promotable) return 0;  // every contribution may become removable
  if (s.ttotal == 0) return 0;

  std::uint64_t capacity = cap0 - minfoot;
  std::uint64_t removable = 0;  // groups promotable at zero area price
  std::vector<PromoteItem> items;
  items.reserve(s.groups.size());
  for (std::size_t i = 0; i < s.groups.size(); ++i) {
    const Group& g = s.groups[i];
    if (!g.alive || g.contrib == 0) continue;
    const std::uint64_t price = project(proj, g.promote_area);
    if (price == 0) {
      removable += g.contrib;
      continue;
    }
    items.push_back({g.contrib, price, i});
  }
  // Best-density-first greedy with a fractional last item is the exact LP
  // optimum (Dantzig bound), an upper bound on any promotable subset's
  // value. The density order must be exact: a misordered prefix can
  // undershoot the LP optimum and break admissibility.
  std::sort(items.begin(), items.end(),
            [](const PromoteItem& x, const PromoteItem& y) {
              const int cmp =
                  frac_cmp(x.value, x.price, y.value, y.price);
              if (cmp != 0) return cmp > 0;
              return x.slot < y.slot;
            });
  for (const PromoteItem& item : items) {
    if (item.price <= capacity) {
      removable += item.value;
      capacity -= item.price;
      continue;
    }
    // floor(value * capacity / price) without 128-bit arithmetic: split the
    // value into price-quotient and remainder. The remainder product fits
    // (both factors < price <= weighted device area); if a pathological
    // input overflows anyway, fall back to the whole value — a looser but
    // still admissible bound.
    const std::uint64_t quot = item.value / item.price;
    const std::uint64_t rem = item.value % item.price;
    std::uint64_t fraction = quot * capacity;
    if (rem > 0) {
      if (capacity >
          std::numeric_limits<std::uint64_t>::max() / rem)
        fraction = item.value;
      else
        fraction += rem * capacity / item.price;
    }
    removable += std::min(fraction, item.value);
    break;
  }
  return s.ttotal - std::min(s.ttotal, removable);
}

}  // namespace

std::uint64_t completion_lower_bound(const State& s,
                                     const ResourceVec& static_base,
                                     const ResourceVec& budget,
                                     bool allow_static_promotion) {
  const ResourceVec static_area = static_base + s.static_extra;
  std::uint64_t lb = 0;
  for (const Projection& proj : kProjections) {
    const std::uint64_t b = projected_lower_bound(s, proj, static_area, budget,
                                                  allow_static_promotion);
    if (b == kNoFittingCompletion) return kNoFittingCompletion;
    lb = std::max(lb, b);
  }
  return lb;
}

}  // namespace prpart::search_internal
