#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/base_partition.hpp"
#include "core/connectivity.hpp"
#include "design/design.hpp"
#include "device/tiles.hpp"

namespace prpart {

/// One reconfigurable region: the base partitions (master-list indices) it
/// can hold as alternatives.
struct Region {
  std::vector<std::size_t> members;
};

/// A complete partitioning scheme: reconfigurable regions plus the base
/// partitions promoted into the static logic.
struct PartitionScheme {
  std::string label;
  std::vector<Region> regions;
  /// Base partitions implemented permanently in the static region. Their
  /// modes all coexist, so they cost the element-wise SUM of their areas
  /// (raw, not tile-rounded) and never contribute reconfiguration time.
  std::vector<std::size_t> static_members;
};

/// Per-region part of an evaluation.
struct RegionReport {
  ResourceVec raw;       ///< element-wise max over member partition areas
  TileCount tiles;       ///< Eqs. 3-5
  std::uint64_t frames = 0;  ///< Eq. 6
  /// Number of unordered configuration pairs whose transition reconfigures
  /// this region (the sum over pairs of d_ij for this region, Eq. 8).
  std::uint64_t reconfig_pairs = 0;
  /// Active member per configuration: index into Region::members, or -1
  /// when no member is active (region keeps stale contents).
  std::vector<int> active;
};

/// Full evaluation of a scheme against a budget (Eqs. 1-11).
struct SchemeEvaluation {
  /// Structural validity: exactly one active member per (configuration,
  /// region) where any is active, and every configuration's modes covered
  /// by active members plus static logic.
  bool valid = false;
  std::string invalid_reason;

  bool fits = false;
  ResourceVec pr_resources;      ///< tile-rounded region footprints, summed
  ResourceVec static_resources;  ///< design static base + promoted partitions
  ResourceVec total_resources;   ///< what is compared against the budget

  std::uint64_t total_frames = 0;  ///< Eq. 10 (sum over unordered pairs)
  std::uint64_t worst_frames = 0;  ///< Eq. 11 (max over unordered pairs)

  std::vector<RegionReport> regions;
};

/// Evaluates `scheme` for `design` against `budget`.
///
/// The active member of a region in configuration c is the unique member
/// whose modes intersect c (compatibility of members guarantees uniqueness;
/// violations make the evaluation invalid rather than throwing, so the
/// search can treat them as dead ends). d_ij(r) = 1 iff both configurations
/// have an active member in r and the members differ (stale-content rule,
/// see DESIGN.md).
SchemeEvaluation evaluate_scheme(const Design& design,
                                 const ConnectivityMatrix& matrix,
                                 const std::vector<BasePartition>& partitions,
                                 const PartitionScheme& scheme,
                                 const ResourceVec& budget);

/// Scalar reference implementation of evaluate_scheme: per-configuration
/// mode intersections and the direct O(C²·R) worst-case pair loop. The
/// word-parallel kernel (core/eval_kernel.hpp) is pinned byte-identical to
/// this — including invalid_reason strings and the first-diagnosed failing
/// configuration — by the scheme_kernel property suite. Kept as the oracle
/// for those tests and the bench reference leg.
SchemeEvaluation evaluate_scheme_reference(
    const Design& design, const ConnectivityMatrix& matrix,
    const std::vector<BasePartition>& partitions, const PartitionScheme& scheme,
    const ResourceVec& budget);

}  // namespace prpart
