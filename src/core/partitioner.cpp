#include "core/partitioner.hpp"

#include "core/clustering.hpp"
#include "core/compatibility.hpp"
#include "core/connectivity.hpp"
#include "core/eval_kernel.hpp"
#include "core/schemes.hpp"
#include "util/status.hpp"

namespace prpart {

PartitionerResult partition_design(const Design& design,
                                   const ResourceVec& budget,
                                   const PartitionerOptions& options) {
  PartitionerResult result;

  const ConnectivityMatrix matrix(design);
  result.base_partitions = enumerate_base_partitions(
      design, matrix, options.max_partition_modes);
  const CompatibilityTable compat(matrix, result.base_partitions);

  // One evaluation-kernel context per (design, partition set): the baseline
  // evaluations below, the search's final certification, and any caller
  // re-evaluation share its precomputed activity matrix (DESIGN.md §4d).
  // A caller-provided scratch (options.search.scratch — the server's job
  // workers keep one warm per pool thread) is reused so steady-state jobs
  // evaluate with zero heap allocations (§4e).
  const EvalContext context(design, matrix, result.base_partitions);
  EvalScratch local_scratch;
  EvalScratch& scratch = options.search.scratch != nullptr
                             ? *options.search.scratch
                             : local_scratch;
  const std::uint64_t scratch_evals_before = scratch.stats.kernel_evaluations;
  const std::uint64_t scratch_collapsed_before =
      scratch.stats.signature_collapsed_configs;

  // Baselines, scored in one kernel batch (§4e) — same evaluations in the
  // same order as two evaluate() calls.
  result.modular.name = "Modular";
  result.modular.scheme =
      make_modular_scheme(design, matrix, result.base_partitions);
  result.static_impl.name = "Static";
  result.static_impl.scheme =
      make_static_scheme(design, matrix, result.base_partitions);
  {
    const PartitionScheme* baselines[2] = {&result.modular.scheme,
                                           &result.static_impl.scheme};
    SchemeEvaluation evals[2];
    context.evaluate_batch_into(baselines, 2, budget, scratch, evals);
    result.modular.eval = std::move(evals[0]);
    result.static_impl.eval = std::move(evals[1]);
  }
  require(result.modular.eval.valid,
          "modular baseline invalid: " + result.modular.eval.invalid_reason);
  require(result.static_impl.eval.valid,
          "static baseline invalid: " + result.static_impl.eval.invalid_reason);
  // Kernel work of the baselines alone; the search folds its own
  // certification delta into its stats, so adding the whole scratch delta
  // at the end would double-count when the scratch is shared.
  const std::uint64_t baseline_evals =
      scratch.stats.kernel_evaluations - scratch_evals_before;
  const std::uint64_t baseline_collapsed =
      scratch.stats.signature_collapsed_configs - scratch_collapsed_before;

  result.single_region.name = "Single region";
  auto [single_scheme, single_eval] = single_region_scheme(
      design, matrix, result.base_partitions, budget);
  result.single_region.scheme = std::move(single_scheme);
  result.single_region.eval = std::move(single_eval);

  // Feasibility (§IV-C): the single-region scheme is the area lower bound;
  // if it does not fit, no partitioning does.
  result.feasible = result.single_region.eval.fits;

  if (result.feasible) {
    SearchOptions search_options = options.search;
    search_options.eval_context = &context;
    SearchResult search = search_partitioning(
        design, matrix, result.base_partitions, compat, budget, search_options);
    result.stats = search.stats;
    // Compare against the single-region fallback under the same objective
    // the search optimised (weighted when pair weights were supplied).
    const auto objective_of = [&](const SchemeEvaluation& e) {
      return options.search.pair_weights
                 ? weighted_total_frames(e, *options.search.pair_weights)
                 : e.total_frames;
    };
    if (search.feasible &&
        objective_of(search.eval) <=
            objective_of(result.single_region.eval)) {
      result.proposed = {"Proposed", std::move(search.scheme),
                         std::move(search.eval)};
      result.proposed_from_search = true;
      result.alternatives = std::move(search.alternatives);
    } else {
      // Fall back to the only scheme guaranteed to fit.
      result.proposed = result.single_region;
      result.proposed.name = "Proposed (single-region fallback)";
      result.proposed_from_search = false;
    }
  }

  // Baseline evaluations above went through the shared kernel context; fold
  // them into the stats next to the search's own certification counts.
  result.stats.kernel_evaluations += baseline_evals;
  result.stats.signature_collapsed_configs += baseline_collapsed;

  return result;
}

DevicePartitionResult partition_on_smallest_device(
    const Design& design, const DeviceLibrary& library,
    const PartitionerOptions& options) {
  const auto& devices = library.devices();
  require(!devices.empty(), "device library is empty");

  DevicePartitionResult out;
  bool found_first = false;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    PartitionerResult r =
        partition_design(design, devices[i].capacity(), options);
    if (!r.feasible) continue;
    if (!found_first) {
      out.first_feasible_index = i;
      found_first = true;
    }
    const bool only_single_region = !r.proposed_from_search;
    if (only_single_region && i + 1 < devices.size()) {
      // Keep the single-region answer in hand but try a larger device
      // (§V: designs re-iterated on larger FPGAs).
      out.device = &devices[i];
      out.chosen_index = i;
      out.result = std::move(r);
      continue;
    }
    out.device = &devices[i];
    out.chosen_index = i;
    out.result = std::move(r);
    out.escalated = out.chosen_index != out.first_feasible_index;
    return out;
  }
  if (found_first) {
    // Largest device still only supported single-region: report that.
    out.escalated = out.chosen_index != out.first_feasible_index;
    return out;
  }
  throw DeviceError("design '" + design.name() +
                    "' does not fit any device in the library");
}

}  // namespace prpart
