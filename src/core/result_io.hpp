#pragma once

#include <string>
#include <vector>

#include "core/base_partition.hpp"
#include "core/scheme.hpp"
#include "design/design.hpp"

namespace prpart {

/// Serialises a partitioning outcome so a tool run can be archived and
/// re-used (e.g. `prpart partition --save plan.xml` followed by
/// `prpart simulate --load plan.xml`) without re-running the search:
///
///   <partitioning design="receiver" total-frames="237140"
///                 worst-frames="12662">
///     <static>
///       <partition><mode module="M" name="M1"/></partition>
///     </static>
///     <region id="1">
///       <partition><mode module="V" name="V1"/></partition>
///       ...
///     </region>
///   </partitioning>
std::string partitioning_to_xml(const Design& design,
                                const std::vector<BasePartition>& partitions,
                                const PartitionScheme& scheme,
                                const SchemeEvaluation& evaluation);

/// Reconstructs the scheme against the same design. Every stored partition
/// is resolved to the design's freshly enumerated base-partition list by
/// its mode set; unknown modules/modes or mode sets that are not valid base
/// partitions (they no longer co-occur) raise ParseError, so a stale file
/// cannot silently corrupt a run.
PartitionScheme partitioning_from_xml(
    const Design& design, const std::vector<BasePartition>& partitions,
    const std::string& xml_text);

}  // namespace prpart
