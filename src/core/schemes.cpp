#include "core/schemes.hpp"

#include "util/status.hpp"

namespace prpart {

std::size_t singleton_partition(const std::vector<BasePartition>& partitions,
                                std::size_t mode) {
  for (std::size_t i = 0; i < partitions.size(); ++i)
    if (partitions[i].modes.count() == 1 && partitions[i].modes.test(mode))
      return i;
  throw InternalError("no singleton base partition for mode " +
                      std::to_string(mode));
}

PartitionScheme make_modular_scheme(
    const Design& design, const ConnectivityMatrix& matrix,
    const std::vector<BasePartition>& partitions) {
  PartitionScheme scheme;
  scheme.label = "one module per region";
  for (std::size_t m = 0; m < design.modules().size(); ++m) {
    Region region;
    for (std::size_t k = 1; k <= design.modules()[m].modes.size(); ++k) {
      const std::size_t mode =
          design.global_mode_id(static_cast<std::uint32_t>(m),
                                static_cast<std::uint32_t>(k));
      if (matrix.node_weight(mode) == 0) continue;  // dead mode
      region.members.push_back(singleton_partition(partitions, mode));
    }
    if (!region.members.empty()) scheme.regions.push_back(std::move(region));
  }
  return scheme;
}

PartitionScheme make_static_scheme(
    const Design& design, const ConnectivityMatrix& matrix,
    const std::vector<BasePartition>& partitions) {
  PartitionScheme scheme;
  scheme.label = "static";
  for (std::size_t mode = 0; mode < design.mode_count(); ++mode) {
    if (matrix.node_weight(mode) == 0) continue;
    scheme.static_members.push_back(singleton_partition(partitions, mode));
  }
  return scheme;
}

std::pair<PartitionScheme, SchemeEvaluation> single_region_scheme(
    const Design& design, const ConnectivityMatrix& matrix,
    const std::vector<BasePartition>& partitions, const ResourceVec& budget) {
  PartitionScheme scheme;
  scheme.label = "single region";
  Region region;
  for (std::size_t c = 0; c < matrix.configs(); ++c) {
    // The full-configuration mode set is always a base partition (it is the
    // maximal co-occurring set of its configuration).
    bool found = false;
    for (std::size_t p = 0; p < partitions.size(); ++p) {
      if (partitions[p].modes == matrix.row(c)) {
        region.members.push_back(p);
        found = true;
        break;
      }
    }
    require(found, "full-configuration base partition missing");
  }
  scheme.regions.push_back(std::move(region));

  SchemeEvaluation eval;
  eval.valid = true;
  RegionReport report;
  report.raw = design.largest_configuration_area();
  report.tiles = tiles_for(report.raw);
  report.frames = report.tiles.frames();
  report.active.resize(matrix.configs());
  for (std::size_t c = 0; c < matrix.configs(); ++c)
    report.active[c] = static_cast<int>(c);

  const std::uint64_t nconf = matrix.configs();
  report.reconfig_pairs = nconf * (nconf - 1) / 2;
  eval.total_frames = report.reconfig_pairs * report.frames;
  eval.worst_frames = nconf >= 2 ? report.frames : 0;
  eval.pr_resources = report.tiles.resources();
  eval.static_resources = design.static_base();
  eval.total_resources = eval.pr_resources + eval.static_resources;
  eval.fits = eval.total_resources.fits_in(budget);
  eval.regions.push_back(std::move(report));
  return {std::move(scheme), std::move(eval)};
}

}  // namespace prpart
