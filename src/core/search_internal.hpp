#pragma once

// Internal machinery of the region-allocation search (src/core/search.cpp):
// the incremental search state, the move apply/undo records, the canonical
// scheme ordering, and the admissible completion lower bound that drives the
// branch-and-bound pruning. Exposed in a header (rather than search.cpp's
// anonymous namespace) so the white-box test suites can exercise the bound's
// admissibility/monotonicity contracts and the undo algebra directly, and so
// the benches can reproduce search decisions. Not part of the public API:
// everything here may change shape between releases; link against
// search_partitioning() for stable behaviour.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/base_partition.hpp"
#include "core/compatibility.hpp"
#include "core/cost_cache.hpp"
#include "core/scheme.hpp"
#include "core/search.hpp"
#include "device/resources.hpp"
#include "device/tiles.hpp"
#include "util/bitset.hpp"

namespace prpart::search_internal {

// Heuristic weights for collapsing a ResourceVec into one scalar: frames per
// primitive (x10), i.e. the configuration-memory cost of one unit of each
// resource. Only used to rank states; all reported numbers stay in frames.
constexpr std::uint64_t kWClb = 18;   // 36 frames / 20 CLBs
constexpr std::uint64_t kWBram = 75;  // 30 frames / 4 BRAMs
constexpr std::uint64_t kWDsp = 35;   // 28 frames / 8 DSPs

/// Header-inline: the move scan computes the objective of every considered
/// move through these two, tens of millions of times per search.
inline std::uint64_t weighted_area(const ResourceVec& r) {
  return r.clbs * kWClb + r.brams * kWBram + r.dsps * kWDsp;
}

/// Weighted amount by which `used` exceeds `budget` (0 when it fits).
inline std::uint64_t budget_excess(const ResourceVec& used,
                                   const ResourceVec& budget) {
  auto over = [](std::uint32_t u, std::uint32_t b) -> std::uint64_t {
    return u > b ? u - b : 0;
  };
  return over(used.clbs, budget.clbs) * kWClb +
         over(used.brams, budget.brams) * kWBram +
         over(used.dsps, budget.dsps) * kWDsp;
}

/// Lexicographic objective: first fit (budget excess), then — once fitting —
/// total reconfiguration time with area as tie-break; while not fitting,
/// area (the route towards fitting) with time as tie-break.
struct Objective {
  std::uint64_t excess;
  std::uint64_t primary;
  std::uint64_t secondary;

  bool operator<(const Objective& o) const {
    if (excess != o.excess) return excess < o.excess;
    if (primary != o.primary) return primary < o.primary;
    return secondary < o.secondary;
  }
};

/// One region-in-progress: a set of base partitions plus the incremental
/// cost-model quantities needed to evaluate moves in O(1).
///
/// The pair bookkeeping is weight-generalised: tw_union is the summed
/// weight of all configuration pairs where the group is active in both,
/// tw_same the part where the *same* member is active in both. Their
/// difference, times frames, is the group's (possibly weighted) Eq. 10
/// term. With uniform weights tw_union = C(|occ|, 2).
///
/// `members` is kept sorted at all times: the sorted member set is the
/// group's identity in the shared cost cache.
struct Group {
  std::vector<std::size_t> members;
  DynBitset occ;             ///< union of member occupancies (configs)
  ResourceVec raw;           ///< element-wise max of member areas (Eq. 2)
  ResourceVec promote_area;  ///< element-wise SUM (cost of going static)
  TileCount tiles;           ///< Eqs. 3-5 on raw
  std::uint64_t frames = 0;  ///< Eq. 6
  std::uint64_t occ_count = 0;  ///< |occ| (uniform-weight fast path)
  std::uint64_t tw_union = 0;   ///< pair weight over occ x occ
  std::uint64_t tw_same = 0;    ///< pair weight kept by one member
  std::uint64_t contrib = 0;    ///< this region's term of Eq. 10
  bool alive = true;
};

struct State {
  std::vector<Group> groups;
  std::vector<std::size_t> static_members;
  ResourceVec static_extra;  ///< promoted partitions, raw sum
  ResourceVec pr_res;        ///< tile-rounded region footprints, summed
  std::uint64_t ttotal = 0;
  std::size_t alive = 0;

  ResourceVec total_res(const ResourceVec& static_base) const {
    return pr_res + static_base + static_extra;
  }
};

struct Move {
  enum class Kind : std::uint8_t { Merge, Promote } kind = Kind::Merge;
  std::size_t a = 0, b = 0;
};

/// Summed weight over unordered pairs within `occ`.
std::uint64_t pair_weight_within(const PairWeights* weights,
                                 const DynBitset& occ);

/// Summed weight over pairs with one configuration in each (disjoint)
/// occupancy set.
std::uint64_t pair_weight_between(const PairWeights* weights, const Group& a,
                                  const Group& b);

/// All currently valid moves on `s`, in the canonical (i, j) enumeration
/// order shared by every execution mode.
std::vector<Move> moves_of(const State& s, bool allow_static_promotion);

/// The member-set-determined cost of merging `a` and `b` (pure compute; the
/// search layers its memo caches above this).
GroupCost merged_group_cost(const Group& a, const Group& b,
                            const PairWeights* weights);

/// Initial state of one candidate partition set: every base partition in its
/// own region (zero reconfiguration time, maximum area).
State initial_state(const std::vector<BasePartition>& partitions,
                    const CompatibilityTable& compat,
                    const PairWeights* weights,
                    const std::vector<std::size_t>& candidate);

/// Everything needed to reverse one applied move in O(configs): the prior
/// scalar totals wholesale plus group `a`'s prior fields (a merge rewrites
/// them; `b` only flips `alive`). The merged occupancy union is reversed
/// exactly by subtracting `b`'s bits — merges require disjoint occupancies.
struct UndoRecord {
  Move move;
  ResourceVec prior_pr_res;
  ResourceVec prior_static_extra;
  std::uint64_t prior_ttotal = 0;
  std::size_t prior_static_count = 0;
  std::vector<std::size_t> prior_members;
  ResourceVec prior_raw;
  ResourceVec prior_promote_area;
  TileCount prior_tiles;
  std::uint64_t prior_frames = 0;
  std::uint64_t prior_occ_count = 0;
  std::uint64_t prior_tw_union = 0;
  std::uint64_t prior_tw_same = 0;
  std::uint64_t prior_contrib = 0;
  /// Slot for the caller's move-table version stamp of group `a` (the only
  /// group a move rewrites); apply/undo themselves do not touch it.
  std::uint64_t prior_version = 0;
};

/// Applies `move` to `s` and returns the record that undoes it. For merges,
/// `merge_cost` must be the merged_group_cost of the two groups (possibly
/// from a cache); promotes ignore it.
UndoRecord apply_move(State& s, const Move& move, const GroupCost* merge_cost);

/// apply_move writing into a caller-owned record: with a pooled UndoRecord
/// (the search keeps one per possible depth) the member-list copy reuses the
/// record's buffer, so steady-state apply/undo cycles never allocate.
void apply_move_into(State& s, const Move& move, const GroupCost* merge_cost,
                     UndoRecord& undo);

/// Reverses the most recent un-undone apply_move. Records must be undone in
/// strict LIFO order. The record stays intact (and reusable).
void undo_move(State& s, UndoRecord& undo);

/// Canonicalised copy of the grouping in `s`: members sorted within each
/// region, regions sorted lexicographically, static members sorted. Equal
/// groupings render identically, so schemes can be deduplicated and ordered
/// independently of the order in which threads discovered them — and the
/// result_io serialisation of the returned scheme is reproducible.
PartitionScheme canonical_scheme(const State& s);

/// Injective flat encoding of a canonical scheme (sizes delimit the member
/// lists). Lexicographic order on the encoding is the final tie-break of
/// the leaderboard's total order, and equality is the exact deduplication
/// criterion — no hash collisions can alias two distinct groupings.
std::vector<std::uint64_t> scheme_key(const PartitionScheme& scheme);

struct Kept {
  std::uint64_t ttotal = 0;
  std::uint64_t warea = 0;
  std::vector<std::uint64_t> key;
  PartitionScheme scheme;
};

/// Total order on recorded schemes: objective first, canonical key last.
bool kept_before(const Kept& a, const Kept& b);

/// Inserts `entry` into the sorted leaderboard, dropping exact duplicates
/// and trimming to `keep` entries. Because kept_before is a total order and
/// duplicates compare equal, the final leaderboard is independent of the
/// insertion order — the keystone of thread-count-independent results.
void insert_kept(std::vector<Kept>& kept, Kept entry, std::size_t keep);

/// completion_lower_bound's value when the state's static area already
/// exceeds the weighted budget: no completion can fit, so the subtree is
/// prunable against any leaderboard.
constexpr std::uint64_t kNoFittingCompletion = ~std::uint64_t{0};

/// Admissible lower bound on the weighted total reconfiguration time
/// (Eq. 10, scaled by SearchOptions::pair_weights when present) of every
/// *fitting* completion of `s` — every state reachable from `s` through
/// merge/promote moves whose total area fits `budget`.
///
/// Derivation (DESIGN.md has the full argument):
///  * merges only grow a region's Eq. 10 term (frames are monotone under
///    the element-wise area max of Eq. 2, and merged groups inherit all
///    reconfiguration pairs of Eq. 8), so the only way a completion can
///    beat s.ttotal is by promoting groups to static;
///  * the element-wise fit is relaxed to scalar projections (the combined
///    area weights plus each resource alone); under a projection p, any
///    fitting completion that keeps at least one region satisfies
///      sum_{g in P} p(promote_area(g)) <= p(budget) - p(static area)
///                                          - min_g p(footprint(g)),
///    because regions only grow under merges, while the promote-everything
///    completion needs the summed promotion price within the capacity;
///  * the best removable contribution under that scalar constraint is
///    bounded by the fractional-knapsack (Dantzig) optimum, computed here
///    exactly in integer arithmetic; the final bound is the maximum over
///    the projections.
///
/// The bound is monotone along any decision path: applying a move to `s`
/// never lowers it (a subtree pruned at its root stays prunable all the way
/// down). Returns kNoFittingCompletion when provably no completion fits.
std::uint64_t completion_lower_bound(const State& s,
                                     const ResourceVec& static_base,
                                     const ResourceVec& budget,
                                     bool allow_static_promotion);

}  // namespace prpart::search_internal
