#include "core/base_partition.hpp"

namespace prpart {

std::string BasePartition::label(const Design& design) const {
  std::string out = "{";
  bool first = true;
  for (std::size_t m : modes.bits()) {
    if (!first) out += ',';
    out += design.mode_label(m);
    first = false;
  }
  out += '}';
  return out;
}

}  // namespace prpart
