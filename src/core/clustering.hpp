#pragma once

#include <vector>

#include "core/base_partition.hpp"
#include "core/connectivity.hpp"
#include "design/design.hpp"

namespace prpart {

/// Enumerates base partitions by the paper's modified agglomerative
/// hierarchical clustering (§IV-C):
///
///  * every used mode starts as a disconnected node (a k=0 sub-graph whose
///    frequency weight is its node weight);
///  * edges are added between node pairs in descending edge-weight order;
///  * after each addition, newly completed sub-graphs (cliques containing
///    the new edge) are recorded as base partitions, with frequency weight
///    equal to the minimum edge weight in the sub-graph;
///  * iteration ends when every positive-weight link has been added; the
///    last sub-graphs found are the full configurations.
///
/// A complete sub-graph is only accepted when its modes co-occur in at least
/// one configuration (see DESIGN.md "Clique filter"); this reproduces the
/// paper's Table I exactly.
///
/// The returned list is deterministic: singletons in column order first,
/// then larger partitions in discovery order.
///
/// `max_modes` caps the size of enumerated sub-graphs (0 = unlimited, the
/// paper's behaviour). The number of co-occurring subsets grows as
/// 2^(configuration width), so designs much wider than the paper's 6
/// modules need a cap; the full-configuration sets are always appended
/// regardless (the single-region baseline requires them).
std::vector<BasePartition> enumerate_base_partitions(
    const Design& design, const ConnectivityMatrix& matrix,
    std::size_t max_modes = 0);

/// Brute-force oracle used by the tests: every non-empty subset of every
/// configuration's mode set, deduplicated, with the same frequency-weight
/// definition. Exponential in configuration width; test-sized inputs only.
std::vector<BasePartition> enumerate_base_partitions_oracle(
    const Design& design, const ConnectivityMatrix& matrix);

}  // namespace prpart
