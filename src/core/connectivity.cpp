#include "core/connectivity.hpp"

#include "util/status.hpp"

namespace prpart {

ConnectivityMatrix::ConnectivityMatrix(const Design& design)
    : modes_(design.mode_count()) {
  rows_.reserve(design.configurations().size());
  for (std::size_t c = 0; c < design.configurations().size(); ++c)
    rows_.push_back(design.config_modes(c));

  node_weight_.assign(modes_, 0);
  edge_weight_.assign(modes_ * modes_, 0);
  std::vector<std::size_t> present;  // reused across rows
  present.reserve(modes_);
  for (const DynBitset& row : rows_) {
    present.clear();
    row.for_each_set_bit([&](std::size_t j) { present.push_back(j); });
    for (std::size_t j : present) ++node_weight_[j];
    for (std::size_t a = 0; a < present.size(); ++a)
      for (std::size_t b = a + 1; b < present.size(); ++b) {
        ++edge_weight_[present[a] * modes_ + present[b]];
        ++edge_weight_[present[b] * modes_ + present[a]];
      }
  }
}

const DynBitset& ConnectivityMatrix::row(std::size_t config) const {
  require(config < rows_.size(), "configuration index out of range");
  return rows_[config];
}

bool ConnectivityMatrix::at(std::size_t config, std::size_t mode) const {
  return row(config).test(mode);
}

std::uint32_t ConnectivityMatrix::node_weight(std::size_t mode) const {
  require(mode < modes_, "mode index out of range");
  return node_weight_[mode];
}

std::uint32_t ConnectivityMatrix::edge_weight(std::size_t a,
                                              std::size_t b) const {
  require(a < modes_ && b < modes_, "mode index out of range");
  return edge_weight_[a * modes_ + b];
}

DynBitset ConnectivityMatrix::occupancy(const DynBitset& modes) const {
  DynBitset occ(rows_.size());
  for (std::size_t c = 0; c < rows_.size(); ++c)
    if (rows_[c].intersects(modes)) occ.set(c);
  return occ;
}

std::uint32_t ConnectivityMatrix::cooccurrence(const DynBitset& modes) const {
  std::uint32_t n = 0;
  for (const DynBitset& row : rows_)
    if (modes.is_subset_of(row)) ++n;
  return n;
}

}  // namespace prpart
