#pragma once

#include <cstdint>
#include <vector>

#include "design/design.hpp"
#include "util/bitset.hpp"

namespace prpart {

/// The connectivity matrix of §IV-C: one row per configuration, one column
/// per mode (mode 0 gets no column). Element (i, j) is 1 when mode j is
/// present in configuration i.
///
/// Also precomputes the two weights the clustering uses:
///  * node weight  n_j  = column sum (how often mode j occurs),
///  * edge weight  W_jk = number of configurations containing both j and k.
class ConnectivityMatrix {
 public:
  explicit ConnectivityMatrix(const Design& design);

  std::size_t configs() const { return rows_.size(); }
  std::size_t modes() const { return modes_; }

  const DynBitset& row(std::size_t config) const;
  bool at(std::size_t config, std::size_t mode) const;

  std::uint32_t node_weight(std::size_t mode) const;
  std::uint32_t edge_weight(std::size_t a, std::size_t b) const;

  /// Set of configurations that contain at least one mode of `modes`; this
  /// is the occupancy set used for compatibility tests (§IV-C: "Two
  /// partitions are compatible, if the modes present in them do not co-occur
  /// in any of the configurations").
  DynBitset occupancy(const DynBitset& modes) const;

  /// Number of configurations whose mode set contains all of `modes` (the
  /// true co-occurrence count of the set; equals the paper's frequency
  /// weight on all its examples).
  std::uint32_t cooccurrence(const DynBitset& modes) const;

 private:
  std::size_t modes_ = 0;
  std::vector<DynBitset> rows_;
  std::vector<std::uint32_t> node_weight_;
  std::vector<std::uint32_t> edge_weight_;  // modes_ x modes_, row-major
};

}  // namespace prpart
