#pragma once

// Internal header of the evaluation kernel's SIMD tiers (DESIGN.md §4e).
// It carries the tier-templated batch evaluator run_batch<Ops>, which the
// per-tier translation units (eval_kernel_avx2/avx512/neon.cpp) instantiate
// with their vector policy and eval_kernel.cpp dispatches to at runtime.
// Only kernel TUs include this; it is not part of the public API.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>

#include "core/eval_kernel.hpp"
#include "util/status.hpp"

namespace prpart {

/// Access seam for the tier implementations: the templated evaluator lives
/// outside EvalContext (each instantiation is compiled in its own TU with
/// its own -m flags), so the private members it shares with the scalar
/// path are reached through these accessors rather than a friend template.
struct EvalKernelDetail {
  static const Design& design(const EvalContext& c) { return c.design_; }
  static const ConnectivityMatrix& matrix(const EvalContext& c) {
    return c.matrix_;
  }
  static const std::vector<BasePartition>& partitions(const EvalContext& c) {
    return c.partitions_;
  }
  static const std::vector<DynBitset>& activity(const EvalContext& c) {
    return c.activity_;
  }
  static const std::vector<DynBitset>& mode_configs(const EvalContext& c) {
    return c.mode_configs_;
  }
  static const std::vector<std::uint64_t>& activity_count(
      const EvalContext& c) {
    return c.activity_count_;
  }
  static const DynBitset& used_mask(const EvalContext& c) {
    return c.used_mask_;
  }
  static void prepare(const EvalContext& c, EvalScratch& s) { c.prepare(s); }

  static DynBitset& region_occ(EvalScratch& s) { return s.region_occ_; }
  static DynBitset& conflicts(EvalScratch& s) { return s.conflicts_; }
  static DynBitset& uncovered(EvalScratch& s) { return s.uncovered_; }
  static DynBitset& static_modes(EvalScratch& s) { return s.static_modes_; }
  static DynBitset& touched(EvalScratch& s) { return s.touched_; }
  static DynBitset& missing_modes(EvalScratch& s) { return s.missing_modes_; }
  static std::vector<std::uint32_t>& kept(EvalScratch& s) { return s.kept_; }
  static std::vector<std::uint64_t>& kept_frames(EvalScratch& s) {
    return s.kept_frames_;
  }
  static std::vector<std::int16_t>& cols(EvalScratch& s) { return s.cols_; }
  static std::vector<std::uint32_t>& reps(EvalScratch& s) { return s.reps_; }
  static std::vector<std::uint64_t>& rep_bound(EvalScratch& s) {
    return s.rep_bound_;
  }
  static std::vector<std::uint32_t>& rep_order(EvalScratch& s) {
    return s.rep_order_;
  }
  static std::vector<std::uint32_t>& sig_slots(EvalScratch& s) {
    return s.sig_slots_;
  }
  static std::vector<std::uint64_t>& rep_mask(EvalScratch& s) {
    return s.rep_mask_;
  }
};

namespace eval_tiers {

/// Signature of a tier's batch entry point; eval_kernel.cpp resolves the
/// active tier to one of these.
using BatchFn = void (*)(const EvalContext&, const PartitionScheme* const*,
                         std::size_t, const ResourceVec&, EvalScratch&,
                         SchemeEvaluation*);

/// Tier entry points; each returns nullptr when its TU was compiled
/// without the matching ISA (non-x86 build, compiler without -mavx512
/// support, ...). Runtime CPU support is checked separately by
/// simd::tier_supported before any of these is called.
BatchFn avx2_fn();
BatchFn avx512_fn();
BatchFn neon_fn();

/// The signature pass packs active-member ids into int16; regions with
/// more members fall back to the direct pair loop (mirrors the scalar
/// tier's constant).
inline constexpr std::size_t kMaxInt16Members = 32766;

/// FNV-1a over a signature row, folded a word at a time (the per-byte form
/// is a long serial multiply chain and was the second-hottest pass of the
/// whole kernel at serve scale). Grouping is insensitive to the hash choice
/// — equality is always confirmed by memcmp and representatives are pushed
/// in first-occurrence order — so only probe length depends on it.
inline std::uint64_t hash_row(const std::int16_t* row, std::size_t bytes) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* p = reinterpret_cast<const unsigned char*>(row);
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = (h ^ w) * 1099511628211ull;
  }
  std::uint64_t tail = 0;
  if (i < bytes) {
    std::memcpy(&tail, p + i, bytes - i);
    h = (h ^ tail) * 1099511628211ull;
  }
  return h;
}

/// One scheme of a batch, evaluated through the tier policy `Ops`.
/// Byte-identical to EvalContext::evaluate_scalar_into (and so to
/// evaluate_scheme_reference) for every input: same pass order, same
/// invalid_reason strings, same truncation points, same counter
/// increments. The differences are mechanical only —
///   * bitset combination runs through Ops' word kernels;
///   * the coverage check exploits that a region member providing mode j
///     is active in every configuration containing j (j ∈ p.modes implies
///     mode_configs[j] ⊆ activity[p]), so a touched mode is always
///     covered and the test collapses to used & ~(touched | static) per
///     word — the failing set, and with it the diagnosed configuration,
///     is exactly the reference's;
///   * Eq. 10 occurrence counts come from the context's precomputed row
///     popcounts;
///   * Eq. 11 groups signatures through a hash table instead of a sort
///     (same distinct-signature set, so the same collapsed count and the
///     same pair maximum) and compares surviving rows through Ops'
///     16-bit-lane masks when the contributing regions fit one 64-bit
///     mask.
template <class Ops>
void evaluate_one(const EvalContext& ctx, const PartitionScheme& scheme,
                  const ResourceVec& budget, EvalScratch& scratch,
                  SchemeEvaluation& eval) {
  using D = EvalKernelDetail;
  const auto& design = D::design(ctx);
  const auto& partitions = D::partitions(ctx);
  const auto& activity = D::activity(ctx);
  const auto& mode_configs = D::mode_configs(ctx);
  const auto& activity_count = D::activity_count(ctx);

  ++scratch.stats.kernel_evaluations;

  const std::size_t nconf = D::matrix(ctx).configs();
  const std::size_t nregions = scheme.regions.size();
  const std::size_t conf_words = D::region_occ(scratch).word_count();
  const std::size_t mode_words = D::touched(scratch).word_count();

  eval.valid = true;
  eval.invalid_reason.clear();
  eval.fits = false;
  eval.pr_resources = {};
  eval.static_resources = {};
  eval.total_resources = {};
  eval.total_frames = 0;
  eval.worst_frames = 0;
  eval.regions.resize(nregions);

  // --- Region footprints (always, for every region) ------------------------
  for (std::size_t r = 0; r < nregions; ++r) {
    const Region& region = scheme.regions[r];
    require(!region.members.empty(), "scheme contains an empty region");
    RegionReport& report = eval.regions[r];
    report.raw = {};
    report.reconfig_pairs = 0;
    report.active.clear();
    for (std::size_t p : region.members) {
      require(p < partitions.size(), "scheme references unknown partition");
      report.raw = elementwise_max(report.raw, partitions[p].area);
    }
    report.tiles = tiles_for(report.raw);
    report.frames = report.tiles.frames();
    eval.pr_resources += report.tiles.resources();
  }

  // --- Static logic ---------------------------------------------------------
  eval.static_resources = design.static_base();
  for (std::size_t p : scheme.static_members) {
    require(p < partitions.size(), "scheme references unknown partition");
    eval.static_resources += partitions[p].area;
  }
  eval.total_resources = eval.pr_resources + eval.static_resources;
  eval.fits = eval.total_resources.fits_in(budget);

  // --- Active tables + double-activation (fail fast) ------------------------
  DynBitset& occ = D::region_occ(scratch);
  DynBitset& con = D::conflicts(scratch);
  for (std::size_t r = 0; r < nregions; ++r) {
    const Region& region = scheme.regions[r];
    RegionReport& report = eval.regions[r];
    occ.clear_all();
    con.clear_all();
    for (std::size_t p : region.members)
      Ops::conflict_accumulate(occ.mutable_words(), con.mutable_words(),
                               activity[p].words(), conf_words);
    if (Ops::any(con.words(), conf_words)) {
      const std::size_t cstar = con.find_first();
      eval.valid = false;
      eval.invalid_reason =
          "configuration " + design.configurations()[cstar].name +
          " activates two partitions in one region (incompatible members)";
      report.active.assign(nconf, -1);
      for (std::size_t m = 0; m < region.members.size(); ++m)
        activity[region.members[m]].for_each_set_bit([&](std::size_t c) {
          if (c < cstar) report.active[c] = static_cast<int>(m);
        });
      int seen = 0;
      for (std::size_t m = 0; m < region.members.size(); ++m) {
        if (!activity[region.members[m]].test(cstar)) continue;
        if (++seen == 2) {
          report.active[cstar] = static_cast<int>(m);
          break;
        }
      }
      return;  // later regions keep empty active tables, like the reference
    }
    report.active.assign(nconf, -1);
    for (std::size_t m = 0; m < region.members.size(); ++m)
      activity[region.members[m]].for_each_set_bit(
          [&](std::size_t c) { report.active[c] = static_cast<int>(m); });
  }

  // --- Coverage, word-parallel ----------------------------------------------
  // touched accumulates every mode some region member provides. A touched
  // mode is always covered (see the class comment), so the coverage test
  // is one word pass: missing = used & ~(touched | static). On failure the
  // uncovered set is the union of the missing modes' configuration
  // columns — exactly the reference's union, since its or_andnot branch
  // (touched but not subset) is unreachable.
  DynBitset& stat = D::static_modes(scratch);
  DynBitset& touched = D::touched(scratch);
  stat.clear_all();
  for (std::size_t p : scheme.static_members)
    Ops::or_into(stat.mutable_words(), partitions[p].modes.words(),
                 mode_words);
  touched.clear_all();
  for (const Region& region : scheme.regions)
    for (std::size_t p : region.members)
      Ops::or_into(touched.mutable_words(), partitions[p].modes.words(),
                   mode_words);
  DynBitset& missing = D::missing_modes(scratch);
  if (Ops::missing_into(missing.mutable_words(), D::used_mask(ctx).words(),
                        touched.words(), stat.words(), mode_words)) {
    DynBitset& uncov = D::uncovered(scratch);
    uncov.clear_all();
    missing.for_each_set_bit([&](std::size_t j) {
      Ops::or_into(uncov.mutable_words(), mode_configs[j].words(),
                   conf_words);
    });
    eval.valid = false;
    eval.invalid_reason =
        "configuration " + design.configurations()[uncov.find_first()].name +
        " has modes not provided by any region or static logic";
    return;
  }

  // --- Eq. 10 + contributing-region detection -------------------------------
  auto& kept = D::kept(scratch);
  auto& kept_frames = D::kept_frames(scratch);
  kept.clear();
  kept_frames.clear();
  for (std::size_t r = 0; r < nregions; ++r) {
    const Region& region = scheme.regions[r];
    RegionReport& report = eval.regions[r];
    std::uint64_t present = 0;
    std::uint64_t same_pairs = 0;
    std::size_t members_present = 0;
    for (std::size_t p : region.members) {
      const std::uint64_t n = activity_count[p];
      if (n == 0) continue;
      present += n;
      same_pairs += n * (n - 1) / 2;
      ++members_present;
    }
    report.reconfig_pairs = present * (present - 1) / 2 - same_pairs;
    eval.total_frames += report.reconfig_pairs * report.frames;
    if (members_present >= 2) {
      kept.push_back(static_cast<std::uint32_t>(r));
      kept_frames.push_back(report.frames);
    }
  }

  // --- Eq. 11, signature-collapsed ------------------------------------------
  const std::size_t nkept = kept.size();
  if (nkept == 0 || nconf < 2) return;

  bool fits_int16 = true;
  for (std::uint32_t r : kept)
    if (scheme.regions[r].members.size() > kMaxInt16Members)
      fits_int16 = false;
  if (!fits_int16) {
    // Direct pair loop over the contributing regions; exact but never taken
    // for realistically sized regions.
    for (std::size_t i = 0; i < nconf; ++i)
      for (std::size_t j = i + 1; j < nconf; ++j) {
        std::uint64_t frames = 0;
        for (std::size_t k = 0; k < nkept; ++k) {
          const std::vector<int>& active = eval.regions[kept[k]].active;
          const int a = active[i];
          const int b = active[j];
          if (a >= 0 && b >= 0 && a != b) frames += kept_frames[k];
        }
        eval.worst_frames = std::max(eval.worst_frames, frames);
      }
    return;
  }

  // Pack each configuration's active ids over the contributing regions
  // into a contiguous int16 row (same layout as the scalar tier), then
  // group identical rows through a linear-probe table: one representative
  // per distinct signature preserves the pair maximum, and the distinct
  // count — the collapsed-configs counter — is grouping-order-independent.
  auto& cols = D::cols(scratch);
  cols.resize(nconf * nkept);
  for (std::size_t k = 0; k < nkept; ++k) {
    const std::vector<int>& active = eval.regions[kept[k]].active;
    for (std::size_t c = 0; c < nconf; ++c)
      cols[c * nkept + k] = static_cast<std::int16_t>(active[c]);
  }
  const std::size_t row_bytes = nkept * sizeof(std::int16_t);
  const auto row = [&](std::uint32_t c) { return &cols[c * nkept]; };

  std::size_t table_size = 2;
  while (table_size < nconf * 2) table_size <<= 1;
  auto& slots = D::sig_slots(scratch);
  slots.assign(table_size, 0);  // 0 empty, else representative config + 1
  auto& reps = D::reps(scratch);
  reps.clear();
  for (std::size_t c = 0; c < nconf; ++c) {
    const auto cc = static_cast<std::uint32_t>(c);
    std::size_t slot = static_cast<std::size_t>(hash_row(row(cc), row_bytes)) &
                       (table_size - 1);
    for (;;) {
      const std::uint32_t entry = slots[slot];
      if (entry == 0) {
        slots[slot] = cc + 1;
        reps.push_back(cc);
        break;
      }
      if (std::memcmp(row(entry - 1), row(cc), row_bytes) == 0) break;
      slot = (slot + 1) & (table_size - 1);
    }
  }
  scratch.stats.signature_collapsed_configs += nconf - reps.size();

  // Bound pruning exactly as the scalar tier: a pair reconfigures at most
  // the regions active on both sides, so visiting representatives in
  // decreasing total-active-frames order lets both loops stop at the
  // running maximum. Representative order differs from the sorted-
  // signature tier (first occurrence vs lexicographic), which only
  // permutes the visit order of an order-insensitive maximum.
  const std::size_t nreps = reps.size();
  const bool mask_fits = nkept <= 64;
  auto& rep_bound = D::rep_bound(scratch);
  auto& rep_mask = D::rep_mask(scratch);
  rep_bound.resize(nreps);
  rep_mask.resize(nreps);
  for (std::size_t u = 0; u < nreps; ++u) {
    const std::int16_t* ru = row(reps[u]);
    std::uint64_t bound = 0;
    if (mask_fits) {
      const std::uint64_t mask = Ops::active_mask16(ru, nkept);
      rep_mask[u] = mask;
      for (std::uint64_t m = mask; m != 0; m &= m - 1)
        bound += kept_frames[static_cast<std::size_t>(std::countr_zero(m))];
    } else {
      rep_mask[u] = 0;
      for (std::size_t k = 0; k < nkept; ++k)
        if (ru[k] >= 0) bound += kept_frames[k];
    }
    rep_bound[u] = bound;
  }
  auto& rep_order = D::rep_order(scratch);
  rep_order.resize(nreps);
  for (std::size_t u = 0; u < nreps; ++u)
    rep_order[u] = static_cast<std::uint32_t>(u);
  std::sort(rep_order.begin(), rep_order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (rep_bound[a] != rep_bound[b])
                return rep_bound[a] > rep_bound[b];
              return a < b;
            });

  for (std::size_t ui = 0; ui < nreps; ++ui) {
    const std::uint32_t u = rep_order[ui];
    if (rep_bound[u] <= eval.worst_frames) break;
    const std::int16_t* ru = row(reps[u]);
    const std::uint64_t mu = rep_mask[u];
    for (std::size_t vi = ui + 1; vi < nreps; ++vi) {
      const std::uint32_t v = rep_order[vi];
      if (rep_bound[v] <= eval.worst_frames) break;
      const std::int16_t* rv = row(reps[v]);
      std::uint64_t frames = 0;
      if (mask_fits) {
        // Regions active on both sides and holding different members:
        // both-active is a precomputed mask AND, different-member comes
        // from the tier's 16-bit-lane equality mask.
        std::uint64_t diff = mu & rep_mask[v];
        if (diff != 0) diff &= ~Ops::eq_mask16(ru, rv, nkept);
        for (std::uint64_t m = diff; m != 0; m &= m - 1)
          frames += kept_frames[static_cast<std::size_t>(std::countr_zero(m))];
      } else {
        for (std::size_t k = 0; k < nkept; ++k) {
          const std::int16_t a = ru[k];
          const std::int16_t b = rv[k];
          if (a >= 0 && b >= 0 && a != b) frames += kept_frames[k];
        }
      }
      eval.worst_frames = std::max(eval.worst_frames, frames);
    }
  }
}

/// Batch entry: prepare once, then evaluate each scheme through the tier
/// policy. Identical to `count` evaluate_into calls, with the dispatch and
/// scratch setup hoisted out of the loop.
template <class Ops>
void run_batch(const EvalContext& ctx, const PartitionScheme* const* schemes,
               std::size_t count, const ResourceVec& budget,
               EvalScratch& scratch, SchemeEvaluation* evals) {
  EvalKernelDetail::prepare(ctx, scratch);
  for (std::size_t i = 0; i < count; ++i)
    evaluate_one<Ops>(ctx, *schemes[i], budget, scratch, evals[i]);
}

}  // namespace eval_tiers

}  // namespace prpart
