#include "floorplan/annealing.hpp"

#include <algorithm>
#include <cmath>

#include "floorplan/geometry.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace prpart {

namespace {

using fpgeom::covers;
using fpgeom::rect_tiles;
using fpgeom::total_tiles;

/// Overlapping tile count of two rectangles.
std::uint64_t overlap(const RegionPlacement& a, const RegionPlacement& b) {
  if (a.width == 0 || b.width == 0) return 0;
  const std::uint32_t row_lo = std::max(a.row, b.row);
  const std::uint32_t row_hi = std::min(a.row + a.height, b.row + b.height);
  const std::uint32_t col_lo = std::max(a.col, b.col);
  const std::uint32_t col_hi = std::min(a.col + a.width, b.col + b.width);
  if (row_lo >= row_hi || col_lo >= col_hi) return 0;
  return std::uint64_t{row_hi - row_lo} * (col_hi - col_lo);
}

/// Samples a random rectangle for `need`: uniform anchor, minimal width.
/// Returns false when no rectangle fits at the sampled anchor.
bool sample_rectangle(Rng& rng, const Device& device, const TileCount& need,
                      std::size_t region, RegionPlacement& out) {
  const std::uint32_t rows = device.rows();
  const auto cols = static_cast<std::uint32_t>(device.columns().size());
  const auto height = static_cast<std::uint32_t>(rng.uniform(1, rows));
  const auto row =
      static_cast<std::uint32_t>(rng.uniform(0, rows - height));
  const auto col = static_cast<std::uint32_t>(rng.uniform(0, cols - 1));
  TileCount have;
  for (std::uint32_t end = col; end < cols; ++end) {
    have = rect_tiles(device, height, col, end - col + 1);
    if (covers(have, need)) {
      out = RegionPlacement{region, row, height, col, end - col + 1, have};
      return true;
    }
  }
  return false;
}

/// Shared body of anneal_place / anneal_refine; `warm_start` may be null.
FloorplanResult anneal_impl(const Device& device,
                            const std::vector<TileCount>& regions,
                            const std::vector<RegionPlacement>* warm_start,
                            const AnnealingOptions& options) {
  require(options.iterations > 0, "annealing needs at least one iteration");
  require(options.cooling > 0.0 && options.cooling < 1.0,
          "cooling factor must be in (0, 1)");
  Rng rng(options.seed);

  FloorplanResult result;
  result.placements.resize(regions.size());

  // Initial state: warm-started regions keep their covering rectangle;
  // every other non-empty region starts at a random feasible anchor.
  std::vector<std::size_t> movable;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    result.placements[r].region = r;
    if (total_tiles(regions[r]) == 0) continue;  // zero-area: width 0
    bool seeded = false;
    if (warm_start != nullptr) {
      for (const RegionPlacement& p : *warm_start) {
        if (p.region != r || p.width == 0) continue;
        if (p.row + p.height > device.rows() ||
            p.col + p.width > device.columns().size())
          break;
        if (!covers(p.provided, regions[r])) break;
        result.placements[r] = p;
        seeded = true;
        break;
      }
    }
    for (int attempt = 0; attempt < 256 && !seeded; ++attempt)
      seeded = sample_rectangle(rng, device, regions[r], r,
                                result.placements[r]);
    if (!seeded) {
      result.failed_region = r;  // no rectangle fits anywhere we sampled
      return result;
    }
    movable.push_back(r);
  }
  if (movable.empty()) {
    result.success = true;
    return result;
  }

  auto energy_of = [&](std::size_t r) {
    std::uint64_t e = 0;
    for (std::size_t s : movable)
      if (s != r) e += overlap(result.placements[r], result.placements[s]);
    return e;
  };
  std::uint64_t energy = 0;
  for (std::size_t i = 0; i < movable.size(); ++i)
    for (std::size_t j = i + 1; j < movable.size(); ++j)
      energy += overlap(result.placements[movable[i]],
                        result.placements[movable[j]]);

  double temperature = options.initial_temperature;
  const std::uint32_t cool_every = std::max(1u, options.iterations / 100);

  for (std::uint32_t it = 0; it < options.iterations && energy > 0; ++it) {
    const std::size_t r = movable[rng.below(movable.size())];
    RegionPlacement candidate;
    if (!sample_rectangle(rng, device, regions[r], r, candidate)) continue;

    const std::uint64_t before = energy_of(r);
    const RegionPlacement saved = result.placements[r];
    result.placements[r] = candidate;
    const std::uint64_t after = energy_of(r);

    const double delta =
        static_cast<double>(after) - static_cast<double>(before);
    const bool accept =
        delta <= 0.0 || rng.uniform01() < std::exp(-delta / temperature);
    if (accept)
      energy = energy - before + after;
    else
      result.placements[r] = saved;

    if ((it + 1) % cool_every == 0)
      temperature = std::max(1e-3, temperature * options.cooling);
  }

  if (energy == 0) {
    result.success = true;
  } else {
    // Report one of the still-overlapping regions.
    for (std::size_t r : movable)
      if (energy_of(r) > 0) {
        result.failed_region = r;
        break;
      }
  }
  return result;
}

}  // namespace

FloorplanResult anneal_place(const Device& device,
                             const std::vector<TileCount>& regions,
                             const AnnealingOptions& options) {
  return anneal_impl(device, regions, nullptr, options);
}

FloorplanResult anneal_refine(const Device& device,
                              const std::vector<TileCount>& regions,
                              const std::vector<RegionPlacement>& warm_start,
                              const AnnealingOptions& options) {
  return anneal_impl(device, regions, &warm_start, options);
}

}  // namespace prpart
