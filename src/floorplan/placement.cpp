#include "floorplan/placement.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "floorplan/geometry.hpp"
#include "util/status.hpp"

namespace prpart {

namespace {

using fpgeom::covers;
using fpgeom::rect_tiles;
using fpgeom::total_tiles;

std::uint32_t ceil_div(std::uint32_t a, std::uint32_t b) {
  return (a + b - 1) / b;
}

}  // namespace

const char* to_string(FloorplanStage stage) {
  switch (stage) {
    case FloorplanStage::Skyline: return "skyline";
    case FloorplanStage::Greedy: return "greedy";
    case FloorplanStage::Annealed: return "annealed";
    case FloorplanStage::None: return "none";
  }
  return "?";
}

FloorplanResult skyline_place(const Device& device,
                              const std::vector<TileCount>& regions) {
  const std::uint32_t rows = device.rows();
  const auto cols = static_cast<std::uint32_t>(device.columns().size());
  std::vector<std::uint32_t> top(cols, 0);

  // Largest regions first, like the greedy floorplanner.
  std::vector<std::size_t> order(regions.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return total_tiles(regions[a]) > total_tiles(regions[b]);
                   });

  FloorplanResult result;
  result.placements.reserve(regions.size());

  for (std::size_t idx : order) {
    const TileCount& need = regions[idx];
    if (total_tiles(need) == 0) {
      result.placements.push_back(RegionPlacement{idx, 0, 0, 0, 0, {}});
      continue;
    }

    // Best candidate so far, ordered by (resulting top, wasted frames,
    // column, width) — a total order, so the packer is deterministic.
    bool found = false;
    RegionPlacement best;
    std::tuple<std::uint32_t, std::uint64_t, std::uint32_t, std::uint32_t>
        best_key;
    for (std::uint32_t col = 0; col < cols; ++col) {
      TileCount type_cols;  // columns (not tiles) of each type in the window
      std::uint32_t base = 0;
      for (std::uint32_t width = 1; col + width <= cols; ++width) {
        const std::uint32_t c = col + width - 1;
        switch (device.columns()[c]) {
          case BlockType::Clb: ++type_cols.clb_tiles; break;
          case BlockType::Bram: ++type_cols.bram_tiles; break;
          case BlockType::Dsp: ++type_cols.dsp_tiles; break;
        }
        base = std::max(base, top[c]);
        // Minimal rectangle height covering `need` from this column mix.
        std::uint32_t height = 1;
        bool mix_ok = true;
        const std::uint32_t needs[3] = {need.clb_tiles, need.bram_tiles,
                                        need.dsp_tiles};
        const std::uint32_t have_cols[3] = {type_cols.clb_tiles,
                                            type_cols.bram_tiles,
                                            type_cols.dsp_tiles};
        for (int t = 0; t < 3 && mix_ok; ++t) {
          if (needs[t] == 0) continue;
          if (have_cols[t] == 0)
            mix_ok = false;
          else
            height = std::max(height, ceil_div(needs[t], have_cols[t]));
        }
        if (!mix_ok || base + height > rows) continue;
        const TileCount have = rect_tiles(device, height, col, width);
        const std::tuple<std::uint32_t, std::uint64_t, std::uint32_t,
                         std::uint32_t>
            key{base + height, have.frames() - need.frames(), col, width};
        if (!found || key < best_key) {
          found = true;
          best_key = key;
          best = RegionPlacement{idx, base, height, col, width, have};
        }
      }
    }
    if (!found) {
      result.success = false;
      result.failed_region = idx;
      return result;
    }
    for (std::uint32_t c = best.col; c < best.col + best.width; ++c)
      top[c] = best.row + best.height;
    result.placements.push_back(best);
  }

  result.success = true;
  std::stable_sort(result.placements.begin(), result.placements.end(),
                   [](const RegionPlacement& a, const RegionPlacement& b) {
                     return a.region < b.region;
                   });
  return result;
}

namespace {

/// Saturating element-wise difference a - b.
ResourceVec saturating_sub(const ResourceVec& a, const ResourceVec& b) {
  return {a.clbs >= b.clbs ? a.clbs - b.clbs : 0,
          a.brams >= b.brams ? a.brams - b.brams : 0,
          a.dsps >= b.dsps ? a.dsps - b.dsps : 0};
}

/// Deterministic rungs of the ladder only (no annealer): used for the
/// fix-it library walk, where speed and reproducibility matter more than
/// squeezing out the last fragmented instance.
bool deterministic_rungs_fit(const Device& device,
                             const std::vector<TileCount>& needs,
                             const ResourceVec& static_resources,
                             PlacementStrategy strategy) {
  FloorplanResult placed = skyline_place(device, needs);
  if (!placed.success)
    placed = Floorplanner(device, {strategy}).place(needs);
  if (!placed.success) return false;
  ResourceVec used;
  for (const RegionPlacement& p : placed.placements)
    used += p.provided.resources();
  return static_resources.fits_in(saturating_sub(device.capacity(), used));
}

/// The resource column type the failure should be pinned on, with its
/// numbers: a genuine tile shortfall when one exists, else the most
/// utilised type (a fragmentation witness).
void pick_binding(const Device& device, const std::vector<TileCount>& needs,
                  FloorplanVerdict& verdict) {
  std::uint32_t required[3] = {0, 0, 0};
  for (const TileCount& n : needs) {
    required[0] += n.clb_tiles;
    required[1] += n.bram_tiles;
    required[2] += n.dsp_tiles;
  }
  const BlockType types[3] = {BlockType::Clb, BlockType::Bram, BlockType::Dsp};
  const std::uint32_t available[3] = {device.tiles_of(BlockType::Clb),
                                      device.tiles_of(BlockType::Bram),
                                      device.tiles_of(BlockType::Dsp)};
  // Largest absolute shortfall wins; ties keep CLB < BRAM < DSP order.
  std::uint32_t worst_shortfall = 0;
  int binding = -1;
  for (int t = 0; t < 3; ++t) {
    if (required[t] <= available[t]) continue;
    const std::uint32_t shortfall = required[t] - available[t];
    if (shortfall > worst_shortfall) {
      worst_shortfall = shortfall;
      binding = t;
    }
  }
  verdict.fragmented = binding < 0;
  if (binding < 0) {
    // Every type fits by count: report the most utilised needed type
    // (compare required/available by cross-multiplication, no floats).
    for (int t = 0; t < 3; ++t) {
      if (required[t] == 0) continue;
      if (binding < 0 ||
          std::uint64_t{required[t]} * available[binding] >
              std::uint64_t{required[binding]} * available[t])
        binding = t;
    }
    if (binding < 0) binding = 0;
  }
  verdict.binding = types[binding];
  verdict.required = required[binding];
  verdict.available = available[binding];
}

std::string fixit_for(const FloorplanVerdict& verdict,
                      const DeviceLibrary* library) {
  if (!verdict.smallest_feasible_device.empty())
    return "retarget " + verdict.smallest_feasible_device;
  if (library != nullptr)
    return "no library device can place this scheme; split the largest "
           "region or shrink the budget";
  return "";
}

}  // namespace

PlacedFloorplan floorplan_scheme(const Device& device,
                                 const SchemeEvaluation& evaluation,
                                 const PlacementOptions& options,
                                 const DeviceLibrary* fixit_library) {
  require(evaluation.valid, "floorplan_scheme needs a valid evaluation");

  std::vector<TileCount> needs;
  needs.reserve(evaluation.regions.size());
  for (const RegionReport& r : evaluation.regions) needs.push_back(r.tiles);

  PlacedFloorplan plan;
  FloorplanResult placed = skyline_place(device, needs);
  FloorplanStage stage = FloorplanStage::Skyline;
  if (!placed.success) {
    const Floorplanner greedy(device, {options.strategy});
    FloorplanResult greedy_placed = greedy.place(needs);
    if (greedy_placed.success) {
      placed = greedy_placed;
      stage = FloorplanStage::Greedy;
    } else if (options.use_annealer) {
      // Hand the greedy rung's partial placement to the annealer as a warm
      // start; regions it never reached start at random anchors.
      placed = anneal_refine(device, needs, greedy_placed.placements,
                             options.annealing);
      stage = FloorplanStage::Annealed;
    } else {
      placed = greedy_placed;
      stage = FloorplanStage::Greedy;
    }
  }

  const auto fixit_walk = [&](FloorplanVerdict& verdict) {
    if (fixit_library == nullptr) return;
    for (const Device& d : fixit_library->devices()) {
      if (deterministic_rungs_fit(d, needs, evaluation.static_resources,
                                  options.strategy)) {
        verdict.smallest_feasible_device = d.name();
        return;
      }
    }
  };

  if (!placed.success) {
    plan.verdict.kind = FloorplanVerdict::Kind::RegionUnplaceable;
    plan.verdict.failed_region = placed.failed_region;
    pick_binding(device, needs, plan.verdict);
    fixit_walk(plan.verdict);
    analysis::Diagnostic diag;
    diag.severity = analysis::Severity::Error;
    diag.code = "floorplan-region-unplaceable";
    diag.message =
        "region " + std::to_string(placed.failed_region) +
        " has no legal rectangle on " + device.name() + ": " +
        to_string(plan.verdict.binding) + " tiles required " +
        std::to_string(plan.verdict.required) + " of " +
        std::to_string(plan.verdict.available) +
        (plan.verdict.fragmented
             ? " (fragmentation: the tiles exist, no free rectangle covers "
               "them)"
             : "");
    diag.fixit = fixit_for(plan.verdict, fixit_library);
    plan.verdict.diagnostics.push_back(std::move(diag));
    return plan;
  }

  // Geometric placement succeeded: the static logic must still fit in the
  // fabric the rectangles leave over, otherwise the floorplan is feasible
  // only for the reconfigurable half of the design.
  ResourceVec used;
  for (const RegionPlacement& p : placed.placements)
    used += p.provided.resources();
  const ResourceVec free = saturating_sub(device.capacity(), used);
  if (!evaluation.static_resources.fits_in(free)) {
    plan.verdict.kind = FloorplanVerdict::Kind::StaticOverflow;
    const std::uint32_t needs3[3] = {evaluation.static_resources.clbs,
                                     evaluation.static_resources.brams,
                                     evaluation.static_resources.dsps};
    const std::uint32_t free3[3] = {free.clbs, free.brams, free.dsps};
    const BlockType types[3] = {BlockType::Clb, BlockType::Bram,
                                BlockType::Dsp};
    std::uint32_t worst = 0;
    int binding = 0;
    for (int t = 0; t < 3; ++t) {
      const std::uint32_t shortfall =
          needs3[t] > free3[t] ? needs3[t] - free3[t] : 0;
      if (shortfall > worst) {
        worst = shortfall;
        binding = t;
      }
    }
    plan.verdict.binding = types[binding];
    plan.verdict.required = needs3[binding];
    plan.verdict.available = free3[binding];
    fixit_walk(plan.verdict);
    analysis::Diagnostic diag;
    diag.severity = analysis::Severity::Error;
    diag.code = "floorplan-static-overflow";
    diag.message = "static logic needs " +
                   evaluation.static_resources.to_string() + " but only " +
                   free.to_string() + " is left outside the placed regions "
                   "on " + device.name();
    diag.fixit = fixit_for(plan.verdict, fixit_library);
    plan.verdict.diagnostics.push_back(std::move(diag));
    return plan;
  }

  plan.feasible = true;
  plan.stage = stage;
  plan.placements = std::move(placed.placements);
  plan.placed_frames.reserve(plan.placements.size());
  for (const RegionPlacement& p : plan.placements)
    plan.placed_frames.push_back(p.provided.frames());
  plan.stats = floorplan_stats(device, needs, plan.placements);
  return plan;
}

std::uint64_t placement_true_total(const SchemeEvaluation& evaluation,
                                   const PlacedFloorplan& plan) {
  require(plan.placed_frames.size() == evaluation.regions.size(),
          "floorplan does not match the evaluation");
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < evaluation.regions.size(); ++r)
    total += evaluation.regions[r].reconfig_pairs * plan.placed_frames[r];
  return total;
}

std::uint64_t placement_true_worst(const SchemeEvaluation& evaluation,
                                   const PlacedFloorplan& plan) {
  require(plan.placed_frames.size() == evaluation.regions.size(),
          "floorplan does not match the evaluation");
  if (evaluation.regions.empty()) return 0;
  const std::size_t nconf = evaluation.regions.front().active.size();
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < nconf; ++i) {
    for (std::size_t j = i + 1; j < nconf; ++j) {
      std::uint64_t pair = 0;
      for (std::size_t r = 0; r < evaluation.regions.size(); ++r) {
        const std::vector<int>& active = evaluation.regions[r].active;
        if (active[i] >= 0 && active[j] >= 0 && active[i] != active[j])
          pair += plan.placed_frames[r];
      }
      worst = std::max(worst, pair);
    }
  }
  return worst;
}

SchemeEvaluation with_placement_frames(SchemeEvaluation evaluation,
                                       const PlacedFloorplan& plan) {
  require(plan.feasible, "cannot patch frames from an infeasible floorplan");
  evaluation.total_frames = placement_true_total(evaluation, plan);
  evaluation.worst_frames = placement_true_worst(evaluation, plan);
  for (std::size_t r = 0; r < evaluation.regions.size(); ++r)
    evaluation.regions[r].frames = plan.placed_frames[r];
  return evaluation;
}

}  // namespace prpart
