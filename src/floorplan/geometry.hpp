#pragma once

#include <cstdint>

#include "device/device.hpp"
#include "device/tiles.hpp"

namespace prpart::fpgeom {

/// Tiles of each type a rectangle of `height` rows over columns
/// [col, col + width) provides.
inline TileCount rect_tiles(const Device& device, std::uint32_t height,
                            std::uint32_t col, std::uint32_t width) {
  TileCount t;
  for (std::uint32_t c = col; c < col + width; ++c) {
    switch (device.columns()[c]) {
      case BlockType::Clb: t.clb_tiles += height; break;
      case BlockType::Bram: t.bram_tiles += height; break;
      case BlockType::Dsp: t.dsp_tiles += height; break;
    }
  }
  return t;
}

inline bool covers(const TileCount& have, const TileCount& need) {
  return have.clb_tiles >= need.clb_tiles &&
         have.bram_tiles >= need.bram_tiles &&
         have.dsp_tiles >= need.dsp_tiles;
}

inline std::uint64_t total_tiles(const TileCount& t) {
  return std::uint64_t{t.clb_tiles} + t.bram_tiles + t.dsp_tiles;
}

}  // namespace prpart::fpgeom
