#include "floorplan/floorplanner.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "floorplan/geometry.hpp"
#include "util/status.hpp"

namespace prpart {

Floorplanner::Floorplanner(const Device& device, FloorplanOptions options)
    : device_(device), options_(options) {}

namespace {

using fpgeom::covers;
using fpgeom::rect_tiles;
using fpgeom::total_tiles;

}  // namespace

FloorplanResult Floorplanner::place(
    const std::vector<TileCount>& regions) const {
  const auto rows = device_.rows();
  const auto cols = static_cast<std::uint32_t>(device_.columns().size());

  // Occupancy grid: free[r][c] == true when the tile is unallocated.
  std::vector<std::vector<bool>> free(
      rows, std::vector<bool>(cols, true));

  // Largest regions first: they are the hardest to place.
  std::vector<std::size_t> order(regions.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return total_tiles(regions[a]) > total_tiles(regions[b]);
  });

  FloorplanResult result;
  result.placements.reserve(regions.size());

  for (std::size_t idx : order) {
    const TileCount& need = regions[idx];
    if (total_tiles(need) == 0) {
      // Zero-area regions (all-zero modes) need no fabric.
      result.placements.push_back(RegionPlacement{idx, 0, 0, 0, 0, {}});
      continue;
    }

    // Candidate rectangles, scanned smallest height first so compact
    // placements come first in FirstFit order.
    struct Candidate {
      RegionPlacement placement;
      std::uint64_t waste = 0;
    };
    std::optional<Candidate> chosen;
    bool placed = false;
    for (std::uint32_t height = 1; height <= rows && !placed; ++height) {
      for (std::uint32_t row = 0; row + height <= rows && !placed; ++row) {
        for (std::uint32_t col = 0; col < cols && !placed; ++col) {
          // Grow the window rightward while all tiles are free.
          TileCount have;
          for (std::uint32_t end = col; end < cols; ++end) {
            bool column_free = true;
            for (std::uint32_t r = row; r < row + height; ++r)
              column_free = column_free && free[r][end];
            if (!column_free) break;
            have = rect_tiles(device_, height, col, end - col + 1);
            if (!covers(have, need)) continue;
            const std::uint32_t width = end - col + 1;
            Candidate cand{
                RegionPlacement{idx, row, height, col, width, have},
                have.frames() - need.frames()};
            if (options_.strategy == PlacementStrategy::FirstFit) {
              chosen = cand;
              placed = true;  // stop all scans
            } else if (!chosen || cand.waste < chosen->waste) {
              chosen = cand;
            }
            break;  // wider windows at this col only add waste
          }
        }
      }
    }
    if (chosen) {
      const RegionPlacement& p = chosen->placement;
      for (std::uint32_t r = p.row; r < p.row + p.height; ++r)
        for (std::uint32_t c = p.col; c < p.col + p.width; ++c)
          free[r][c] = false;
      result.placements.push_back(p);
    } else {
      result.success = false;
      result.failed_region = idx;
      return result;
    }
  }

  result.success = true;
  // Restore scheme order for callers that index by region.
  std::stable_sort(result.placements.begin(), result.placements.end(),
                   [](const RegionPlacement& a, const RegionPlacement& b) {
                     return a.region < b.region;
                   });
  return result;
}

FloorplanResult Floorplanner::place_scheme(
    const SchemeEvaluation& evaluation) const {
  std::vector<TileCount> regions;
  regions.reserve(evaluation.regions.size());
  for (const RegionReport& r : evaluation.regions) regions.push_back(r.tiles);
  return place(regions);
}

FloorplanStats floorplan_stats(const Device& device,
                               const std::vector<TileCount>& requirements,
                               const std::vector<RegionPlacement>& placements) {
  FloorplanStats stats;
  for (const RegionPlacement& p : placements) {
    require(p.region < requirements.size(),
            "placement references unknown region");
    stats.required_frames += requirements[p.region].frames();
    stats.provided_frames += p.provided.frames();
  }
  stats.waste_frames = stats.provided_frames - stats.required_frames;

  std::uint64_t device_frames = 0;
  for (std::size_t c = 0; c < device.columns().size(); ++c) {
    switch (device.columns()[c]) {
      case BlockType::Clb: device_frames += arch::kFramesPerClbTile; break;
      case BlockType::Bram: device_frames += arch::kFramesPerBramTile; break;
      case BlockType::Dsp: device_frames += arch::kFramesPerDspTile; break;
    }
  }
  device_frames *= device.rows();
  if (device_frames > 0)
    stats.device_utilization = static_cast<double>(stats.provided_frames) /
                               static_cast<double>(device_frames);
  return stats;
}

std::string to_ucf(const Device& device,
                   const std::vector<RegionPlacement>& placements) {
  // Coordinates follow the Virtex-5 site grid: a tile is 20 CLBs tall and a
  // CLB is two slices wide, so a tile at (row, col) spans slice rows
  // [row*20, row*20+19] and slice columns [col*2, col*2+1].
  std::string out;
  for (const RegionPlacement& p : placements) {
    if (p.width == 0) continue;  // zero-area region
    const std::string name = "pblock_PRR" + std::to_string(p.region + 1);
    out += "INST \"prr" + std::to_string(p.region + 1) +
           "\" AREA_GROUP = \"" + name + "\";\n";
    out += "AREA_GROUP \"" + name + "\" RANGE = SLICE_X" +
           std::to_string(p.col * 2) + "Y" + std::to_string(p.row * 20) +
           ":SLICE_X" + std::to_string((p.col + p.width) * 2 - 1) + "Y" +
           std::to_string((p.row + p.height) * 20 - 1) + ";\n";
    out += "AREA_GROUP \"" + name + "\" MODE = RECONFIG;\n";
  }
  out += "# device " + device.name() + "\n";
  return out;
}

}  // namespace prpart
