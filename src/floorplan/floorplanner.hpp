#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "device/device.hpp"
#include "device/tiles.hpp"

namespace prpart {

/// Placement of one reconfigurable region on the device: a rectangle of
/// whole tiles, `height` rows tall starting at `row`, spanning columns
/// [col, col + width).
struct RegionPlacement {
  std::size_t region = 0;  ///< index into the scheme's regions
  std::uint32_t row = 0;
  std::uint32_t height = 0;
  std::uint32_t col = 0;
  std::uint32_t width = 0;
  TileCount provided;  ///< tiles of each type inside the rectangle
};

struct FloorplanResult {
  bool success = false;
  /// Index of the first region that could not be placed (valid when
  /// !success).
  std::size_t failed_region = 0;
  std::vector<RegionPlacement> placements;
};

/// How rectangles are chosen among feasible positions.
enum class PlacementStrategy {
  /// First feasible rectangle in (height, row, column) scan order; fast and
  /// compact for most designs.
  FirstFit,
  /// Among all feasible rectangles, the one wasting the fewest frames
  /// (provided minus required); slower, but leaves more contiguous space
  /// for later regions on fragmented devices.
  BestFit,
};

struct FloorplanOptions {
  PlacementStrategy strategy = PlacementStrategy::FirstFit;
};

/// Aggregate quality metrics of a floorplan.
struct FloorplanStats {
  std::uint64_t required_frames = 0;  ///< sum of tile-rounded requirements
  std::uint64_t provided_frames = 0;  ///< frames inside the rectangles
  std::uint64_t waste_frames = 0;     ///< provided - required
  double device_utilization = 0.0;    ///< provided / device frames
};

/// Computes the stats of a successful placement against its requirements.
FloorplanStats floorplan_stats(const Device& device,
                               const std::vector<TileCount>& requirements,
                               const std::vector<RegionPlacement>& placements);

/// Architecture-aware floorplanner for PR regions (substrate for the
/// paper's reference [11], step 5 of the tool flow).
///
/// Regions are rectangles of whole tiles, aligned to the device's
/// row/column grid (Fig. 4), non-overlapping, and each must contain at
/// least the region's tile requirement of every resource type. Placement is
/// greedy first-fit: regions are processed largest first; for each, the
/// smallest-height rectangle satisfying the requirement is searched row by
/// row, column by column. This models the vendor constraints (rectangular,
/// tile-granular, non-overlapping) that the partitioner's resource check
/// alone cannot see — a scheme can fit by resource count yet fail here,
/// which is exactly the feedback loop the paper proposes as future work.
class Floorplanner {
 public:
  explicit Floorplanner(const Device& device, FloorplanOptions options = {});

  /// Attempts to place all regions (tile requirements per region).
  FloorplanResult place(const std::vector<TileCount>& regions) const;

  /// Convenience: placement for an evaluated scheme.
  FloorplanResult place_scheme(const SchemeEvaluation& evaluation) const;

 private:
  const Device& device_;
  FloorplanOptions options_;
};

/// Emits Xilinx-UCF-style area-group constraints for a floorplan, one
/// AREA_GROUP per region (step 6 of the tool flow).
std::string to_ucf(const Device& device,
                   const std::vector<RegionPlacement>& placements);

}  // namespace prpart
