#pragma once

#include <cstdint>

#include "floorplan/floorplanner.hpp"

namespace prpart {

/// Options of the simulated-annealing floorplanner.
struct AnnealingOptions {
  std::uint64_t seed = 1;
  std::uint32_t iterations = 30'000;
  double initial_temperature = 8.0;
  /// Geometric cooling factor applied every `iterations / 100` steps.
  double cooling = 0.95;
};

/// Simulated-annealing floorplanner in the spirit of the paper's related
/// work [7] (Montone et al., "Placement and floorplanning in dynamically
/// reconfigurable FPGAs"): instead of placing regions greedily one by one,
/// all rectangles are optimised jointly. A state assigns every region a
/// rectangle that covers its tile requirement; the energy is the number of
/// pairwise-overlapping tiles, and moves re-seat one region at a random
/// anchor. A zero-energy state is a legal floorplan.
///
/// Slower than the greedy Floorplanner but able to untangle fragmented
/// instances where first-fit's largest-first commitment wedges; the flow's
/// feedback loop can use it as an escalation step.
FloorplanResult anneal_place(const Device& device,
                             const std::vector<TileCount>& regions,
                             const AnnealingOptions& options = {});

/// Warm-started refinement: entries of `warm_start` with nonzero width that
/// cover their region's requirement seed the initial state; every other
/// region starts at a random anchor as in anneal_place. Used by the
/// placement ladder to hand the greedy rung's partial placement to the
/// annealer instead of throwing it away. Same determinism contract: the
/// result is a pure function of (device, regions, warm_start, options).
FloorplanResult anneal_refine(const Device& device,
                              const std::vector<TileCount>& regions,
                              const std::vector<RegionPlacement>& warm_start,
                              const AnnealingOptions& options = {});

}  // namespace prpart
