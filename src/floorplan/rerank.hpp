#pragma once

#include <cstdint>
#include <vector>

#include "core/partitioner.hpp"
#include "floorplan/placement.hpp"

namespace prpart {

struct FloorplanRerankOptions {
  /// How many enumerated schemes to floorplan: the Eq. 10 winner plus up to
  /// top_k - 1 runners-up (bounded by what the search kept, i.e.
  /// SearchOptions::keep_alternatives).
  std::size_t top_k = 5;
  PlacementOptions placement;
};

/// One enumerated scheme after the floorplan pass.
struct FloorplanCandidate {
  /// Position in the search's ranking: 0 is the Eq. 10 winner, 1.. the
  /// runners-up in ascending estimated cost.
  std::size_t source_index = 0;
  PartitionScheme scheme;
  /// The scheme's evaluation; frame counts are placement-true (patched via
  /// with_placement_frames) when the floorplan is feasible, the plain
  /// resource-vector estimate when vetoed.
  SchemeEvaluation eval;
  PlacedFloorplan plan;
  std::uint64_t estimated_total = 0;  ///< Eq. 10 from resource vectors
  std::uint64_t placement_total = 0;  ///< Eq. 10 from placed rectangles
  std::uint64_t placement_worst = 0;  ///< Eq. 11 from placed rectangles
  bool vetoed = false;  ///< no legal floorplan on the target device
};

/// Outcome of the post-enumeration veto/re-rank stage.
struct FloorplanRerank {
  /// True when at least one enumerated scheme has a legal floorplan.
  bool any_feasible = false;
  /// source_index of the placement-true winner (= ranked.front()'s);
  /// meaningful when any_feasible.
  std::size_t winner_source = 0;
  /// True when the placement-true winner is not the Eq. 10 winner — the
  /// estimate was either re-ranked past (waste inverted the order) or
  /// vetoed outright.
  bool overturned = false;
  std::size_t vetoed_count = 0;
  /// All floorplanned candidates: schemes with a legal floorplan first in
  /// ascending (placement_total, source_index) order, then the vetoed ones
  /// in source order. Strictly a permutation of the enumerated top-K — the
  /// stage never invents schemes.
  std::vector<FloorplanCandidate> ranked;
};

/// Floorplans the top-K schemes of a partitioner run on `device` and
/// re-ranks them by placement-true Eq. 10 cost, vetoing schemes with no
/// legal floorplan. Runs single-threaded over at most top_k schemes, so the
/// result is a pure function of its arguments — byte-identical regardless
/// of the thread count the search ran with (the search's own determinism
/// contract guarantees identical inputs).
///
/// `budget` must be the budget the partitioner ran against (the evaluations
/// are re-derived with it); `fixit_library`, when non-null, fills the
/// smallest-feasible-device fix-it of vetoed candidates' verdicts.
FloorplanRerank floorplan_rerank(const Design& design,
                                 const PartitionerResult& result,
                                 const Device& device,
                                 const ResourceVec& budget,
                                 const FloorplanRerankOptions& options = {},
                                 const DeviceLibrary* fixit_library = nullptr);

}  // namespace prpart
