#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "core/scheme.hpp"
#include "device/device.hpp"
#include "floorplan/annealing.hpp"
#include "floorplan/floorplanner.hpp"

namespace prpart {

/// Deterministic skyline packer: the fast path of the placement ladder.
///
/// The state is one height per device column (the skyline). Regions are
/// placed largest first; for every (column, width) window the minimal
/// rectangle height covering the region's tile requirement is computed from
/// the window's column mix, and the candidate resting on the window's
/// skyline with the lowest resulting top — ties broken by wasted frames,
/// then leftmost column, then narrowest width — wins. No randomness, no
/// occupancy grid: a single left-to-right sweep per region, so the result
/// is a pure function of (device, regions).
FloorplanResult skyline_place(const Device& device,
                              const std::vector<TileCount>& regions);

/// Which rung of the placement ladder produced a floorplan.
enum class FloorplanStage : std::uint8_t {
  Skyline,   ///< deterministic skyline packer
  Greedy,    ///< occupancy-grid greedy (Floorplanner, best-fit)
  Annealed,  ///< simulated-annealing refinement pass
  None,      ///< no rung succeeded
};

const char* to_string(FloorplanStage stage);

/// Typed outcome of a floorplan attempt. On failure it names the binding
/// resource column type, whether the failure is fragmentation (the tiles
/// exist but no legal rectangle packing does) or raw capacity, the smallest
/// library device that can place the scheme, and carries the same finding
/// as `analysis::Diagnostic`s for the diagnostics pipeline.
struct FloorplanVerdict {
  enum class Kind : std::uint8_t {
    Feasible,
    /// A region has no legal rectangle left. `failed_region`/`binding` are
    /// the witness.
    RegionUnplaceable,
    /// Every region placed, but the static logic does not fit in the fabric
    /// the placed rectangles leave over.
    StaticOverflow,
  };

  Kind kind = Kind::Feasible;
  /// Scheme index of the unplaceable region (RegionUnplaceable only).
  std::size_t failed_region = 0;
  /// The resource column type that ran out (scheme-wide: largest shortfall
  /// of summed tile requirements vs device tiles, or — when every type fits
  /// by count — the most utilised type).
  BlockType binding = BlockType::Clb;
  /// Summed requirement vs device stock of `binding`: tiles for
  /// RegionUnplaceable, raw resource units for StaticOverflow.
  std::uint32_t required = 0;
  std::uint32_t available = 0;
  /// True when the device has enough tiles of every type but no legal
  /// rectangle packing exists (the failure Eq. 3-5 cannot see).
  bool fragmented = false;
  /// Smallest fix-it device in the caller's library that places the scheme
  /// (skyline/greedy rungs only, for determinism and speed); "" when none
  /// does or no library was supplied.
  std::string smallest_feasible_device;
  /// The verdict rendered as diagnostics (empty when feasible); codes
  /// `floorplan-region-unplaceable` and `floorplan-static-overflow`, see
  /// docs/diagnostics.md.
  std::vector<analysis::Diagnostic> diagnostics;
};

/// Options of the placement ladder.
struct PlacementOptions {
  /// Strategy of the greedy occupancy-grid rung.
  PlacementStrategy strategy = PlacementStrategy::BestFit;
  /// Run the annealing refinement rung when the deterministic rungs fail.
  bool use_annealer = true;
  AnnealingOptions annealing;
};

/// A floorplan with placement-true frame counts.
struct PlacedFloorplan {
  bool feasible = false;
  FloorplanStage stage = FloorplanStage::None;
  /// One rectangle per region, in scheme order (width 0 for zero-area
  /// regions). Empty when infeasible.
  std::vector<RegionPlacement> placements;
  /// Frames of each region's placed rectangle, in scheme order. Always
  /// >= the Eq. 3-6 estimate of that region (the rectangle covers the tile
  /// requirement and frames are monotone in tiles).
  std::vector<std::uint64_t> placed_frames;
  FloorplanStats stats;  ///< waste/utilization; meaningful when feasible
  FloorplanVerdict verdict;
};

/// Places a valid evaluated scheme on `device` through the escalation
/// ladder: skyline -> occupancy-grid greedy -> annealer (warm-started from
/// the greedy rung's partial placement). After geometric placement the
/// static logic is checked against the fabric the rectangles leave over, so
/// a feasible result implies the scheme's total resources fit the device —
/// and hence the analysis engine's single-region lower bound does too.
///
/// `fixit_library`, when non-null, is walked smallest-first on failure to
/// fill FloorplanVerdict::smallest_feasible_device.
PlacedFloorplan floorplan_scheme(const Device& device,
                                 const SchemeEvaluation& evaluation,
                                 const PlacementOptions& options = {},
                                 const DeviceLibrary* fixit_library = nullptr);

/// Eq. 10 with placement-true frames: sum over regions of
/// reconfig_pairs x placed frames. Equals SchemeEvaluation::total_frames
/// when every rectangle is waste-free.
std::uint64_t placement_true_total(const SchemeEvaluation& evaluation,
                                   const PlacedFloorplan& plan);

/// Eq. 11 with placement-true frames: max over unordered configuration
/// pairs of the summed placed frames of the regions the pair reconfigures.
std::uint64_t placement_true_worst(const SchemeEvaluation& evaluation,
                                   const PlacedFloorplan& plan);

/// Returns `evaluation` with every region's frame count, the Eq. 10 total
/// and the Eq. 11 worst replaced by their placement-true values, so
/// downstream consumers (the simulator's ICAP replay, reports) price the
/// placed rectangles instead of the resource-vector estimate.
SchemeEvaluation with_placement_frames(SchemeEvaluation evaluation,
                                       const PlacedFloorplan& plan);

}  // namespace prpart
