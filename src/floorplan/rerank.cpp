#include "floorplan/rerank.hpp"

#include <algorithm>

#include "core/connectivity.hpp"
#include "util/status.hpp"

namespace prpart {

FloorplanRerank floorplan_rerank(const Design& design,
                                 const PartitionerResult& result,
                                 const Device& device,
                                 const ResourceVec& budget,
                                 const FloorplanRerankOptions& options,
                                 const DeviceLibrary* fixit_library) {
  FloorplanRerank rerank;
  if (!result.feasible) return rerank;

  // The enumerated candidate set: the search's ranked alternatives (first
  // entry is the proposed scheme) or, when the search found nothing and the
  // single-region fallback was proposed, that fallback alone. The fallback
  // keeps its stored evaluation: a single region holding every base
  // partition is not a structurally valid scheme under evaluate_scheme
  // (several members are active at once), it is evaluated by its own path.
  std::vector<const PartitionScheme*> schemes;
  const bool from_search =
      result.proposed_from_search && !result.alternatives.empty();
  if (from_search) {
    for (const RankedScheme& alt : result.alternatives) {
      if (schemes.size() >= options.top_k) break;
      schemes.push_back(&alt.scheme);
    }
  } else {
    schemes.push_back(&result.proposed.scheme);
  }

  const ConnectivityMatrix matrix(design);
  rerank.ranked.reserve(schemes.size());
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    FloorplanCandidate cand;
    cand.source_index = i;
    cand.scheme = *schemes[i];
    cand.eval = from_search
                    ? evaluate_scheme(design, matrix, result.base_partitions,
                                      cand.scheme, budget)
                    : result.proposed.eval;
    require(cand.eval.valid, "enumerated scheme re-evaluated as invalid");
    cand.estimated_total = cand.eval.total_frames;
    cand.plan =
        floorplan_scheme(device, cand.eval, options.placement, fixit_library);
    if (cand.plan.feasible) {
      cand.eval = with_placement_frames(cand.eval, cand.plan);
      cand.placement_total = cand.eval.total_frames;
      cand.placement_worst = cand.eval.worst_frames;
    } else {
      cand.vetoed = true;
      ++rerank.vetoed_count;
    }
    rerank.ranked.push_back(std::move(cand));
  }

  // Feasible candidates ascending by placement-true cost (source order
  // breaks ties, so equal-cost schemes keep the Eq. 10 ranking); vetoed
  // candidates trail in source order.
  std::stable_sort(rerank.ranked.begin(), rerank.ranked.end(),
                   [](const FloorplanCandidate& a, const FloorplanCandidate& b) {
                     if (a.vetoed != b.vetoed) return !a.vetoed;
                     if (a.vetoed) return a.source_index < b.source_index;
                     if (a.placement_total != b.placement_total)
                       return a.placement_total < b.placement_total;
                     return a.source_index < b.source_index;
                   });

  rerank.any_feasible = !rerank.ranked.empty() && !rerank.ranked.front().vetoed;
  if (rerank.any_feasible) {
    rerank.winner_source = rerank.ranked.front().source_index;
    rerank.overturned = rerank.winner_source != 0;
  }
  return rerank;
}

}  // namespace prpart
