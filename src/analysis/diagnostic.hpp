#pragma once

#include <string>
#include <vector>

#include "xml/xml.hpp"

namespace prpart::analysis {

/// Severity of a finding. Errors block partitioning (the design cannot be
/// constructed, or no scheme can fit the target); warnings flag probable
/// mistakes; infos are advisory hints.
enum class Severity { Info, Warning, Error };

const char* to_string(Severity s);

/// One finding of the design analyzer.
struct Diagnostic {
  Severity severity = Severity::Warning;
  /// Stable machine-readable code, e.g. "dead-mode". Every code is
  /// catalogued in docs/diagnostics.md.
  std::string code;
  std::string message;
  /// Suggested fix; empty = none.
  std::string fixit;
  /// Source position of the offending element in the input XML; unknown
  /// (line 0) for designs built programmatically.
  xml::Span span;
};

/// Orders diagnostics errors-first (Error, Warning, Info), keeping the
/// emission order within each severity (stable).
void sort_by_severity(std::vector<Diagnostic>& diagnostics);

/// Renders diagnostics one per line, compiler style:
///
///   design.xml:12:5: error[unknown-mode-ref]: ...
///     fix: declare the mode or fix the reference
///
/// The `file:` prefix is omitted when `file` is empty, the `line:col:`
/// prefix when the span is unknown.
std::string render_text(const std::vector<Diagnostic>& diagnostics,
                        const std::string& file = "");

}  // namespace prpart::analysis
