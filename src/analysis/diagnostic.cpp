#include "analysis/diagnostic.hpp"

#include <algorithm>

namespace prpart::analysis {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "error";
}

namespace {

int rank(Severity s) {
  switch (s) {
    case Severity::Error: return 0;
    case Severity::Warning: return 1;
    case Severity::Info: return 2;
  }
  return 3;
}

}  // namespace

void sort_by_severity(std::vector<Diagnostic>& diagnostics) {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return rank(a.severity) < rank(b.severity);
                   });
}

std::string render_text(const std::vector<Diagnostic>& diagnostics,
                        const std::string& file) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    std::string prefix;
    if (d.span.known()) {
      if (!file.empty()) prefix += file + ":";
      prefix += d.span.to_string() + ": ";
    } else if (!file.empty()) {
      prefix += file + ": ";
    }
    out += prefix + std::string(to_string(d.severity)) + "[" + d.code +
           "]: " + d.message + "\n";
    if (!d.fixit.empty()) out += "  fix: " + d.fixit + "\n";
  }
  return out;
}

}  // namespace prpart::analysis
