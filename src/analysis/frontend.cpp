#include "analysis/frontend.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace prpart::analysis {

namespace {

/// Collects every structural problem of the element tree as error
/// diagnostics. Covers the full set of conditions design_from_element and
/// Design::validate would throw for, so a clean walk guarantees the strict
/// construction succeeds.
void collect_structural(const xml::Element& root,
                        std::vector<Diagnostic>& out) {
  auto error = [&](std::string code, std::string message, std::string fixit,
                   xml::Span span) {
    out.push_back({Severity::Error, std::move(code), std::move(message),
                   std::move(fixit), span});
  };

  auto check_resources = [&](const xml::Element& e, const std::string& what) {
    for (const char* key : {"clbs", "brams", "dsps"}) {
      const std::string* v = e.find_attr(key);
      if (!v) continue;
      bool ok = true;
      try {
        ok = parse_u64(*v) <= UINT32_MAX;
      } catch (const ParseError&) {
        ok = false;
      }
      if (!ok)
        error("bad-attribute",
              what + " has an invalid " + std::string(key) + "=\"" + *v + "\"",
              "use an unsigned 32-bit resource count", e.span());
    }
  };

  if (const xml::Element* s = root.find_child("static"))
    check_resources(*s, "<static>");

  // Modules and their modes. `modes_of` indexes the first valid occurrence
  // of each module name so references can be resolved below.
  std::map<std::string, std::vector<std::string>> modes_of;
  for (const xml::Element* m : root.children_named("module")) {
    const std::string* name = m->find_attr("name");
    if (!name || name->empty()) {
      error("missing-attribute", "<module> element without a name",
            "add name=\"...\"", m->span());
      continue;
    }
    if (modes_of.count(*name) != 0) {
      error("duplicate-module", "duplicate module name '" + *name + "'",
            "rename or merge the duplicate <module> elements", m->span());
      continue;
    }
    std::vector<std::string>& modes = modes_of[*name];
    for (const xml::Element* k : m->children_named("mode")) {
      const std::string* kname = k->find_attr("name");
      if (!kname || kname->empty()) {
        error("missing-attribute",
              "<mode> in module '" + *name + "' without a name",
              "add name=\"...\"", k->span());
        continue;
      }
      if (std::find(modes.begin(), modes.end(), *kname) != modes.end()) {
        error("duplicate-mode",
              "duplicate mode name '" + *kname + "' in module '" + *name + "'",
              "rename or merge the duplicate <mode> elements", k->span());
        continue;
      }
      check_resources(*k, "mode '" + *kname + "' of module '" + *name + "'");
      modes.push_back(*kname);
    }
    if (m->children_named("mode").empty())
      error("empty-module", "module '" + *name + "' has no modes",
            "declare at least one <mode> or delete the module", m->span());
  }
  if (root.children_named("module").empty())
    error("no-modules", "design has no modules",
          "declare at least one <module>", root.span());

  // Configurations: reference resolution against the module index, plus
  // duplicate detection on the canonical (module, mode) assignment.
  const xml::Element* configs = root.find_child("configurations");
  const std::vector<const xml::Element*> config_elems =
      configs ? configs->children_named("configuration")
              : std::vector<const xml::Element*>{};
  if (config_elems.empty())
    error("no-configurations", "design has no configurations",
          "add a <configurations> list with at least one <configuration>",
          configs ? configs->span() : root.span());

  std::map<std::vector<std::pair<std::string, std::string>>, std::string> seen;
  for (std::size_t i = 0; i < config_elems.size(); ++i) {
    const xml::Element* c = config_elems[i];
    const std::string* cname_attr = c->find_attr("name");
    const std::string cname = cname_attr && !cname_attr->empty()
                                  ? *cname_attr
                                  : "Conf" + std::to_string(i + 1);
    std::set<std::string> assigned;
    std::vector<std::pair<std::string, std::string>> uses;
    bool broken = false;
    for (const xml::Element* use : c->children_named("use")) {
      const std::string* mod = use->find_attr("module");
      const std::string* mode = use->find_attr("mode");
      if (!mod || mod->empty() || !mode || mode->empty()) {
        error("missing-attribute",
              "<use> in configuration '" + cname +
                  "' needs module=\"...\" and mode=\"...\"",
              "", use->span());
        broken = true;
        continue;
      }
      const auto it = modes_of.find(*mod);
      if (it == modes_of.end()) {
        error("unknown-module-ref",
              "configuration '" + cname + "' references unknown module '" +
                  *mod + "'",
              "declare the module or fix the reference", use->span());
        broken = true;
        continue;
      }
      if (std::find(it->second.begin(), it->second.end(), *mode) ==
          it->second.end()) {
        error("unknown-mode-ref",
              "module '" + *mod + "' has no mode '" + *mode +
                  "' (configuration '" + cname + "')",
              "declare the mode or fix the reference", use->span());
        broken = true;
        continue;
      }
      if (!assigned.insert(*mod).second) {
        error("duplicate-module-use",
              "configuration '" + cname + "' assigns module '" + *mod +
                  "' twice",
              "keep exactly one <use> per module", use->span());
        broken = true;
        continue;
      }
      uses.emplace_back(*mod, *mode);
    }
    if (c->children_named("use").empty())
      error("empty-configuration",
            "configuration '" + cname + "' contains no modules",
            "add at least one <use> or delete the configuration", c->span());
    if (!broken && !uses.empty()) {
      std::sort(uses.begin(), uses.end());
      const auto [it, fresh] = seen.emplace(std::move(uses), cname);
      if (!fresh)
        error("duplicate-config",
              "configuration '" + cname + "' duplicates configuration '" +
                  it->second + "'",
              "delete one of the duplicates", c->span());
    }
  }
}

bool any_error(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) {
                       return d.severity == Severity::Error;
                     });
}

}  // namespace

SourceAnalysis analyze_design_source(const std::string& text,
                                     const AnalysisOptions& options) {
  SourceAnalysis out;

  std::unique_ptr<xml::Element> root;
  try {
    root = xml::parse(text);
  } catch (const ParseError& e) {
    out.result.diagnostics.push_back({Severity::Error, "xml-error", e.what(),
                                      "", {e.line(), e.column()}});
    return out;
  }
  if (root->name() != "design") {
    out.result.diagnostics.push_back(
        {Severity::Error, "xml-error",
         "expected <design> root element, got <" + root->name() + ">", "",
         root->span()});
    return out;
  }

  collect_structural(*root, out.result.diagnostics);
  if (any_error(out.result.diagnostics)) {
    sort_by_severity(out.result.diagnostics);
    return out;
  }

  try {
    DesignSpans spans;
    Design design = design_from_element(*root, &spans);
    out.parsed = ParsedDesign{std::move(design), std::move(spans)};
  } catch (const Error& e) {
    // Safety net: anything the tolerant walk missed still surfaces as a
    // diagnostic rather than an exception.
    out.result.diagnostics.push_back(
        {Severity::Error, "xml-error", e.what(), "", root->span()});
    sort_by_severity(out.result.diagnostics);
    return out;
  }

  AnalysisResult semantic =
      analyze_design(out.parsed->design, options, &out.parsed->spans);
  for (Diagnostic& d : semantic.diagnostics)
    out.result.diagnostics.push_back(std::move(d));
  out.result.proof = std::move(semantic.proof);
  sort_by_severity(out.result.diagnostics);
  return out;
}

}  // namespace prpart::analysis
