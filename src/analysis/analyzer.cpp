#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cctype>

#include "device/tiles.hpp"

namespace prpart::analysis {

namespace {

/// Modes named like the paper's explicit "none" placeholder are allowed a
/// zero area without a warning.
bool looks_like_none(const std::string& name) {
  std::string lower;
  for (char c : name)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lower.find("none") != std::string::npos ||
         lower.find("off") != std::string::npos ||
         lower.find("bypass") != std::string::npos;
}

std::uint32_t component(const ResourceVec& r, const std::string& name) {
  if (name == "clbs") return r.clbs;
  if (name == "brams") return r.brams;
  return r.dsps;
}

/// The binding resource of an infeasible comparison: the component with the
/// largest shortfall (ties resolved clbs, brams, dsps).
std::string binding_resource(const ResourceVec& need, const ResourceVec& have) {
  std::string best;
  std::uint64_t best_shortfall = 0;
  for (const char* name : {"clbs", "brams", "dsps"}) {
    const std::uint32_t n = component(need, name);
    const std::uint32_t h = component(have, name);
    if (n > h && std::uint64_t{n} - h > best_shortfall) {
      best = name;
      best_shortfall = std::uint64_t{n} - h;
    }
  }
  return best;
}

json::Value resources_json(const ResourceVec& r) {
  json::Value v = json::Value::object();
  v.set("clbs", json::Value(static_cast<std::uint64_t>(r.clbs)));
  v.set("brams", json::Value(static_cast<std::uint64_t>(r.brams)));
  v.set("dsps", json::Value(static_cast<std::uint64_t>(r.dsps)));
  return v;
}

json::Value proof_json(const InfeasibilityProof& proof) {
  json::Value v = json::Value::object();
  v.set("raw_lower_bound", resources_json(proof.raw_lower_bound));
  v.set("lower_bound", resources_json(proof.lower_bound));
  v.set("target", json::Value(proof.target));
  v.set("capacity", resources_json(proof.capacity));
  v.set("binding", json::Value(proof.binding));
  v.set("required", json::Value(static_cast<std::uint64_t>(proof.required)));
  v.set("available", json::Value(static_cast<std::uint64_t>(proof.available)));
  v.set("smallest_fitting_device",
        proof.smallest_fitting_device.empty()
            ? json::Value()
            : json::Value(proof.smallest_fitting_device));
  return v;
}

}  // namespace

std::string InfeasibilityProof::to_string() const {
  std::string out = "no scheme fits " + target +
                    ": a single region holding every configuration needs " +
                    lower_bound.to_string() + " (raw " +
                    raw_lower_bound.to_string() +
                    " tile-rounded, plus static), but only " +
                    capacity.to_string() + " is available; binding resource " +
                    binding + " (need " + std::to_string(required) +
                    ", have " + std::to_string(available) + ")";
  return out;
}

bool AnalysisResult::has_errors() const { return count(Severity::Error) > 0; }

std::size_t AnalysisResult::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == s) ++n;
  return n;
}

std::optional<InfeasibilityProof> prove_infeasible(const Design& design,
                                                   const ResourceVec& budget,
                                                   const DeviceLibrary& library,
                                                   const std::string& target) {
  // The single-region bound of §IV-C: exactly the feasibility check the
  // allocation search applies (evaluate_scheme on single_region_scheme).
  const ResourceVec raw = design.largest_configuration_area();
  const ResourceVec bound = tiles_for(raw).resources() + design.static_base();
  if (bound.fits_in(budget)) return std::nullopt;

  InfeasibilityProof proof;
  proof.raw_lower_bound = raw;
  proof.lower_bound = bound;
  proof.target = target;
  proof.capacity = budget;
  proof.binding = binding_resource(bound, budget);
  proof.required = component(bound, proof.binding);
  proof.available = component(budget, proof.binding);
  for (const Device& d : library.devices()) {
    if (bound.fits_in(d.capacity())) {
      proof.smallest_fitting_device = d.name();
      break;
    }
  }
  return proof;
}

AnalysisResult analyze_design(const Design& design,
                              const AnalysisOptions& options,
                              const DesignSpans* spans) {
  AnalysisResult out;
  const auto& modules = design.modules();
  const auto& configs = design.configurations();

  auto module_span = [&](const std::string& name) {
    return spans ? spans->module_span(name) : xml::Span{};
  };
  auto mode_span = [&](const std::string& module, const std::string& mode) {
    return spans ? spans->mode_span(module, mode) : xml::Span{};
  };
  auto config_span = [&](std::size_t index) {
    return spans ? spans->configuration_span(index) : xml::Span{};
  };
  const xml::Span root_span = spans ? spans->root : xml::Span{};

  auto emit = [&](Severity severity, std::string code, std::string message,
                  std::string fixit, xml::Span span) {
    out.diagnostics.push_back({severity, std::move(code), std::move(message),
                               std::move(fixit), span});
  };

  // Resolve the feasibility target. An unknown --device surfaces as
  // DeviceError (a usage error), never as a diagnostic.
  ResourceVec target_capacity;
  std::string target_label;
  bool explicit_target = false;
  if (options.budget) {
    target_capacity = *options.budget;
    target_label = "budget";
    explicit_target = true;
  } else if (!options.device.empty()) {
    const Device& device = options.library.by_name(options.device);
    target_capacity = device.capacity();
    target_label = device.name();
    explicit_target = true;
  }

  // Per-module / per-mode usage checks (the ported linter).
  for (std::size_t m = 0; m < modules.size(); ++m) {
    bool module_used = false;
    for (std::size_t k = 1; k <= modules[m].modes.size(); ++k) {
      const Mode& mode = modules[m].modes[k - 1];
      std::size_t uses = 0;
      for (const Configuration& c : configs)
        if (c.mode_of_module[m] == k) ++uses;
      module_used = module_used || uses > 0;

      if (uses == 0)
        emit(Severity::Warning, "dead-mode",
             "mode '" + mode.name + "' of module '" + modules[m].name +
                 "' appears in no configuration and will never be implemented",
             "add the mode to a configuration or delete it",
             mode_span(modules[m].name, mode.name));
      else if (uses == configs.size() && configs.size() > 1)
        emit(Severity::Info, "always-on-mode",
             "mode '" + mode.name + "' of module '" + modules[m].name +
                 "' is active in every configuration; consider implementing "
                 "it statically",
             "move the mode's resources into <static> and drop it from the "
             "configurations",
             mode_span(modules[m].name, mode.name));

      if (mode.area.is_zero() && !looks_like_none(mode.name) && uses > 0)
        emit(Severity::Warning, "zero-area-mode",
             "mode '" + mode.name + "' of module '" + modules[m].name +
                 "' has no resources; if it models an absent module, prefer "
                 "omitting the module from the configuration (mode 0)",
             "remove the <use> instead of declaring an empty mode",
             mode_span(modules[m].name, mode.name));
    }
    if (!module_used)
      emit(Severity::Warning, "unused-module",
           "module '" + modules[m].name +
               "' is absent from every configuration",
           "reference the module from a configuration or delete it",
           module_span(modules[m].name));

    for (std::size_t a = 0; a < modules[m].modes.size(); ++a)
      for (std::size_t b = a + 1; b < modules[m].modes.size(); ++b)
        if (modules[m].modes[a].area == modules[m].modes[b].area &&
            !modules[m].modes[a].area.is_zero())
          emit(Severity::Info, "duplicate-modes",
               "modes '" + modules[m].modes[a].name + "' and '" +
                   modules[m].modes[b].name + "' of module '" +
                   modules[m].name + "' have identical resource estimates",
               "",
               mode_span(modules[m].name, modules[m].modes[b].name));
  }

  // Oversized modes. Against an explicit target, a used oversized mode is
  // a hard error (it makes the lower bound fail too); otherwise modes that
  // exceed the largest library device are warned about, as the old linter
  // did.
  const ResourceVec largest_device =
      options.library.devices().empty()
          ? ResourceVec{~0u, ~0u, ~0u}
          : options.library.devices().back().capacity();
  for (std::size_t g = 0; g < design.mode_count(); ++g) {
    const ModeRef ref = design.mode_ref(g);
    const std::string& module_name = modules[ref.module].name;
    const xml::Span at = mode_span(module_name, design.mode_label(g));
    if (explicit_target && design.mode_used(g) &&
        !design.mode_area(g).fits_in(target_capacity)) {
      emit(Severity::Error, "oversized-mode",
           "mode '" + design.mode_label(g) + "' of module '" + module_name +
               "' (" + design.mode_area(g).to_string() + ") exceeds " +
               target_label + " (" + target_capacity.to_string() + ")",
           "shrink the mode or target a larger device", at);
    } else if (!design.mode_area(g).fits_in(largest_device)) {
      emit(Severity::Warning, "oversized-mode",
           "mode '" + design.mode_label(g) + "' of module '" + module_name +
               "' exceeds the largest library device (" +
               design.mode_area(g).to_string() + ")",
           "", at);
    }
  }

  // Subsumed configurations: every module active in c_i runs the same mode
  // in c_j, so any region allocation supporting c_j supports c_i.
  // (Duplicates are rejected earlier, by Design::validate.)
  for (std::size_t i = 0; i < configs.size(); ++i) {
    for (std::size_t j = 0; j < configs.size(); ++j) {
      if (i == j) continue;
      bool subset = true;
      bool proper = false;
      for (std::size_t m = 0; m < modules.size(); ++m) {
        const std::uint32_t a = configs[i].mode_of_module[m];
        const std::uint32_t b = configs[j].mode_of_module[m];
        if (a != 0 && a != b) subset = false;
        if (a == 0 && b != 0) proper = true;
      }
      if (subset && proper) {
        emit(Severity::Warning, "subsumed-config",
             "configuration '" + configs[i].name +
                 "' is a subset of configuration '" + configs[j].name +
                 "': it adds no partitioning constraint",
             "check whether '" + configs[i].name +
                 "' should activate more modules or be removed",
             config_span(i));
        break;  // one report per subsumed configuration
      }
    }
  }

  // Compatibility-derived merge suggestions (Eqs. 7-9): two used modules
  // whose modes never run concurrently can share one reconfigurable region;
  // the search will discover this, but it is worth surfacing to designers.
  for (std::size_t a = 0; a < modules.size(); ++a) {
    for (std::size_t b = a + 1; b < modules.size(); ++b) {
      bool a_used = false;
      bool b_used = false;
      bool co_occur = false;
      for (const Configuration& c : configs) {
        const bool in_a = c.mode_of_module[a] != 0;
        const bool in_b = c.mode_of_module[b] != 0;
        a_used = a_used || in_a;
        b_used = b_used || in_b;
        co_occur = co_occur || (in_a && in_b);
      }
      if (a_used && b_used && !co_occur)
        emit(Severity::Info, "merge-candidate",
             "modules '" + modules[a].name + "' and '" + modules[b].name +
                 "' are never active together; their modes are compatible "
                 "and can share one reconfigurable region",
             "", module_span(modules[a].name));
    }
  }

  if (configs.size() < 2)
    emit(Severity::Info, "single-config",
         "only one configuration: the design never reconfigures", "",
         root_span);

  // The lower-bound infeasibility proof. With an explicit target the bound
  // is checked against it; otherwise against the whole library (can the
  // design be implemented on any device at all?).
  if (explicit_target) {
    out.proof =
        prove_infeasible(design, target_capacity, options.library, target_label);
  } else if (!options.library.devices().empty()) {
    out.proof = prove_infeasible(design, largest_device, options.library,
                                 "the largest library device");
  }
  if (out.proof) {
    std::string fixit;
    if (!out.proof->smallest_fitting_device.empty())
      fixit = "target " + out.proof->smallest_fitting_device + " or larger";
    else
      fixit = "reduce " + out.proof->binding +
              " usage; no library device can hold the design";
    emit(Severity::Error, "infeasible", out.proof->to_string(),
         std::move(fixit), root_span);
  }

  sort_by_severity(out.diagnostics);
  return out;
}

json::Value analysis_json(const AnalysisResult& result) {
  json::Value v = json::Value::object();
  if (result.proof)
    v.set("feasible", json::Value(false));
  else if (result.has_errors())
    v.set("feasible", json::Value());  // unknown: the design did not build
  else
    v.set("feasible", json::Value(true));
  v.set("errors", json::Value(
                      static_cast<std::uint64_t>(result.count(Severity::Error))));
  v.set("warnings",
        json::Value(static_cast<std::uint64_t>(result.count(Severity::Warning))));
  v.set("infos",
        json::Value(static_cast<std::uint64_t>(result.count(Severity::Info))));

  json::Value diags = json::Value::array();
  for (const Diagnostic& d : result.diagnostics) {
    json::Value item = json::Value::object();
    item.set("severity", json::Value(std::string(to_string(d.severity))));
    item.set("code", json::Value(d.code));
    item.set("message", json::Value(d.message));
    if (!d.fixit.empty()) item.set("fixit", json::Value(d.fixit));
    if (d.span.known()) {
      item.set("line", json::Value(static_cast<std::uint64_t>(d.span.line)));
      item.set("column",
               json::Value(static_cast<std::uint64_t>(d.span.column)));
    }
    diags.push_back(std::move(item));
  }
  v.set("diagnostics", std::move(diags));
  if (result.proof) v.set("proof", proof_json(*result.proof));
  return v;
}

}  // namespace prpart::analysis
