#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "design/design.hpp"
#include "design/io_xml.hpp"
#include "device/device.hpp"
#include "util/json.hpp"

namespace prpart::analysis {

/// Target selection for the feasibility checks, mirroring the CLI's
/// --device/--budget flags: an explicit budget wins, then a named device;
/// with neither the design is checked against the whole device library
/// (the paper's device-selection mode).
struct AnalysisOptions {
  DeviceLibrary library = DeviceLibrary::virtex5();
  std::string device;                 ///< named target; "" = none
  std::optional<ResourceVec> budget;  ///< explicit budget; overrides device
};

/// A static proof that no partitioning scheme fits the target: even a
/// single region holding every configuration — the minimum feasible PR
/// implementation of §IV-C — needs more than the target provides. This is
/// exactly the feasibility bound the allocation search applies, so when
/// the analyzer emits this proof, running `partition` is guaranteed to
/// return infeasible (the soundness property the tests assert).
struct InfeasibilityProof {
  /// Element-wise max over configurations of the sum of their active mode
  /// areas (Eq. 2 over the connectivity-matrix rows).
  ResourceVec raw_lower_bound;
  /// raw_lower_bound rounded up to whole tiles (Eqs. 3-5) plus the static
  /// base: the least fabric any scheme occupies.
  ResourceVec lower_bound;
  /// What the bound was compared against: a device name, "budget", or
  /// "library" (no device in the whole family fits).
  std::string target;
  ResourceVec capacity;
  /// Witness: the binding resource (largest shortfall) and its numbers.
  std::string binding;
  std::uint32_t required = 0;   ///< lower_bound's binding component
  std::uint32_t available = 0;  ///< capacity's binding component
  /// Smallest library device the lower bound does fit; "" when none.
  std::string smallest_fitting_device;

  /// One-sentence human explanation of the proof.
  std::string to_string() const;
};

/// Everything the analyzer found for one design.
struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;  ///< errors first, then warnings/infos
  /// Engaged when the lower-bound proof fired; an `infeasible` error
  /// diagnostic is also present in `diagnostics`.
  std::optional<InfeasibilityProof> proof;

  bool has_errors() const;
  std::size_t count(Severity s) const;
};

/// Runs every semantic check on a structurally valid design: the ported
/// linter checks (dead modes, unused modules, always-on modes, zero-area
/// modes, duplicate mode areas, oversized modes, single configuration)
/// plus subsumed configurations, compatibility-derived merge suggestions
/// and the lower-bound infeasibility proof. `spans` (optional) maps the
/// findings back to source positions.
AnalysisResult analyze_design(const Design& design,
                              const AnalysisOptions& options = {},
                              const DesignSpans* spans = nullptr);

/// The lower-bound feasibility check alone: returns the proof when the
/// design cannot fit `budget` under any scheme, nullopt when the bound
/// fits. `target` labels the proof (a device name or "budget"); `library`
/// supplies the witness device. Used by `partition` and the server to
/// reject hopeless jobs before running a search.
std::optional<InfeasibilityProof> prove_infeasible(const Design& design,
                                                   const ResourceVec& budget,
                                                   const DeviceLibrary& library,
                                                   const std::string& target);

/// Encodes an analysis result as JSON. The same encoder backs the CLI's
/// `analyze --json` output and the server's `analyze` response, so the two
/// are byte-identical for the same input (the integration tests diff them).
json::Value analysis_json(const AnalysisResult& result);

}  // namespace prpart::analysis
