#pragma once

#include <optional>
#include <string>

#include "analysis/analyzer.hpp"
#include "design/io_xml.hpp"

namespace prpart::analysis {

/// Result of analyzing raw XML text: structural diagnostics plus, when the
/// document is sound, the constructed design with its source spans and the
/// semantic findings of analyze_design.
struct SourceAnalysis {
  AnalysisResult result;
  /// Engaged when the document parsed and passed every structural check.
  std::optional<ParsedDesign> parsed;

  bool has_errors() const { return result.has_errors(); }
};

/// Front end of the analyzer. Unlike design_from_xml — which throws on the
/// first problem — this walk is tolerant: every XML syntax error, schema
/// violation, unknown module/mode reference and duplicate is collected as
/// an error diagnostic with a source span. When the text survives all
/// structural checks the design is built and the semantic checks run too.
SourceAnalysis analyze_design_source(const std::string& text,
                                     const AnalysisOptions& options = {});

}  // namespace prpart::analysis
