#include "related/rana_clustering.hpp"

#include <algorithm>
#include <map>

#include "device/tiles.hpp"
#include "util/status.hpp"

namespace prpart {

CommunicationGraph::CommunicationGraph(std::size_t modules)
    : bandwidth_(modules, std::vector<double>(modules, 0.0)) {
  require(modules > 0, "communication graph needs at least one module");
}

void CommunicationGraph::set(std::size_t a, std::size_t b, double bandwidth) {
  require(a < modules() && b < modules(), "module index out of range");
  require(bandwidth >= 0.0, "bandwidth must be non-negative");
  require(a != b, "self communication is not modelled");
  bandwidth_[a][b] = bandwidth;
  bandwidth_[b][a] = bandwidth;
}

double CommunicationGraph::at(std::size_t a, std::size_t b) const {
  require(a < modules() && b < modules(), "module index out of range");
  return bandwidth_[a][b];
}

CommunicationGraph CommunicationGraph::random(Rng& rng, std::size_t modules,
                                              double density) {
  CommunicationGraph g(modules);
  for (std::size_t a = 0; a < modules; ++a)
    for (std::size_t b = a + 1; b < modules; ++b)
      if (rng.chance(density)) g.set(a, b, rng.uniform01() + 1e-6);
  return g;
}

ModuleGrouping communication_clustering(const CommunicationGraph& comm,
                                        std::size_t target_regions) {
  const std::size_t n = comm.modules();
  require(target_regions >= 1 && target_regions <= n,
          "target region count must be in [1, modules]");

  ModuleGrouping grouping;
  grouping.groups.resize(n);
  for (std::size_t m = 0; m < n; ++m) grouping.groups[m] = {m};

  auto inter = [&](const std::vector<std::size_t>& a,
                   const std::vector<std::size_t>& b) {
    double sum = 0.0;
    for (std::size_t x : a)
      for (std::size_t y : b) sum += comm.at(x, y);
    return sum;
  };

  while (grouping.groups.size() > target_regions) {
    std::size_t best_a = 0, best_b = 1;
    double best = -1.0;
    for (std::size_t a = 0; a < grouping.groups.size(); ++a)
      for (std::size_t b = a + 1; b < grouping.groups.size(); ++b) {
        const double w = inter(grouping.groups[a], grouping.groups[b]);
        if (w > best) {
          best = w;
          best_a = a;
          best_b = b;
        }
      }
    auto& ga = grouping.groups[best_a];
    auto& gb = grouping.groups[best_b];
    ga.insert(ga.end(), gb.begin(), gb.end());
    std::sort(ga.begin(), ga.end());
    grouping.groups.erase(grouping.groups.begin() +
                          static_cast<std::ptrdiff_t>(best_b));
  }
  return grouping;
}

double intra_group_bandwidth(const CommunicationGraph& comm,
                             const ModuleGrouping& grouping) {
  double sum = 0.0;
  for (const auto& group : grouping.groups)
    for (std::size_t i = 0; i < group.size(); ++i)
      for (std::size_t j = i + 1; j < group.size(); ++j)
        sum += comm.at(group[i], group[j]);
  return sum;
}

SchemeEvaluation evaluate_module_grouping(const Design& design,
                                          const ModuleGrouping& grouping,
                                          const ResourceVec& budget) {
  const std::size_t nconf = design.configurations().size();

  // Validate the grouping covers each module exactly once.
  std::vector<bool> seen(design.modules().size(), false);
  for (const auto& group : grouping.groups)
    for (std::size_t m : group) {
      require(m < seen.size(), "grouping references unknown module");
      require(!seen[m], "grouping lists a module twice");
      seen[m] = true;
    }
  require(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }),
          "grouping must cover every module");

  SchemeEvaluation eval;
  eval.valid = true;

  for (const auto& group : grouping.groups) {
    RegionReport report;
    report.active.assign(nconf, -1);

    // Signature of the group's combined bitstream per configuration: the
    // mode choice of every member module. Distinct signatures are distinct
    // bitstreams; all-absent means the region is not needed.
    std::map<std::vector<std::uint32_t>, int> signatures;
    for (std::size_t c = 0; c < nconf; ++c) {
      const Configuration& conf = design.configurations()[c];
      std::vector<std::uint32_t> sig;
      sig.reserve(group.size());
      ResourceVec area;
      bool any = false;
      for (std::size_t m : group) {
        const std::uint32_t mode = conf.mode_of_module[m];
        sig.push_back(mode);
        if (mode != 0) {
          any = true;
          area += design.modules()[m].modes[mode - 1].area;
        }
      }
      if (!any) continue;
      report.raw = elementwise_max(report.raw, area);
      const auto [it, inserted] = signatures.emplace(
          std::move(sig), static_cast<int>(signatures.size()));
      report.active[c] = it->second;
    }

    report.tiles = tiles_for(report.raw);
    report.frames = report.tiles.frames();
    eval.pr_resources += report.tiles.resources();

    std::uint64_t present = 0, same_pairs = 0;
    std::vector<std::uint64_t> count(signatures.size(), 0);
    for (int a : report.active)
      if (a >= 0) {
        ++present;
        ++count[static_cast<std::size_t>(a)];
      }
    for (std::uint64_t k : count) same_pairs += k * (k - 1) / 2;
    report.reconfig_pairs = present * (present - 1) / 2 - same_pairs;
    eval.total_frames += report.reconfig_pairs * report.frames;
    eval.regions.push_back(std::move(report));
  }

  for (std::size_t i = 0; i < nconf; ++i)
    for (std::size_t j = i + 1; j < nconf; ++j) {
      std::uint64_t frames = 0;
      for (const RegionReport& report : eval.regions) {
        const int a = report.active[i];
        const int b = report.active[j];
        if (a >= 0 && b >= 0 && a != b) frames += report.frames;
      }
      eval.worst_frames = std::max(eval.worst_frames, frames);
    }

  eval.static_resources = design.static_base();
  eval.total_resources = eval.pr_resources + eval.static_resources;
  eval.fits = eval.total_resources.fits_in(budget);
  return eval;
}

}  // namespace prpart
