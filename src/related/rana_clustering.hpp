#pragma once

#include <cstdint>
#include <vector>

#include "core/scheme.hpp"
#include "design/design.hpp"
#include "util/rng.hpp"

namespace prpart {

/// Inter-module communication bandwidths (symmetric, arbitrary units),
/// indexed by module. This is the input of the related-work algorithm of
/// Rana et al. [5] ("Minimization of the reconfiguration latency for the
/// mapping of applications on FPGA-based systems", CODES+ISSS 2009), which
/// the paper's §II discusses: modules with heavy communication are grouped
/// into the same reconfigurable region, and the number of regions is fixed
/// by the designer.
class CommunicationGraph {
 public:
  explicit CommunicationGraph(std::size_t modules);

  std::size_t modules() const { return bandwidth_.size(); }
  void set(std::size_t a, std::size_t b, double bandwidth);
  double at(std::size_t a, std::size_t b) const;

  /// Random graph for sweeps: each module pair communicates with
  /// probability `density`, with bandwidth uniform in (0, 1].
  static CommunicationGraph random(Rng& rng, std::size_t modules,
                                   double density = 0.5);

 private:
  std::vector<std::vector<double>> bandwidth_;
};

/// A grouping of modules into regions (the output of [5]'s clustering):
/// groups[r] lists the module indices hosted by region r.
struct ModuleGrouping {
  std::vector<std::vector<std::size_t>> groups;
};

/// Agglomerative communication clustering per [5]: every module starts in
/// its own group; the two groups with the highest inter-group bandwidth are
/// merged until `target_regions` remain. Ties break deterministically on
/// the lowest module indices.
ModuleGrouping communication_clustering(const CommunicationGraph& comm,
                                        std::size_t target_regions);

/// Total bandwidth between modules that ended up in the same region — the
/// quantity [5] maximises (communication kept off the inter-region links).
double intra_group_bandwidth(const CommunicationGraph& comm,
                             const ModuleGrouping& grouping);

/// Evaluates a module grouping under this paper's cost model so the two
/// algorithms can be compared on equal terms. A region hosting module
/// group G holds, per configuration, the combined bitstream of G's active
/// modes; its area is the largest such combination (tile-rounded) and it is
/// reconfigured whenever any member module changes mode (stale-content rule
/// when all of G is absent).
SchemeEvaluation evaluate_module_grouping(const Design& design,
                                          const ModuleGrouping& grouping,
                                          const ResourceVec& budget);

}  // namespace prpart
