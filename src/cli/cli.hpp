#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace prpart::cli {

/// Entry point of the `prpart` command-line tool, separated from main() so
/// the tests can drive it with captured streams.
///
/// Commands:
///   prpart help
///   prpart devices
///   prpart analyze <design.xml> [--device NAME | --budget C,B,D] [--json]
///                  (alias: lint)
///   prpart estimate [--luts N] [--ffs N] [--mults N] [--kbits N]
///                   [--distbits N]
///   prpart generate [--seed S] [--class logic|memory|dsp|dspmem] [-out F]
///   prpart partition <design.xml> [--device NAME | --budget C,B,D]
///                    [--candidate-sets N] [--evals N]
///                    [--floorplan] [--ucf FILE]
///   prpart simulate <design.xml> [--device NAME | --budget C,B,D]
///                   [--steps N] [--seed S] [--prefetch]
///   prpart bitstreams <design.xml> [--device NAME | --budget C,B,D]
///                     [--out DIR]
///   prpart flow <design.xml> [--device NAME] [--out DIR]
///   prpart optimal <design.xml> [--device NAME | --budget C,B,D]
///                  [--states N]
///
/// `partition --save FILE` archives the chosen scheme; `simulate --load
/// FILE` replays it without re-running the search.
///
/// Returns a process exit code (0 success, 1 user error, 2 infeasible;
/// `analyze` exits 4 when any error-severity diagnostic fires).
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace prpart::cli
