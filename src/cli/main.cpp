// The `prpart` command-line tool: the user-facing front end of the
// partitioning flow (Fig. 2). See cli.hpp for the command list.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return prpart::cli::run(args, std::cout, std::cerr);
}
