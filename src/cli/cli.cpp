#include "cli/cli.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "analysis/frontend.hpp"
#include "bitstream/bitstream.hpp"
#include "core/clustering.hpp"
#include "core/compatibility.hpp"
#include "core/connectivity.hpp"
#include "core/optimal.hpp"
#include "core/partitioner.hpp"
#include "core/report.hpp"
#include "core/result_io.hpp"
#include "design/io_xml.hpp"
#include "design/synthetic.hpp"
#include "floorplan/floorplanner.hpp"
#include "floorplan/placement.hpp"
#include "floorplan/rerank.hpp"
#include "flow/flow.hpp"
#include "reconfig/markov.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/router.hpp"
#include "server/server.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "synth/estimator.hpp"
#include "util/args.hpp"
#include "util/simd.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace prpart::cli {

namespace {

constexpr const char* kUsage = R"(prpart - automated partitioning for partial reconfiguration designs

usage:
  prpart version
  prpart devices
  prpart analyze <design.xml> [--device NAME | --budget C,B,D] [--json]
  prpart estimate [--luts N] [--ffs N] [--mults N] [--kbits N] [--distbits N]
  prpart generate [--seed S] [--class logic|memory|dsp|dspmem] [--out FILE]
  prpart partition <design.xml> [--device NAME | --budget C,B,D]
                   [--candidate-sets N] [--evals N] [--threads N]
                   [--floorplan] [--ucf FILE] [--save FILE]
                   [--search-stats] [--json]
  prpart floorplan <design.xml> [--device NAME | --budget C,B,D]
                   [--candidate-sets N] [--evals N] [--threads N]
                   [--top-k N] [--first-fit] [--no-anneal]
                   [--anneal-seed S] [--ucf FILE] [--json]
  prpart simulate <design.xml> [--device NAME | --budget C,B,D]
                  [--steps N] [--seed S] [--trace FILE | --uniform]
                  [--prefetch] [--arrival-ns N] [--idle-frames N]
                  [--floorplan] [--load FILE] [--rank] [--threads N] [--json]
  prpart bitstreams <design.xml> [--device NAME | --budget C,B,D]
                    [--threads N] [--out DIR]
  prpart flow <design.xml> [--device NAME] [--threads N] [--out DIR]
  prpart optimal <design.xml> [--device NAME | --budget C,B,D] [--states N]
  prpart serve [--port N] [--workers K] [--max-queue N] [--timeout MS]
               [--cache N] [--store DIR] [--store-entries N]
               [--high-watermark N] [--max-inflight N] [--io-workers K]
               [--job-threads N] [--log-interval MS] [--shards N]
               [--legacy-io]
  prpart submit <design.xml> [--host H] [--port N]
                [--device NAME | --budget C,B,D] [--candidate-sets N]
                [--evals N] [--threads N] [--timeout MS] [--id ID] [--json]
  prpart stats [--host H] [--port N] [--json]

With neither --device nor --budget, partitioning walks the device library
(the paper's Virtex-5 parts plus reference parts with distinct column
layouts; see `prpart devices`) from the smallest device up (the paper's
device-selection mode). `analyze`
(alias: `lint`) runs the static diagnostics engine: structural checks with
source spans, design hygiene warnings and a resource lower-bound
infeasibility proof; it exits 0 when clean, 4 when an error-severity
diagnostic fires. `flow`
runs the complete pipeline (partition, floorplan with feedback, UCF,
bitstreams) and writes the artefacts into --out. --threads N runs the
region-allocation search on N worker threads (default: hardware
concurrency; results are byte-identical for every N, and N=1 runs inline).
--search-stats prints the branch-and-bound search counters (work units,
pruned units, move/full evaluations, move-table rescores and lower-bound
tightness) after the partitioning; --json always carries the deterministic
subset in the `stats` object.

`floorplan` is the partition-floorplan co-optimization stage: it
partitions the design, places the search's top K enumerated schemes as
rectangles on the device's column grid (skyline packer, then greedy, then
simulated-annealing refinement), replaces the Eq. 10 frame estimates with
the frames of the placed rectangles, vetoes schemes with no legal
floorplan and re-ranks the rest by placement-true cost. The re-rank only
reorders within the enumerated candidate set and is byte-identical at any
--threads value. --top-k bounds how many schemes are floorplanned,
--first-fit switches the greedy rung's strategy, --no-anneal disables the
refinement rung and --anneal-seed pins its RNG. `partition --floorplan`
places just the proposed scheme through the same ladder; `simulate
--floorplan` replays the workload against placement-true ICAP costs.
Exit code 2 means every candidate was vetoed (the diagnostics name the
binding resource column and the smallest feasible library device).

`simulate` replays a transition workload against the proposed scheme
through the ICAP datapath model and reports served reconfiguration
latency (p50/p95/p99/max), frame and prefetch counters: a Markov-sampled
trace of --steps transitions by default, --uniform for the Eulerian
all-pairs circuit behind the paper's Eq. 10 proxy, or --trace FILE for a
recorded trace (whitespace-separated configuration ids, `#` comments).
--rank additionally replays the search's runner-up schemes; --arrival-ns
switches from closed-loop to fixed-period arrivals (queueing shows up in
the latency); --prefetch enables Markov-predicted prefetching within
--idle-frames per idle period. Results are byte-deterministic for a given
seed at any --threads value.
)";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

ResourceVec parse_budget(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ',');
  if (parts.size() != 3)
    throw ParseError("--budget expects CLBS,BRAMS,DSPS, got '" + spec + "'");
  return {static_cast<std::uint32_t>(parse_u64(parts[0])),
          static_cast<std::uint32_t>(parse_u64(parts[1])),
          static_cast<std::uint32_t>(parse_u64(parts[2]))};
}

/// Resolves the target: explicit budget, named device, or smallest-device
/// search. Returns the partitioning result plus the device used (nullptr
/// for an explicit budget).
struct Target {
  PartitionerResult result;
  const Device* device = nullptr;
  ResourceVec budget;
};

Target resolve_and_partition(const Design& design, const Args& args,
                             const DeviceLibrary& library,
                             const PartitionerOptions& options) {
  Target t;
  if (const auto budget = args.value("budget")) {
    t.budget = parse_budget(*budget);
    t.result = partition_design(design, t.budget, options);
    return t;
  }
  if (const auto device = args.value("device")) {
    const Device& d = library.by_name(*device);
    t.device = &d;
    t.budget = d.capacity();
    t.result = partition_design(design, t.budget, options);
    return t;
  }
  DevicePartitionResult dp =
      partition_on_smallest_device(design, library, options);
  t.device = dp.device;
  t.budget = dp.device->capacity();
  t.result = std::move(dp.result);
  return t;
}

PartitionerOptions options_from(const Args& args) {
  PartitionerOptions opt;
  opt.search.max_candidate_sets = args.u64_or("candidate-sets", 48);
  opt.search.max_move_evaluations = args.u64_or("evals", 2'000'000);
  // --threads N fans the search's work units over N workers; the default 0
  // resolves to hardware concurrency and 1 runs inline. Any value returns
  // byte-identical schemes (see DESIGN.md, parallel search).
  opt.search.threads = static_cast<unsigned>(args.u64_or("threads", 0));
  return opt;
}

int cmd_devices(std::ostream& out) {
  const DeviceLibrary v5 = DeviceLibrary::virtex5();
  out << "Virtex-5 device library (smallest to largest):\n";
  for (const Device& d : v5.devices())
    out << "  " << d.name() << ": " << d.capacity().to_string() << ", "
        << d.rows() << " rows, " << d.columns().size() << " columns\n";
  out << "Reference parts (distinct column layouts, for floorplanning):\n";
  const DeviceLibrary ref = DeviceLibrary::reference_parts();
  for (const Device& d : ref.devices())
    out << "  " << d.name() << ": " << d.capacity().to_string() << ", "
        << d.rows() << " rows, " << d.columns().size() << " columns\n";
  return 0;
}

/// Builds analyzer options from --device/--budget. An unknown device or a
/// conflicting pair is a usage error (exit 1), reported before any
/// analysis runs.
analysis::AnalysisOptions analysis_options_from(const Args& args) {
  analysis::AnalysisOptions opt;
  if (const auto device = args.value("device")) {
    opt.library.by_name(*device);  // throws DeviceError when unknown
    opt.device = *device;
  }
  if (const auto budget = args.value("budget")) opt.budget = parse_budget(*budget);
  if (!opt.device.empty() && opt.budget)
    throw ParseError("--device and --budget are mutually exclusive");
  return opt;
}

int cmd_analyze(const Args& args, std::ostream& out) {
  const std::string& path = args.positionals().at(1);
  const analysis::SourceAnalysis sa =
      analysis::analyze_design_source(read_file(path),
                                      analysis_options_from(args));
  if (args.has("json")) {
    // Same encoder as the server's `analyze` result payload, byte for byte.
    out << analysis::analysis_json(sa.result).dump() << "\n";
  } else if (sa.result.diagnostics.empty()) {
    out << "no issues found\n";
  } else {
    out << analysis::render_text(sa.result.diagnostics, path);
  }
  return sa.has_errors() ? 4 : 0;
}

int cmd_estimate(const Args& args, std::ostream& out) {
  synth::BehavioralSpec spec;
  spec.luts = static_cast<std::uint32_t>(args.u64_or("luts", 0));
  spec.ffs = static_cast<std::uint32_t>(args.u64_or("ffs", 0));
  spec.mult18s = static_cast<std::uint32_t>(args.u64_or("mults", 0));
  spec.mem_kbits = static_cast<std::uint32_t>(args.u64_or("kbits", 0));
  spec.dist_mem_bits = static_cast<std::uint32_t>(args.u64_or("distbits", 0));
  out << synth::estimate(spec).to_string() << "\n";
  return 0;
}

int cmd_generate(const Args& args, std::ostream& out) {
  const std::uint64_t seed = args.u64_or("seed", 1);
  const std::string cls = args.value_or("class", "logic");
  CircuitClass circuit_class;
  if (cls == "logic") circuit_class = CircuitClass::Logic;
  else if (cls == "memory") circuit_class = CircuitClass::Memory;
  else if (cls == "dsp") circuit_class = CircuitClass::Dsp;
  else if (cls == "dspmem") circuit_class = CircuitClass::DspAndMemory;
  else throw ParseError("unknown --class '" + cls + "'");

  Rng rng(seed);
  const SyntheticDesign s = generate_synthetic(rng, circuit_class);
  const std::string xml = design_to_xml(s.design);
  if (const auto path = args.value("out")) {
    std::ofstream f(*path, std::ios::binary);
    if (!f) throw ParseError("cannot write '" + *path + "'");
    f << xml;
    out << "wrote " << *path << "\n";
  } else {
    out << xml;
  }
  return 0;
}

int cmd_partition(const Args& args, std::ostream& out, std::ostream& err) {
  const bool json_out = args.has("json");
  if (json_out && (args.has("floorplan") || args.has("ucf")))
    throw ParseError("--json cannot be combined with --floorplan/--ucf");
  const Design design = design_from_xml(read_file(args.positionals().at(1)));
  const DeviceLibrary lib = DeviceLibrary::extended();
  // Lower-bound pre-check for explicit targets: a provably hopeless design
  // is rejected with the proof before any search runs. (--json keeps the
  // full engine run so its payload stays byte-identical to the server's.)
  if (!json_out) {
    std::optional<ResourceVec> pre_budget;
    std::string label = "budget";
    if (const auto b = args.value("budget")) {
      pre_budget = parse_budget(*b);
    } else if (const auto d = args.value("device")) {
      const Device& device = lib.by_name(*d);
      pre_budget = device.capacity();
      label = device.name();
    }
    if (pre_budget) {
      if (const auto proof =
              analysis::prove_infeasible(design, *pre_budget, lib, label)) {
        err << "design does not fit the target (lower bound "
            << (design.largest_configuration_area() + design.static_base())
                   .to_string()
            << ", budget " << pre_budget->to_string() << ")\n"
            << "  " << proof->to_string() << "\n";
        if (!proof->smallest_fitting_device.empty())
          err << "  smallest fitting library device: "
              << proof->smallest_fitting_device << "\n";
        return 2;
      }
    }
  }
  const Target t =
      resolve_and_partition(design, args, lib, options_from(args));
  if (json_out) {
    // Same encoder as the server's `result` payload, so scripted callers
    // and the integration tests can diff the two byte for byte.
    out << server::partition_result_json(design, t.result,
                                         t.device ? t.device->name() : "",
                                         t.budget)
               .dump()
        << "\n";
    if (const auto save = args.value("save")) {
      if (!t.result.feasible) throw ParseError("--save needs a feasible result");
      std::ofstream f(*save, std::ios::binary);
      if (!f) throw ParseError("cannot write '" + *save + "'");
      f << partitioning_to_xml(design, t.result.base_partitions,
                               t.result.proposed.scheme,
                               t.result.proposed.eval);
      err << "saved partitioning to " << *save << "\n";
    }
    return t.result.feasible ? 0 : 2;
  }
  if (!t.result.feasible) {
    err << "design does not fit the target (lower bound "
        << (design.largest_configuration_area() + design.static_base())
               .to_string()
        << ", budget " << t.budget.to_string() << ")\n";
    return 2;
  }
  if (t.device) out << "target device: " << t.device->name() << "\n";
  out << "budget: " << t.budget.to_string() << "\n\n";
  out << render_scheme_comparison(t.result);
  out << "\nProposed partitioning:\n"
      << render_scheme_partitions(design, t.result.base_partitions,
                                  t.result.proposed.scheme);

  if (args.has("search-stats")) {
    const SearchStats& s = t.result.stats;
    out << "\nSearch statistics:\n"
        << "  work units:       " << s.units << " (" << s.units_pruned
        << " pruned by the lower bound)\n"
        << "  move evaluations: " << s.move_evaluations
        << (s.budget_exhausted ? " (budget exhausted)" : "") << "\n"
        << "  full evaluations: " << s.full_evaluations << " fresh, "
        << s.moves_rescored << " rescored from the move table\n"
        << "  greedy descents:  " << s.greedy_runs << " over "
        << s.candidate_sets << " candidate sets, " << s.states_recorded
        << " states recorded\n";
    if (s.bound_best_sum > 0) {
      // Mean lb/best over accepted units: 100% means the bound was exact.
      out << "  bound tightness:  " << (100 * s.bound_lb_sum) / s.bound_best_sum
          << "% (lb sum " << s.bound_lb_sum << " / best sum "
          << s.bound_best_sum << ")\n";
    }
    out << "  kernel evals:     " << s.kernel_evaluations << " ("
        << s.signature_collapsed_configs << " configs signature-collapsed)\n"
        << "  simd tier:        " << simd::tier_name(simd::active_tier())
        << "\n";
  }

  if (const auto save = args.value("save")) {
    std::ofstream f(*save, std::ios::binary);
    if (!f) throw ParseError("cannot write '" + *save + "'");
    f << partitioning_to_xml(design, t.result.base_partitions,
                             t.result.proposed.scheme, t.result.proposed.eval);
    out << "saved partitioning to " << *save << "\n";
  }

  if (args.has("floorplan") || args.has("ucf")) {
    const Device& device = t.device ? *t.device : *[&]() -> const Device* {
      const Device* d = lib.smallest_fitting(t.budget);
      if (!d) throw DeviceError("no library device covers the budget");
      return d;
    }();
    const PlacedFloorplan plan =
        floorplan_scheme(device, t.result.proposed.eval, {}, &lib);
    if (!plan.feasible) {
      err << "floorplanning failed on " << device.name() << ":\n";
      for (const analysis::Diagnostic& d : plan.verdict.diagnostics) {
        err << "  " << d.message << "\n";
        if (!d.fixit.empty()) err << "    fix: " << d.fixit << "\n";
      }
      return 2;
    }
    out << "\nFloorplan on " << device.name() << " ("
        << to_string(plan.stage) << "):\n";
    for (const RegionPlacement& p : plan.placements) {
      if (p.width == 0) continue;
      out << "  PRR" << p.region + 1 << ": rows [" << p.row << ","
          << p.row + p.height << ") cols [" << p.col << "," << p.col + p.width
          << "), " << with_commas(plan.placed_frames[p.region]) << " frames\n";
    }
    const SchemeEvaluation placed =
        with_placement_frames(t.result.proposed.eval, plan);
    out << "  placement-true: " << with_commas(placed.total_frames)
        << " total frames (estimate "
        << with_commas(t.result.proposed.eval.total_frames) << "), worst "
        << with_commas(placed.worst_frames) << "\n";
    if (const auto ucf_path = args.value("ucf")) {
      std::ofstream f(*ucf_path, std::ios::binary);
      if (!f) throw ParseError("cannot write '" + *ucf_path + "'");
      f << to_ucf(device, plan.placements);
      out << "wrote " << *ucf_path << "\n";
    }
  }
  return 0;
}

server::FloorplanParams floorplan_params_from(const Args& args) {
  server::FloorplanParams p;
  p.top_k = args.u64_or("top-k", 5);
  if (p.top_k == 0) throw ParseError("--top-k must be positive");
  p.first_fit = args.has("first-fit");
  p.anneal = !args.has("no-anneal");
  p.anneal_seed = args.u64_or("anneal-seed", 1);
  return p;
}

int cmd_floorplan(const Args& args, std::ostream& out, std::ostream& err) {
  const bool json_out = args.has("json");
  const Design design = design_from_xml(read_file(args.positionals().at(1)));
  const DeviceLibrary lib = DeviceLibrary::extended();
  const server::FloorplanParams params = floorplan_params_from(args);
  const Target t =
      resolve_and_partition(design, args, lib, options_from(args));
  const std::string device_name = t.device ? t.device->name() : "";
  if (!t.result.feasible) {
    if (json_out) {
      out << server::floorplan_result_json(design, t.result, {}, device_name,
                                           t.budget)
                 .dump()
          << "\n";
    } else {
      err << "design does not fit the target (lower bound "
          << (design.largest_configuration_area() + design.static_base())
                 .to_string()
          << ", budget " << t.budget.to_string() << ")\n";
    }
    return 2;
  }

  // Placement target: the named/auto-walked device, or — for an explicit
  // budget — the first library device whose capacity covers it (rectangles
  // need real columns).
  const Device* device = t.device;
  if (!device) {
    device = lib.smallest_fitting(t.budget);
    if (!device) throw DeviceError("no library device covers the budget");
  }

  const FloorplanRerank rerank = floorplan_rerank(
      design, t.result, *device, t.budget, params.rerank_options(), &lib);
  if (json_out) {
    // Same encoder as the server's `floorplan` result payload, byte for
    // byte (the same contract as `partition --json`).
    out << server::floorplan_result_json(design, t.result, rerank,
                                         device_name, t.budget)
               .dump()
        << "\n";
    return rerank.any_feasible ? 0 : 2;
  }

  out << "placement device: " << device->name() << "\n";
  out << "budget: " << t.budget.to_string() << "\n\n";
  out << "Placement-true re-ranking (" << rerank.ranked.size()
      << " enumerated schemes, " << rerank.vetoed_count << " vetoed):\n";
  for (std::size_t rank = 0; rank < rerank.ranked.size(); ++rank) {
    const FloorplanCandidate& c = rerank.ranked[rank];
    out << "  #" << rank + 1 << " scheme " << c.source_index + 1;
    if (c.vetoed) {
      out << ": VETOED (estimate " << with_commas(c.estimated_total)
          << " frames)\n";
      for (const analysis::Diagnostic& d : c.plan.verdict.diagnostics) {
        out << "       " << d.message << "\n";
        if (!d.fixit.empty()) out << "       fix: " << d.fixit << "\n";
      }
    } else {
      out << " [" << to_string(c.plan.stage)
          << "]: " << with_commas(c.placement_total)
          << " frames placement-true (estimate "
          << with_commas(c.estimated_total) << ", worst "
          << with_commas(c.placement_worst) << ", waste "
          << with_commas(c.plan.stats.waste_frames) << ")\n";
    }
  }
  if (!rerank.any_feasible) {
    err << "no enumerated scheme has a legal floorplan on " << device->name()
        << "\n";
    return 2;
  }

  const FloorplanCandidate& winner = rerank.ranked.front();
  if (rerank.overturned) {
    const auto eq10 = std::find_if(
        rerank.ranked.begin(), rerank.ranked.end(),
        [](const FloorplanCandidate& c) { return c.source_index == 0; });
    out << "\nplacement-true cost overturns the Eq. 10 ranking: scheme "
        << rerank.winner_source + 1 << " replaces scheme 1"
        << (eq10 != rerank.ranked.end() && eq10->vetoed ? " (vetoed)"
                                                        : " (re-ranked)")
        << "\n";
  } else {
    out << "\nthe Eq. 10 winner survives placement\n";
  }

  out << "\nWinner floorplan on " << device->name() << " ("
      << to_string(winner.plan.stage) << "):\n";
  for (std::size_t r = 0; r < winner.plan.placements.size(); ++r) {
    const RegionPlacement& p = winner.plan.placements[r];
    if (p.width == 0) continue;
    out << "  PRR" << r + 1 << ": rows [" << p.row << "," << p.row + p.height
        << ") cols [" << p.col << "," << p.col + p.width << "), "
        << with_commas(winner.plan.placed_frames[r]) << " frames\n";
  }
  out << "\nWinning partitioning:\n"
      << render_scheme_partitions(design, t.result.base_partitions,
                                  winner.scheme);
  if (const auto ucf_path = args.value("ucf")) {
    std::ofstream f(*ucf_path, std::ios::binary);
    if (!f) throw ParseError("cannot write '" + *ucf_path + "'");
    f << to_ucf(*device, winner.plan.placements);
    out << "wrote " << *ucf_path << "\n";
  }
  return 0;
}

int cmd_simulate(const Args& args, std::ostream& out, std::ostream& err) {
  const bool json_out = args.has("json");
  const Design design = design_from_xml(read_file(args.positionals().at(1)));
  const DeviceLibrary lib = DeviceLibrary::extended();
  const std::size_t n = design.configurations().size();
  if (n < 2) throw ParseError("simulation needs at least two configurations");

  server::SimulateParams params;
  params.steps = args.u64_or("steps", 100'000);
  if (params.steps == 0) throw ParseError("--steps must be positive");
  params.seed = args.u64_or("seed", 1);
  params.prefetch = args.has("prefetch");
  params.uniform = args.has("uniform");
  params.inter_arrival_ns = args.u64_or("arrival-ns", 0);
  params.floorplan = args.has("floorplan");
  if (params.floorplan && args.value("load"))
    throw ParseError("--floorplan cannot be combined with --load");

  // Schemes to replay: the saved partitioning, or the search's proposal
  // (plus its ranked runners-up with --rank).
  std::vector<PartitionScheme> schemes;
  std::vector<SchemeEvaluation> evals;
  std::string device_name;
  ResourceVec budget;
  if (const auto load = args.value("load")) {
    // Re-derive the base partitions and evaluate the saved scheme instead
    // of re-running the search. The budget only gates fit; use an
    // unconstrained one for simulation.
    const ConnectivityMatrix matrix(design);
    const auto partitions = enumerate_base_partitions(design, matrix);
    PartitionScheme scheme =
        partitioning_from_xml(design, partitions, read_file(*load));
    SchemeEvaluation eval =
        evaluate_scheme(design, matrix, partitions, scheme, {~0u, ~0u, ~0u});
    if (!eval.valid) {
      err << "loaded partitioning is invalid: " << eval.invalid_reason << "\n";
      return 2;
    }
    if (scheme.label.empty()) scheme.label = "loaded";
    schemes.push_back(std::move(scheme));
    evals.push_back(std::move(eval));
  } else {
    const Target t =
        resolve_and_partition(design, args, lib, options_from(args));
    if (!t.result.feasible) {
      err << "design does not fit the target\n";
      return 2;
    }
    if (t.device) device_name = t.device->name();
    budget = t.budget;
    schemes.push_back(t.result.proposed.scheme);
    evals.push_back(t.result.proposed.eval);
    if (args.has("rank")) {
      // Replay the runners-up too; the output then ranks the candidates by
      // what the workload actually pays instead of the Eq. 10 proxy.
      const ConnectivityMatrix matrix(design);
      const auto partitions = enumerate_base_partitions(design, matrix);
      for (std::size_t i = 1; i < t.result.alternatives.size(); ++i) {
        PartitionScheme alt = t.result.alternatives[i].scheme;
        SchemeEvaluation eval =
            evaluate_scheme(design, matrix, partitions, alt, t.budget);
        if (!eval.valid || !eval.fits) continue;
        if (alt.label.empty()) alt.label = "alt" + std::to_string(i);
        schemes.push_back(std::move(alt));
        evals.push_back(std::move(eval));
      }
    }
    if (params.floorplan) {
      // Replay against placement-true ICAP costs: floorplan every scheme
      // through the ladder and patch its frame counts. A vetoed proposal is
      // fatal; vetoed runners-up just drop out of the --rank replay.
      const Device* device = t.device ? t.device : lib.smallest_fitting(t.budget);
      if (!device) throw DeviceError("no library device covers the budget");
      std::vector<PartitionScheme> kept_schemes;
      std::vector<SchemeEvaluation> kept_evals;
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        const PlacedFloorplan plan = floorplan_scheme(*device, evals[i]);
        if (!plan.feasible) {
          if (i == 0) {
            err << "the proposed scheme has no legal floorplan on "
                << device->name() << "\n";
            return 2;
          }
          continue;
        }
        kept_schemes.push_back(std::move(schemes[i]));
        kept_evals.push_back(
            with_placement_frames(std::move(evals[i]), plan));
      }
      schemes = std::move(kept_schemes);
      evals = std::move(kept_evals);
    }
  }

  // The workload: a trace file, the Eulerian all-pairs circuit, or a
  // Markov-sampled trace (the default). The environment chain doubles as
  // the prefetch predictor in every mode.
  sim::TransitionTrace trace;
  std::string source;
  std::optional<MarkovChain> env;
  if (const auto trace_path = args.value("trace")) {
    const sim::TraceParse parsed =
        sim::parse_trace(read_file(*trace_path), n);
    if (!parsed.diagnostics.empty())
      err << analysis::render_text(parsed.diagnostics, *trace_path);
    if (!parsed.ok()) return 4;
    if (parsed.trace.transitions() == 0) {
      err << "trace '" << *trace_path << "' has no transitions\n";
      return 4;
    }
    trace = parsed.trace;
    source = "file";
    Rng rng(params.seed);
    env = MarkovChain::random(rng, n);
  } else {
    server::SimulateSetup setup = server::simulate_setup(n, params);
    trace = std::move(setup.trace);
    source = std::move(setup.source);
    env = std::move(setup.env);
  }

  sim::SimulationOptions sopt;
  sopt.prefetch = params.prefetch;
  sopt.predictor = &*env;
  sopt.inter_arrival_ns = params.inter_arrival_ns;
  sopt.idle_frames_budget = args.u64_or("idle-frames", ~std::uint64_t{0});

  std::vector<sim::SchemeRef> refs;
  refs.reserve(schemes.size());
  for (std::size_t i = 0; i < schemes.size(); ++i)
    refs.push_back(sim::SchemeRef{&schemes[i], &evals[i]});
  const std::vector<sim::SimulationResult> results = sim::simulate_schemes(
      design, refs, trace, sopt,
      static_cast<unsigned>(args.u64_or("threads", 0)));

  std::vector<server::SimulatedScheme> rows;
  rows.reserve(schemes.size());
  for (std::size_t i = 0; i < schemes.size(); ++i)
    rows.push_back(server::SimulatedScheme{schemes[i].label,
                                           evals[i].total_frames,
                                           evals[i].worst_frames, results[i]});
  if (json_out) {
    // Same encoder as the server's `simulate` result payload, byte for byte.
    out << server::simulate_result_json(design, device_name, budget, params,
                                        source, trace.transitions(), rows)
               .dump()
        << "\n";
    return 0;
  }

  if (!device_name.empty()) out << "target device: " << device_name << "\n";
  out << "trace: " << source << ", " << with_commas(trace.transitions())
      << " transitions (seed " << params.seed << ")\n";
  for (const server::SimulatedScheme& row : rows) {
    const sim::SimulationResult& r = row.result;
    out << "\n" << row.label << ": " << with_commas(row.total_frames)
        << " total frames (Eq. 10), worst " << with_commas(row.worst_frames)
        << "\n";
    out << "  frames loaded: " << with_commas(r.frames_loaded) << " over "
        << with_commas(r.region_loads) << " region loads\n";
    out << "  latency p50/p95/p99/max: " << with_commas(r.p50_latency_ns)
        << " / " << with_commas(r.p95_latency_ns) << " / "
        << with_commas(r.p99_latency_ns) << " / "
        << with_commas(r.max_latency_ns) << " ns\n";
    out << "  total latency: " << with_commas(r.total_latency_ns / 1000)
        << " us over " << with_commas(r.makespan_ns / 1000)
        << " us of simulated time\n";
    if (params.prefetch)
      out << "  prefetched: " << with_commas(r.prefetched_frames)
          << " frames (useful " << r.useful_prefetches << ", wasted "
          << r.wasted_prefetches << ")\n";
  }
  return 0;
}

int cmd_bitstreams(const Args& args, std::ostream& out, std::ostream& err) {
  const Design design = design_from_xml(read_file(args.positionals().at(1)));
  const DeviceLibrary lib = DeviceLibrary::extended();
  const Target t =
      resolve_and_partition(design, args, lib, options_from(args));
  if (!t.result.feasible) {
    err << "design does not fit the target\n";
    return 2;
  }
  const auto set =
      generate_bitstreams(design, t.result.base_partitions,
                          t.result.proposed.scheme, t.result.proposed.eval);
  out << set.size() << " partial bitstreams, " << with_commas(total_bytes(set))
      << " bytes total\n";
  if (const auto dir = args.value("out")) {
    std::filesystem::create_directories(*dir);
    for (const Bitstream& b : set) {
      std::string fname = b.name;
      for (char& c : fname)
        if (c == '{' || c == '}' || c == ',') c = '_';
      const std::filesystem::path path =
          std::filesystem::path(*dir) / (fname + ".bit");
      std::ofstream f(path, std::ios::binary);
      if (!f) throw ParseError("cannot write '" + path.string() + "'");
      f.write(reinterpret_cast<const char*>(b.words.data()),
              static_cast<std::streamsize>(b.words.size() * 4));
      out << "  " << path.string() << " (" << with_commas(b.bytes())
          << " bytes)\n";
    }
  } else {
    for (const Bitstream& b : set)
      out << "  " << b.name << ": " << with_commas(b.bytes()) << " bytes ("
          << b.frames << " frames)\n";
  }
  return 0;
}

int cmd_flow(const Args& args, std::ostream& out, std::ostream& err) {
  const Design design = design_from_xml(read_file(args.positionals().at(1)));
  const DeviceLibrary lib = DeviceLibrary::extended();
  FlowOptions opt;
  opt.partitioner = options_from(args);

  FlowResult r;
  if (const auto device = args.value("device")) {
    r = run_flow(design, lib.by_name(*device), opt);
  } else {
    r = run_flow_auto_device(design, lib, opt);
  }
  if (!r.success) {
    err << "flow failed: " << r.failure_reason << "\n";
    return 2;
  }
  out << "device: " << r.device->name() << "\n";
  out << "feedback iterations: " << r.iterations << "\n";
  out << render_scheme_comparison(r.partitioning);
  out << "bitstreams: " << r.bitstreams.size() << " ("
      << with_commas(total_bytes(r.bitstreams)) << " bytes)\n";

  if (const auto dir = args.value("out")) {
    std::filesystem::create_directories(*dir);
    const std::filesystem::path base(*dir);
    {
      std::ofstream f(base / "design.ucf", std::ios::binary);
      if (!f) throw ParseError("cannot write UCF into '" + *dir + "'");
      f << r.ucf;
    }
    for (const Bitstream& b : r.bitstreams) {
      std::string fname = b.name;
      for (char& c : fname)
        if (c == '{' || c == '}' || c == ',') c = '_';
      std::ofstream f(base / (fname + ".bit"), std::ios::binary);
      if (!f) throw ParseError("cannot write bitstreams into '" + *dir + "'");
      f.write(reinterpret_cast<const char*>(b.words.data()),
              static_cast<std::streamsize>(b.words.size() * 4));
    }
    out << "wrote design.ucf and " << r.bitstreams.size()
        << " .bit files to " << *dir << "\n";
  }
  return 0;
}

int cmd_optimal(const Args& args, std::ostream& out, std::ostream& err) {
  const Design design = design_from_xml(read_file(args.positionals().at(1)));
  const DeviceLibrary lib = DeviceLibrary::extended();
  ResourceVec budget;
  if (const auto b = args.value("budget")) {
    budget = parse_budget(*b);
  } else if (const auto device = args.value("device")) {
    budget = lib.by_name(*device).capacity();
  } else {
    const Device* d = lib.smallest_fitting(
        design.largest_configuration_area() + design.static_base());
    if (!d) {
      err << "design fits no library device\n";
      return 2;
    }
    budget = d->capacity();
    out << "using " << d->name() << "\n";
  }

  const ConnectivityMatrix matrix(design);
  const auto partitions = enumerate_base_partitions(design, matrix);
  const CompatibilityTable compat(matrix, partitions);
  OptimalOptions opt;
  opt.max_states = args.u64_or("states", 2'000'000);
  const OptimalResult r = optimal_mode_level_partitioning(
      design, matrix, partitions, compat, budget, opt);
  if (!r.feasible) {
    err << "no feasible mode-level assignment"
        << (r.exhausted ? " found within the state cap" : "") << "\n";
    return 2;
  }
  out << "exact mode-level optimum (" << with_commas(r.states_explored)
      << " states" << (r.exhausted ? ", cap hit - best effort" : "")
      << "):\n";
  out << "total reconfiguration: " << with_commas(r.eval.total_frames)
      << " frames, worst " << with_commas(r.eval.worst_frames) << "\n";
  out << render_scheme_partitions(design, partitions, r.scheme);
  return 0;
}

// Lock-free atomic rather than volatile sig_atomic_t: the signal may be
// delivered on any thread while cmd_serve's wait loop polls from another,
// so the flag needs both async-signal safety and thread safety.
std::atomic<int> g_serve_signal{0};
static_assert(std::atomic<int>::is_always_lock_free);
void on_serve_signal(int) { g_serve_signal.store(1); }

/// `prpart serve --shards N`: fork N single-shard server processes (each
/// with its own port, store segment and job queue), then run the
/// consistent-hash front router in this process. Forking happens before any
/// thread exists in the parent, so the children start from a clean
/// single-threaded image.
int serve_sharded(server::ServerOptions opt, std::size_t shards,
                  std::ostream& err) {
  struct Shard {
    pid_t pid = -1;
    std::uint16_t port = 0;
  };
  std::vector<Shard> spawned;
  spawned.reserve(shards);
  const std::string store_root = opt.store_dir;
  for (std::size_t i = 0; i < shards; ++i) {
    int port_pipe[2];
    if (::pipe(port_pipe) != 0) throw Error("pipe() failed for shard spawn");
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: one ordinary shard server on an ephemeral port, reported to
      // the parent through the pipe. The inherited SIGINT/SIGTERM handler
      // flips the same flag, so a signal to the process group (Ctrl-C) and
      // the parent's explicit SIGTERM both drain gracefully.
      ::close(port_pipe[0]);
      int code = 0;
      try {
        server::ServerOptions copt = opt;
        copt.port = 0;
        if (!store_root.empty())
          copt.store_dir = store_root + "/shard-" + std::to_string(i);
        server::Server srv(copt);
        srv.start();
        const std::uint16_t port = srv.port();
        (void)!::write(port_pipe[1], &port, sizeof port);
        ::close(port_pipe[1]);
        while (g_serve_signal.load() == 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        srv.stop();
      } catch (const std::exception& e) {
        err << "error: shard " << i << ": " << e.what() << "\n";
        ::close(port_pipe[1]);
        code = 1;
      }
      // _exit: never unwind the parent's CLI state from a forked child.
      ::_exit(code);
    }
    ::close(port_pipe[1]);
    std::uint16_t port = 0;
    const ssize_t got = ::read(port_pipe[0], &port, sizeof port);
    ::close(port_pipe[0]);
    if (pid < 0 || got != static_cast<ssize_t>(sizeof port)) {
      for (const Shard& s : spawned) ::kill(s.pid, SIGTERM);
      for (const Shard& s : spawned) ::waitpid(s.pid, nullptr, 0);
      throw Error("failed to spawn shard " + std::to_string(i));
    }
    spawned.push_back(Shard{pid, port});
  }

  server::RouterOptions ropt;
  ropt.port = opt.port;
  for (const Shard& s : spawned) ropt.shard_ports.push_back(s.port);
  ropt.log = &err;
  int code = 0;
  try {
    server::ShardRouter router(ropt);
    router.start();
    while (g_serve_signal.load() == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    router.stop();
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    code = 1;
  }
  for (const Shard& s : spawned) ::kill(s.pid, SIGTERM);
  for (const Shard& s : spawned) {
    int status = 0;
    ::waitpid(s.pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) code = 1;
  }
  return code;
}

int cmd_serve(const Args& args, std::ostream& err) {
  server::ServerOptions opt;
  opt.port = static_cast<std::uint16_t>(args.u64_or("port", 9797));
  opt.workers = static_cast<unsigned>(args.u64_or("workers", 2));
  opt.max_queue = args.u64_or("max-queue", 16);
  opt.high_watermark = args.u64_or("high-watermark", 0);
  opt.default_timeout_ms = args.u64_or("timeout", 0);
  opt.cache_entries = args.u64_or("cache", 256);
  opt.store_dir = args.value_or("store", "");
  opt.store_entries = args.u64_or("store-entries", 4096);
  opt.job_threads = static_cast<unsigned>(args.u64_or("job-threads", 1));
  opt.legacy_io = args.has("legacy-io");
  opt.io_workers = static_cast<unsigned>(args.u64_or("io-workers", 2));
  opt.max_inflight_per_conn = args.u64_or("max-inflight", 64);
  opt.log = &err;
  opt.log_interval_ms = args.u64_or("log-interval", 10'000);

  // SIGTERM/SIGINT flip a flag the wait loop polls; the actual drain runs
  // on this thread, outside signal context. Installed before the listener
  // binds so a signal can never arrive with the default (fatal) disposition
  // while the server looks up.
  g_serve_signal.store(0);
  struct sigaction sa = {};
  sa.sa_handler = on_serve_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  if (const std::uint64_t shards = args.u64_or("shards", 0); shards >= 2)
    return serve_sharded(std::move(opt), static_cast<std::size_t>(shards),
                         err);

  server::Server srv(opt);
  srv.start();

  while (g_serve_signal.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  srv.stop();
  return 0;
}

/// Maps a server response onto the subcommand exit code: ok 0, client error
/// 1, infeasible 2, transient conditions (timeout, overloaded) 3.
int response_exit_code(const server::ClientResponse& resp) {
  if (resp.ok) return 0;
  if (resp.error_code == "infeasible") return 2;
  if (resp.error_code == "timeout" || resp.error_code == "overloaded") return 3;
  return 1;
}

server::Client connect_client(const Args& args) {
  return server::Client(args.value_or("host", "127.0.0.1"),
                        static_cast<std::uint16_t>(args.u64_or("port", 9797)));
}

std::string error_json(const server::ClientResponse& resp) {
  json::Value v = json::Value::object();
  v.set("code", json::Value(resp.error_code));
  v.set("message", json::Value(resp.error_message));
  return v.dump();
}

int cmd_submit(const Args& args, std::ostream& out, std::ostream& err) {
  server::PartitionRequest req;
  req.id = args.value_or("id", "cli");
  req.design_xml = read_file(args.positionals().at(1));
  if (const auto device = args.value("device")) req.device = *device;
  if (const auto budget = args.value("budget")) req.budget = parse_budget(*budget);
  if (!req.device.empty() && req.budget)
    throw ParseError("--device and --budget are mutually exclusive");
  req.options = server::default_partitioner_options();
  req.options.search.max_candidate_sets =
      args.u64_or("candidate-sets", req.options.search.max_candidate_sets);
  req.options.search.max_move_evaluations =
      args.u64_or("evals", req.options.search.max_move_evaluations);
  req.options.search.threads = static_cast<unsigned>(args.u64_or("threads", 0));
  req.timeout_ms = args.u64_or("timeout", 0);

  server::Client client = connect_client(args);
  const server::ClientResponse resp = client.submit(req);
  if (args.has("json")) {
    (resp.ok ? out : err) << (resp.ok ? resp.raw_result : error_json(resp))
                          << "\n";
    return response_exit_code(resp);
  }
  if (!resp.ok) {
    err << "error [" << resp.error_code << "]: " << resp.error_message << "\n";
    return response_exit_code(resp);
  }
  const json::Value& r = resp.result;
  out << "design: " << r.at("design").as_string() << "\n";
  if (const json::Value* device = r.find("device"); device && device->is_string())
    out << "device: " << device->as_string() << "\n";
  const json::Value& proposed = r.at("proposed");
  out << "proposed: " << with_commas(proposed.at("total_frames").as_u64())
      << " total frames, worst "
      << with_commas(proposed.at("worst_frames").as_u64()) << " ("
      << proposed.at("regions").items().size() << " regions)\n";
  const json::Value& baselines = r.at("baselines");
  for (const char* name : {"modular", "single_region", "static"})
    out << name << ": "
        << with_commas(baselines.at(name).at("total_frames").as_u64())
        << " total frames\n";
  return 0;
}

int cmd_client_stats(const Args& args, std::ostream& out, std::ostream& err) {
  server::Client client = connect_client(args);
  const server::ClientResponse resp = client.stats();
  if (args.has("json")) {
    (resp.ok ? out : err) << (resp.ok ? resp.raw_result : error_json(resp))
                          << "\n";
    return response_exit_code(resp);
  }
  if (!resp.ok) {
    err << "error [" << resp.error_code << "]: " << resp.error_message << "\n";
    return response_exit_code(resp);
  }
  for (const auto& [key, value] : resp.result.members())
    out << key << ": " << value.dump() << "\n";
  return 0;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  try {
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
      out << kUsage;
      return 0;
    }
    if (args[0] == "version" || args[0] == "--version") {
      // Reports the dispatched evaluation-kernel tier next to the version:
      // the binary carries every compiled tier and picks per host (or per
      // PRPART_SIMD override), so "which code path runs here" is a runtime
      // question operators need answered (DESIGN.md §4e).
      out << "prpart 1.0.0\n"
          << "simd tier: " << simd::tier_name(simd::active_tier())
          << " (supported: " << simd::supported_tier_list() << ")\n";
      return 0;
    }
    const Args parsed(args, {"floorplan", "prefetch", "json", "search-stats",
                             "uniform", "rank", "first-fit", "no-anneal",
                             "legacy-io"});
    if (parsed.positionals().empty()) {
      err << "error: missing command\n" << kUsage;
      return 1;
    }
    const std::string& command = parsed.positionals().front();

    auto need_design = [&] {
      if (parsed.positionals().size() < 2)
        throw ParseError("command '" + command + "' expects a design file");
    };

    if (command == "devices") {
      parsed.check_known({});
      return cmd_devices(out);
    }
    if (command == "analyze" || command == "lint") {
      need_design();
      parsed.check_known({"device", "budget", "json"});
      return cmd_analyze(parsed, out);
    }
    if (command == "estimate") {
      parsed.check_known({"luts", "ffs", "mults", "kbits", "distbits"});
      return cmd_estimate(parsed, out);
    }
    if (command == "generate") {
      parsed.check_known({"seed", "class", "out"});
      return cmd_generate(parsed, out);
    }
    if (command == "partition") {
      need_design();
      parsed.check_known({"device", "budget", "candidate-sets", "evals",
                          "threads", "floorplan", "ucf", "save",
                          "search-stats", "json"});
      return cmd_partition(parsed, out, err);
    }
    if (command == "floorplan") {
      need_design();
      parsed.check_known({"device", "budget", "candidate-sets", "evals",
                          "threads", "top-k", "first-fit", "no-anneal",
                          "anneal-seed", "ucf", "json"});
      return cmd_floorplan(parsed, out, err);
    }
    if (command == "simulate") {
      need_design();
      parsed.check_known({"device", "budget", "candidate-sets", "evals",
                          "threads", "steps", "seed", "prefetch", "load",
                          "trace", "uniform", "rank", "arrival-ns",
                          "idle-frames", "floorplan", "json"});
      return cmd_simulate(parsed, out, err);
    }
    if (command == "bitstreams") {
      need_design();
      parsed.check_known(
          {"device", "budget", "candidate-sets", "evals", "threads", "out"});
      return cmd_bitstreams(parsed, out, err);
    }
    if (command == "flow") {
      need_design();
      parsed.check_known({"device", "candidate-sets", "evals", "threads", "out"});
      return cmd_flow(parsed, out, err);
    }
    if (command == "optimal") {
      need_design();
      parsed.check_known({"device", "budget", "states"});
      return cmd_optimal(parsed, out, err);
    }
    if (command == "serve") {
      parsed.check_known({"port", "workers", "max-queue", "high-watermark",
                          "timeout", "cache", "store", "store-entries",
                          "job-threads", "legacy-io", "io-workers",
                          "max-inflight", "log-interval", "shards"});
      return cmd_serve(parsed, err);
    }
    if (command == "submit") {
      need_design();
      parsed.check_known({"host", "port", "device", "budget", "candidate-sets",
                          "evals", "threads", "timeout", "id", "json"});
      return cmd_submit(parsed, out, err);
    }
    if (command == "stats") {
      parsed.check_known({"host", "port", "json"});
      return cmd_client_stats(parsed, out, err);
    }
    err << "unknown command '" << command << "'\n" << kUsage;
    return 1;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Anything below Error (std::out_of_range from a missing positional,
    // bad_alloc, ...) must still exit non-zero instead of aborting.
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace prpart::cli
