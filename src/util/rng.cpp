#include "util/rng.hpp"

#include <bit>

#include "util/status.hpp"

namespace prpart {

namespace {
// splitmix64: used only to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state would be a fixed point; splitmix64 cannot produce four
  // zeros from any seed, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  require(n > 0, "Rng::below requires n > 0");
  // Debiased modulo (rejection sampling on the tail).
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n + 1) % n;
  std::uint64_t v = next();
  while (v > limit) v = next();
  return v % n;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  require(lo <= hi, "Rng::uniform requires lo <= hi");
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) return next();
  return lo + below(span + 1);
}

double Rng::uniform01() {
  // 53 random bits scaled into [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

}  // namespace prpart
