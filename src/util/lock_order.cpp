#include "util/lock_order.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace prpart::lock_order {

namespace {

struct HeldLock {
  const void* mutex;
  std::uint32_t level;
  const char* name;
};

/// The calling thread's lock set, acquisition order preserved. A wrapper
/// function avoids the dynamic-initialisation order problem for mutexes
/// locked from static constructors.
std::vector<HeldLock>& held_locks() {
  thread_local std::vector<HeldLock> held;
  return held;
}

bool initial_enabled() {
  // Read-only getenv: the process never calls setenv, so this cannot race.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("PRPART_LOCK_ORDER"))
    return *env != '\0' && *env != '0';
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

std::atomic<bool> g_enabled{initial_enabled()};
std::atomic<ViolationHandler> g_handler{nullptr};

/// lockdep-style witness store: for every mutex that was ever acquired
/// *while other locks were held*, the lock set at its most recent such
/// acquisition. A violation report pairs the current thread's stack with
/// this recorded context, so an A→B / B→A inversion shows both orders.
/// Guarded by a plain std::mutex — the validator must not recurse into
/// itself through prpart::Mutex.
std::mutex g_witness_mutex;
std::unordered_map<const void*, std::string>& witnesses() {
  static auto* map = new std::unordered_map<const void*, std::string>();
  return *map;
}

std::string describe(const std::vector<HeldLock>& held) {
  if (held.empty()) return "(nothing)";
  std::string out;
  for (const HeldLock& h : held) {
    if (!out.empty()) out += ", ";
    out += h.name;
    out += " (level " + std::to_string(h.level) + ")";
  }
  return out;
}

void record_witness(const void* mutex, const std::vector<HeldLock>& held) {
  std::string context = describe(held);
  const std::lock_guard<std::mutex> lock(g_witness_mutex);
  witnesses()[mutex] = std::move(context);
}

std::string witness_for(const void* mutex) {
  const std::lock_guard<std::mutex> lock(g_witness_mutex);
  const auto it = witnesses().find(mutex);
  return it == witnesses().end() ? std::string() : it->second;
}

void report_violation(const std::string& report) {
  if (ViolationHandler handler = g_handler.load(std::memory_order_acquire)) {
    handler(report);
    return;
  }
  std::fputs(report.c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

ViolationHandler set_violation_handler(ViolationHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

std::string held_description() { return describe(held_locks()); }

void on_acquire(const void* mutex, std::uint32_t level, const char* name) {
  if (!enabled()) return;
  std::vector<HeldLock>& held = held_locks();
  if (!held.empty()) {
    // Find the *worst* held lock for the report: any held level >= the
    // attempted level violates the strictly-increasing rule.
    const HeldLock* conflict = nullptr;
    for (const HeldLock& h : held) {
      if (h.mutex == mutex) {
        conflict = &h;
        break;
      }
      if (h.level >= level && (conflict == nullptr || h.level > conflict->level))
        conflict = &h;
    }
    if (conflict != nullptr) {
      std::string report =
          "prpart lock-order violation: acquiring " + std::string(name) +
          " (level " + std::to_string(level) + ")";
      if (conflict->mutex == mutex) {
        report += " recursively — this thread already holds it\n";
      } else {
        report += " while holding " + std::string(conflict->name) +
                  " (level " + std::to_string(conflict->level) +
                  ") — levels must strictly increase (see "
                  "src/util/lock_order.hpp and DESIGN.md §9)\n";
      }
      report += "  this thread holds: " + describe(held) + "\n";
      const std::string prior = witness_for(mutex);
      if (!prior.empty())
        report += "  " + std::string(name) +
                  " was previously acquired while holding: " + prior + "\n";
      const std::string prior_conflict = witness_for(conflict->mutex);
      if (conflict->mutex != mutex && !prior_conflict.empty())
        report += "  " + std::string(conflict->name) +
                  " was previously acquired while holding: " + prior_conflict +
                  "\n";
      report_violation(report);
      // A non-aborting handler (tests) returns here; fall through so the
      // acquisition is recorded and the matching unlock stays balanced.
    }
    record_witness(mutex, held);
  }
  held.push_back(HeldLock{mutex, level, name});
}

void on_release(const void* mutex) {
  if (!enabled()) return;
  std::vector<HeldLock>& held = held_locks();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mutex == mutex) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Released a lock the validator never saw acquired: set_enabled(true)
  // raced an already-held lock, or enablement flipped mid-stream. Benign.
}

}  // namespace prpart::lock_order
