#pragma once

#include <atomic>
#include <cstdint>

#include "util/clock.hpp"
#include "util/status.hpp"

namespace prpart {

/// Thrown by long-running operations when their CancelToken fires. Derives
/// from Error so existing catch-all handlers keep working; the server maps
/// it to the `timeout` protocol error.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// Cooperative cancellation: a flag plus an optional monotonic deadline.
/// The owner arms it (cancel() from any thread, or set_deadline() before
/// starting the work); the worker polls cancelled() at loop boundaries and
/// unwinds with CancelledError via check(). All members are safe to call
/// concurrently.
class CancelToken {
 public:
  CancelToken() = default;

  /// Requests cancellation; visible to every thread polling this token.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms an absolute monotonic deadline (monotonic_now_ns() units);
  /// 0 disarms. Set before handing the token to workers.
  void set_deadline(std::int64_t deadline_ns) {
    deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
  }

  /// Arms the deadline `timeout_ms` from now; <= 0 disarms.
  void set_timeout_ms(std::int64_t timeout_ms) {
    set_deadline(timeout_ms > 0 ? monotonic_now_ns() + timeout_ms * kNsPerMs
                                : 0);
  }

  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != 0 && monotonic_now_ns() >= deadline;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};
};

/// Throws CancelledError when `token` (nullable) has fired. The idiom for
/// cancellation points inside search/flow loops.
inline void check_cancel(const CancelToken* token) {
  if (token && token->cancelled())
    throw CancelledError("operation cancelled (timeout or shutdown)");
}

}  // namespace prpart
