#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace prpart {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on `sep`, trimming each piece; empty pieces are dropped.
std::vector<std::string> split(std::string_view s, char sep);

/// True when `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a non-negative integer; throws ParseError on anything else.
std::uint64_t parse_u64(std::string_view s);

/// Formats `v` with thousands separators ("1,234,567"), for report tables.
std::string with_commas(std::uint64_t v);

/// Fixed-point formatting with `decimals` digits after the point.
std::string fixed(double v, int decimals);

}  // namespace prpart
