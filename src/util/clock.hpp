#pragma once

#include <cstdint>

namespace prpart {

/// Nanoseconds on a monotonic clock (std::chrono::steady_clock). The single
/// time source for deadlines, latency measurements and periodic logging, so
/// wall-clock adjustments can never fire a timeout early or late.
std::int64_t monotonic_now_ns();

/// Convenience conversions for the common protocol units.
constexpr std::int64_t kNsPerUs = 1'000;
constexpr std::int64_t kNsPerMs = 1'000'000;
constexpr std::int64_t kNsPerSec = 1'000'000'000;

}  // namespace prpart
