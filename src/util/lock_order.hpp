#pragma once

#include <cstdint>
#include <string>

namespace prpart::lock_order {

/// The project-wide lock hierarchy: every `prpart::Mutex` registers one of
/// these levels, and a thread may only acquire a mutex whose level is
/// *strictly greater* than the level of every mutex it already holds. Any
/// other acquisition — lower level, or a second mutex of the same level —
/// is an ordering violation and aborts with both lock sets (see
/// DESIGN.md §9 for the rationale behind each assignment).
///
/// The numbering encodes the rules, outermost first:
///
///   * `kServerLifecycle` is outermost: it is held across the logger's
///     periodic sleep, so nothing else may be held when taking it.
///   * `kServerStats` and `kResultCache` sit *below* the scheduler locks:
///     observability counters and cache probes must be recorded with no
///     scheduler lock held, so the hot admission/dequeue sections stay pure
///     queue manipulation (the PR that introduced this layer moved the
///     stats aggregation in `Server::admit_job` out of the queue critical
///     section to satisfy exactly this edge).
///   * `kServerQueue` is near-leaf: only the log may be acquired beneath
///     it. Everything a job needs (cache store, stats fold, search locks)
///     happens before or after the queue critical section, never inside.
///   * The search-internal levels (`kSearchBoundHint`, `kCostCacheShard`)
///     order the shared state of one region-allocation search; shards are
///     one level, so holding two shards at once is (deliberately) illegal.
///   * `kServerLog` is the true leaf: a log line may be emitted while
///     holding anything.
///
/// Gaps between values leave room for new locks without renumbering.
enum class Level : std::uint32_t {
  kServerLifecycle = 10,  ///< Server start/stop state + logger wakeups
  kServerConns = 20,      ///< Server connection registry (legacy thread-per-
                          ///< connection mode)
  kReactorConns = 22,     ///< reactor connection registry: the epoll loop's
                          ///< token -> connection map. Below the stats/cache
                          ///< layers so a metrics scrape may count
                          ///< connections first and fold counters after.
  kServerAdmission = 24,  ///< reactor-mode admission queue of framed request
                          ///< lines. The reactor pushes with no lock held;
                          ///< admission workers pop and then walk the full
                          ///< cache/stats/queue ladder below.
  kShardRouter = 26,      ///< shard-router per-connection write serialiser
                          ///< (relay threads interleave responses from
                          ///< several shards onto one client socket)
  kServerStats = 30,      ///< ServerStats counters + latency histogram
  kResultCache = 40,      ///< content-addressed LRU result cache
  kDiskStoreIndex = 42,   ///< on-disk segment index of the spillable result
                          ///< store. Directly below the RAM cache: the LRU
                          ///< spills evicted entries to disk while holding
                          ///< the cache mutex, so cache -> disk nests and
                          ///< the reverse is illegal.
  kWorkerPool = 45,       ///< persistent WorkerPool dispatch state. Above
                          ///< the server layers (a job submits work while
                          ///< holding no server lock) and below every
                          ///< search lock: pool workers take bound-hint /
                          ///< cost-cache locks inside their bodies, after
                          ///< the pool mutex is released.
  kSearchBoundHint = 50,  ///< shared leaderboard hint of the parallel search
  kCostCacheShard = 60,   ///< one GroupCostCache shard (never two at once)
  kParallelForError = 70, ///< first-exception slot of a parallel_for pool
  kServerQueue = 80,      ///< bounded job queue + admission control
  kReactorOutbox = 85,    ///< reactor completion queue: finished responses
                          ///< posted cross-thread for the epoll loop to
                          ///< write. Above the job queue (a worker may hold
                          ///< nothing when posting, but the level leaves
                          ///< room to post from queue-adjacent code) and
                          ///< below the log leaf.
  kServerLog = 90,        ///< serialised log sink (leaf)
};

/// Whether acquisitions are being validated. Defaults to on in debug
/// builds (`NDEBUG` undefined — the asan-ubsan and tsan presets) and off in
/// release builds; the environment variable `PRPART_LOCK_ORDER` overrides
/// in either direction (`0` disables, anything else enables), and the test
/// presets set it so the full suite always runs validated.
bool enabled();
void set_enabled(bool on);

/// Called by Mutex::lock() *before* blocking (an inversion must abort, not
/// deadlock). Validates `level` against the calling thread's held set, then
/// records the acquisition.
void on_acquire(const void* mutex, std::uint32_t level, const char* name);

/// Called by Mutex::unlock(); removes the mutex from the held set.
void on_release(const void* mutex);

/// Human-readable rendering of the calling thread's held set, innermost
/// last: "server.lifecycle (level 10), server.queue (level 80)".
std::string held_description();

/// Receives the full violation report. The default handler prints it to
/// stderr and calls std::abort(); tests install a recording handler to
/// assert on violations without dying. When a non-default handler returns,
/// the acquisition is recorded anyway so lock/unlock stay balanced.
using ViolationHandler = void (*)(const std::string& report);

/// Installs `handler` (nullptr restores the abort default) and returns the
/// previous one. Not thread-safe against concurrent violations — install
/// before spawning threads (it exists for single-threaded unit tests).
ViolationHandler set_violation_handler(ViolationHandler handler);

}  // namespace prpart::lock_order
