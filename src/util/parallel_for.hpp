#pragma once

#include <cstddef>
#include <functional>

namespace prpart {

/// Runs `body(i)` for every i in [0, count) across `threads` worker
/// threads, pulling indices from a shared atomic counter (dynamic
/// scheduling — iteration costs in the sweeps vary by an order of
/// magnitude, so static chunking would leave workers idle).
///
/// Guarantees:
///  * every index is executed exactly once;
///  * results written to distinct per-index slots need no synchronisation;
///  * with threads <= 1 the loop runs inline on the calling thread;
///  * the first exception thrown by any body is rethrown on the caller
///    after all workers have stopped.
///
/// Bodies must not themselves assume an execution order: determinism of the
/// overall computation must come from writing to index-addressed outputs,
/// exactly like an OpenMP `parallel for` with `schedule(dynamic)`.
///
/// Nested calls run inline: a parallel_for issued from inside a worker's
/// body executes on that worker without spawning further threads, so
/// composed parallel layers (sweep over designs x search over work units)
/// cannot multiply the thread count.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& body);

/// True while the calling thread is executing a parallel_for body on a
/// spawned worker (used by nested calls to fall back to inline execution).
bool inside_parallel_for();

/// Worker count from the environment variable `env_var` when set, otherwise
/// std::thread::hardware_concurrency() (at least 1).
unsigned default_thread_count(const char* env_var = "PRPART_THREADS");

}  // namespace prpart
