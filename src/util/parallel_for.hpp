#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace prpart {

/// Runs `body(i)` for every i in [0, count) across `threads` worker
/// threads, pulling indices from a shared atomic counter (dynamic
/// scheduling — iteration costs in the sweeps vary by an order of
/// magnitude, so static chunking would leave workers idle).
///
/// Guarantees:
///  * every index is executed exactly once;
///  * results written to distinct per-index slots need no synchronisation;
///  * with threads <= 1 the loop runs inline on the calling thread;
///  * the first exception thrown by any body is rethrown on the caller
///    after all workers have stopped.
///
/// Bodies must not themselves assume an execution order: determinism of the
/// overall computation must come from writing to index-addressed outputs,
/// exactly like an OpenMP `parallel for` with `schedule(dynamic)`.
///
/// Nested calls run inline: a parallel_for issued from inside a worker's
/// body executes on that worker without spawning further threads, so
/// composed parallel layers (sweep over designs x search over work units)
/// cannot multiply the thread count.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& body);

/// True while the calling thread is executing a parallel_for body on a
/// spawned worker (used by nested calls to fall back to inline execution).
bool inside_parallel_for();

/// Worker count from the environment variable `env_var` when set, otherwise
/// std::thread::hardware_concurrency() (at least 1).
unsigned default_thread_count(const char* env_var = "PRPART_THREADS");

/// A persistent worker pool with parallel_for semantics: run() distributes
/// [0, count) across the pool's threads through the same dynamic atomic
/// counter, with the same guarantees (every index exactly once, first
/// exception rethrown on the caller, nested runs inline). Unlike the free
/// parallel_for, the threads are spawned once in the constructor and reused
/// across run() calls, so a server worker that keeps a pool across jobs
/// reaches a steady state that spawns no threads per request (DESIGN.md
/// §4e). The calling thread participates as the n-th worker, so
/// WorkerPool(n) owns n-1 threads but run() executes bodies on up to n.
///
/// One pool serves one runner at a time: run() is not reentrant and must
/// not be called concurrently from two threads (the server gives each of
/// its job workers its own pool). Concurrent calls are detected and throw.
///
/// The internal mutex registers at lock_order::Level::kWorkerPool — below
/// the search locks (bodies acquire bound-hint/cost-cache levels after the
/// pool mutex is dropped) and above the server layers.
class WorkerPool {
 public:
  /// Spawns `threads - 1` workers (threads <= 1 means run() is inline).
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers run() fans across, counting the caller.
  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }
  /// Threads spawned over the pool's lifetime — constant after
  /// construction; tests assert steady-state runs spawn nothing.
  std::uint64_t threads_spawned() const {
    return static_cast<std::uint64_t>(workers_.size());
  }

  /// parallel_for(count, thread_count(), body) over the persistent
  /// workers. Runs inline (no handoff) when the pool has no workers, when
  /// count <= 1, or when called from inside a parallel_for/pool body.
  void run(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  /// Pulls indices until the current run is drained; returns with the
  /// job's completed count updated. Runs bodies with no pool lock held.
  void work(const std::function<void(std::size_t)>& body, std::size_t count);

  Mutex mutex_{lock_order::Level::kWorkerPool, "worker_pool"};
  CondVar wake_;             ///< workers: a new run was published
  CondVar done_;             ///< caller: the current run fully drained
  std::uint64_t generation_ PRPART_GUARDED_BY(mutex_) = 0;
  bool stop_ PRPART_GUARDED_BY(mutex_) = false;
  bool running_ PRPART_GUARDED_BY(mutex_) = false;
  const std::function<void(std::size_t)>* body_ PRPART_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t count_ PRPART_GUARDED_BY(mutex_) = 0;
  std::size_t active_ PRPART_GUARDED_BY(mutex_) = 0;  ///< workers inside work()
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_ PRPART_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
};

/// parallel_for that reuses `pool` when given one (and the call is not
/// nested), spawning fresh threads otherwise — the seam through which
/// SearchOptions::pool threads the server's persistent pool into the
/// search phases without changing any call that passes no pool. `threads`
/// still caps the fan-out logically, but a pooled run uses the pool's
/// fixed thread count; both schedules produce identical results by the
/// parallel_for determinism contract.
void parallel_for(WorkerPool* pool, std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace prpart
