#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace prpart {

/// Base class for all errors thrown by the prpart library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// The input design description is malformed (bad references, empty
/// configurations, duplicate names, ...).
class DesignError : public Error {
 public:
  explicit DesignError(const std::string& what) : Error(what) {}
};

/// A requested device does not exist or cannot hold the design at all.
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what) : Error(what) {}
};

/// Malformed XML or a document that does not match the expected schema.
/// Carries an optional 1-based source position (0 = unknown) so callers
/// like the design analyzer can turn the failure into a diagnostic that
/// points back into the input file.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what, std::size_t line = 0,
                      std::size_t column = 0)
      : Error(what), line_(line), column_(column) {}

  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::size_t line_ = 0;
  std::size_t column_ = 0;
};

/// An internal invariant was violated; indicates a bug in the library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Throws InternalError when `cond` is false. Used for invariants that are
/// cheap enough to keep in release builds.
inline void require(bool cond, const std::string& what) {
  if (!cond) throw InternalError(what);
}

/// Literal-message overload: unlike the std::string one, the passing path
/// touches no allocator (the evaluation kernel's invariants run on every
/// scheme evaluation, which promises zero steady-state heap allocations).
inline void require(bool cond, const char* what) {
  if (!cond) throw InternalError(what);
}

}  // namespace prpart
