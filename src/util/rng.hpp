#pragma once

#include <cstdint>

namespace prpart {

/// Deterministic xoshiro256** pseudo-random generator.
///
/// The synthetic-design experiments in the paper (Figs. 7-9) must be
/// reproducible run to run and platform to platform, so we do not use
/// std::mt19937 distributions (whose mapping from engine output to values is
/// implementation-defined for some distributions); all sampling helpers here
/// are fully specified.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace prpart
