#include "util/args.hpp"

#include <algorithm>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace prpart {

Args::Args(const std::vector<std::string>& argv,
           const std::vector<std::string>& flags) {
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (!starts_with(a, "--")) {
      positionals_.push_back(a);
      continue;
    }
    const std::string key = a.substr(2);
    if (key.empty()) throw ParseError("stray '--' on the command line");
    if (std::find(flags.begin(), flags.end(), key) != flags.end()) {
      switches_.push_back(key);
      continue;
    }
    if (i + 1 >= argv.size())
      throw ParseError("option --" + key + " expects a value");
    options_.emplace_back(key, argv[++i]);
  }
}

bool Args::has(const std::string& key) const {
  if (std::find(switches_.begin(), switches_.end(), key) != switches_.end())
    return true;
  return value(key).has_value();
}

std::optional<std::string> Args::value(const std::string& key) const {
  for (const auto& [k, v] : options_)
    if (k == key) return v;
  return std::nullopt;
}

std::string Args::value_or(const std::string& key,
                           const std::string& fallback) const {
  return value(key).value_or(fallback);
}

std::uint64_t Args::u64_or(const std::string& key,
                           std::uint64_t fallback) const {
  const auto v = value(key);
  return v ? parse_u64(*v) : fallback;
}

void Args::check_known(const std::vector<std::string>& known) const {
  auto is_known = [&](const std::string& key) {
    return std::find(known.begin(), known.end(), key) != known.end();
  };
  for (const auto& [k, v] : options_)
    if (!is_known(k)) throw ParseError("unknown option --" + k);
  for (const std::string& s : switches_)
    if (!is_known(s)) throw ParseError("unknown option --" + s);
}

}  // namespace prpart
