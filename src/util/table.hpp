#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace prpart {

/// Minimal ASCII table renderer used by the benchmark harness and examples to
/// print paper-style tables.
///
///   TextTable t({"Scheme", "CLBs", "Total time"});
///   t.add_row({"Modular", "6580", "244,872"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  std::size_t rows() const { return rows_.size(); }

  std::string render() const;

 private:
  std::vector<std::string> header_;
  // A row with the sentinel single cell "\x01rule" renders as a rule.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prpart
