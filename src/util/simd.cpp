#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>

#include "util/status.hpp"

namespace prpart::simd {

namespace {

/// Forced tier + 1; 0 means "no override". A plain atomic keeps the test
/// hook race-free against concurrent readers without a lock on the hot
/// dispatch path.
std::atomic<std::uint32_t> g_forced{0};

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(__x86_64__) || defined(_M_X64)
  // The kernel's AVX-512 path uses 512-bit integer ops (F), 16-bit lane
  // compares into mask registers (BW), and the VL/DQ forms for narrow
  // tails; a CPU missing any subset runs the AVX2 tier instead.
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

Tier resolve_default() {
  // Read-only getenv: the process never calls setenv, so this cannot race.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("PRPART_SIMD")) return tier_from_name(env);
  return best_supported_tier();
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kNeon: return "neon";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
  }
  return "unknown";
}

bool tier_supported(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
    case Tier::kAvx2:
      return cpu_has_avx2();
    case Tier::kAvx512:
      return cpu_has_avx512();
  }
  return false;
}

Tier best_supported_tier() {
  if (tier_supported(Tier::kAvx512)) return Tier::kAvx512;
  if (tier_supported(Tier::kAvx2)) return Tier::kAvx2;
  if (tier_supported(Tier::kNeon)) return Tier::kNeon;
  return Tier::kScalar;
}

Tier tier_from_name(const std::string& name) {
  Tier tier;
  if (name == "scalar") {
    tier = Tier::kScalar;
  } else if (name == "neon") {
    tier = Tier::kNeon;
  } else if (name == "avx2") {
    tier = Tier::kAvx2;
  } else if (name == "avx512") {
    tier = Tier::kAvx512;
  } else {
    throw Error("unknown SIMD tier '" + name +
                "' (expected scalar, neon, avx2 or avx512)");
  }
  if (!tier_supported(tier))
    throw Error("SIMD tier '" + name +
                "' is not supported on this CPU (supported: " +
                supported_tier_list() + ")");
  return tier;
}

Tier active_tier() {
  const std::uint32_t forced = g_forced.load(std::memory_order_acquire);
  if (forced != 0) return static_cast<Tier>(forced - 1);
  // The environment choice is immutable for the process lifetime, so it is
  // resolved exactly once; tests that need to switch tiers use the
  // in-process override above instead of mutating the environment.
  static const Tier resolved = resolve_default();
  return resolved;
}

void set_forced_tier(std::optional<Tier> tier) {
  if (!tier) {
    g_forced.store(0, std::memory_order_release);
    return;
  }
  if (!tier_supported(*tier))
    throw Error(std::string("cannot force SIMD tier '") + tier_name(*tier) +
                "': not supported on this CPU (supported: " +
                supported_tier_list() + ")");
  g_forced.store(static_cast<std::uint32_t>(*tier) + 1,
                 std::memory_order_release);
}

std::string supported_tier_list() {
  std::string out;
  for (Tier tier : {Tier::kAvx512, Tier::kAvx2, Tier::kNeon, Tier::kScalar}) {
    if (!tier_supported(tier)) continue;
    if (!out.empty()) out += ", ";
    out += tier_name(tier);
  }
  return out;
}

}  // namespace prpart::simd
