#include "util/bitset.hpp"

#include <bit>

#include "util/status.hpp"

namespace prpart {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t nbits) {
  return (nbits + kWordBits - 1) / kWordBits;
}
}  // namespace

DynBitset::DynBitset(std::size_t nbits)
    : nbits_(nbits), words_(words_for(nbits), 0) {}

void DynBitset::throw_index_out_of_range(std::size_t i) const {
  throw InternalError("DynBitset index " + std::to_string(i) +
                      " out of range (size " + std::to_string(nbits_) + ")");
}

void DynBitset::throw_size_mismatch(const char* op) const {
  throw InternalError(std::string("DynBitset size mismatch in ") + op);
}

bool DynBitset::operator==(const DynBitset& other) const {
  return nbits_ == other.nbits_ && words_ == other.words_;
}

bool DynBitset::operator<(const DynBitset& other) const {
  if (nbits_ != other.nbits_) return nbits_ < other.nbits_;
  return words_ < other.words_;
}

std::vector<std::size_t> DynBitset::bits() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(word));
      out.push_back(w * kWordBits + bit);
      word &= word - 1;
    }
  }
  return out;
}

std::size_t DynBitset::hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  h ^= nbits_;
  h *= 1099511628211ull;
  return static_cast<std::size_t>(h);
}

std::string DynBitset::to_string() const {
  std::string out = "{";
  bool first = true;
  for (std::size_t b : bits()) {
    if (!first) out += ',';
    out += std::to_string(b);
    first = false;
  }
  out += '}';
  return out;
}

}  // namespace prpart
