#include "util/csv.hpp"

#include "util/status.hpp"

namespace prpart {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  require(columns_ > 0, "CsvWriter needs at least one column");
  row(header);
  rows_ = 0;  // header does not count as a data row
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  require(cells.size() == columns_, "CsvWriter row has wrong arity");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace prpart
