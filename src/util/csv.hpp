#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace prpart {

/// Streams rows of comma-separated values with minimal quoting, used by the
/// benchmark harness to dump figure data for external plotting.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  void row(const std::vector<std::string>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  static std::string escape(const std::string& cell);

  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace prpart
