#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace prpart::simd {

/// Instruction-set tier of the scheme-evaluation kernel (DESIGN.md §4e).
///
/// `kScalar` is the always-available reference tier: the word-at-a-time
/// kernel exactly as PR 5 shipped it, against which every vector tier is
/// property-tested byte-for-byte. The vector tiers run the restructured
/// batch evaluator over the same packed activity words; on x86-64 the best
/// supported tier is picked at runtime from CPUID, on aarch64 NEON is
/// architecturally guaranteed. Numeric order is preference order.
enum class Tier : std::uint8_t {
  kScalar = 0,  ///< portable 64-bit word loops (the PR 5 reference path)
  kNeon = 1,    ///< aarch64 Advanced SIMD, 128-bit
  kAvx2 = 2,    ///< x86-64 AVX2, 256-bit
  kAvx512 = 3,  ///< x86-64 AVX-512 (F+BW+DQ+VL), 512-bit + mask registers
};

/// Lower-case tier name as spelled by `PRPART_SIMD` and reported by
/// `prpart --version`, `partition --search-stats`, and the server `stats`
/// response: "scalar", "neon", "avx2", "avx512".
const char* tier_name(Tier tier);

/// Whether this process can execute `tier` on the current CPU. Scalar is
/// always supported; the x86 tiers consult CPUID (AVX-512 requires the
/// F, BW, DQ and VL subsets the kernel's mask ops use); NEON requires an
/// aarch64 build.
bool tier_supported(Tier tier);

/// The highest supported tier on this machine.
Tier best_supported_tier();

/// Parses a `PRPART_SIMD` value. Throws Error for an unknown name and for
/// a tier the current CPU cannot execute — a forced tier must never fall
/// back silently (the property suite relies on "forced means forced").
Tier tier_from_name(const std::string& name);

/// The tier the kernel dispatches to: the in-process override when set,
/// else `PRPART_SIMD` from the environment (resolved once), else the best
/// supported tier.
Tier active_tier();

/// In-process override for tests that sweep the tier matrix without
/// re-exec'ing: pass a supported tier to force it, std::nullopt to restore
/// the environment/CPUID choice. Throws Error on an unsupported tier.
/// Not thread-safe against concurrent evaluations — set it from the main
/// thread between test cases, like lock_order::set_violation_handler.
void set_forced_tier(std::optional<Tier> tier);

/// RAII form of set_forced_tier for test scopes.
class ScopedForcedTier {
 public:
  explicit ScopedForcedTier(Tier tier) { set_forced_tier(tier); }
  ~ScopedForcedTier() { set_forced_tier(std::nullopt); }
  ScopedForcedTier(const ScopedForcedTier&) = delete;
  ScopedForcedTier& operator=(const ScopedForcedTier&) = delete;
};

/// Comma-separated names of every supported tier in preference order,
/// e.g. "avx512, avx2, scalar" — for `prpart --version`.
std::string supported_tier_list();

}  // namespace prpart::simd
