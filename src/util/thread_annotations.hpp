#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/lock_order.hpp"

/// Clang thread-safety capability annotations (-Wthread-safety), expanding
/// to nothing on other compilers. The CI `thread-safety` job compiles the
/// tree with clang++ and -Wthread-safety -Wthread-safety-beta promoted to
/// errors, so a mutex-protected member read without its lock, a forgotten
/// annotation on a locking function, or a release on the wrong path fails
/// the build — on every code path, including the ones no test executes.
///
/// Use `prpart::Mutex` + `prpart::MutexLock` (below) instead of std::mutex
/// + std::lock_guard for any lock the analysis should track: the std types
/// carry no capability attributes, so locking through them is invisible to
/// the checker (and to the runtime lock-order validator).
#if defined(__clang__)
#define PRPART_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PRPART_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a capability (lockable) type.
#define PRPART_CAPABILITY(x) PRPART_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define PRPART_SCOPED_CAPABILITY PRPART_THREAD_ANNOTATION(scoped_lockable)
/// Data member is protected by the given capability.
#define PRPART_GUARDED_BY(x) PRPART_THREAD_ANNOTATION(guarded_by(x))
/// Pointed-to data is protected by the given capability.
#define PRPART_PT_GUARDED_BY(x) PRPART_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function may only be called while holding the given capabilities.
#define PRPART_REQUIRES(...) \
  PRPART_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability and holds it on return.
#define PRPART_ACQUIRE(...) \
  PRPART_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (which the caller must hold).
#define PRPART_RELEASE(...) \
  PRPART_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define PRPART_TRY_ACQUIRE(...) \
  PRPART_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function may not be called while holding the given capabilities.
#define PRPART_EXCLUDES(...) PRPART_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Asserts at runtime that the capability is held (analysis trusts it).
#define PRPART_ASSERT_CAPABILITY(x) \
  PRPART_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the given capability.
#define PRPART_RETURN_CAPABILITY(x) PRPART_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: the function's locking is intentionally opaque.
#define PRPART_NO_THREAD_SAFETY_ANALYSIS \
  PRPART_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace prpart {

class CondVar;

/// std::mutex with (a) Clang capability annotations so -Wthread-safety can
/// prove guarded members are only touched under it, and (b) a mandatory
/// level in the documented lock hierarchy (lock_order.hpp), validated at
/// runtime in debug/test builds: acquiring out of hierarchy order aborts
/// with both lock sets — a lockdep for the interleavings TSan never runs.
class PRPART_CAPABILITY("mutex") Mutex {
 public:
  Mutex(lock_order::Level level, const char* name)
      : level_(static_cast<std::uint32_t>(level)), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// The hierarchy check runs *before* blocking: an inversion must abort
  /// with a report, not sit in the deadlock it was about to create.
  void lock() PRPART_ACQUIRE() {
    lock_order::on_acquire(this, level_, name_);
    mu_.lock();
  }

  void unlock() PRPART_RELEASE() {
    mu_.unlock();
    lock_order::on_release(this);
  }

  std::uint32_t level() const { return level_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const std::uint32_t level_;
  const char* const name_;
};

/// Scoped lock over Mutex (the std::lock_guard replacement the analysis
/// understands), with explicit unlock()/lock() for the drop-the-lock-
/// around-slow-work pattern (e.g. the server's periodic logger).
class PRPART_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PRPART_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

  ~MutexLock() PRPART_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early; the destructor then does nothing.
  void unlock() PRPART_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  /// Re-acquires after unlock() (full hierarchy re-check applies).
  void lock() PRPART_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable paired with Mutex. Waits adopt the Mutex's native
/// handle, so the lock-order bookkeeping keeps the mutex in the holder set
/// across the wait: the thread runs no code while it is released, and it
/// re-holds the mutex before returning — the recorded state matches every
/// state the thread can observe.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; `mu` is held again on return.
  /// Spurious wakeups happen: call in a while-loop over the predicate (the
  /// loop keeps the guarded reads visibly under the capability, which a
  /// predicate lambda would hide from the analysis).
  void wait(Mutex& mu) PRPART_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// As wait(), giving up after `ms` milliseconds.
  std::cv_status wait_for_ms(Mutex& mu, std::uint64_t ms) PRPART_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(native, std::chrono::milliseconds(ms));
    native.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace prpart
