#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace prpart {

/// Fixed-capacity dynamic bitset sized at construction time.
///
/// Used throughout the partitioner to represent sets of modes (columns of
/// the connectivity matrix). Capacity is decided once per design, so all
/// sets in one partitioning run share the same word count, which keeps the
/// set algebra branch-free.
class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t nbits);

  std::size_t size() const { return nbits_; }

  // The single-bit accessors and the pairwise-disjointness test are the
  // partitioner's hottest operations (the greedy move scan runs millions
  // per search), so they live in the header; the failure paths stay
  // out-of-line to keep the inlined code small.
  void set(std::size_t i) {
    check_index(i);
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  void reset(std::size_t i) {
    check_index(i);
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
  bool test(std::size_t i) const {
    check_index(i);
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  /// Number of set bits. Header-inline: the kernel's Eq. 10 pass popcounts
  /// one activity row per region member per evaluation.
  std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_)
      n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }
  bool any() const {
    for (std::uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }
  bool none() const { return !any(); }

  /// True when this and `other` share at least one set bit. Header-inline
  /// like the bit accessors: the greedy scan's compatibility checks and the
  /// evaluation kernel's activity tests call this tens of millions of times
  /// per search.
  bool intersects(const DynBitset& other) const {
    if (nbits_ != other.nbits_) throw_size_mismatch("intersects");
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & other.words_[i]) return true;
    return false;
  }
  /// True when every set bit of this is also set in `other`.
  bool is_subset_of(const DynBitset& other) const {
    if (nbits_ != other.nbits_) throw_size_mismatch("is_subset_of");
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~other.words_[i]) return false;
    return true;
  }

  DynBitset& operator|=(const DynBitset& other) {
    if (nbits_ != other.nbits_) throw_size_mismatch("operator|=");
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] |= other.words_[i];
    return *this;
  }
  DynBitset& operator&=(const DynBitset& other) {
    if (nbits_ != other.nbits_) throw_size_mismatch("operator&=");
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] &= other.words_[i];
    return *this;
  }
  /// Clears every bit that is set in `other`.
  DynBitset& subtract(const DynBitset& other) {
    if (nbits_ != other.nbits_) throw_size_mismatch("subtract");
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] &= ~other.words_[i];
    return *this;
  }

  friend DynBitset operator|(DynBitset a, const DynBitset& b) { return a |= b; }
  friend DynBitset operator&(DynBitset a, const DynBitset& b) { return a &= b; }

  bool operator==(const DynBitset& other) const;
  bool operator!=(const DynBitset& other) const { return !(*this == other); }
  /// Lexicographic order on the underlying words; any strict weak order
  /// works for use as a map key.
  bool operator<(const DynBitset& other) const;

  /// Indices of set bits in increasing order.
  std::vector<std::size_t> bits() const;

  // Word view: the packed 64-bit words backing the set, for kernels that
  // combine several bitsets word-by-word (activity matrices, compatibility
  // rows). Bits past size() are guaranteed zero, so consumers can popcount
  // and scan whole words without masking the trailing word. The masked-tail
  // invariant is load-bearing for the SIMD kernels, which read and combine
  // word_count() whole words regardless of size() % 64 — every mutator in
  // this class preserves it (pinned by BitsetTest.TailWord* in
  // tests/util/bitset_test.cpp):
  //   * set/reset check the index, so no tail bit is ever addressed;
  //   * |=, &=, subtract, or_and, or_andnot combine same-capacity operands
  //     whose tails are zero, and OR/AND/ANDNOT of zeros stays zero;
  //   * clear_all and the constructor zero whole words.
  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t w) const { return words_[w]; }

  /// Contiguous word storage for vectorised kernels. Writers through
  /// mutable_words() must uphold the masked-tail invariant above: bits in
  /// [size(), word_count()*64) stay zero. The kernel's word loops only ever
  /// combine same-capacity sets (zero tails in, zero tails out).
  const std::uint64_t* words() const { return words_.data(); }
  std::uint64_t* mutable_words() { return words_.data(); }

  /// Calls `fn(index)` for every set bit in increasing order. The word-wise
  /// scan (countr_zero + clear-lowest) touches each word once, so iterating
  /// a sparse set costs O(words + set bits) with no heap allocation —
  /// unlike bits(), which materialises a vector.
  template <typename Fn>
  void for_each_set_bit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        fn(w * 64 + bit);
        word &= word - 1;
      }
    }
  }

  /// Clears every bit without changing the capacity. Unlike assigning a
  /// fresh DynBitset, this never touches the allocator.
  void clear_all() {
    for (auto& w : words_) w = 0;
  }

  /// this |= (a & b), word-parallel. The kernel's conflict detector: with
  /// `a` the bits already claimed and `b` a new member's bits, the result
  /// accumulates exactly the positions claimed twice.
  DynBitset& or_and(const DynBitset& a, const DynBitset& b) {
    for (std::size_t w = 0; w < words_.size(); ++w)
      words_[w] |= a.words_[w] & b.words_[w];
    return *this;
  }

  /// this |= (a & ~b), word-parallel: accumulates the bits of `a` missing
  /// from `b` (the uncovered configurations in the coverage check).
  DynBitset& or_andnot(const DynBitset& a, const DynBitset& b) {
    for (std::size_t w = 0; w < words_.size(); ++w)
      words_[w] |= a.words_[w] & ~b.words_[w];
    return *this;
  }

  /// Index of the lowest set bit, or size() when empty.
  std::size_t find_first() const {
    for (std::size_t w = 0; w < words_.size(); ++w)
      if (words_[w] != 0)
        return w * 64 + static_cast<std::size_t>(std::countr_zero(words_[w]));
    return nbits_;
  }

  /// FNV-1a hash of the words, for unordered containers and memo tables.
  std::size_t hash() const;

  /// "{1,4,7}"-style rendering, mainly for diagnostics and tests.
  std::string to_string() const;

 private:
  void check_index(std::size_t i) const {
    if (i >= nbits_) throw_index_out_of_range(i);
  }
  [[noreturn]] void throw_index_out_of_range(std::size_t i) const;
  [[noreturn]] void throw_size_mismatch(const char* op) const;

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

struct DynBitsetHash {
  std::size_t operator()(const DynBitset& b) const { return b.hash(); }
};

}  // namespace prpart
