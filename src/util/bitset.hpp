#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace prpart {

/// Fixed-capacity dynamic bitset sized at construction time.
///
/// Used throughout the partitioner to represent sets of modes (columns of
/// the connectivity matrix). Capacity is decided once per design, so all
/// sets in one partitioning run share the same word count, which keeps the
/// set algebra branch-free.
class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t nbits);

  std::size_t size() const { return nbits_; }

  // The single-bit accessors and the pairwise-disjointness test are the
  // partitioner's hottest operations (the greedy move scan runs millions
  // per search), so they live in the header; the failure paths stay
  // out-of-line to keep the inlined code small.
  void set(std::size_t i) {
    check_index(i);
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  void reset(std::size_t i) {
    check_index(i);
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
  bool test(std::size_t i) const {
    check_index(i);
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  /// Number of set bits.
  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }

  /// True when this and `other` share at least one set bit.
  bool intersects(const DynBitset& other) const;
  /// True when every set bit of this is also set in `other`.
  bool is_subset_of(const DynBitset& other) const;

  DynBitset& operator|=(const DynBitset& other);
  DynBitset& operator&=(const DynBitset& other);
  /// Clears every bit that is set in `other`.
  DynBitset& subtract(const DynBitset& other);

  friend DynBitset operator|(DynBitset a, const DynBitset& b) { return a |= b; }
  friend DynBitset operator&(DynBitset a, const DynBitset& b) { return a &= b; }

  bool operator==(const DynBitset& other) const;
  bool operator!=(const DynBitset& other) const { return !(*this == other); }
  /// Lexicographic order on the underlying words; any strict weak order
  /// works for use as a map key.
  bool operator<(const DynBitset& other) const;

  /// Indices of set bits in increasing order.
  std::vector<std::size_t> bits() const;

  /// FNV-1a hash of the words, for unordered containers and memo tables.
  std::size_t hash() const;

  /// "{1,4,7}"-style rendering, mainly for diagnostics and tests.
  std::string to_string() const;

 private:
  void check_index(std::size_t i) const {
    if (i >= nbits_) throw_index_out_of_range(i);
  }
  [[noreturn]] void throw_index_out_of_range(std::size_t i) const;

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

struct DynBitsetHash {
  std::size_t operator()(const DynBitset& b) const { return b.hash(); }
};

}  // namespace prpart
