#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/status.hpp"

namespace prpart::json {

namespace {

[[noreturn]] void type_error(const char* want, Value::Type got) {
  static const char* names[] = {"null",   "bool",  "uint",   "int",
                                "double", "string", "array", "object"};
  throw ParseError(std::string("JSON value is ") +
                   names[static_cast<int>(got)] + ", expected " + want);
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::Bool) type_error("bool", type_);
  return bool_;
}

std::uint64_t Value::as_u64() const {
  if (type_ == Type::Uint) return uint_;
  if (type_ == Type::Int && int_ >= 0) return static_cast<std::uint64_t>(int_);
  type_error("non-negative integer", type_);
}

std::int64_t Value::as_i64() const {
  if (type_ == Type::Int) return int_;
  if (type_ == Type::Uint) {
    if (uint_ > static_cast<std::uint64_t>(INT64_MAX))
      throw ParseError("JSON integer out of int64 range");
    return static_cast<std::int64_t>(uint_);
  }
  type_error("integer", type_);
}

double Value::as_double() const {
  if (type_ == Type::Double) return double_;
  if (type_ == Type::Uint) return static_cast<double>(uint_);
  if (type_ == Type::Int) return static_cast<double>(int_);
  type_error("number", type_);
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) type_error("string", type_);
  return string_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::Array) type_error("array", type_);
  return array_;
}

void Value::push_back(Value v) {
  if (type_ != Type::Array) type_error("array", type_);
  array_.push_back(std::move(v));
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (type_ != Type::Object) type_error("object", type_);
  return object_;
}

void Value::set(const std::string& key, Value v) {
  if (type_ != Type::Object) type_error("object", type_);
  for (auto& [k, existing] : object_)
    if (k == key) {
      existing = std::move(v);
      return;
    }
  object_.emplace_back(key, std::move(v));
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (!v) throw ParseError("missing JSON field '" + std::string(key) + "'");
  return *v;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Uint: return uint_ == other.uint_;
    case Type::Int: return int_ == other.int_;
    case Type::Double: return double_ == other.double_;
    case Type::String: return string_ == other.string_;
    case Type::Array: return array_ == other.array_;
    case Type::Object: return object_ == other.object_;
  }
  return false;
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Value::dump() const {
  switch (type_) {
    case Type::Null: return "null";
    case Type::Bool: return bool_ ? "true" : "false";
    case Type::Uint: return std::to_string(uint_);
    case Type::Int: return std::to_string(int_);
    case Type::Double: {
      if (!std::isfinite(double_))
        throw ParseError("cannot serialise a non-finite number as JSON");
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      return buf;
    }
    case Type::String: return escape(string_);
    case Type::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += array_[i].dump();
      }
      out.push_back(']');
      return out;
    }
    case Type::Object: {
      std::string out = "{";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += escape(object_[i].first);
        out.push_back(':');
        out += object_[i].second.dump();
      }
      out.push_back('}');
      return out;
    }
  }
  return "null";
}

namespace {

/// Recursive-descent parser over the input view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size())
      fail("trailing characters after the JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) return false;
    pos_ += kw.size();
    return true;
  }

  Value parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    Value v;
    if (c == '{') v = parse_object();
    else if (c == '[') v = parse_array();
    else if (c == '"') v = Value(parse_string());
    else if (consume_keyword("true")) v = Value(true);
    else if (consume_keyword("false")) v = Value(false);
    else if (consume_keyword("null")) v = Value();
    else v = parse_number();
    --depth_;
    return v;
  }

  Value parse_object() {
    expect('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char n = peek();
      ++pos_;
      if (n == '}') return obj;
      if (n != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char n = peek();
      ++pos_;
      if (n == ']') return arr;
      if (n != ',') fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: a second \uXXXX must follow.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const std::uint32_t lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid surrogate pair");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              fail("unpaired surrogate");
            }
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    bool negative = false;
    bool integral = true;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (!(peek() >= '0' && peek() <= '9')) fail("invalid number");
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      if (negative) {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno != 0 || *end != '\0') fail("integer out of range");
        return Value(static_cast<std::int64_t>(v));
      }
      const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
      if (errno != 0 || *end != '\0') fail("integer out of range");
      return Value(static_cast<std::uint64_t>(v));
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (errno != 0 || *end != '\0' || !std::isfinite(v))
      fail("invalid number");
    return Value(v);
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace prpart::json
