#include "util/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace prpart {

namespace {

/// Thread-safe strerror: handler threads can hit errno paths concurrently,
/// so the static-buffer std::strerror is off limits (concurrency-mt-unsafe).
/// Overload dispatch covers both strerror_r flavours — glibc's GNU variant
/// returns the message pointer (possibly ignoring the buffer), the XSI
/// variant fills the buffer and returns an int status.
[[maybe_unused]] const char* strerror_message(const char* msg,
                                              const char* /*buf*/) {
  return msg;
}
[[maybe_unused]] const char* strerror_message(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}

std::string errno_message(int err) {
  char buf[256];
  buf[0] = '\0';
  return strerror_message(strerror_r(err, buf, sizeof(buf)), buf);
}

[[noreturn]] void throw_errno(const std::string& op) {
  throw SocketError(op + ": " + errno_message(errno));
}

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1)
    throw SocketError("cannot parse IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const sockaddr_in addr = loopback_addr(host, port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(fd);
}

std::optional<std::string> TcpStream::read_line(std::size_t max_line) {
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      if (nl > max_line)
        throw SocketError("protocol line exceeds " +
                          std::to_string(max_line) + " bytes");
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buffer_.size() > max_line)
      throw SocketError("protocol line exceeds " + std::to_string(max_line) +
                        " bytes");
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) {
      if (buffer_.empty()) return std::nullopt;
      // Unterminated trailing data: treat it as the final line.
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void TcpStream::write_all(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void TcpStream::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

TcpListener TcpListener::bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_addr("127.0.0.1", port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("getsockname");
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<TcpStream> TcpListener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;
    throw_errno("poll");
  }
  if (ready == 0) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return std::nullopt;
    throw_errno("accept");
  }
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(client);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace prpart
