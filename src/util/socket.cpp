#include "util/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace prpart {

namespace {

/// Thread-safe strerror: handler threads can hit errno paths concurrently,
/// so the static-buffer std::strerror is off limits (concurrency-mt-unsafe).
/// Overload dispatch covers both strerror_r flavours — glibc's GNU variant
/// returns the message pointer (possibly ignoring the buffer), the XSI
/// variant fills the buffer and returns an int status.
[[maybe_unused]] const char* strerror_message(const char* msg,
                                              const char* /*buf*/) {
  return msg;
}
[[maybe_unused]] const char* strerror_message(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}

std::string errno_message(int err) {
  char buf[256];
  buf[0] = '\0';
  return strerror_message(strerror_r(err, buf, sizeof(buf)), buf);
}

[[noreturn]] void throw_errno(const std::string& op) {
  throw SocketError(op + ": " + errno_message(errno));
}

void set_fd_nonblocking(int fd, bool on, const char* what) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno(std::string("fcntl F_GETFL (") + what + ")");
  const int wanted = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) < 0)
    throw_errno(std::string("fcntl F_SETFL (") + what + ")");
}

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1)
    throw SocketError("cannot parse IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const sockaddr_in addr = loopback_addr(host, port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(fd);
}

std::optional<std::string> TcpStream::read_line(std::size_t max_line) {
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      if (nl > max_line)
        throw SocketError("protocol line exceeds " +
                          std::to_string(max_line) + " bytes");
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buffer_.size() > max_line)
      throw SocketError("protocol line exceeds " + std::to_string(max_line) +
                        " bytes");
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) {
      if (buffer_.empty()) return std::nullopt;
      // Unterminated trailing data: treat it as the final line.
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void TcpStream::write_all(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void TcpStream::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void TcpStream::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpStream::set_nonblocking(bool on) {
  set_fd_nonblocking(fd_, on, "stream");
}

TcpStream::IoResult TcpStream::read_some(char* buf, std::size_t len) {
  while (true) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return {IoStatus::kWouldBlock, 0};
    if (errno == ECONNRESET) return {IoStatus::kClosed, 0};
    throw_errno("recv");
  }
}

TcpStream::IoResult TcpStream::write_some(const char* data, std::size_t len) {
  while (true) {
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return {IoStatus::kWouldBlock, 0};
    if (errno == EPIPE || errno == ECONNRESET) return {IoStatus::kClosed, 0};
    throw_errno("send");
  }
}

WakePipe::WakePipe() {
  if (::pipe(fds_) != 0) throw_errno("pipe");
  set_fd_nonblocking(fds_[0], true, "wake pipe");
  set_fd_nonblocking(fds_[1], true, "wake pipe");
}

WakePipe::~WakePipe() {
  if (fds_[0] >= 0) ::close(fds_[0]);
  if (fds_[1] >= 0) ::close(fds_[1]);
}

WakePipe::WakePipe(WakePipe&& other) noexcept {
  fds_[0] = std::exchange(other.fds_[0], -1);
  fds_[1] = std::exchange(other.fds_[1], -1);
}

WakePipe& WakePipe::operator=(WakePipe&& other) noexcept {
  if (this != &other) {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[0] = std::exchange(other.fds_[0], -1);
    fds_[1] = std::exchange(other.fds_[1], -1);
  }
  return *this;
}

void WakePipe::notify() {
  const char byte = 1;
  // A full pipe already guarantees the sleeper will wake, so EAGAIN (and a
  // racing EINTR) are success; no loop, so this stays signal-safe.
  [[maybe_unused]] const ssize_t n = ::write(fds_[1], &byte, 1);
}

void WakePipe::drain() {
  char sink[64];
  while (::read(fds_[0], sink, sizeof sink) > 0) {
  }
}

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

TcpListener TcpListener::bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_addr("127.0.0.1", port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  // Deep accept queue: the reactor serves 1k+ concurrent clients from one
  // process, and a connect burst must not overflow the backlog while the
  // accept loop waits for its next scheduling quantum.
  if (::listen(fd, 1024) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("getsockname");
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<TcpStream> TcpListener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;
    throw_errno("poll");
  }
  if (ready == 0) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return std::nullopt;
    throw_errno("accept");
  }
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(client);
}

std::optional<TcpStream> TcpListener::accept_wait(WakePipe& wake) {
  pollfd pfds[2] = {{fd_, POLLIN, 0}, {wake.read_fd(), POLLIN, 0}};
  const int ready = ::poll(pfds, 2, -1);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;
    throw_errno("poll");
  }
  if ((pfds[1].revents & POLLIN) != 0) {
    wake.drain();
    return std::nullopt;  // woken: the caller re-checks its stop flag
  }
  if ((pfds[0].revents & POLLIN) == 0) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return std::nullopt;
    throw_errno("accept");
  }
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(client);
}

std::optional<TcpStream> TcpListener::accept_nonblocking() {
  while (true) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return TcpStream(client);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED)
      return std::nullopt;
    throw_errno("accept");
  }
}

void TcpListener::set_nonblocking(bool on) {
  set_fd_nonblocking(fd_, on, "listener");
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Epoll::Epoll() : fd_(::epoll_create1(0)) {
  if (fd_ < 0) throw_errno("epoll_create1");
}

Epoll::~Epoll() {
  if (fd_ >= 0) ::close(fd_);
}

Epoll::Epoll(Epoll&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Epoll& Epoll::operator=(Epoll&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Epoll::add(int fd, std::uint64_t token, bool want_write,
                bool edge_triggered) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u) |
              (edge_triggered ? EPOLLET : 0u) | EPOLLRDHUP;
  ev.data.u64 = token;
  if (::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) != 0) throw_errno("epoll_ctl");
}

void Epoll::remove(int fd) {
  epoll_event ev{};  // ignored, but required pre-2.6.9
  ::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, &ev);
}

std::size_t Epoll::wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
  epoll_event events[128];
  const int n = ::epoll_wait(fd_, events, 128, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    throw_errno("epoll_wait");
  }
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event e;
    e.token = events[i].data.u64;
    // Errors and hangups surface as readability: the next read observes
    // the EOF/error and the connection state machine handles it uniformly.
    e.readable = (events[i].events &
                  (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP)) != 0;
    e.writable = (events[i].events & EPOLLOUT) != 0;
    out.push_back(e);
  }
  return static_cast<std::size_t>(n);
}

}  // namespace prpart
