#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace prpart {

/// A socket operation failed at the OS level (bind, connect, send, ...).
class SocketError : public Error {
 public:
  explicit SocketError(const std::string& what) : Error(what) {}
};

/// A connected TCP byte stream with line-oriented reads, sized for the
/// newline-delimited JSON protocol. Dependency-free POSIX sockets; writes
/// never raise SIGPIPE (a peer that vanished surfaces as SocketError).
/// Move-only: the destructor closes the descriptor.
class TcpStream {
 public:
  TcpStream() = default;
  /// Adopts an already-connected descriptor (e.g. from TcpListener).
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connects to host:port (numeric IPv4 dotted quad or "localhost").
  static TcpStream connect(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }

  /// Reads up to and including the next '\n'; returns the line without the
  /// terminator (a trailing '\r' is also stripped). Returns nullopt on a
  /// clean EOF with no buffered data. A line longer than `max_line` bytes
  /// throws SocketError (protocol abuse guard).
  std::optional<std::string> read_line(std::size_t max_line = kMaxLine);

  /// Writes the whole buffer, retrying short writes.
  void write_all(std::string_view data);

  /// Half-closes the read side; a blocked read_line on another thread
  /// returns EOF. Used by the server's graceful drain.
  void shutdown_read();

  /// Half-closes the write side: the peer observes EOF after draining what
  /// was already sent, while this end keeps reading. Used by the shard
  /// router to propagate a client's EOF upstream without losing responses.
  void shutdown_write();

  void close();

  /// Raw descriptor, for event-loop registration. -1 when invalid.
  int fd() const { return fd_; }

  /// Switches O_NONBLOCK; the non-blocking calls below require it on.
  void set_nonblocking(bool on);

  /// Outcome of one non-blocking read_some/write_some step.
  enum class IoStatus {
    kOk,          ///< `bytes` were transferred (> 0)
    kWouldBlock,  ///< the socket is not ready; wait for the next event
    kClosed,      ///< orderly EOF (read) or peer reset/gone (either way)
  };
  struct IoResult {
    IoStatus status = IoStatus::kWouldBlock;
    std::size_t bytes = 0;
  };

  /// One non-blocking recv into `buf`. EINTR is retried; ECONNRESET maps to
  /// kClosed (a vanished peer is an event-loop state change, not an error);
  /// other failures throw SocketError.
  IoResult read_some(char* buf, std::size_t len);

  /// One non-blocking send (SIGPIPE suppressed). Short writes return kOk
  /// with the partial count; EPIPE/ECONNRESET map to kClosed.
  IoResult write_some(const char* data, std::size_t len);

  /// Default cap on one protocol line (64 MiB covers any realistic design).
  static constexpr std::size_t kMaxLine = 64u << 20;

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// A self-pipe for waking a thread blocked in poll/epoll from any other
/// thread. notify() is async-signal-safe and idempotent while unconsumed;
/// drain() consumes every pending wakeup. Move-only.
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();
  WakePipe(WakePipe&& other) noexcept;
  WakePipe& operator=(WakePipe&& other) noexcept;
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  int read_fd() const { return fds_[0]; }
  void notify();
  void drain();

 private:
  int fds_[2] = {-1, -1};
};

/// A listening TCP socket bound to the loopback interface. accept() polls
/// with a timeout so the server's accept loop can observe its stop flag
/// without signals or self-pipes.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:port; port 0 picks an ephemeral port
  /// (read it back with port() — the integration tests boot on port 0).
  static TcpListener bind(std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Waits up to timeout_ms for a connection; nullopt on timeout (callers
  /// loop and re-check their stop condition).
  std::optional<TcpStream> accept(int timeout_ms);

  /// Readiness-wait accept: parks indefinitely until either a connection
  /// arrives or `wake` is notified, so an idle accept loop costs zero
  /// wakeups instead of polling on a timeout. Returns nullopt when woken
  /// (or on a transient EINTR/ECONNABORTED) — callers re-check their stop
  /// flag and loop.
  std::optional<TcpStream> accept_wait(WakePipe& wake);

  /// One non-blocking accept (requires set_nonblocking(true)); nullopt when
  /// no connection is pending. Used by the epoll reactor, which learns
  /// about readiness from the event loop instead of blocking here.
  std::optional<TcpStream> accept_nonblocking();

  /// Raw descriptor, for event-loop registration. -1 when invalid.
  int fd() const { return fd_; }

  /// Switches O_NONBLOCK on the listening socket.
  void set_nonblocking(bool on);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// A thin epoll wrapper sized for the serve reactor: register descriptors
/// with a caller-chosen 64-bit token, optionally edge-triggered, and wait
/// for batches of events. Move-only; the destructor closes the epoll fd.
class Epoll {
 public:
  struct Event {
    std::uint64_t token = 0;
    bool readable = false;  ///< EPOLLIN (or EPOLLERR/EPOLLHUP: a read will
                            ///< observe the error/EOF, so they map here too)
    bool writable = false;  ///< EPOLLOUT
  };

  Epoll();
  ~Epoll();
  Epoll(Epoll&& other) noexcept;
  Epoll& operator=(Epoll&& other) noexcept;
  Epoll(const Epoll&) = delete;
  Epoll& operator=(const Epoll&) = delete;

  /// Registers `fd` for read and (optionally) write events under `token`.
  /// Edge-triggered registration reports each readiness transition once;
  /// the caller must drain until kWouldBlock before the next event arrives.
  void add(int fd, std::uint64_t token, bool want_write, bool edge_triggered);
  void remove(int fd);

  /// Blocks up to timeout_ms (-1 = forever); appends ready events to `out`
  /// (cleared first) and returns their count. EINTR returns 0.
  std::size_t wait(std::vector<Event>& out, int timeout_ms);

 private:
  int fd_ = -1;
};

}  // namespace prpart
