#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace prpart {

/// A socket operation failed at the OS level (bind, connect, send, ...).
class SocketError : public Error {
 public:
  explicit SocketError(const std::string& what) : Error(what) {}
};

/// A connected TCP byte stream with line-oriented reads, sized for the
/// newline-delimited JSON protocol. Dependency-free POSIX sockets; writes
/// never raise SIGPIPE (a peer that vanished surfaces as SocketError).
/// Move-only: the destructor closes the descriptor.
class TcpStream {
 public:
  TcpStream() = default;
  /// Adopts an already-connected descriptor (e.g. from TcpListener).
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connects to host:port (numeric IPv4 dotted quad or "localhost").
  static TcpStream connect(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }

  /// Reads up to and including the next '\n'; returns the line without the
  /// terminator (a trailing '\r' is also stripped). Returns nullopt on a
  /// clean EOF with no buffered data. A line longer than `max_line` bytes
  /// throws SocketError (protocol abuse guard).
  std::optional<std::string> read_line(std::size_t max_line = kMaxLine);

  /// Writes the whole buffer, retrying short writes.
  void write_all(std::string_view data);

  /// Half-closes the read side; a blocked read_line on another thread
  /// returns EOF. Used by the server's graceful drain.
  void shutdown_read();

  void close();

  /// Default cap on one protocol line (64 MiB covers any realistic design).
  static constexpr std::size_t kMaxLine = 64u << 20;

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// A listening TCP socket bound to the loopback interface. accept() polls
/// with a timeout so the server's accept loop can observe its stop flag
/// without signals or self-pipes.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:port; port 0 picks an ephemeral port
  /// (read it back with port() — the integration tests boot on port 0).
  static TcpListener bind(std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Waits up to timeout_ms for a connection; nullopt on timeout (callers
  /// loop and re-check their stop condition).
  std::optional<TcpStream> accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace prpart
