#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace prpart {

/// Minimal command-line parser for the prpart tool: positionals plus
/// `--key value` options and `--switch` flags. Unknown options throw
/// ParseError so typos fail loudly.
class Args {
 public:
  /// `flags` lists options that take no value; everything else starting
  /// with "--" expects one.
  Args(const std::vector<std::string>& argv,
       const std::vector<std::string>& flags);

  const std::vector<std::string>& positionals() const { return positionals_; }

  bool has(const std::string& key) const;
  /// Value of `--key`; nullopt when absent.
  std::optional<std::string> value(const std::string& key) const;
  /// Value of `--key` or `fallback`.
  std::string value_or(const std::string& key,
                       const std::string& fallback) const;
  /// Numeric value of `--key` or `fallback`.
  std::uint64_t u64_or(const std::string& key, std::uint64_t fallback) const;

  /// Throws ParseError unless every given option was consumed by one of the
  /// accessors above or appears in `known`; guards against silently ignored
  /// options.
  void check_known(const std::vector<std::string>& known) const;

 private:
  std::vector<std::string> positionals_;
  std::vector<std::pair<std::string, std::string>> options_;  // key -> value
  std::vector<std::string> switches_;
};

}  // namespace prpart
