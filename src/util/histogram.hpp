#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace prpart {

/// Fixed-width bucket histogram over doubles, with ASCII rendering.
///
/// Reproduces the shape of the paper's Fig. 9 panels (counts of designs per
/// percentage-improvement bucket).
class Histogram {
 public:
  /// Buckets cover [lo, hi) in `nbuckets` equal steps; samples outside the
  /// range are clamped into the first/last bucket so nothing is dropped.
  Histogram(double lo, double hi, std::size_t nbuckets);

  void add(double sample);

  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& counts() const { return counts_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Fraction of samples strictly greater than `threshold`.
  double fraction_above(double threshold) const;

  /// Renders bucket ranges, counts, and a proportional bar chart.
  std::string render(const std::string& title, std::size_t bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::vector<double> samples_;
  std::size_t total_ = 0;
};

}  // namespace prpart
