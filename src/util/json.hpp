#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prpart::json {

/// Minimal JSON document model for the serving protocol and the CLI's
/// machine-readable output. Deliberately dependency-free, mirroring the
/// in-tree XML subset: objects preserve insertion order so that encoding is
/// deterministic (equal Values dump to identical bytes — the property the
/// content-addressed result cache and the byte-identity tests rely on).
class Value {
 public:
  enum class Type { Null, Bool, Uint, Int, Double, String, Array, Object };

  Value() : type_(Type::Null) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(std::uint64_t u) : type_(Type::Uint), uint_(u) {}
  Value(std::int64_t i) : type_(Type::Int), int_(i) {}
  Value(int i) : type_(Type::Int), int_(i) {}
  Value(double d) : type_(Type::Double), double_(d) {}
  Value(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Value(const char* s) : type_(Type::String), string_(s) {}

  static Value array() {
    Value v;
    v.type_ = Type::Array;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::Object;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const {
    return type_ == Type::Uint || type_ == Type::Int || type_ == Type::Double;
  }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors throw ParseError on a type mismatch: protocol fields of
  /// the wrong shape surface as bad_request, never as a crash.
  bool as_bool() const;
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Array access.
  const std::vector<Value>& items() const;
  void push_back(Value v);

  /// Object access (insertion-ordered).
  const std::vector<std::pair<std::string, Value>>& members() const;
  /// Adds or replaces `key`; replacement keeps the original position.
  void set(const std::string& key, Value v);
  /// Returns nullptr when absent (or when not an object).
  const Value* find(std::string_view key) const;
  /// Throws ParseError when absent.
  const Value& at(std::string_view key) const;

  bool operator==(const Value& other) const;

  /// Compact, deterministic serialisation (no whitespace, insertion-ordered
  /// object members). parse(dump(v)) == v for every value built here.
  std::string dump() const;

 private:
  Type type_;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parses one JSON document (the full string must be consumed apart from
/// trailing whitespace). Throws ParseError with an offset on malformed
/// input. Non-negative integers parse as Uint, negative ones as Int, and
/// anything with a fraction or exponent as Double.
Value parse(std::string_view text);

/// Escapes `raw` as a JSON string literal including the quotes.
std::string escape(std::string_view raw);

}  // namespace prpart::json
