#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace prpart {

Histogram::Histogram(double lo, double hi, std::size_t nbuckets)
    : lo_(lo), hi_(hi), counts_(nbuckets, 0) {
  require(hi > lo, "Histogram range must be non-empty");
  require(nbuckets > 0, "Histogram needs at least one bucket");
}

void Histogram::add(double sample) {
  const double step = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>(std::floor((sample - lo_) / step));
  idx = std::clamp(idx, 0l, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  samples_.push_back(sample);
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double step = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + static_cast<double>(i) * step;
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

double Histogram::fraction_above(double threshold) const {
  if (total_ == 0) return 0.0;
  const auto n = std::count_if(samples_.begin(), samples_.end(),
                               [&](double s) { return s > threshold; });
  return static_cast<double>(n) / static_cast<double>(total_);
}

std::string Histogram::render(const std::string& title,
                              std::size_t bar_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);

  std::string out = title + "\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::string range = "[" + fixed(bucket_lo(i), 0) + ", " +
                        fixed(bucket_hi(i), 0) + ")";
    while (range.size() < 14) range += ' ';
    const std::size_t bar =
        counts_[i] == 0
            ? 0
            : std::max<std::size_t>(1, counts_[i] * bar_width / peak);
    out += "  " + range + " " + std::string(bar, '#');
    out += " " + std::to_string(counts_[i]) + "\n";
  }
  return out;
}

}  // namespace prpart
