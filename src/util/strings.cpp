#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/status.hpp"

namespace prpart {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      const std::string_view piece = trim(s.substr(start, i - start));
      if (!piece.empty()) out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::uint64_t parse_u64(std::string_view s) {
  const std::string_view t = trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size())
    throw ParseError("expected unsigned integer, got '" + std::string(s) + "'");
  return value;
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace prpart
