#include "util/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/thread_annotations.hpp"

namespace prpart {

namespace {
// Set while executing a body inside a parallel_for worker thread. Nested
// parallel_for calls (e.g. the sweep harness parallelising over designs
// while each design's search parallelises over work units) then run inline
// instead of multiplying the thread count.
thread_local bool g_inside_parallel_for = false;
}  // namespace

bool inside_parallel_for() { return g_inside_parallel_for; }

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (threads <= 1 || count == 1 || g_inside_parallel_for) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  Mutex error_mutex(lock_order::Level::kParallelForError, "parallel_for.error");
  std::atomic<bool> failed{false};

  auto worker = [&] {
    g_inside_parallel_for = true;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        // Any lock the body held was released during unwinding, so the
        // error slot is a leaf in the lock hierarchy.
        const MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const auto n = static_cast<unsigned>(
      std::min<std::size_t>(threads, count));
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

WorkerPool::WorkerPool(unsigned threads) {
  const unsigned n = threads == 0 ? 1 : threads;
  workers_.reserve(n - 1);
  for (unsigned t = 1; t < n; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
    wake_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::work(const std::function<void(std::size_t)>& body,
                      std::size_t count) {
  // Bodies run with the nested flag set (and no pool lock held), so a
  // parallel_for or pool run issued from inside one executes inline — the
  // same composition rule as the spawning parallel_for. The caller
  // participates through this function too, hence save/restore rather
  // than set/clear.
  const bool was_inside = g_inside_parallel_for;
  g_inside_parallel_for = true;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    try {
      body(i);
    } catch (...) {
      {
        // Any lock the body held was released during unwinding, so only
        // the pool mutex is acquired here.
        const MutexLock lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      failed_.store(true, std::memory_order_relaxed);
      // Mark every remaining index claimed so the drain condition (all
      // indices claimed, no participant active) holds without running
      // them — the free parallel_for's early-out, expressed in counters.
      next_.store(count, std::memory_order_relaxed);
      break;
    }
    if (failed_.load(std::memory_order_relaxed)) break;
  }
  g_inside_parallel_for = was_inside;
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  MutexLock lock(mutex_);
  for (;;) {
    while (!stop_ && (generation_ == seen || !running_)) wake_.wait(mutex_);
    if (stop_) return;
    seen = generation_;
    const std::function<void(std::size_t)>* body = body_;
    const std::size_t count = count_;
    ++active_;
    lock.unlock();
    work(*body, count);
    lock.lock();
    --active_;
    if (active_ == 0 && next_.load(std::memory_order_relaxed) >= count_)
      done_.notify_one();
  }
}

void WorkerPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1 || g_inside_parallel_for) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  {
    const MutexLock lock(mutex_);
    require(!running_,
            "WorkerPool::run called concurrently; a pool serves one runner "
            "at a time (give each job worker its own pool)");
    body_ = &body;
    count_ = count;
    running_ = true;
    failed_.store(false, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
    wake_.notify_all();
  }

  // The caller is the pool's extra worker: it drains indices alongside the
  // woken threads, then waits for the stragglers still inside a body.
  work(body, count);

  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    while (active_ != 0 ||
           next_.load(std::memory_order_relaxed) < count_)
      done_.wait(mutex_);
    running_ = false;
    body_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for(WorkerPool* pool, std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& body) {
  if (pool != nullptr && threads > 1 && !inside_parallel_for()) {
    pool->run(count, body);
    return;
  }
  parallel_for(count, threads, body);
}

unsigned default_thread_count(const char* env_var) {
  // Read-only getenv: the process never calls setenv, so this cannot race.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv(env_var)) {
    const std::uint64_t n = parse_u64(env);
    return n == 0 ? 1u : static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

}  // namespace prpart
