#include "util/parallel_for.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "util/strings.hpp"
#include "util/thread_annotations.hpp"

namespace prpart {

namespace {
// Set while executing a body inside a parallel_for worker thread. Nested
// parallel_for calls (e.g. the sweep harness parallelising over designs
// while each design's search parallelises over work units) then run inline
// instead of multiplying the thread count.
thread_local bool g_inside_parallel_for = false;
}  // namespace

bool inside_parallel_for() { return g_inside_parallel_for; }

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (threads <= 1 || count == 1 || g_inside_parallel_for) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  Mutex error_mutex(lock_order::Level::kParallelForError, "parallel_for.error");
  std::atomic<bool> failed{false};

  auto worker = [&] {
    g_inside_parallel_for = true;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        // Any lock the body held was released during unwinding, so the
        // error slot is a leaf in the lock hierarchy.
        const MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const auto n = static_cast<unsigned>(
      std::min<std::size_t>(threads, count));
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

unsigned default_thread_count(const char* env_var) {
  // Read-only getenv: the process never calls setenv, so this cannot race.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv(env_var)) {
    const std::uint64_t n = parse_u64(env);
    return n == 0 ? 1u : static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

}  // namespace prpart
