#include "util/table.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace prpart {

namespace {
const std::string kRuleSentinel = "\x01rule";
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "TextTable row has wrong number of cells");
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.push_back({kRuleSentinel}); }

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kRuleSentinel) continue;
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t c = 0; c < width.size(); ++c)
      line += std::string(width[c] + 2, '-') + "+";
    line += '\n';
    return line;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ' + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    line += '\n';
    return line;
  };

  std::string out = rule() + emit(header_) + rule();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kRuleSentinel)
      out += rule();
    else
      out += emit(row);
  }
  out += rule();
  return out;
}

}  // namespace prpart
