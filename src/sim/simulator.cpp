#include "sim/simulator.hpp"

#include <map>

#include "reconfig/icap_datapath.hpp"
#include "reconfig/prefetch.hpp"
#include "util/parallel_for.hpp"
#include "util/status.hpp"

namespace prpart::sim {

namespace {

/// Nearest-rank percentile over an ascending (value, count) table.
std::uint64_t percentile(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& counts,
    std::uint64_t total, double q) {
  if (total == 0) return 0;
  // Nearest-rank: the smallest value whose cumulative count reaches
  // ceil(q * total).
  const double exact = q * static_cast<double>(total);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (const auto& [value, count] : counts) {
    cumulative += count;
    if (cumulative >= rank) return value;
  }
  return counts.back().first;
}

void finalize(SimulationResult& result,
              const std::map<std::uint64_t, std::uint64_t>& latencies,
              std::uint64_t makespan_ns) {
  result.latency_counts.assign(latencies.begin(), latencies.end());
  result.makespan_ns = makespan_ns;
  result.p50_latency_ns = percentile(result.latency_counts, result.transitions, 0.50);
  result.p95_latency_ns = percentile(result.latency_counts, result.transitions, 0.95);
  result.p99_latency_ns = percentile(result.latency_counts, result.transitions, 0.99);
  if (!result.latency_counts.empty())
    result.max_latency_ns = result.latency_counts.back().first;
  if (makespan_ns > 0)
    result.transitions_per_second = static_cast<double>(result.transitions) *
                                    1e9 / static_cast<double>(makespan_ns);
}

}  // namespace

SimulationResult simulate_scheme(const Design& design,
                                 const PartitionScheme& scheme,
                                 const SchemeEvaluation& evaluation,
                                 const TransitionTrace& trace,
                                 const SimulationOptions& options) {
  const std::size_t nconf = design.configurations().size();
  require(evaluation.valid, "cannot simulate an invalid scheme");
  require(evaluation.regions.size() == scheme.regions.size(),
          "evaluation does not match scheme");
  require(trace.configs.size() >= 2,
          "a trace needs a boot configuration and at least one transition");
  for (const std::uint32_t c : trace.configs)
    require(c < nconf, "trace configuration id out of range");

  SimulationResult result;
  std::map<std::uint64_t, std::uint64_t> latencies;
  IcapDatapath datapath(options.icap);

  const auto serve = [&](std::uint64_t frames, std::uint64_t index) {
    // Closed loop submits the moment the port is free; a fixed arrival
    // period submits on the environment's clock and eats queueing delay.
    const std::uint64_t submit_ns =
        options.inter_arrival_ns == 0
            ? datapath.ready_ns()
            : index * options.inter_arrival_ns;
    const IcapCompletion done =
        datapath.submit(IcapRequest{submit_ns, frames});
    const std::uint64_t latency = done.done_ns - submit_ns;
    ++result.transitions;
    result.frames_loaded += frames;
    result.total_latency_ns += latency;
    ++latencies[latency];
  };

  if (!options.prefetch) {
    // Memoryless pairwise cost: transition i -> j loads exactly the regions
    // whose active members differ (Eq. 8 per transition). Precomputing the
    // C x C matrices keeps multi-million-step replays at O(1) per step.
    const auto frames_of = transition_frame_matrix(evaluation, nconf);
    std::vector<std::vector<std::uint32_t>> loads_of(
        nconf, std::vector<std::uint32_t>(nconf, 0));
    for (const RegionReport& region : evaluation.regions)
      for (std::size_t i = 0; i < nconf; ++i)
        for (std::size_t j = i + 1; j < nconf; ++j) {
          const int a = region.active[i];
          const int b = region.active[j];
          if (a >= 0 && b >= 0 && a != b) {
            ++loads_of[i][j];
            ++loads_of[j][i];
          }
        }
    for (std::size_t k = 1; k < trace.configs.size(); ++k) {
      const std::uint32_t from = trace.configs[k - 1];
      const std::uint32_t to = trace.configs[k];
      result.region_loads += loads_of[from][to];
      serve(frames_of[from][to], k - 1);
    }
  } else {
    require(options.predictor != nullptr,
            "prefetching simulation needs a predictor chain");
    PrefetchingController controller(design, scheme, evaluation,
                                     *options.predictor, options.icap,
                                     options.idle_frames_budget);
    controller.boot(trace.configs.front());
    for (std::size_t k = 1; k < trace.configs.size(); ++k)
      serve(controller.transition(trace.configs[k]), k - 1);
    const PrefetchStats& ps = controller.stats();
    result.region_loads = ps.stall_loads;
    result.prefetched_frames = ps.prefetched_frames;
    result.useful_prefetches = ps.useful_prefetches;
    result.wasted_prefetches = ps.wasted_prefetches;
  }

  finalize(result, latencies, datapath.stats().last_done_ns);
  return result;
}

std::vector<SimulationResult> simulate_schemes(
    const Design& design, const std::vector<SchemeRef>& schemes,
    const TransitionTrace& trace, const SimulationOptions& options,
    unsigned threads) {
  std::vector<SimulationResult> results(schemes.size());
  parallel_for(schemes.size(), threads, [&](std::size_t i) {
    require(schemes[i].scheme != nullptr && schemes[i].evaluation != nullptr,
            "simulate_schemes got a null scheme reference");
    results[i] = simulate_scheme(design, *schemes[i].scheme,
                                 *schemes[i].evaluation, trace, options);
  });
  return results;
}

}  // namespace prpart::sim
