#include "sim/workload.hpp"

namespace prpart::sim {

std::uint64_t SimulatedWorkloadCost::cost(
    const PartitionScheme& scheme, const SchemeEvaluation& evaluation) const {
  const SimulationResult result =
      simulate_scheme(design_, scheme, evaluation, trace_, options_);
  ++evaluations_;
  switch (metric_) {
    case WorkloadMetric::TotalLatencyNs:
      return result.total_latency_ns;
    case WorkloadMetric::P99LatencyNs:
      return result.p99_latency_ns;
    case WorkloadMetric::MaxLatencyNs:
      return result.max_latency_ns;
  }
  return result.total_latency_ns;  // unreachable; keeps -Werror quiet
}

}  // namespace prpart::sim
