#pragma once

#include "core/search.hpp"
#include "sim/simulator.hpp"

namespace prpart::sim {

/// Which scalar of a SimulationResult the search should minimise.
enum class WorkloadMetric {
  TotalLatencyNs,  ///< summed served latency (throughput-oriented)
  P99LatencyNs,    ///< tail latency (QoS-oriented)
  MaxLatencyNs,    ///< worst single transition (hard-deadline-oriented)
};

/// WorkloadCost backed by the trace-driven simulator: the region-allocation
/// search hands each near-optimal alternative here and re-ranks by the
/// latency the workload would actually observe. Deterministic because the
/// simulator is; cost ties fall back to the search's Eq. 10 order.
///
/// The design, trace and options must outlive the search call.
class SimulatedWorkloadCost final : public WorkloadCost {
 public:
  SimulatedWorkloadCost(const Design& design, const TransitionTrace& trace,
                        SimulationOptions options = {},
                        WorkloadMetric metric = WorkloadMetric::P99LatencyNs)
      : design_(design), trace_(trace), options_(options), metric_(metric) {}

  std::uint64_t cost(const PartitionScheme& scheme,
                     const SchemeEvaluation& evaluation) const override;

  /// Schemes simulated so far (one per cost() call); exposed so tests and
  /// stats can assert the hook actually ran.
  std::uint64_t evaluations() const { return evaluations_; }

 private:
  const Design& design_;
  const TransitionTrace& trace_;
  SimulationOptions options_;
  WorkloadMetric metric_;
  mutable std::uint64_t evaluations_ = 0;
};

}  // namespace prpart::sim
