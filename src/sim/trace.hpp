#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "reconfig/markov.hpp"
#include "util/rng.hpp"

namespace prpart::sim {

/// A replayable sequence of configuration ids. Transitions are consecutive
/// pairs: entry k requests a switch from configs[k-1] to configs[k], so a
/// trace of N entries replays N-1 transitions (the first entry is the boot
/// configuration).
struct TransitionTrace {
  std::vector<std::uint32_t> configs;

  std::size_t transitions() const {
    return configs.empty() ? 0 : configs.size() - 1;
  }
};

/// Samples a trace of `transitions` transitions from `chain`, starting in
/// `start`. Fully deterministic in the Rng state: the same seed replays the
/// same workload on every platform (the chains exclude self-transitions, so
/// every step is a real reconfiguration request).
TransitionTrace markov_trace(const MarkovChain& chain, Rng& rng,
                             std::uint64_t transitions, std::size_t start = 0);

/// The uniform all-pairs workload behind the paper's Eq. 10 proxy: an
/// Eulerian circuit over the complete digraph on `configs` states, so every
/// ordered pair (i, j), i != j, appears as a transition exactly once.
/// Simulating it therefore accumulates sum_{i<j} frames(i,j) twice — the
/// ranking of schemes by simulated cost over this trace equals their Eq. 10
/// ranking exactly, ties included (the property suite pins this).
TransitionTrace uniform_pair_trace(std::size_t configs);

/// Outcome of parsing a trace file. The trace holds every entry that parsed
/// cleanly, but callers must check ok() before replaying: an error-severity
/// diagnostic means entries were rejected and the trace is incomplete.
struct TraceParse {
  TransitionTrace trace;
  std::vector<analysis::Diagnostic> diagnostics;

  bool ok() const;
};

/// Parses the text trace format: whitespace-separated configuration ids
/// (decimal, 0-based), `#` starting a comment that runs to end of line.
///
/// Malformed input is rejected with typed diagnostics carrying exact
/// 1-based source spans (never UB, never a silent skip):
///   * `trace-bad-token`            error: a token that is not a decimal id
///   * `trace-config-out-of-range`  error: an id >= `configs`
///   * `trace-empty`                error: no entries at all
///   * `trace-self-transition`     warning: consecutive identical ids (a
///     zero-cost transition — usually a trace-generation bug)
/// All codes are catalogued in docs/diagnostics.md.
TraceParse parse_trace(std::string_view text, std::size_t configs);

}  // namespace prpart::sim
