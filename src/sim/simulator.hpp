#pragma once

#include <cstdint>
#include <vector>

#include "core/scheme.hpp"
#include "design/design.hpp"
#include "reconfig/icap.hpp"
#include "reconfig/markov.hpp"
#include "sim/trace.hpp"

namespace prpart::sim {

/// Knobs of one simulation run.
struct SimulationOptions {
  /// Timing of the reconfiguration datapath (fetch + ICAP streaming).
  IcapModel icap;
  /// Fixed request inter-arrival period in ns. 0 (the default) runs closed
  /// loop: each transition is requested the instant the previous one
  /// completes, so the ICAP port never queues and the served latency of a
  /// transition is exactly the ICAP model applied to its frame count. A
  /// positive period models an environment that adapts on its own clock:
  /// requests arriving while the port is busy queue up, and the served
  /// latency grows by the queueing delay.
  std::uint64_t inter_arrival_ns = 0;
  /// Markov-predicted configuration prefetching (reconfig/prefetch). When
  /// enabled, `predictor` must be non-null and match the design.
  bool prefetch = false;
  const MarkovChain* predictor = nullptr;
  /// Frames the prefetcher may stream per idle period (default unlimited).
  std::uint64_t idle_frames_budget = ~std::uint64_t{0};
};

/// Everything one replay reports. All fields are deterministic functions of
/// (evaluation, trace, options): two runs — at any thread count — produce
/// identical bytes.
struct SimulationResult {
  std::uint64_t transitions = 0;
  /// Frames loaded on the critical path of transitions (what the
  /// application waits for). Prefetched frames are not included.
  std::uint64_t frames_loaded = 0;
  /// Region reconfigurations on the critical path.
  std::uint64_t region_loads = 0;

  // Prefetch accounting (zero when prefetch is off).
  std::uint64_t prefetched_frames = 0;
  std::uint64_t useful_prefetches = 0;
  std::uint64_t wasted_prefetches = 0;

  /// Served reconfiguration latency: submit -> last frame written,
  /// including any queueing delay behind earlier commands.
  std::uint64_t total_latency_ns = 0;
  std::uint64_t p50_latency_ns = 0;
  std::uint64_t p95_latency_ns = 0;
  std::uint64_t p99_latency_ns = 0;
  std::uint64_t max_latency_ns = 0;
  /// Time at which the datapath finished the last transfer (0 when every
  /// transition was free).
  std::uint64_t makespan_ns = 0;
  /// Transitions per second of simulated time (over the makespan).
  double transitions_per_second = 0.0;

  /// Exact latency distribution: (latency_ns, count) ascending. Distinct
  /// latencies are bounded by the distinct per-transition frame counts (at
  /// most C^2), so this stays tiny even for multi-million-step traces; the
  /// percentiles above are nearest-rank reads of this table.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> latency_counts;
};

/// Replays `trace` against one scheme.
///
/// Cost model: without prefetch, a transition i -> j loads exactly the
/// regions whose active members differ between i and j (Eq. 8 applied per
/// transition — the memoryless cost the paper's Eq. 10 sums over all pairs;
/// per-transition latency is the ICAP model applied to the kernel's
/// active-frame counts, which the property suite pins). With prefetch, the
/// run goes through the stateful PrefetchingController: regions idle in the
/// current configuration are speculatively loaded for the Markov-predicted
/// successor, and only the residual stall frames hit the critical path.
///
/// `evaluation` must be a valid evaluation of `scheme` for the design;
/// every trace entry must be a valid configuration id (the trace reader
/// guarantees this for file traces; programmatic traces are re-checked).
SimulationResult simulate_scheme(const Design& design,
                                 const PartitionScheme& scheme,
                                 const SchemeEvaluation& evaluation,
                                 const TransitionTrace& trace,
                                 const SimulationOptions& options = {});

/// One (scheme, evaluation) pair to simulate; both must outlive the call.
struct SchemeRef {
  const PartitionScheme* scheme = nullptr;
  const SchemeEvaluation* evaluation = nullptr;
};

/// Replays the same trace against many candidate schemes, fanned out over
/// `threads` workers (0 = hardware concurrency, 1 = inline). Results are
/// index-addressed and each scheme's replay is single-threaded, so the
/// output is byte-identical for every thread count — the same determinism
/// discipline as the parallel allocation search.
std::vector<SimulationResult> simulate_schemes(
    const Design& design, const std::vector<SchemeRef>& schemes,
    const TransitionTrace& trace, const SimulationOptions& options = {},
    unsigned threads = 1);

}  // namespace prpart::sim
