#include "sim/trace.hpp"

#include <algorithm>
#include <string>

#include "util/status.hpp"

namespace prpart::sim {

TransitionTrace markov_trace(const MarkovChain& chain, Rng& rng,
                             std::uint64_t transitions, std::size_t start) {
  require(start < chain.states(), "markov_trace start state out of range");
  TransitionTrace trace;
  trace.configs.reserve(transitions + 1);
  std::size_t state = start;
  trace.configs.push_back(static_cast<std::uint32_t>(state));
  for (std::uint64_t k = 0; k < transitions; ++k) {
    state = chain.sample_next(rng, state);
    trace.configs.push_back(static_cast<std::uint32_t>(state));
  }
  return trace;
}

TransitionTrace uniform_pair_trace(std::size_t configs) {
  require(configs >= 2, "uniform_pair_trace needs at least two configurations");
  // Hierholzer's algorithm on the complete digraph K_n: every node has
  // in-degree == out-degree == n-1 and the graph is strongly connected, so
  // an Eulerian circuit exists. next[u] is the smallest untried target of
  // u; always taking it keeps the construction deterministic.
  std::vector<std::size_t> next(configs, 0);
  const auto advance = [&](std::size_t u) {
    if (next[u] == u) ++next[u];  // no self-edges
  };
  std::vector<std::uint32_t> stack;
  std::vector<std::uint32_t> circuit;
  stack.push_back(0);
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    advance(u);
    if (next[u] >= configs) {
      circuit.push_back(static_cast<std::uint32_t>(u));
      stack.pop_back();
    } else {
      const std::size_t v = next[u]++;
      stack.push_back(static_cast<std::uint32_t>(v));
    }
  }
  std::reverse(circuit.begin(), circuit.end());
  require(circuit.size() == configs * (configs - 1) + 1,
          "uniform_pair_trace produced a non-Eulerian walk");
  return TransitionTrace{std::move(circuit)};
}

bool TraceParse::ok() const {
  return std::none_of(diagnostics.begin(), diagnostics.end(),
                      [](const analysis::Diagnostic& d) {
                        return d.severity == analysis::Severity::Error;
                      });
}

namespace {

analysis::Diagnostic trace_diag(analysis::Severity severity, const char* code,
                                std::string message, std::string fixit,
                                std::size_t line, std::size_t column) {
  analysis::Diagnostic d;
  d.severity = severity;
  d.code = code;
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  d.span = {line, column};
  return d;
}

}  // namespace

TraceParse parse_trace(std::string_view text, std::size_t configs) {
  TraceParse out;
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();

  const auto step = [&](char c) {
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++i;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '#') {  // comment to end of line
      while (i < n && text[i] != '\n') step(text[i]);
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      step(c);
      continue;
    }
    // One token: everything up to the next whitespace or comment start.
    const std::size_t tok_line = line;
    const std::size_t tok_column = column;
    std::string token;
    while (i < n && text[i] != ' ' && text[i] != '\t' && text[i] != '\r' &&
           text[i] != '\n' && text[i] != '#') {
      token.push_back(text[i]);
      step(text[i]);
    }

    const bool numeric =
        std::all_of(token.begin(), token.end(),
                    [](char d) { return d >= '0' && d <= '9'; });
    // 19 digits keeps the accumulation below 10^19 < 2^64: longer tokens
    // are rejected before the multiply could wrap.
    if (!numeric || token.size() > 19) {
      out.diagnostics.push_back(trace_diag(
          analysis::Severity::Error, "trace-bad-token",
          "'" + token + "' is not a configuration id",
          "traces are whitespace-separated decimal ids; '#' starts a comment",
          tok_line, tok_column));
      continue;
    }
    std::uint64_t value = 0;
    for (const char d : token) value = value * 10 + static_cast<std::uint64_t>(d - '0');
    if (value >= configs) {
      out.diagnostics.push_back(trace_diag(
          analysis::Severity::Error, "trace-config-out-of-range",
          "configuration id " + token + " is out of range",
          "the design has " + std::to_string(configs) +
              " configurations; ids must be in [0, " +
              std::to_string(configs) + ")",
          tok_line, tok_column));
      continue;
    }
    if (!out.trace.configs.empty() && out.trace.configs.back() == value) {
      out.diagnostics.push_back(trace_diag(
          analysis::Severity::Warning, "trace-self-transition",
          "configuration " + token + " repeats its predecessor",
          "a self-transition costs nothing; drop the duplicate entry",
          tok_line, tok_column));
    }
    out.trace.configs.push_back(static_cast<std::uint32_t>(value));
  }

  if (out.trace.configs.empty()) {
    out.diagnostics.push_back(trace_diag(
        analysis::Severity::Error, "trace-empty",
        "the trace contains no configuration ids", "", 0, 0));
  }
  return out;
}

}  // namespace prpart::sim
