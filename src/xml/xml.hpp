#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace prpart::xml {

/// 1-based position of an element in its source document; line 0 means
/// "unknown" (e.g. an element built programmatically rather than parsed).
/// The design analyzer threads spans through to its diagnostics so every
/// finding points at the offending element in the input file.
struct Span {
  std::size_t line = 0;
  std::size_t column = 0;

  constexpr bool operator==(const Span&) const = default;
  bool known() const { return line != 0; }
  /// "12:5", or "" when unknown.
  std::string to_string() const;
};

/// One element of an XML document: tag name, attributes, text content and
/// child elements.
///
/// This is a deliberately small subset of XML sufficient for the tool-flow
/// input format described in the paper (elements, attributes, character
/// data, comments, declarations). No namespaces, DTDs or processing beyond
/// skipping `<?...?>` declarations.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Source position of the element's opening `<` (set by the parser;
  /// unknown for programmatically built elements).
  const Span& span() const { return span_; }
  void set_span(Span span) { span_ = span; }

  /// Concatenated character data directly inside this element (trimmed).
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  void set_attr(const std::string& key, const std::string& value);
  /// Returns nullptr when absent.
  const std::string* find_attr(std::string_view key) const;
  /// Throws ParseError when absent.
  const std::string& attr(std::string_view key) const;
  bool has_attr(std::string_view key) const { return find_attr(key) != nullptr; }
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  Element& add_child(std::string name);
  /// Takes ownership of an already-built element.
  Element& adopt(std::unique_ptr<Element> child);
  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }
  /// First child with the given tag, or nullptr.
  const Element* find_child(std::string_view tag) const;
  /// First child with the given tag; throws ParseError when absent.
  const Element& child(std::string_view tag) const;
  /// All children with the given tag, in document order.
  std::vector<const Element*> children_named(std::string_view tag) const;

  /// Serialises this element (and subtree) as indented XML.
  std::string to_string(int indent = 0) const;

 private:
  std::string name_;
  Span span_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// Parses a document and returns its root element. Throws ParseError with a
/// line number on malformed input.
std::unique_ptr<Element> parse(std::string_view doc);

/// Escapes the five XML special characters.
std::string escape(std::string_view raw);

}  // namespace prpart::xml
