#include "xml/xml.hpp"

#include <algorithm>
#include <cctype>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace prpart::xml {

std::string Span::to_string() const {
  if (!known()) return "";
  return std::to_string(line) + ":" + std::to_string(column);
}

void Element::set_attr(const std::string& key, const std::string& value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  attrs_.emplace_back(key, value);
}

const std::string* Element::find_attr(std::string_view key) const {
  for (const auto& [k, v] : attrs_)
    if (k == key) return &v;
  return nullptr;
}

const std::string& Element::attr(std::string_view key) const {
  const std::string* v = find_attr(key);
  if (!v)
    throw ParseError("element <" + name_ + "> missing attribute '" +
                     std::string(key) + "'");
  return *v;
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::adopt(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

const Element* Element::find_child(std::string_view tag) const {
  for (const auto& c : children_)
    if (c->name() == tag) return c.get();
  return nullptr;
}

const Element& Element::child(std::string_view tag) const {
  const Element* c = find_child(tag);
  if (!c)
    throw ParseError("element <" + name_ + "> missing child <" +
                     std::string(tag) + ">");
  return *c;
}

std::vector<const Element*> Element::children_named(std::string_view tag) const {
  std::vector<const Element*> out;
  for (const auto& c : children_)
    if (c->name() == tag) out.push_back(c.get());
  return out;
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string Element::to_string(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + name_;
  for (const auto& [k, v] : attrs_) out += " " + k + "=\"" + escape(v) + "\"";
  if (children_.empty() && text_.empty()) return out + "/>\n";
  out += ">";
  if (!text_.empty()) out += escape(text_);
  if (!children_.empty()) {
    out += "\n";
    for (const auto& c : children_) out += c->to_string(indent + 1);
    out += pad;
  }
  out += "</" + name_ + ">\n";
  return out;
}

namespace {

/// Single-pass recursive-descent XML parser.
class Parser {
 public:
  explicit Parser(std::string_view doc) : doc_(doc) {}

  std::unique_ptr<Element> run() {
    skip_misc();
    auto root = parse_element();
    skip_misc();
    if (pos_ != doc_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    const Span at = span_at(std::min(pos_, doc_.size()));
    throw ParseError("XML parse error at line " + std::to_string(at.line) +
                         ": " + what,
                     at.line, at.column);
  }

  /// Line/column of a byte offset. The parser only ever asks about
  /// monotonically increasing positions, so the scan resumes from the last
  /// answer instead of restarting at the top of the document.
  Span span_at(std::size_t pos) const {
    while (scan_pos_ < pos) {
      if (doc_[scan_pos_] == '\n') {
        ++scan_line_;
        scan_col_ = 1;
      } else {
        ++scan_col_;
      }
      ++scan_pos_;
    }
    return {scan_line_, scan_col_};
  }

  bool eof() const { return pos_ >= doc_.size(); }
  char peek() const { return eof() ? '\0' : doc_[pos_]; }
  char get() {
    if (eof()) fail("unexpected end of document");
    return doc_[pos_++];
  }
  bool consume(std::string_view token) {
    if (doc_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }
  void expect(std::string_view token) {
    if (!consume(token)) fail("expected '" + std::string(token) + "'");
  }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  /// Skips whitespace, comments and <?...?> declarations between elements.
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (consume("<!--")) {
        const std::size_t end = doc_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (consume("<?")) {
        const std::size_t end = doc_.find("?>", pos_);
        if (end == std::string_view::npos) fail("unterminated declaration");
        pos_ = end + 2;
      } else {
        return;
      }
    }
  }

  static bool name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (!eof() && name_char(peek())) ++pos_;
    if (pos_ == start) fail("expected a name");
    return std::string(doc_.substr(start, pos_ - start));
  }

  std::string unescape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity");
      const std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") out += '<';
      else if (ent == "gt") out += '>';
      else if (ent == "amp") out += '&';
      else if (ent == "quot") out += '"';
      else if (ent == "apos") out += '\'';
      else fail("unknown entity '&" + std::string(ent) + ";'");
      i = semi;
    }
    return out;
  }

  std::string parse_attr_value() {
    const char quote = get();
    if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
    const std::size_t start = pos_;
    while (!eof() && peek() != quote) ++pos_;
    if (eof()) fail("unterminated attribute value");
    const std::string_view raw = doc_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    return unescape(raw);
  }

  std::unique_ptr<Element> parse_element() {
    const Span open = span_at(pos_);
    expect("<");
    auto elem = std::make_unique<Element>(parse_name());
    elem->set_span(open);
    // Attributes.
    for (;;) {
      skip_ws();
      if (consume("/>")) return elem;
      if (consume(">")) break;
      const std::string key = parse_name();
      skip_ws();
      expect("=");
      skip_ws();
      elem->set_attr(key, parse_attr_value());
    }
    // Content: interleaved text and children until the close tag.
    std::string text;
    for (;;) {
      if (eof()) fail("unterminated element <" + elem->name() + ">");
      if (doc_.substr(pos_, 2) == "</") {
        pos_ += 2;
        const std::string close = parse_name();
        if (close != elem->name())
          fail("mismatched close tag </" + close + "> for <" + elem->name() +
               ">");
        skip_ws();
        expect(">");
        elem->set_text(std::string(trim(unescape(text))));
        return elem;
      }
      if (doc_.substr(pos_, 4) == "<!--" || doc_.substr(pos_, 2) == "<?") {
        skip_misc();
        continue;
      }
      if (peek() == '<') {
        elem->adopt(parse_element());
        continue;
      }
      text += get();
    }
  }

  std::string_view doc_;
  std::size_t pos_ = 0;
  // Forward-only line/column scanner state (see span_at).
  mutable std::size_t scan_pos_ = 0;
  mutable std::size_t scan_line_ = 1;
  mutable std::size_t scan_col_ = 1;
};

}  // namespace

std::unique_ptr<Element> parse(std::string_view doc) {
  return Parser(doc).run();
}

}  // namespace prpart::xml
