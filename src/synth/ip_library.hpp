#pragma once

#include <string>
#include <vector>

#include "design/design.hpp"
#include "device/resources.hpp"

namespace prpart::synth {

/// A pre-characterised IP core: its resource usage is "often available up
/// front" (paper step 1), so it bypasses the estimator.
struct IpCore {
  std::string name;
  ResourceVec area;
};

/// Catalogue of pre-characterised IP cores. Ships with the blocks of the
/// paper's wireless video receiver case study (Table II) plus a few common
/// cores used by the examples.
class IpLibrary {
 public:
  /// The default catalogue.
  static IpLibrary standard();

  /// Lookup by name; throws DesignError when unknown.
  const IpCore& lookup(const std::string& name) const;
  bool contains(const std::string& name) const;
  const std::vector<IpCore>& cores() const { return cores_; }

  void add(IpCore core);

 private:
  std::vector<IpCore> cores_;
};

/// The paper's case-study design (§V): a wireless video receiver on a
/// Virtex-5 FX70T with five reconfigurable modules (Table II) and the eight
/// configurations listed in the text. Resource numbers are Table II verbatim.
Design wireless_receiver_design();

/// The same receiver with the paper's modified configuration set (the five
/// configurations preceding Table V).
Design wireless_receiver_modified_design();

/// The FPGA budget the paper reserves for the PR part of the case study:
/// 6800 CLBs, 50 BRAMs, 150 DSP slices (the rest of the FX70T is kept for
/// the static region, which is why the case-study designs carry a zero
/// static_base).
ResourceVec wireless_receiver_budget();

}  // namespace prpart::synth
