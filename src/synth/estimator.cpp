#include "synth/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace prpart::synth {

ResourceVec estimate(const BehavioralSpec& spec,
                     const EstimatorOptions& opt) {
  require(opt.packing_efficiency > 0.0 && opt.packing_efficiency <= 1.0,
          "packing efficiency must be in (0, 1]");
  require(opt.luts_per_clb > 0 && opt.ffs_per_clb > 0 && opt.mults_per_dsp > 0,
          "estimator capacities must be positive");

  auto ceil_div = [](std::uint64_t a, std::uint64_t b) -> std::uint64_t {
    return (a + b - 1) / b;
  };

  // Logic: LUT- or FF-bound, whichever dominates, plus LUT-RAM for small
  // distributed memories; divided by packing efficiency.
  const std::uint64_t lut_clbs = ceil_div(spec.luts, opt.luts_per_clb);
  const std::uint64_t ff_clbs = ceil_div(spec.ffs, opt.ffs_per_clb);
  const std::uint64_t lutram_clbs =
      ceil_div(spec.dist_mem_bits, opt.lutram_bits_per_clb);
  const std::uint64_t packed = std::max(lut_clbs, ff_clbs) + lutram_clbs;
  const auto clbs = static_cast<std::uint32_t>(std::ceil(
      static_cast<double>(packed) / opt.packing_efficiency));

  const auto brams =
      static_cast<std::uint32_t>(ceil_div(spec.mem_kbits, opt.kbits_per_bram));
  const auto dsps =
      static_cast<std::uint32_t>(ceil_div(spec.mult18s, opt.mults_per_dsp));
  return {clbs, brams, dsps};
}

}  // namespace prpart::synth
