#pragma once

#include <cstdint>
#include <string>

#include "device/resources.hpp"

namespace prpart::synth {

/// Behavioural description of one module mode, the input of the resource
/// estimator. This substrate replaces step 1 of the paper's tool flow
/// ("Xilinx XST is used to synthesise all the modes to determine resource
/// requirements"): the partitioner only ever consumes the resulting
/// ResourceVec, so any deterministic estimate exercises the same code path.
struct BehavioralSpec {
  std::string name;
  std::uint32_t luts = 0;       ///< combinational logic, 6-input LUT units
  std::uint32_t ffs = 0;        ///< registers
  std::uint32_t mult18s = 0;    ///< 18x18 multiplier uses (map to DSP48E)
  std::uint32_t mem_kbits = 0;  ///< dedicated memory, kilobits (map to BRAM36)
  std::uint32_t dist_mem_bits = 0;  ///< small memories folded into LUT-RAM
};

/// Deterministic technology-mapping model for the Virtex-5 fabric.
struct EstimatorOptions {
  /// LUTs per CLB unit (paper-consistent logic unit; see DESIGN.md units note).
  std::uint32_t luts_per_clb = 4;
  std::uint32_t ffs_per_clb = 4;
  /// LUT-RAM capacity per CLB unit in bits.
  std::uint32_t lutram_bits_per_clb = 64;
  /// Achievable packing efficiency: real designs never pack CLBs perfectly.
  double packing_efficiency = 0.8;
  /// Kilobits per BRAM36 primitive.
  std::uint32_t kbits_per_bram = 36;
  /// 18x18 multipliers per DSP48E slice.
  std::uint32_t mults_per_dsp = 1;
};

/// Maps a behavioural spec onto fabric resources. Monotone in every input
/// and fully deterministic.
ResourceVec estimate(const BehavioralSpec& spec,
                     const EstimatorOptions& options = {});

}  // namespace prpart::synth
