#include "synth/ip_library.hpp"

#include "design/builder.hpp"
#include "util/status.hpp"

namespace prpart::synth {

IpLibrary IpLibrary::standard() {
  IpLibrary lib;
  // Table II, verbatim (Slices/BR/DSP columns; see DESIGN.md units note).
  lib.add({"matched_filter.filter1", {818, 0, 28}});
  lib.add({"matched_filter.filter2", {500, 0, 34}});
  lib.add({"recovery.fine", {318, 1, 13}});
  lib.add({"recovery.coarse1", {195, 1, 5}});
  lib.add({"recovery.coarse2", {123, 0, 8}});
  lib.add({"recovery.none", {0, 0, 0}});
  lib.add({"demodulator.bpsk", {50, 0, 2}});
  lib.add({"demodulator.qpsk", {97, 0, 4}});
  lib.add({"decoder.viterbi", {630, 2, 0}});
  lib.add({"decoder.turbo", {748, 15, 4}});
  lib.add({"decoder.dpc", {234, 2, 0}});
  lib.add({"video.mpeg4", {4700, 40, 65}});
  lib.add({"video.mpeg2", {4558, 16, 32}});
  lib.add({"video.jpeg", {2780, 6, 9}});
  // Common substrate cores used by examples (paper refs [1], [15]).
  lib.add({"icap_controller", {90, 8, 0}});
  lib.add({"microblaze_small", {350, 4, 3}});
  lib.add({"spectrum_sensor", {1200, 12, 40}});
  lib.add({"ofdm_tx", {2100, 10, 48}});
  lib.add({"gsm_tx", {900, 4, 12}});
  return lib;
}

void IpLibrary::add(IpCore core) { cores_.push_back(std::move(core)); }

bool IpLibrary::contains(const std::string& name) const {
  for (const IpCore& c : cores_)
    if (c.name == name) return true;
  return false;
}

const IpCore& IpLibrary::lookup(const std::string& name) const {
  for (const IpCore& c : cores_)
    if (c.name == name) return c;
  throw DesignError("IP library has no core named '" + name + "'");
}

namespace {

/// Builds the receiver skeleton shared by both configuration sets.
/// Modules and modes follow Table II: F (matched filter), R (recovery),
/// M (demodulator), D (decoder), V (video decoder).
DesignBuilder receiver_skeleton(const std::string& name) {
  const IpLibrary lib = IpLibrary::standard();
  auto a = [&](const char* core) { return lib.lookup(core).area; };
  DesignBuilder b(name);
  b.module("F", {{"F1", a("matched_filter.filter1")},
                 {"F2", a("matched_filter.filter2")}});
  b.module("R", {{"R1", a("recovery.fine")},
                 {"R2", a("recovery.coarse1")},
                 {"R3", a("recovery.coarse2")},
                 {"R4", a("recovery.none")}});
  b.module("M", {{"M1", a("demodulator.bpsk")}, {"M2", a("demodulator.qpsk")}});
  b.module("D", {{"D1", a("decoder.viterbi")},
                 {"D2", a("decoder.turbo")},
                 {"D3", a("decoder.dpc")}});
  b.module("V", {{"V1", a("video.mpeg4")},
                 {"V2", a("video.mpeg2")},
                 {"V3", a("video.jpeg")}});
  return b;
}

}  // namespace

Design wireless_receiver_design() {
  DesignBuilder b = receiver_skeleton("wireless-video-receiver");
  auto conf = [&](const char* f, const char* r, const char* m, const char* d,
                  const char* v) {
    b.configuration({{"F", f}, {"R", r}, {"M", m}, {"D", d}, {"V", v}});
  };
  // The eight configurations of §V.
  conf("F1", "R3", "M1", "D1", "V1");
  conf("F1", "R3", "M1", "D1", "V2");
  conf("F1", "R3", "M1", "D1", "V3");
  conf("F2", "R1", "M2", "D3", "V1");
  conf("F2", "R2", "M1", "D1", "V1");
  conf("F2", "R2", "M1", "D1", "V2");
  conf("F2", "R2", "M1", "D1", "V3");
  conf("F1", "R2", "M1", "D2", "V2");
  return b.build();
}

Design wireless_receiver_modified_design() {
  DesignBuilder b = receiver_skeleton("wireless-video-receiver-modified");
  auto conf = [&](const char* f, const char* r, const char* m, const char* d,
                  const char* v) {
    b.configuration({{"F", f}, {"R", r}, {"M", m}, {"D", d}, {"V", v}});
  };
  // The five modified configurations preceding Table V.
  conf("F1", "R3", "M1", "D1", "V1");
  conf("F1", "R2", "M1", "D1", "V3");
  conf("F2", "R3", "M1", "D1", "V3");
  conf("F1", "R1", "M2", "D3", "V1");
  conf("F2", "R1", "M2", "D3", "V2");
  return b.build();
}

ResourceVec wireless_receiver_budget() { return {6800, 50, 150}; }

}  // namespace prpart::synth
