#include "server/client.hpp"

#include "util/status.hpp"

namespace prpart::server {

json::Value partition_request_json(const PartitionRequest& request) {
  json::Value v = json::Value::object();
  v.set("type", json::Value("partition"));
  v.set("id", json::Value(request.id));
  v.set("design_xml", json::Value(request.design_xml));
  if (!request.device.empty()) v.set("device", json::Value(request.device));
  if (request.budget) {
    json::Value budget = json::Value::array();
    budget.push_back(json::Value(static_cast<std::uint64_t>(request.budget->clbs)));
    budget.push_back(json::Value(static_cast<std::uint64_t>(request.budget->brams)));
    budget.push_back(json::Value(static_cast<std::uint64_t>(request.budget->dsps)));
    v.set("budget", budget);
  }
  const PartitionerOptions defaults = default_partitioner_options();
  if (request.options.search.max_candidate_sets !=
      defaults.search.max_candidate_sets)
    v.set("candidate_sets",
          json::Value(static_cast<std::uint64_t>(
              request.options.search.max_candidate_sets)));
  if (request.options.search.max_move_evaluations !=
      defaults.search.max_move_evaluations)
    v.set("evals", json::Value(request.options.search.max_move_evaluations));
  if (request.options.search.threads != 0)
    v.set("threads", json::Value(static_cast<std::uint64_t>(
                         request.options.search.threads)));
  if (request.timeout_ms != 0)
    v.set("timeout_ms", json::Value(request.timeout_ms));
  return v;
}

json::Value analyze_request_json(const AnalyzeRequest& request) {
  json::Value v = json::Value::object();
  v.set("type", json::Value("analyze"));
  v.set("id", json::Value(request.id));
  v.set("design_xml", json::Value(request.design_xml));
  if (!request.device.empty()) v.set("device", json::Value(request.device));
  if (request.budget) {
    json::Value budget = json::Value::array();
    budget.push_back(json::Value(static_cast<std::uint64_t>(request.budget->clbs)));
    budget.push_back(json::Value(static_cast<std::uint64_t>(request.budget->brams)));
    budget.push_back(json::Value(static_cast<std::uint64_t>(request.budget->dsps)));
    v.set("budget", budget);
  }
  return v;
}

json::Value simulate_request_json(const SimulateRequest& request) {
  // A simulate request is a partition request plus trace knobs; non-default
  // knobs only, mirroring the partition builder.
  json::Value v = partition_request_json(request.partition);
  v.set("type", json::Value("simulate"));
  const SimulateParams defaults;
  if (request.params.steps != defaults.steps)
    v.set("steps", json::Value(request.params.steps));
  if (request.params.seed != defaults.seed)
    v.set("seed", json::Value(request.params.seed));
  if (request.params.prefetch) v.set("prefetch", json::Value(true));
  if (request.params.uniform) v.set("uniform", json::Value(true));
  if (request.params.inter_arrival_ns != 0)
    v.set("inter_arrival_ns", json::Value(request.params.inter_arrival_ns));
  if (request.params.floorplan) v.set("floorplan", json::Value(true));
  return v;
}

json::Value floorplan_request_json(const FloorplanRequest& request) {
  // A floorplan request is a partition request plus re-rank knobs;
  // non-default knobs only, mirroring the other builders.
  json::Value v = partition_request_json(request.partition);
  v.set("type", json::Value("floorplan"));
  const FloorplanParams defaults;
  if (request.params.top_k != defaults.top_k)
    v.set("top_k",
          json::Value(static_cast<std::uint64_t>(request.params.top_k)));
  if (request.params.first_fit) v.set("strategy", json::Value("first-fit"));
  if (!request.params.anneal) v.set("anneal", json::Value(false));
  if (request.params.anneal_seed != defaults.anneal_seed)
    v.set("anneal_seed", json::Value(request.params.anneal_seed));
  return v;
}

Client::Client(const std::string& host, std::uint16_t port)
    : stream_(TcpStream::connect(host, port)) {}

ClientResponse Client::submit(const PartitionRequest& request) {
  return roundtrip(partition_request_json(request));
}

ClientResponse Client::analyze(const AnalyzeRequest& request) {
  return roundtrip(analyze_request_json(request));
}

ClientResponse Client::simulate(const SimulateRequest& request) {
  return roundtrip(simulate_request_json(request));
}

ClientResponse Client::floorplan(const FloorplanRequest& request) {
  return roundtrip(floorplan_request_json(request));
}

ClientResponse Client::stats(const std::string& id) {
  json::Value v = json::Value::object();
  v.set("type", json::Value("stats"));
  v.set("id", json::Value(id));
  return roundtrip(v);
}

ClientResponse Client::ping(const std::string& id) {
  json::Value v = json::Value::object();
  v.set("type", json::Value("ping"));
  v.set("id", json::Value(id));
  return roundtrip(v);
}

ClientResponse Client::metrics(const std::string& id, bool text) {
  json::Value v = json::Value::object();
  v.set("type", json::Value("metrics"));
  v.set("id", json::Value(id));
  if (text) v.set("format", json::Value("text"));
  return roundtrip(v);
}

ClientResponse Client::roundtrip(const json::Value& request) {
  return exchange(request.dump());
}

ClientResponse Client::exchange(const std::string& line) {
  stream_.write_all(line + "\n");
  json::Value doc;
  while (true) {
    const std::optional<std::string> reply = stream_.read_line();
    if (!reply) throw SocketError("server closed the connection mid-request");
    doc = json::parse(*reply);
    // Interim `queued` backpressure notices carry no `ok` field; the final
    // response for the same id follows on the same connection.
    if (!doc.find("ok") && doc.find("queued")) {
      ++queued_notices_seen_;
      continue;
    }
    break;
  }
  ClientResponse response;
  if (const json::Value* id = doc.find("id"); id && id->is_string())
    response.id = id->as_string();
  response.ok = doc.at("ok").as_bool();
  if (response.ok) {
    response.result = doc.at("result");
    response.raw_result = response.result.dump();
  } else {
    const json::Value& error = doc.at("error");
    response.error_code = error.at("code").as_string();
    response.error_message = error.at("message").as_string();
  }
  return response;
}

}  // namespace prpart::server
