#include "server/router.hpp"

#include <algorithm>

#include "design/io_xml.hpp"
#include "server/hash.hpp"
#include "server/protocol.hpp"
#include "util/status.hpp"

namespace prpart::server {

namespace {

constexpr std::size_t kVnodesPerShard = 64;

/// First 16 hex chars of a content digest as the ring coordinate. The
/// digest's FNV lanes avalanche poorly in the high bits on short inputs
/// (the vnode labels), which skews shard shares badly, so the value is
/// finalised with splitmix64 — applied identically to vnode points and
/// lookup keys, preserving consistency.
std::uint64_t ring_coordinate(const std::string& digest) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 16 && i < digest.size(); ++i) {
    const char c = digest[i];
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
  }
  v ^= v >> 30;
  v *= 0xbf58476d1ce4e5b9ULL;
  v ^= v >> 27;
  v *= 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return v;
}

}  // namespace

ShardRouter::ShardRouter(RouterOptions options) : options_(std::move(options)) {
  require(!options_.shard_ports.empty(), "router needs at least one shard");
  ring_.reserve(options_.shard_ports.size() * kVnodesPerShard);
  for (std::size_t shard = 0; shard < options_.shard_ports.size(); ++shard)
    for (std::size_t v = 0; v < kVnodesPerShard; ++v) {
      const std::string label =
          "shard-" + std::to_string(shard) + "#" + std::to_string(v);
      ring_.push_back(RingPoint{ring_coordinate(content_hash(label)), shard});
    }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              return a.point != b.point ? a.point < b.point
                                        : a.shard < b.shard;
            });
}

ShardRouter::~ShardRouter() { stop(); }

void ShardRouter::start() {
  require(!started_.exchange(true), "router already started");
  listener_ = TcpListener::bind(options_.port);
  bound_port_ = listener_.port();
  accept_thread_ = std::thread([this] { accept_loop(); });
  log_line("routing 127.0.0.1:" + std::to_string(bound_port_) + " across " +
           std::to_string(options_.shard_ports.size()) + " shards");
}

void ShardRouter::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  stopping_.store(true);
  wake_.notify();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  // Unblock every client reader; each one then half-closes its upstreams,
  // lets the shards answer what is already in flight, joins its relays and
  // marks itself done.
  {
    const MutexLock lock(clients_mutex_);
    for (const auto& conn : clients_) conn->stream.shutdown_read();
  }
  {
    const MutexLock lock(clients_mutex_);
    for (const auto& conn : clients_)
      if (conn->reader.joinable()) conn->reader.join();
    clients_.clear();
  }
  log_line("router stopped");
}

std::size_t ShardRouter::shard_of_digest(const std::string& digest) const {
  const std::uint64_t point = ring_coordinate(digest);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const RingPoint& p, std::uint64_t key) { return p.point < key; });
  return it != ring_.end() ? it->shard : ring_.front().shard;  // wrap
}

std::size_t ShardRouter::shard_of_line(const std::string& line) const {
  try {
    const Request request = parse_request(line);
    const PartitionRequest* core = nullptr;
    switch (request.type) {
      case Request::Type::Partition:
        core = &request.partition;
        break;
      case Request::Type::Simulate:
        core = &request.simulate.partition;
        break;
      case Request::Type::Floorplan:
        core = &request.floorplan.partition;
        break;
      default:
        return 0;
    }
    // Route by the *canonical* design digest, so declaration-order variants
    // of one design land on the same warm shard (the same canonicalisation
    // the result-store key uses).
    const Design design = design_from_xml(core->design_xml);
    return shard_of_digest(content_hash(canonical_design_string(design)));
  } catch (const std::exception&) {
    // Unparseable lines go to shard 0, whose server renders the error.
    return 0;
  }
}

void ShardRouter::accept_loop() {
  while (!stopping_.load()) {
    std::optional<TcpStream> stream = listener_.accept_wait(wake_);
    // Reap finished clients so a long-lived router does not accumulate one
    // record per client ever served.
    {
      const MutexLock lock(clients_mutex_);
      for (auto it = clients_.begin(); it != clients_.end();) {
        if ((*it)->done.load()) {
          (*it)->reader.join();
          it = clients_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!stream) continue;  // woken (stop) or transient accept failure
    auto conn = std::make_unique<ClientConn>();
    conn->stream = std::move(*stream);
    ClientConn* raw = conn.get();
    {
      const MutexLock lock(clients_mutex_);
      clients_.push_back(std::move(conn));
    }
    raw->reader = std::thread([this, raw] { serve_client(raw); });
  }
}

void ShardRouter::serve_client(ClientConn* conn) {
  conn->upstreams.resize(options_.shard_ports.size());
  conn->relays.resize(options_.shard_ports.size());
  try {
    while (std::optional<std::string> line = conn->stream.read_line()) {
      if (line->empty()) continue;
      const std::size_t shard = shard_of_line(*line);
      TcpStream& upstream = conn->upstreams[shard];
      if (!upstream.valid()) {
        upstream = TcpStream::connect(options_.shard_host,
                                      options_.shard_ports[shard]);
        conn->relays[shard] =
            std::thread([this, conn, shard] { relay_loop(conn, shard); });
      }
      upstream.write_all(*line + "\n");
    }
  } catch (const SocketError& e) {
    // The client vanished or a shard is unreachable: drop the connection
    // (in-flight responses from other shards still relay until EOF below).
    log_line(std::string("client dropped: ") + e.what());
  }
  // Propagate the client's EOF to every shard as a half-close; the shards
  // finish what is in flight, respond, and close — which ends the relays.
  for (TcpStream& upstream : conn->upstreams)
    if (upstream.valid()) upstream.shutdown_write();
  for (std::thread& relay : conn->relays)
    if (relay.joinable()) relay.join();
  conn->done.store(true);
}

void ShardRouter::relay_loop(ClientConn* conn, std::size_t shard) {
  try {
    while (std::optional<std::string> line =
               conn->upstreams[shard].read_line()) {
      const MutexLock lock(conn->write_mutex);
      conn->stream.write_all(*line + "\n");
    }
  } catch (const SocketError&) {
    // Either side vanished; remaining responses from this shard are moot.
  }
}

void ShardRouter::log_line(const std::string& line) {
  if (!options_.log) return;
  const MutexLock lock(log_mutex_);
  *options_.log << "[prpart route] " << line << "\n";
  options_.log->flush();
}

}  // namespace prpart::server
