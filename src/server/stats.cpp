#include "server/stats.hpp"

#include <algorithm>
#include <string>

#include "util/simd.hpp"

namespace prpart::server {

std::uint64_t LatencyHistogram::percentile(double p) const {
  const std::uint64_t count = total();
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(p * static_cast<double>(count) + 0.5));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return lower_bound_of(i) + width_of(i) / 2;
  }
  return lower_bound_of(counts_.size() - 1);
}

json::Value StatsSnapshot::to_json() const {
  json::Value v = json::Value::object();
  v.set("accepted", json::Value(accepted));
  v.set("rejected", json::Value(rejected));
  v.set("completed", json::Value(completed));
  v.set("infeasible", json::Value(infeasible));
  v.set("timed_out", json::Value(timed_out));
  v.set("failed", json::Value(failed));
  v.set("cache_hits", json::Value(cache_hits));
  v.set("cache_misses", json::Value(cache_misses));
  v.set("queued_notices", json::Value(queued_notices));
  v.set("queue_depth", json::Value(static_cast<std::uint64_t>(queue_depth)));
  v.set("in_flight", json::Value(static_cast<std::uint64_t>(in_flight)));
  v.set("latency_count", json::Value(latency_count));
  v.set("p50_latency_us", json::Value(p50_latency_us));
  v.set("p99_latency_us", json::Value(p99_latency_us));
  // The evaluation kernel's dispatched SIMD tier (DESIGN.md §4e): constant
  // for the process lifetime, reported so operators can tell which code
  // path serves this host (and spot a forced PRPART_SIMD override).
  v.set("simd_tier",
        json::Value(std::string(simd::tier_name(simd::active_tier()))));
  json::Value search = json::Value::object();
  search.set("units", json::Value(search_units));
  search.set("units_pruned", json::Value(search_units_pruned));
  search.set("move_evaluations", json::Value(search_move_evaluations));
  search.set("full_evaluations", json::Value(search_full_evaluations));
  search.set("moves_rescored", json::Value(search_moves_rescored));
  search.set("kernel_evaluations", json::Value(search_kernel_evaluations));
  search.set("signature_collapsed_configs",
             json::Value(search_signature_collapsed_configs));
  v.set("search", search);
  json::Value sim = json::Value::object();
  sim.set("simulations", json::Value(simulations));
  sim.set("transitions", json::Value(simulated_transitions));
  sim.set("frames_loaded", json::Value(simulated_frames));
  v.set("simulate", sim);
  json::Value fp = json::Value::object();
  fp.set("passes", json::Value(floorplans));
  fp.set("candidates", json::Value(floorplan_candidates));
  fp.set("vetoes", json::Value(floorplan_vetoes));
  fp.set("overturns", json::Value(floorplan_overturns));
  v.set("floorplan", fp);
  return v;
}

std::string StatsSnapshot::log_line() const {
  return "jobs accepted=" + std::to_string(accepted) +
         " rejected=" + std::to_string(rejected) +
         " completed=" + std::to_string(completed) +
         " infeasible=" + std::to_string(infeasible) +
         " timed_out=" + std::to_string(timed_out) +
         " failed=" + std::to_string(failed) +
         " queue=" + std::to_string(queue_depth) +
         " in_flight=" + std::to_string(in_flight) +
         " cache_hits=" + std::to_string(cache_hits) +
         " cache_misses=" + std::to_string(cache_misses) +
         " queued=" + std::to_string(queued_notices) +
         " p50_us=" + std::to_string(p50_latency_us) +
         " p99_us=" + std::to_string(p99_latency_us) +
         " search_units=" + std::to_string(search_units) +
         " search_pruned=" + std::to_string(search_units_pruned) +
         " simulations=" + std::to_string(simulations) +
         " floorplans=" + std::to_string(floorplans) +
         " floorplan_vetoes=" + std::to_string(floorplan_vetoes) +
         " floorplan_overturns=" + std::to_string(floorplan_overturns);
}

void ServerStats::job_accepted() {
  const MutexLock lock(mutex_);
  ++accepted_;
}

void ServerStats::job_rejected() {
  const MutexLock lock(mutex_);
  ++rejected_;
}

void ServerStats::job_completed(std::uint64_t latency_us) {
  const MutexLock lock(mutex_);
  ++completed_;
  record_latency(latency_us);
}

void ServerStats::job_infeasible(std::uint64_t latency_us) {
  const MutexLock lock(mutex_);
  ++infeasible_;
  record_latency(latency_us);
}

void ServerStats::job_timed_out() {
  const MutexLock lock(mutex_);
  ++timed_out_;
}

void ServerStats::job_failed() {
  const MutexLock lock(mutex_);
  ++failed_;
}

void ServerStats::cache_hit(std::uint64_t latency_us) {
  const MutexLock lock(mutex_);
  ++cache_hits_;
  record_latency(latency_us);
}

void ServerStats::cache_miss() {
  const MutexLock lock(mutex_);
  ++cache_misses_;
}

void ServerStats::job_queued_notice() {
  const MutexLock lock(mutex_);
  ++queued_notices_;
}

void ServerStats::search_finished(const SearchStats& stats) {
  const MutexLock lock(mutex_);
  search_units_ += stats.units;
  search_units_pruned_ += stats.units_pruned;
  search_move_evaluations_ += stats.move_evaluations;
  search_full_evaluations_ += stats.full_evaluations;
  search_moves_rescored_ += stats.moves_rescored;
  search_kernel_evaluations_ += stats.kernel_evaluations;
  search_signature_collapsed_configs_ += stats.signature_collapsed_configs;
}

void ServerStats::simulation_finished(std::uint64_t transitions,
                                      std::uint64_t frames) {
  const MutexLock lock(mutex_);
  ++simulations_;
  simulated_transitions_ += transitions;
  simulated_frames_ += frames;
}

void ServerStats::floorplan_finished(std::size_t candidates,
                                     std::size_t vetoed, bool overturned) {
  const MutexLock lock(mutex_);
  ++floorplans_;
  floorplan_candidates_ += candidates;
  floorplan_vetoes_ += vetoed;
  if (overturned) ++floorplan_overturns_;
}

void ServerStats::record_latency(std::uint64_t latency_us) {
  ++latency_count_;
  latencies_.record(latency_us);
}

StatsSnapshot ServerStats::snapshot(std::size_t queue_depth,
                                    std::size_t in_flight) const {
  const MutexLock lock(mutex_);
  StatsSnapshot s;
  s.accepted = accepted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.infeasible = infeasible_;
  s.timed_out = timed_out_;
  s.failed = failed_;
  s.cache_hits = cache_hits_;
  s.cache_misses = cache_misses_;
  s.queued_notices = queued_notices_;
  s.queue_depth = queue_depth;
  s.in_flight = in_flight;
  s.latency_count = latency_count_;
  s.p50_latency_us = latencies_.percentile(0.50);
  s.p99_latency_us = latencies_.percentile(0.99);
  s.search_units = search_units_;
  s.search_units_pruned = search_units_pruned_;
  s.search_move_evaluations = search_move_evaluations_;
  s.search_full_evaluations = search_full_evaluations_;
  s.search_moves_rescored = search_moves_rescored_;
  s.search_kernel_evaluations = search_kernel_evaluations_;
  s.search_signature_collapsed_configs = search_signature_collapsed_configs_;
  s.simulations = simulations_;
  s.simulated_transitions = simulated_transitions_;
  s.simulated_frames = simulated_frames_;
  s.floorplans = floorplans_;
  s.floorplan_candidates = floorplan_candidates_;
  s.floorplan_vetoes = floorplan_vetoes_;
  s.floorplan_overturns = floorplan_overturns_;
  return s;
}

}  // namespace prpart::server
