#include "server/cache.hpp"

namespace prpart::server {

std::optional<std::string> ResultCache::lookup(const std::string& key) {
  const MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->payload;
}

void ResultCache::store(const std::string& key, const std::string& payload) {
  if (max_entries_ == 0) return;
  const MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->payload = payload;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, payload});
  index_[key] = lru_.begin();
  while (lru_.size() > max_entries_) {
    if (sink_) sink_(lru_.back().key, lru_.back().payload);
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

void ResultCache::drain_to_sink() {
  if (!sink_) return;
  const MutexLock lock(mutex_);
  for (const Entry& entry : lru_) sink_(entry.key, entry.payload);
  index_.clear();
  lru_.clear();
}

ResultCache::Stats ResultCache::stats() const {
  const MutexLock lock(mutex_);
  return Stats{hits_, misses_, evictions_, lru_.size()};
}

}  // namespace prpart::server
