#include "server/server.hpp"

#include <algorithm>

#include "analysis/frontend.hpp"
#include "core/eval_kernel.hpp"
#include "design/io_xml.hpp"
#include "server/hash.hpp"
#include "util/clock.hpp"
#include "util/parallel_for.hpp"
#include "util/status.hpp"

namespace prpart::server {

namespace {

std::uint64_t latency_us_since(std::int64_t submit_ns) {
  const std::int64_t delta = monotonic_now_ns() - submit_ns;
  return delta > 0 ? static_cast<std::uint64_t>(delta / kNsPerUs) : 0;
}

/// The request-line fast path's key derivation: the raw line with the
/// `"id"` string value blanked, plus that value. Returns nullopt whenever
/// the line is not *trivially* safe to treat this way — the full parse
/// path then handles it:
///   * `"id"` must appear exactly once. (In valid JSON it cannot occur
///     unescaped inside a string value — the quotes would be escaped — so
///     one occurrence is the top-level id field.)
///   * the value must be a plain string with no escape sequences, so
///     re-encoding it in ok_response reproduces the client's bytes.
struct LineKey {
  std::string key;  ///< the line, id value removed
  std::string id;   ///< the id value, verbatim
};

std::optional<LineKey> line_fast_key(const std::string& line) {
  static constexpr const char kIdField[] = "\"id\"";
  const std::size_t at = line.find(kIdField);
  if (at == std::string::npos) return std::nullopt;
  if (line.find(kIdField, at + 1) != std::string::npos) return std::nullopt;
  std::size_t i = at + sizeof(kIdField) - 1;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] != ':') return std::nullopt;
  ++i;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] != '"') return std::nullopt;
  const std::size_t value_begin = ++i;
  while (i < line.size() && line[i] != '"') {
    if (line[i] == '\\') return std::nullopt;
    ++i;
  }
  if (i >= line.size()) return std::nullopt;
  LineKey out;
  out.id = line.substr(value_begin, i - value_begin);
  out.key = line.substr(0, value_begin) + line.substr(i);
  return out;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      library_(DeviceLibrary::extended()),
      store_(options_.cache_entries, options_.store_dir,
             options_.store_entries),
      line_cache_(options_.legacy_io ? 0 : options_.cache_entries) {}

Server::~Server() { stop(); }

void Server::start() {
  {
    const MutexLock lock(lifecycle_mutex_);
    require(!started_, "server already started");
    TcpListener listener = TcpListener::bind(options_.port);
    bound_port_ = listener.port();
    if (options_.legacy_io) {
      listener_ = std::move(listener);
    } else {
      Reactor::Options ropt;
      ropt.max_inflight = std::max<std::size_t>(1, options_.max_inflight_per_conn);
      reactor_ = std::make_unique<Reactor>(
          std::move(listener), ropt,
          [this](std::uint64_t token, std::string line) {
            {
              const MutexLock qlock(admission_mutex_);
              admission_.emplace_back(token, std::move(line));
            }
            admission_cv_.notify_one();
          });
    }
    started_ = true;
  }
  if (options_.legacy_io) {
    accept_thread_ = std::thread([this] { accept_loop(); });
  } else {
    reactor_->start();
    const unsigned io_workers = std::max(1u, options_.io_workers);
    io_workers_.reserve(io_workers);
    for (unsigned i = 0; i < io_workers; ++i)
      io_workers_.emplace_back([this] { io_worker_loop(); });
  }
  const unsigned workers = std::max(1u, options_.workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  if (options_.log && options_.log_interval_ms > 0)
    logger_thread_ = std::thread([this] { logger_loop(); });
  log_line("listening on 127.0.0.1:" + std::to_string(bound_port_) + " (" +
           std::to_string(workers) + " workers, queue " +
           std::to_string(options_.max_queue) + "/" +
           std::to_string(high_watermark()) + ", io " +
           (options_.legacy_io ? "threads" : "epoll") + ")");
}

void Server::stop() {
  {
    const MutexLock lock(lifecycle_mutex_);
    if (!started_ || stopped_) return;
    if (stopping_.load()) return;  // a concurrent stop is already draining
    stopping_.store(true);
  }
  logger_cv_.notify_all();

  // 1. Stop accepting new connections and reading new requests. In reactor
  //    mode the admission queue then drains: already-framed lines are still
  //    parsed and admitted (draining_ is not set yet), so every request the
  //    server finished reading gets a real answer.
  if (options_.legacy_io) {
    if (accept_thread_.joinable()) accept_thread_.join();
    listener_.close();
  } else if (reactor_) {
    reactor_->shutdown_input();
    {
      const MutexLock lock(admission_mutex_);
      admission_closed_ = true;
    }
    admission_cv_.notify_all();
    for (std::thread& w : io_workers_)
      if (w.joinable()) w.join();
  }

  // 2. Drain: admission now rejects, workers finish every queued and
  //    in-flight job (delivering every response), then exit.
  {
    const MutexLock lock(queue_mutex_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();

  // 3. Flush responses and close connections. Legacy: unblock handler
  //    threads waiting for more requests (their pending responses were all
  //    written or are being written right now). Reactor: every final has
  //    been posted, so finish() writes out the outboxes and joins.
  if (options_.legacy_io) {
    {
      const MutexLock lock(conns_mutex_);
      for (const auto& conn : conns_) conn->stream.shutdown_read();
    }
    {
      const MutexLock lock(conns_mutex_);
      for (const auto& conn : conns_)
        if (conn->thread.joinable()) conn->thread.join();
      conns_.clear();
    }
  } else if (reactor_) {
    reactor_->finish();
  }

  // 4. Spill the RAM-resident results so a restart warm-starts from disk.
  store_.flush();

  if (logger_thread_.joinable()) logger_thread_.join();
  log_line("drained: " + stats_snapshot().log_line());
  const MutexLock lock(lifecycle_mutex_);
  stopped_ = true;
}

StatsSnapshot Server::stats_snapshot() const {
  std::size_t depth = 0;
  std::size_t in_flight = 0;
  {
    const MutexLock lock(queue_mutex_);
    depth = queue_.size();
    in_flight = in_flight_;
  }
  return stats_.snapshot(depth, in_flight);
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    std::optional<TcpStream> stream = listener_.accept(50);
    // Reap finished connections so a long-lived server does not accumulate
    // one Connection record per client ever served.
    {
      const MutexLock lock(conns_mutex_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load()) {
          (*it)->thread.join();
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!stream) continue;
    auto conn = std::make_unique<Connection>();
    conn->stream = std::move(*stream);
    Connection* raw = conn.get();
    {
      const MutexLock lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    legacy_conns_total_.fetch_add(1, std::memory_order_relaxed);
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
  }
}

void Server::io_worker_loop() {
  while (true) {
    std::uint64_t token = 0;
    std::string line;
    {
      const MutexLock lock(admission_mutex_);
      // Explicit wait loop (no predicate lambda), as in worker_loop.
      while (admission_.empty() && !admission_closed_)
        admission_cv_.wait(admission_mutex_);
      if (admission_.empty()) return;  // closed and drained: exit
      token = admission_.front().first;
      line = std::move(admission_.front().second);
      admission_.pop_front();
    }
    handle_line(token, std::move(line));
  }
}

void Server::handle_line(std::uint64_t token, std::string line) {
  const std::int64_t submit_ns = monotonic_now_ns();
  std::string line_key;
  if (std::optional<LineKey> fast = line_fast_key(line)) {
    // Fast path: a previously completed job already answered this exact
    // line (module the id). No JSON parse, no design parse, no hashing —
    // this is what lets a warm pipelined stream saturate the scheduler.
    if (std::optional<std::string> hit = line_cache_.lookup(fast->key)) {
      stats_.cache_hit(latency_us_since(submit_ns));
      reactor_->post_final(token, ok_response(fast->id, *hit));
      return;
    }
    line_key = std::move(fast->key);
  }
  handle_request(
      line, std::move(line_key),
      [this, token](std::string&& response) {
        reactor_->post_final(token, std::move(response));
      },
      [this, token](std::string&& notice) {
        reactor_->post_notice(token, std::move(notice));
      });
}

void Server::handle_connection(Connection* conn) {
  try {
    while (std::optional<std::string> line = conn->stream.read_line()) {
      if (line->empty()) continue;
      std::promise<std::string> response;
      handle_request(
          *line, std::string(),
          [&response](std::string&& r) { response.set_value(std::move(r)); },
          [conn](std::string&& notice) {
            // Best-effort interim line; a vanished peer must not disturb
            // the job that was already admitted.
            try {
              conn->stream.write_all(notice + "\n");
            } catch (const SocketError&) {
            }
          });
      conn->stream.write_all(response.get_future().get() + "\n");
    }
  } catch (const SocketError&) {
    // Peer vanished (or stalled past the send timeout): drop the connection.
  }
  conn->done.store(true);
}

void Server::handle_request(const std::string& line, std::string line_key,
                            Deliver deliver, Deliver notice) {
  std::string id;
  try {
    Request request = parse_request(line);
    id = request.id;
    switch (request.type) {
      case Request::Type::Ping: {
        json::Value pong = json::Value::object();
        pong.set("pong", json::Value(true));
        deliver(ok_response(id, pong.dump()));
        return;
      }
      case Request::Type::Stats:
        deliver(stats_response(id));
        return;
      case Request::Type::Metrics:
        deliver(metrics_response(request));
        return;
      case Request::Type::Analyze:
        deliver(handle_analyze(request.analyze));
        return;
      case Request::Type::Partition:
        // `deliver` is passed by value (copied) so the catch blocks below
        // can still answer when admission throws before taking ownership.
        admit_job(std::move(request.partition), std::nullopt, std::nullopt,
                  std::move(line_key), deliver, std::move(notice));
        return;
      case Request::Type::Simulate:
        admit_job(std::move(request.simulate.partition),
                  request.simulate.params, std::nullopt, std::move(line_key),
                  deliver, std::move(notice));
        return;
      case Request::Type::Floorplan:
        admit_job(std::move(request.floorplan.partition), std::nullopt,
                  request.floorplan.params, std::move(line_key), deliver,
                  std::move(notice));
        return;
    }
    stats_.job_failed();
    deliver(error_response(id, ErrorCode::Internal, "unhandled request type"));
  } catch (const Error& e) {
    // Malformed JSON, schema violations, bad design XML, unknown device:
    // everything thrown before a job was admitted is the client's fault.
    stats_.job_failed();
    deliver(error_response(id, ErrorCode::BadRequest, e.what()));
  } catch (const std::exception& e) {
    stats_.job_failed();
    deliver(error_response(id, ErrorCode::Internal, e.what()));
  }
}

std::string Server::handle_analyze(const AnalyzeRequest& request) {
  // Served inline on the admission thread: the diagnostics engine costs
  // milliseconds, so it never competes with partition jobs for queue slots.
  // An unknown device is the client's fault (bad_request, thrown by
  // by_name); a malformed design is NOT — reporting it is the whole point,
  // so it comes back as an ok response full of error diagnostics.
  analysis::AnalysisOptions options;
  options.library = library_;
  if (!request.device.empty()) {
    library_.by_name(request.device);
    options.device = request.device;
  }
  options.budget = request.budget;
  const analysis::SourceAnalysis sa =
      analysis::analyze_design_source(request.design_xml, options);
  return ok_response(request.id, analysis::analysis_json(sa.result).dump());
}

void Server::admit_job(PartitionRequest request,
                       std::optional<SimulateParams> simulate,
                       std::optional<FloorplanParams> floorplan,
                       std::string line_key, Deliver deliver, Deliver notice) {
  const std::int64_t submit_ns = monotonic_now_ns();
  // Validate everything the worker would otherwise trip over, so
  // bad_request never costs a queue slot: the design must parse and a named
  // device must exist.
  Design design = design_from_xml(request.design_xml);
  if (!request.device.empty()) library_.by_name(request.device);
  if (simulate && design.configurations().size() < 2)
    throw ParseError("simulation needs at least two configurations");

  // Lower-bound pre-check for explicit targets: a provably hopeless job is
  // answered `infeasible` with the proof before admission, so it never
  // occupies a queue slot or burns a search.
  {
    std::optional<ResourceVec> budget;
    std::string label;
    if (!request.device.empty()) {
      const Device& device = library_.by_name(request.device);
      budget = device.capacity();
      label = device.name();
    } else if (request.budget) {
      budget = *request.budget;
      label = "budget";
    }
    if (budget) {
      if (const auto proof =
              analysis::prove_infeasible(design, *budget, library_, label)) {
        stats_.job_infeasible(latency_us_since(submit_ns));
        deliver(error_response(
            request.id, ErrorCode::Infeasible,
            "design does not fit the target (lower bound " +
                (design.largest_configuration_area() + design.static_base())
                    .to_string() +
                ", budget " + budget->to_string() + "); " + proof->to_string()));
        return;
      }
    }
  }
  if (request.options.search.threads == 0)
    request.options.search.threads = std::max(1u, options_.job_threads);

  // Simulate and floorplan jobs are cached next to partition jobs: both
  // stages are pure functions of (design, target, options, params), so the
  // params extend the target identity in the key.
  std::string target = request.target_string();
  if (simulate) target += ";" + simulate->cache_string();
  if (floorplan) target += ";" + floorplan->cache_string();
  const std::string key = job_cache_key(design, target, request.options);
  if (std::optional<std::string> hit = store_.lookup(key)) {
    stats_.cache_hit(latency_us_since(submit_ns));
    if (!line_key.empty()) line_cache_.store(line_key, *hit);
    deliver(ok_response(request.id, *hit));
    return;
  }
  stats_.cache_miss();

  auto job = std::make_shared<Job>(std::move(request), std::move(design), key,
                                   submit_ns);
  job->simulate = simulate;
  job->floorplan = floorplan;
  job->line_key = std::move(line_key);
  job->deliver = std::move(deliver);
  const std::uint64_t timeout_ms = job->request.timeout_ms != 0
                                       ? job->request.timeout_ms
                                       : options_.default_timeout_ms;
  job->cancel.set_timeout_ms(static_cast<std::int64_t>(timeout_ms));
  // The queue critical section decides admission and nothing else. Stats
  // are folded in, notices sent and error responses rendered only after the
  // lock drops: the stats mutex sits *below* the queue mutex in the
  // hierarchy (lock_order.hpp), so touching ServerStats here would be an
  // inversion — exactly the latent bug the lock-order validator caught.
  enum class Verdict { kAdmitted, kAdmittedQueued, kDraining, kQueueFull };
  Verdict verdict = Verdict::kAdmitted;
  std::size_t position = 0;
  {
    const MutexLock lock(queue_mutex_);
    if (draining_) {
      verdict = Verdict::kDraining;
    } else if (queue_.size() >= high_watermark()) {
      verdict = Verdict::kQueueFull;
    } else {
      queue_.push_back(job);
      position = queue_.size();
      if (position > options_.max_queue) verdict = Verdict::kAdmittedQueued;
    }
  }
  switch (verdict) {
    case Verdict::kDraining:
      stats_.job_rejected();
      job->deliver(error_response(job->request.id, ErrorCode::Overloaded,
                                  "server is draining"));
      return;
    case Verdict::kQueueFull:
      stats_.job_rejected();
      job->deliver(error_response(job->request.id, ErrorCode::Overloaded,
                                  "job queue is full (" +
                                      std::to_string(high_watermark()) +
                                      " waiting)"));
      return;
    case Verdict::kAdmittedQueued: {
      stats_.job_accepted();
      queue_cv_.notify_one();
      // Soft band: the job is in, but the client learns it will wait. ETA
      // from the execution-time EWMA; advisory by design.
      const std::uint64_t ewma_us =
          exec_ewma_us_.load(std::memory_order_relaxed);
      const std::uint64_t eta_ms =
          position * ewma_us / std::max(1u, options_.workers) / 1000;
      stats_.job_queued_notice();
      notice(queued_response(job->request.id, position, eta_ms));
      return;
    }
    case Verdict::kAdmitted:
      stats_.job_accepted();
      queue_cv_.notify_one();
      return;
  }
}

void Server::worker_loop() {
  // Persistent per-worker execution state (§4e): the search pool's threads
  // are spawned once here, and the kernel scratch keeps its buffers warm,
  // so back-to-back jobs run with zero thread spawns and zero steady-state
  // kernel allocations.
  WorkerPool pool(std::max(1u, options_.job_threads));
  EvalScratch scratch;
  while (true) {
    std::shared_ptr<Job> job;
    {
      const MutexLock lock(queue_mutex_);
      // Explicit wait loop (no predicate lambda): the analysis can then see
      // that queue_/draining_ are only read with queue_mutex_ held.
      while (queue_.empty() && !draining_) queue_cv_.wait(queue_mutex_);
      if (queue_.empty()) return;  // draining and nothing left: exit
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    execute_job(*job, pool, scratch);
    {
      const MutexLock lock(queue_mutex_);
      --in_flight_;
    }
  }
}

void Server::execute_job(Job& job, WorkerPool& pool, EvalScratch& scratch) {
  const std::int64_t exec_start_ns = monotonic_now_ns();
  std::string response;
  try {
    check_cancel(&job.cancel);  // the deadline may have fired while queued
    PartitionerOptions options = job.request.options;
    options.search.cancel = &job.cancel;
    options.search.pool = &pool;
    options.search.scratch = &scratch;

    PartitionerResult result;
    std::string device_name;
    ResourceVec budget;
    const Device* device = nullptr;  ///< placement target (floorplan stages)
    if (!job.request.device.empty()) {
      device = &library_.by_name(job.request.device);
      device_name = device->name();
      budget = device->capacity();
      result = partition_design(job.design, budget, options);
    } else if (job.request.budget) {
      budget = *job.request.budget;
      result = partition_design(job.design, budget, options);
      // Floorplan stages need real columns: place on the first library
      // device whose capacity covers the budget.
      if (job.floorplan || (job.simulate && job.simulate->floorplan))
        device = library_.smallest_fitting(budget);
    } else {
      DevicePartitionResult dp =
          partition_on_smallest_device(job.design, library_, options);
      device = dp.device;
      device_name = dp.device->name();
      budget = dp.device->capacity();
      result = std::move(dp.result);
    }

    stats_.search_finished(result.stats);
    if (!result.feasible) {
      stats_.job_infeasible(latency_us_since(job.submit_ns));
      response = error_response(
          job.request.id, ErrorCode::Infeasible,
          "design does not fit the target (lower bound " +
              (job.design.largest_configuration_area() +
               job.design.static_base())
                  .to_string() +
              ", budget " + budget.to_string() + ")");
    } else {
      std::string payload;
      if (job.floorplan) {
        require(device != nullptr,
                "no library device covers the requested budget");
        const FloorplanRerank rerank =
            floorplan_rerank(job.design, result, *device, budget,
                             job.floorplan->rerank_options(), &library_);
        stats_.floorplan_finished(rerank.ranked.size(), rerank.vetoed_count,
                                  rerank.overturned);
        if (!rerank.any_feasible) {
          stats_.job_infeasible(latency_us_since(job.submit_ns));
          job.deliver(error_response(
              job.request.id, ErrorCode::Infeasible,
              "no enumerated scheme has a legal floorplan on " +
                  device->name()));
          return;
        }
        payload = floorplan_result_json(job.design, result, rerank,
                                        device_name, budget)
                      .dump();
      } else if (job.simulate) {
        const SimulateParams& params = *job.simulate;
        SchemeEvaluation eval = result.proposed.eval;
        if (params.floorplan) {
          // Replay against placement-true ICAP costs: floorplan the
          // proposed scheme and patch its frame counts before simulating.
          require(device != nullptr,
                  "no library device covers the requested budget");
          const PlacedFloorplan plan = floorplan_scheme(*device, eval);
          stats_.floorplan_finished(1, plan.feasible ? 0 : 1, false);
          if (!plan.feasible) {
            stats_.job_infeasible(latency_us_since(job.submit_ns));
            job.deliver(error_response(
                job.request.id, ErrorCode::Infeasible,
                "the proposed scheme has no legal floorplan on " +
                    device->name()));
            return;
          }
          eval = with_placement_frames(std::move(eval), plan);
        }
        const SimulateSetup setup = simulate_setup(
            job.design.configurations().size(), params);
        sim::SimulationOptions sopt;
        sopt.prefetch = params.prefetch;
        sopt.predictor = &setup.env;
        sopt.inter_arrival_ns = params.inter_arrival_ns;
        const sim::SimulationResult sr =
            sim::simulate_scheme(job.design, result.proposed.scheme, eval,
                                 setup.trace, sopt);
        stats_.simulation_finished(sr.transitions, sr.frames_loaded);
        payload = simulate_result_json(
                      job.design, device_name, budget, params, setup.source,
                      setup.trace.transitions(),
                      {SimulatedScheme{"proposed", eval.total_frames,
                                       eval.worst_frames, sr}})
                      .dump();
      } else {
        payload =
            partition_result_json(job.design, result, device_name, budget)
                .dump();
      }
      // Deterministic engine: the stored bytes equal any future cold run,
      // so cache hits are byte-identical to fresh responses.
      store_.store(job.cache_key, payload);
      if (!job.line_key.empty()) line_cache_.store(job.line_key, payload);
      stats_.job_completed(latency_us_since(job.submit_ns));
      response = ok_response(job.request.id, payload);
    }
  } catch (const CancelledError&) {
    stats_.job_timed_out();
    response = error_response(job.request.id, ErrorCode::Timeout,
                              "job exceeded its deadline");
  } catch (const DeviceError& e) {
    // Auto-device mode: the design fits no library device at all.
    stats_.job_infeasible(latency_us_since(job.submit_ns));
    response = error_response(job.request.id, ErrorCode::Infeasible, e.what());
  } catch (const Error& e) {
    stats_.job_failed();
    response = error_response(job.request.id, ErrorCode::Internal, e.what());
  } catch (const std::exception& e) {
    stats_.job_failed();
    response = error_response(job.request.id, ErrorCode::Internal, e.what());
  }
  // Fold this execution into the ETA estimate (EWMA, alpha = 1/8).
  const std::uint64_t sample_us = latency_us_since(exec_start_ns);
  const std::uint64_t old = exec_ewma_us_.load(std::memory_order_relaxed);
  const std::uint64_t next =
      old == 0 ? sample_us
               : static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(old) +
                     (static_cast<std::int64_t>(sample_us) -
                      static_cast<std::int64_t>(old)) /
                         8);
  exec_ewma_us_.store(next, std::memory_order_relaxed);
  job.deliver(std::move(response));
}

std::string Server::stats_response(const std::string& id) const {
  return ok_response(id, stats_snapshot().to_json().dump());
}

std::string Server::metrics_response(const Request& request) const {
  MetricsExtra extra;
  extra.io_mode = options_.legacy_io ? "threads" : "epoll";
  if (reactor_) {
    extra.connections = reactor_->connections();
    extra.connections_total = reactor_->connections_total();
  } else {
    const MutexLock lock(conns_mutex_);
    extra.connections = conns_.size();
    extra.connections_total =
        legacy_conns_total_.load(std::memory_order_relaxed);
  }
  {
    const MutexLock lock(admission_mutex_);
    extra.admission_depth = admission_.size();
  }
  const ResultCache::Stats ram = store_.ram_stats();
  extra.ram_entries = ram.entries;
  extra.ram_evictions = ram.evictions;
  extra.disk_enabled = store_.disk_enabled();
  const DiskStore::Stats disk = store_.disk_stats();
  extra.disk_entries = disk.entries;
  extra.disk_bytes = disk.bytes;
  extra.disk_hits = disk.hits;
  extra.disk_writes = disk.writes;
  extra.disk_evictions = disk.evictions;
  const StatsSnapshot snapshot = stats_snapshot();
  if (request.metrics_text)
    return ok_response(request.id,
                       json::Value(metrics_text(snapshot, extra)).dump());
  return ok_response(request.id, metrics_json(snapshot, extra).dump());
}

void Server::logger_loop() {
  MutexLock lock(lifecycle_mutex_);
  while (!stopping_.load()) {
    logger_cv_.wait_for_ms(lifecycle_mutex_, options_.log_interval_ms);
    if (stopping_.load()) break;
    // The stats snapshot takes the queue and stats locks, which sit below
    // the lifecycle mutex — but holding an outer lock across a log write
    // would serialise stop() behind slow sinks, so drop it first.
    lock.unlock();
    log_line(stats_snapshot().log_line());
    lock.lock();
  }
}

void Server::log_line(const std::string& line) {
  if (!options_.log) return;
  const MutexLock lock(log_mutex_);
  *options_.log << "[prpart serve] " << line << "\n";
  options_.log->flush();
}

}  // namespace prpart::server
