#pragma once

#include <optional>
#include <string>

#include "core/partitioner.hpp"
#include "design/design.hpp"
#include "floorplan/rerank.hpp"
#include "server/stats.hpp"
#include "sim/simulator.hpp"
#include "util/json.hpp"

namespace prpart::server {

/// Typed protocol error codes (docs/protocol.md). The wire form is the
/// snake_case name.
enum class ErrorCode {
  BadRequest,   ///< malformed JSON, unknown type, invalid design/arguments
  Infeasible,   ///< the design fits no target (partitioner lower bound)
  Timeout,      ///< the job's deadline fired before the search finished
  Overloaded,   ///< admission control rejected the job (queue full/draining)
  Internal,     ///< unexpected server-side failure
};

const char* error_code_name(ErrorCode code);

/// One `partition` job as received on the wire.
struct PartitionRequest {
  std::string id;          ///< client-chosen correlation id, echoed back
  std::string design_xml;  ///< the design in the tool's XML input format
  std::string device;      ///< named target device; empty = none
  std::optional<ResourceVec> budget;  ///< explicit budget; overrides nothing:
                                      ///< device and budget are exclusive
  PartitionerOptions options;         ///< effort knobs (defaults as the CLI)
  std::uint64_t timeout_ms = 0;       ///< per-job deadline; 0 = server default

  /// Target identity for the cache key: "device <name>", "budget c,b,d" or
  /// "auto" (smallest-device walk).
  std::string target_string() const;
};

/// One `analyze` job: run the static diagnostics engine over a design
/// without partitioning it. Served inline (no queue slot): analysis is
/// orders of magnitude cheaper than a search.
struct AnalyzeRequest {
  std::string id;
  std::string design_xml;
  std::string device;                 ///< named target device; "" = none
  std::optional<ResourceVec> budget;  ///< explicit budget; excludes device
};

/// Simulation knobs of a `simulate` job, shared verbatim between the server
/// request and `prpart simulate`. The replay is a pure function of these
/// plus the design and target, which is what makes simulate jobs cacheable.
struct SimulateParams {
  std::uint64_t steps = 100'000;  ///< Markov-trace transitions to replay
  std::uint64_t seed = 1;         ///< environment-chain + trace seed
  bool prefetch = false;          ///< Markov-predicted prefetching on
  bool uniform = false;  ///< replay the Eulerian all-pairs trace instead
  std::uint64_t inter_arrival_ns = 0;  ///< 0 = closed loop (see sim)
  /// Floorplan the proposed scheme first and replay against placement-true
  /// frame counts (vetoed schemes make the job infeasible).
  bool floorplan = false;

  /// Canonical form folded into the job cache key next to the target.
  std::string cache_string() const;
};

/// One `simulate` job: partition the design (exactly as a `partition` job
/// would), then replay a transition workload against the proposed scheme.
struct SimulateRequest {
  PartitionRequest partition;  ///< design/target/effort/timeout core
  SimulateParams params;
};

/// Floorplan knobs of a `floorplan` job, shared verbatim between the server
/// request and `prpart floorplan`. Like SimulateParams, the veto/re-rank
/// stage is a pure function of these plus the design and target, which is
/// what makes floorplan jobs cacheable.
struct FloorplanParams {
  std::size_t top_k = 5;  ///< enumerated schemes to floorplan (>= 1)
  bool first_fit = false;  ///< greedy rung strategy: first-fit, not best-fit
  bool anneal = true;      ///< run the annealing refinement rung
  std::uint64_t anneal_seed = 1;  ///< RNG seed of that rung

  /// Canonical form folded into the job cache key next to the target.
  std::string cache_string() const;
  /// The same knobs in the floorplan subsystem's vocabulary.
  FloorplanRerankOptions rerank_options() const;
};

/// One `floorplan` job: partition the design (exactly as a `partition` job
/// would), then floorplan the top-K enumerated schemes and re-rank them by
/// placement-true Eq. 10 cost.
struct FloorplanRequest {
  PartitionRequest partition;  ///< design/target/effort/timeout core
  FloorplanParams params;
};

struct Request {
  enum class Type {
    Partition,
    Analyze,
    Simulate,
    Floorplan,
    Stats,
    Ping,
    Metrics,
  };
  Type type = Type::Ping;
  std::string id;
  PartitionRequest partition;  ///< meaningful when type == Partition
  AnalyzeRequest analyze;      ///< meaningful when type == Analyze
  SimulateRequest simulate;    ///< meaningful when type == Simulate
  FloorplanRequest floorplan;  ///< meaningful when type == Floorplan
  bool metrics_text = false;   ///< Metrics: text exposition format requested
};

/// Parses one newline-delimited request. Throws ParseError on malformed
/// JSON, an unknown `type`, conflicting target fields or bad option values;
/// the server maps that to a `bad_request` response.
Request parse_request(const std::string& line);

/// Effort defaults shared by `prpart partition`, `prpart submit` and the
/// server, so the same submission produces the same work everywhere.
PartitionerOptions default_partitioner_options();

/// The single scheme/stats encoder shared by the server and the CLI's
/// `--json` output (the byte-identity contract of the integration tests).
///
/// Regions and partitions are rendered as sorted mode-name lists and only
/// the deterministic core of SearchStats is included, so the encoding is
/// identical for every thread count and for designs that differ only in
/// module/mode/configuration declaration order.
json::Value partition_result_json(const Design& design,
                                  const PartitionerResult& result,
                                  const std::string& device_name,
                                  const ResourceVec& budget);

/// The single floorplan-result encoder shared by the server's `floorplan`
/// response and the CLI's `prpart floorplan --json` output, byte for byte —
/// the same contract as partition_result_json. Candidates are rendered in
/// placement-true rank order with their rectangles in scheme-region order;
/// vetoed candidates carry their verdict diagnostics. The winner additionally
/// gets the canonical scheme rendering with placement-true frame counts.
json::Value floorplan_result_json(const Design& design,
                                  const PartitionerResult& result,
                                  const FloorplanRerank& rerank,
                                  const std::string& device_name,
                                  const ResourceVec& budget);

/// The workload a SimulateParams describes, materialised: the environment
/// chain (also the prefetch predictor) and the transition trace. Shared by
/// the server worker and `prpart simulate` so both replay the exact same
/// transitions for the same params — the byte-identity contract again.
struct SimulateSetup {
  MarkovChain env;
  sim::TransitionTrace trace;
  std::string source;  ///< "markov" or "uniform"
};

/// Builds the chain/trace for `configs` configurations (requires >= 2).
SimulateSetup simulate_setup(std::size_t configs, const SimulateParams& params);

/// One simulated scheme row for the shared simulate encoder.
struct SimulatedScheme {
  std::string label;
  std::uint64_t total_frames = 0;  ///< the scheme's Eq. 10 sum
  std::uint64_t worst_frames = 0;  ///< the scheme's Eq. 11 worst pair
  sim::SimulationResult result;
};

/// The single simulate-result encoder shared by the server's `simulate`
/// response and the CLI's `prpart simulate --json` output, byte for byte —
/// the same contract as partition_result_json. `trace_source` names where
/// the transitions came from ("markov", "uniform" or "file").
json::Value simulate_result_json(const Design& design,
                                 const std::string& device_name,
                                 const ResourceVec& budget,
                                 const SimulateParams& params,
                                 const std::string& trace_source,
                                 std::uint64_t trace_transitions,
                                 const std::vector<SimulatedScheme>& schemes);

/// Response envelopes. `result_json` is spliced verbatim so a cache hit
/// reproduces the cold response byte for byte.
std::string ok_response(const std::string& id, const std::string& result_json);
std::string error_response(const std::string& id, ErrorCode code,
                           const std::string& message);

/// Interim backpressure notice (not a final response; it has no `ok`
/// field): the job was admitted into the soft band above `max_queue`, at
/// `position` in the queue with a rough completion estimate. The final
/// response for the same `id` follows later on the same connection.
std::string queued_response(const std::string& id, std::size_t position,
                            std::uint64_t eta_ms);

/// Everything the `metrics` request reports beyond the StatsSnapshot:
/// event-loop and store gauges owned by the server, not by ServerStats.
struct MetricsExtra {
  std::string io_mode;                 ///< "epoll" or "threads"
  std::uint64_t connections = 0;       ///< currently open
  std::uint64_t connections_total = 0; ///< accepted over the lifetime
  std::uint64_t admission_depth = 0;   ///< framed lines awaiting admission
  std::uint64_t ram_entries = 0;
  std::uint64_t ram_evictions = 0;     ///< RAM entries spilled/discarded
  bool disk_enabled = false;
  std::uint64_t disk_entries = 0;
  std::uint64_t disk_bytes = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t disk_writes = 0;
  std::uint64_t disk_evictions = 0;
};

/// The scrapeable metrics document (docs/protocol.md, `metrics`): the full
/// stats snapshot under "jobs" plus server/store gauges. Keys are stable —
/// check_invariants.py ties every one of them to the protocol docs.
json::Value metrics_json(const StatsSnapshot& snapshot,
                         const MetricsExtra& extra);

/// Text exposition of the same document: one `prpart_<path> <value>` line
/// per numeric leaf, flattened with underscores, in document order.
/// Derived from metrics_json so the two formats can never diverge.
std::string metrics_text(const StatsSnapshot& snapshot,
                         const MetricsExtra& extra);

}  // namespace prpart::server
