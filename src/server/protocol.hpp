#pragma once

#include <optional>
#include <string>

#include "core/partitioner.hpp"
#include "design/design.hpp"
#include "util/json.hpp"

namespace prpart::server {

/// Typed protocol error codes (docs/protocol.md). The wire form is the
/// snake_case name.
enum class ErrorCode {
  BadRequest,   ///< malformed JSON, unknown type, invalid design/arguments
  Infeasible,   ///< the design fits no target (partitioner lower bound)
  Timeout,      ///< the job's deadline fired before the search finished
  Overloaded,   ///< admission control rejected the job (queue full/draining)
  Internal,     ///< unexpected server-side failure
};

const char* error_code_name(ErrorCode code);

/// One `partition` job as received on the wire.
struct PartitionRequest {
  std::string id;          ///< client-chosen correlation id, echoed back
  std::string design_xml;  ///< the design in the tool's XML input format
  std::string device;      ///< named target device; empty = none
  std::optional<ResourceVec> budget;  ///< explicit budget; overrides nothing:
                                      ///< device and budget are exclusive
  PartitionerOptions options;         ///< effort knobs (defaults as the CLI)
  std::uint64_t timeout_ms = 0;       ///< per-job deadline; 0 = server default

  /// Target identity for the cache key: "device <name>", "budget c,b,d" or
  /// "auto" (smallest-device walk).
  std::string target_string() const;
};

/// One `analyze` job: run the static diagnostics engine over a design
/// without partitioning it. Served inline (no queue slot): analysis is
/// orders of magnitude cheaper than a search.
struct AnalyzeRequest {
  std::string id;
  std::string design_xml;
  std::string device;                 ///< named target device; "" = none
  std::optional<ResourceVec> budget;  ///< explicit budget; excludes device
};

struct Request {
  enum class Type { Partition, Analyze, Stats, Ping };
  Type type = Type::Ping;
  std::string id;
  PartitionRequest partition;  ///< meaningful when type == Partition
  AnalyzeRequest analyze;      ///< meaningful when type == Analyze
};

/// Parses one newline-delimited request. Throws ParseError on malformed
/// JSON, an unknown `type`, conflicting target fields or bad option values;
/// the server maps that to a `bad_request` response.
Request parse_request(const std::string& line);

/// Effort defaults shared by `prpart partition`, `prpart submit` and the
/// server, so the same submission produces the same work everywhere.
PartitionerOptions default_partitioner_options();

/// The single scheme/stats encoder shared by the server and the CLI's
/// `--json` output (the byte-identity contract of the integration tests).
///
/// Regions and partitions are rendered as sorted mode-name lists and only
/// the deterministic core of SearchStats is included, so the encoding is
/// identical for every thread count and for designs that differ only in
/// module/mode/configuration declaration order.
json::Value partition_result_json(const Design& design,
                                  const PartitionerResult& result,
                                  const std::string& device_name,
                                  const ResourceVec& budget);

/// Response envelopes. `result_json` is spliced verbatim so a cache hit
/// reproduces the cold response byte for byte.
std::string ok_response(const std::string& id, const std::string& result_json);
std::string error_response(const std::string& id, ErrorCode code,
                           const std::string& message);

}  // namespace prpart::server
