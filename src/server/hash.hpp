#pragma once

#include <string>

#include "core/partitioner.hpp"
#include "design/design.hpp"

namespace prpart::server {

/// Canonical text form of a design: modules sorted by name (modes sorted by
/// name within each module), configurations sorted by name, each
/// configuration's mode choices sorted by module name, and every name
/// rendered as a JSON string literal so arbitrary characters cannot forge
/// delimiters. Two designs that differ only in declaration order of
/// modules, modes or configurations canonicalise to the same string; any
/// change to a name, a resource count or a configuration changes it.
std::string canonical_design_string(const Design& design);

/// 128-bit content hash (32 hex chars) of an arbitrary byte string: two
/// independently seeded FNV-1a-64 lanes. Not cryptographic — it keys an
/// in-memory result cache, where a collision costs a wrong answer only if
/// an adversary can submit both preimages; the protocol is trusted-client.
std::string content_hash(const std::string& bytes);

/// Cache key of a partition job: canonical design form + target (device
/// name or explicit budget) + every PartitionerOptions field that can alter
/// the result. `threads` and `use_cost_cache` are deliberately excluded —
/// the search returns byte-identical schemes for any value of either, so
/// submissions differing only there share one cache entry.
std::string job_cache_key(const Design& design, const std::string& target,
                          const PartitionerOptions& options);

}  // namespace prpart::server
