#include "server/store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>
#include <vector>

namespace prpart::server {

namespace fs = std::filesystem;

DiskStore::DiskStore(std::string dir, std::size_t max_entries)
    : dir_(std::move(dir)), max_entries_(max_entries) {
  if (!enabled()) return;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return;  // opportunistic layer: a bad directory disables warm start
  // Warm start: adopt every segment file already present, oldest first so
  // the LRU's recency order approximates the previous process's.
  struct Found {
    fs::file_time_type mtime;
    std::string key;
    std::uint64_t bytes = 0;
  };
  std::vector<Found> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (ec) break;
    if (!entry.is_regular_file() || entry.path().extension() != ".res")
      continue;
    std::error_code fec;
    const auto mtime = entry.last_write_time(fec);
    const auto size = entry.file_size(fec);
    if (fec) continue;
    found.push_back(Found{mtime, entry.path().stem().string(), size});
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.key < b.key;
  });
  const MutexLock lock(mutex_);
  for (const Found& f : found) {
    lru_.push_front(Entry{f.key, f.bytes});
    index_[f.key] = lru_.begin();
    bytes_ += f.bytes;
  }
  evict_beyond_cap();
}

std::string DiskStore::path_of(const std::string& key) const {
  return dir_ + "/" + key + ".res";
}

std::optional<std::string> DiskStore::load(const std::string& key) {
  if (!enabled()) return std::nullopt;
  {
    const MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
  }
  // Read outside the lock: the only racing mutation is an eviction unlink,
  // which the open below observes as a miss.
  std::ifstream in(path_of(key), std::ios::binary);
  if (!in) {
    const MutexLock lock(mutex_);
    ++misses_;
    return std::nullopt;
  }
  std::string payload{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
  if (!in.good() && !in.eof()) {
    const MutexLock lock(mutex_);
    ++misses_;
    return std::nullopt;
  }
  const MutexLock lock(mutex_);
  ++hits_;
  return payload;
}

void DiskStore::save(const std::string& key, const std::string& payload) {
  if (!enabled()) return;
  {
    const MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      // Same key => same deterministic payload; refreshing recency is all
      // that is left to do.
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
  }
  // Write outside the lock (a search result can be megabytes); the rename
  // publishes atomically. Concurrent savers of the same key write identical
  // bytes, so the last rename winning is harmless.
  const std::string target = path_of(key);
  const std::string temp = target + ".tmp";
  bool wrote = false;
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (out) {
      out.write(payload.data(),
                static_cast<std::streamsize>(payload.size()));
      wrote = out.good();
    }
  }
  std::error_code ec;
  if (wrote) {
    fs::rename(temp, target, ec);
    wrote = !ec;
  }
  if (!wrote) fs::remove(temp, ec);
  const MutexLock lock(mutex_);
  if (!wrote) {
    ++write_errors_;
    return;
  }
  ++writes_;
  const auto it = index_.find(key);
  if (it != index_.end()) {  // raced with another saver; keep one entry
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, payload.size()});
  index_[key] = lru_.begin();
  bytes_ += payload.size();
  evict_beyond_cap();
}

void DiskStore::evict_beyond_cap() {
  while (lru_.size() > max_entries_) {
    const Entry& victim = lru_.back();
    std::error_code ec;
    fs::remove(path_of(victim.key), ec);
    bytes_ -= std::min(bytes_, victim.bytes);
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

DiskStore::Stats DiskStore::stats() const {
  const MutexLock lock(mutex_);
  return Stats{hits_,         misses_,     writes_, evictions_,
               write_errors_, lru_.size(), bytes_};
}

ResultStore::ResultStore(std::size_t ram_entries, std::string disk_dir,
                         std::size_t disk_entries)
    : ram_(ram_entries), disk_(std::move(disk_dir), disk_entries) {
  if (disk_.enabled())
    ram_.set_eviction_sink([this](const std::string& key,
                                  const std::string& payload) {
      disk_.save(key, payload);
    });
}

std::optional<std::string> ResultStore::lookup(const std::string& key) {
  if (std::optional<std::string> hit = ram_.lookup(key)) return hit;
  std::optional<std::string> spilled = disk_.load(key);
  // Promote: repeat submissions of a warm-started design are RAM hits from
  // here on (the promotion may spill something else — that is the LRU
  // doing its job).
  if (spilled) ram_.store(key, *spilled);
  return spilled;
}

void ResultStore::store(const std::string& key, const std::string& payload) {
  ram_.store(key, payload);
}

void ResultStore::flush() { ram_.drain_to_sink(); }

}  // namespace prpart::server
