#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "util/socket.hpp"
#include "util/thread_annotations.hpp"

namespace prpart::server {

struct RouterOptions {
  /// Front port (loopback, like the server); 0 picks an ephemeral port.
  std::uint16_t port = 0;
  /// The shard servers' ports, in shard order. At least one.
  std::vector<std::uint16_t> shard_ports;
  std::string shard_host = "127.0.0.1";
  /// Nullable log sink.
  std::ostream* log = nullptr;
};

/// The `prpart serve --shards N` front process: accepts client connections
/// and consistent-hashes each job across the shard servers by its design's
/// content digest, so repeat submissions of a design always land on the
/// shard whose result store is warm with it.
///
/// Routing is per *request*, not per connection: one client connection may
/// fan out across every shard. Request lines pass through verbatim (ids
/// untouched) and responses are relayed back verbatim, so the byte-identity
/// contract holds end to end; with one in-flight request per shard pair the
/// interleaving is exactly the shard's. Non-job requests (ping, stats,
/// metrics) and unparseable lines go to shard 0.
///
/// The hash ring uses 64 virtual nodes per shard, so adding a shard moves
/// roughly 1/N of the key space instead of reshuffling everything.
class ShardRouter {
 public:
  explicit ShardRouter(RouterOptions options);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Binds the front listener and spawns the accept thread. Throws
  /// SocketError when the port cannot be bound.
  void start();

  /// Bound front port (valid after start()).
  std::uint16_t port() const { return bound_port_; }

  /// Stops accepting, unblocks every relay and joins. Idempotent.
  void stop();

  /// The shard a request line routes to (exposed for tests): the ring
  /// lookup of the design digest, or 0 when the line does not carry a
  /// parseable design.
  std::size_t shard_of_line(const std::string& line) const;

  /// The ring lookup for an explicit 32-hex content digest.
  std::size_t shard_of_digest(const std::string& digest) const;

 private:
  /// One client connection: its socket, the lazily opened upstream
  /// connection per shard, and one relay thread per opened upstream
  /// copying responses back.
  struct ClientConn {
    TcpStream stream;
    std::thread reader;
    std::atomic<bool> done{false};
    /// Serialises relay threads interleaving response lines onto the
    /// client socket. Documented level kShardRouter (lock_order.hpp).
    Mutex write_mutex{lock_order::Level::kShardRouter, "router.client_write"};
    std::vector<TcpStream> upstreams;      ///< reader thread only
    std::vector<std::thread> relays;       ///< reader thread only
  };

  struct RingPoint {
    std::uint64_t point = 0;
    std::size_t shard = 0;
  };

  void accept_loop();
  void serve_client(ClientConn* conn);
  /// Relays every response line from `upstream` back to the client.
  void relay_loop(ClientConn* conn, std::size_t shard);
  void log_line(const std::string& line);

  const RouterOptions options_;
  std::vector<RingPoint> ring_;  ///< sorted by point; built once in ctor

  TcpListener listener_;
  std::uint16_t bound_port_ = 0;
  WakePipe wake_;
  std::thread accept_thread_;

  /// Client registry so stop() can unblock reader threads. Same level as
  /// the per-connection write mutex (kShardRouter) — the two are never
  /// held together.
  Mutex clients_mutex_{lock_order::Level::kShardRouter, "router.clients"};
  std::list<std::unique_ptr<ClientConn>> clients_
      PRPART_GUARDED_BY(clients_mutex_);

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  Mutex log_mutex_{lock_order::Level::kServerLog, "router.log"};
};

}  // namespace prpart::server
