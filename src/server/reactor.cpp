#include "server/reactor.hpp"

#include <algorithm>
#include <utility>

#include "util/clock.hpp"

namespace prpart::server {

namespace {

constexpr std::uint64_t kListenerToken = 0;
constexpr std::uint64_t kWakeToken = 1;
constexpr std::uint64_t kFirstConnToken = 2;

/// How long finish() keeps retrying to flush responses to slow peers
/// before force-closing them (a vanished client must not wedge stop()).
constexpr std::int64_t kFinishDeadlineNs = 5'000'000'000;

}  // namespace

Reactor::Reactor(TcpListener listener, Options options, LineHandler on_line)
    : options_(options),
      on_line_(std::move(on_line)),
      listener_(std::move(listener)) {}

Reactor::~Reactor() {
  if (thread_.joinable()) {
    shutdown_input();
    finish();
  }
}

void Reactor::start() {
  listener_.set_nonblocking(true);
  // Listener and wake pipe are level-triggered (no state machine needed);
  // connections are edge-triggered and drained to EAGAIN.
  epoll_.add(listener_.fd(), kListenerToken, false, false);
  epoll_.add(wake_.read_fd(), kWakeToken, false, false);
  thread_ = std::thread([this] { loop(); });
}

void Reactor::shutdown_input() {
  input_shutdown_.store(true);
  wake_.notify();
}

void Reactor::finish() {
  finishing_.store(true);
  wake_.notify();
  if (thread_.joinable()) thread_.join();
}

void Reactor::post_final(std::uint64_t token, std::string line) {
  {
    const MutexLock lock(posts_mutex_);
    posts_.push_back(Post{token, std::move(line), true});
  }
  wake_.notify();
}

void Reactor::post_notice(std::uint64_t token, std::string line) {
  {
    const MutexLock lock(posts_mutex_);
    posts_.push_back(Post{token, std::move(line), false});
  }
  wake_.notify();
}

void Reactor::loop() {
  std::vector<Epoll::Event> events;
  bool input_closed = false;
  std::int64_t finish_started_ns = 0;
  while (true) {
    const bool finishing = finishing_.load();
    epoll_.wait(events, finishing ? 50 : -1);

    if (input_shutdown_.load() && !input_closed) {
      input_closed = true;
      epoll_.remove(listener_.fd());
      listener_.close();
      const MutexLock lock(conns_mutex_);
      for (auto& [token, conn] : conns_) {
        // Stop reading: unframed bytes are dropped, framed lines already
        // dispatched keep flowing to their responses.
        conn->peer_eof = true;
        conn->inbuf.clear();
        conn->scan_from = 0;
      }
    }

    for (const Epoll::Event& event : events) {
      if (event.token == kListenerToken) {
        if (!input_closed) handle_accepts();
        continue;
      }
      if (event.token == kWakeToken) {
        wake_.drain();
        continue;
      }
      Conn* conn = nullptr;
      {
        const MutexLock lock(conns_mutex_);
        const auto it = conns_.find(event.token);
        if (it != conns_.end()) conn = it->second.get();
      }
      if (!conn) continue;
      if (event.readable) conn->read_ready = true;
      if (event.writable) conn->write_ready = true;
      pump(event.token, *conn);
    }

    drain_posts();

    if (finishing) {
      if (finish_started_ns == 0) finish_started_ns = monotonic_now_ns();
      const bool expired =
          monotonic_now_ns() - finish_started_ns > kFinishDeadlineNs;
      std::vector<std::uint64_t> close_now;
      {
        const MutexLock lock(conns_mutex_);
        for (auto& [token, conn] : conns_)
          if (expired || conn->dead ||
              conn->out_from >= conn->outbuf.size())
            close_now.push_back(token);
      }
      for (const std::uint64_t token : close_now) close_conn(token);
      const MutexLock lock(conns_mutex_);
      if (conns_.empty()) return;
    }
  }
}

void Reactor::handle_accepts() {
  while (std::optional<TcpStream> stream = listener_.accept_nonblocking()) {
    stream->set_nonblocking(true);
    const std::uint64_t token = next_token_ < kFirstConnToken
                                    ? (next_token_ = kFirstConnToken)++
                                    : next_token_++;
    auto conn = std::make_unique<Conn>();
    conn->stream = std::move(*stream);
    const int fd = conn->stream.fd();
    {
      const MutexLock lock(conns_mutex_);
      conns_.emplace(token, std::move(conn));
    }
    epoll_.add(fd, token, true, true);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    total_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Reactor::pump(std::uint64_t token, Conn& conn) {
  // Read phase: drain the socket while the connection is below its
  // in-flight cap. At the cap we stop reading entirely — the kernel buffer
  // and then the client's TCP window absorb the rest (real backpressure).
  char chunk[16 * 1024];
  while (conn.read_ready && !conn.peer_eof && !conn.dead &&
         conn.inflight < options_.max_inflight) {
    const TcpStream::IoResult r = conn.stream.read_some(chunk, sizeof chunk);
    if (r.status == TcpStream::IoStatus::kWouldBlock) {
      conn.read_ready = false;
      break;
    }
    if (r.status == TcpStream::IoStatus::kClosed) {
      conn.peer_eof = true;
      break;
    }
    conn.inbuf.append(chunk, r.bytes);
    frame_lines(token, conn);
  }
  frame_lines(token, conn);
  flush_writes(conn);
  maybe_close(token, conn);
}

void Reactor::frame_lines(std::uint64_t token, Conn& conn) {
  if (conn.dead) return;
  std::size_t consumed = 0;
  while (conn.inflight < options_.max_inflight) {
    const std::size_t nl = conn.inbuf.find('\n', conn.scan_from);
    std::string line;
    if (nl == std::string::npos) {
      conn.scan_from = conn.inbuf.size();
      if (conn.inbuf.size() - consumed > options_.max_line) {
        conn.dead = true;  // protocol abuse: unbounded line
        break;
      }
      // Mirror the blocking read_line: at EOF, unterminated trailing bytes
      // are the final line (unless input shutdown already dropped them).
      if (!conn.peer_eof || consumed >= conn.inbuf.size()) break;
      line = conn.inbuf.substr(consumed);
      consumed = conn.inbuf.size();
    } else {
      if (nl - consumed > options_.max_line) {
        conn.dead = true;
        break;
      }
      line = conn.inbuf.substr(consumed, nl - consumed);
      consumed = nl + 1;
      conn.scan_from = consumed;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++conn.inflight;
    on_line_(token, std::move(line));
  }
  if (consumed > 0) {
    conn.inbuf.erase(0, consumed);
    conn.scan_from -= std::min(conn.scan_from, consumed);
  }
}

void Reactor::flush_writes(Conn& conn) {
  while (!conn.dead && conn.write_ready &&
         conn.out_from < conn.outbuf.size()) {
    const TcpStream::IoResult r = conn.stream.write_some(
        conn.outbuf.data() + conn.out_from, conn.outbuf.size() - conn.out_from);
    if (r.status == TcpStream::IoStatus::kWouldBlock) {
      conn.write_ready = false;
      break;
    }
    if (r.status == TcpStream::IoStatus::kClosed) {
      conn.dead = true;
      break;
    }
    if (r.bytes == 0) break;  // defensive: avoid a spin on a 0-byte send
    conn.out_from += r.bytes;
  }
  if (conn.out_from >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_from = 0;
  } else if (conn.out_from > (1u << 20)) {
    conn.outbuf.erase(0, conn.out_from);
    conn.out_from = 0;
  }
}

void Reactor::drain_posts() {
  std::deque<Post> batch;
  {
    const MutexLock lock(posts_mutex_);
    batch.swap(posts_);
  }
  if (batch.empty()) return;
  std::vector<std::uint64_t> touched;
  for (Post& post : batch) {
    Conn* conn = nullptr;
    {
      const MutexLock lock(conns_mutex_);
      const auto it = conns_.find(post.token);
      if (it != conns_.end()) conn = it->second.get();
    }
    if (!conn) continue;  // connection already gone: drop the response
    if (post.final && conn->inflight > 0) --conn->inflight;
    if (!conn->dead) {
      conn->outbuf += post.line;
      conn->outbuf += '\n';
    }
    if (touched.empty() || touched.back() != post.token)
      touched.push_back(post.token);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const std::uint64_t token : touched) {
    Conn* conn = nullptr;
    {
      const MutexLock lock(conns_mutex_);
      const auto it = conns_.find(token);
      if (it != conns_.end()) conn = it->second.get();
    }
    // A retired in-flight slot may unblock reading, so run the full pump.
    if (conn) pump(token, *conn);
  }
}

void Reactor::maybe_close(std::uint64_t token, Conn& conn) {
  const bool flushed = conn.out_from >= conn.outbuf.size();
  if (conn.dead || (conn.peer_eof && conn.inflight == 0 && flushed &&
                    conn.inbuf.empty()))
    close_conn(token);
}

void Reactor::close_conn(std::uint64_t token) {
  std::unique_ptr<Conn> conn;
  {
    const MutexLock lock(conns_mutex_);
    const auto it = conns_.find(token);
    if (it == conns_.end()) return;
    conn = std::move(it->second);
    conns_.erase(it);
  }
  epoll_.remove(conn->stream.fd());
  conn->stream.close();
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace prpart::server
