#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "server/protocol.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace prpart::server {

/// A decoded response envelope. `raw_result` preserves the server's exact
/// byte encoding of the `result` field so callers can compare or archive
/// responses without a decode/re-encode round trip.
struct ClientResponse {
  std::string id;
  bool ok = false;
  json::Value result;          ///< meaningful when ok
  std::string raw_result;      ///< result field verbatim (dump of `result`)
  std::string error_code;      ///< meaningful when !ok (docs/protocol.md)
  std::string error_message;
};

/// Blocking client for the prpart serving protocol: one TCP connection,
/// newline-delimited JSON requests, one response per request in order.
/// Not thread-safe; use one Client per thread (the server multiplexes).
class Client {
 public:
  /// Connects to the server. Throws SocketError when the peer is absent.
  Client(const std::string& host, std::uint16_t port);

  /// Submits one partition job and waits for its response. Fields of
  /// `request` map 1:1 onto the wire format; a zero `timeout_ms` defers to
  /// the server's default deadline.
  ClientResponse submit(const PartitionRequest& request);

  /// Runs the static diagnostics engine over one design on the server.
  /// Always ok (with diagnostics in the result) unless the request itself
  /// is malformed.
  ClientResponse analyze(const AnalyzeRequest& request);

  /// Partitions a design and replays a transition trace against the
  /// proposed scheme (docs/protocol.md, `simulate`).
  ClientResponse simulate(const SimulateRequest& request);

  /// Partitions a design and re-ranks the enumerated top-K schemes by
  /// placement-true floorplan cost (docs/protocol.md, `floorplan`).
  ClientResponse floorplan(const FloorplanRequest& request);

  /// Fetches the server's stats snapshot.
  ClientResponse stats(const std::string& id = "stats");

  /// Liveness probe.
  ClientResponse ping(const std::string& id = "ping");

  /// Fetches the scrapeable metrics document (docs/protocol.md, `metrics`);
  /// with `text` the result is the flattened text exposition as a string.
  ClientResponse metrics(const std::string& id = "metrics",
                         bool text = false);

  /// Escape hatch: sends an arbitrary request object and decodes the
  /// response (used by the protocol tests to exercise error paths).
  ClientResponse roundtrip(const json::Value& request);

  /// Interim `queued` backpressure notices skipped while waiting for final
  /// responses (docs/protocol.md): observability for tests and tools.
  std::uint64_t queued_notices_seen() const { return queued_notices_seen_; }

 private:
  ClientResponse exchange(const std::string& line);

  TcpStream stream_;
  std::uint64_t queued_notices_seen_ = 0;
};

/// Builds the wire form of a partition request (shared by Client::submit
/// and the tests that drive a raw socket).
json::Value partition_request_json(const PartitionRequest& request);

/// Builds the wire form of an analyze request.
json::Value analyze_request_json(const AnalyzeRequest& request);

/// Builds the wire form of a simulate request.
json::Value simulate_request_json(const SimulateRequest& request);

/// Builds the wire form of a floorplan request.
json::Value floorplan_request_json(const FloorplanRequest& request);

}  // namespace prpart::server
