#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/thread_annotations.hpp"

namespace prpart::server {

/// Content-addressed result cache: canonical job hash (server::job_cache_key)
/// -> serialised `result` JSON. Because the partitioning engine is
/// deterministic (PR 1), a cached entry is byte-identical to what a fresh
/// run would produce, so hits are indistinguishable from cold responses.
///
/// Bounded LRU with internal synchronisation; all methods are thread-safe.
class ResultCache {
 public:
  /// Receives entries as they fall out of the LRU (the disk spill path of
  /// the persistent result store). Called with the cache mutex held —
  /// sinks may only take locks *above* kResultCache (the disk-store index
  /// qualifies) and must not call back into the cache.
  using EvictionSink = std::function<void(const std::string& key,
                                          const std::string& payload)>;

  /// `max_entries` == 0 disables caching (every lookup misses).
  explicit ResultCache(std::size_t max_entries) : max_entries_(max_entries) {}

  /// Installs the eviction sink; call before the cache is shared between
  /// threads (the sink itself is read without synchronisation afterwards).
  void set_eviction_sink(EvictionSink sink) { sink_ = std::move(sink); }

  /// Returns the cached payload and refreshes its recency; counts a hit or
  /// a miss.
  std::optional<std::string> lookup(const std::string& key);

  /// Inserts or refreshes `key`, evicting the least recently used entry
  /// beyond capacity. Storing never counts as a hit or miss.
  void store(const std::string& key, const std::string& payload);

  /// Feeds every resident entry to the eviction sink (most recent first)
  /// and empties the cache: the shutdown flush that makes the disk store's
  /// warm start cover entries that were never evicted. No-op without sink.
  void drain_to_sink();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::string payload;
  };

  const std::size_t max_entries_;
  EvictionSink sink_;  ///< set once before sharing; may be empty
  /// Sits below the scheduler locks in the hierarchy (lock_order.hpp):
  /// cache probes and stores must happen with no queue lock held.
  mutable Mutex mutex_{lock_order::Level::kResultCache, "server.result_cache"};
  /// front = most recently used
  std::list<Entry> lru_ PRPART_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      PRPART_GUARDED_BY(mutex_);
  std::uint64_t hits_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ PRPART_GUARDED_BY(mutex_) = 0;
};

}  // namespace prpart::server
