#include "server/hash.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/json.hpp"

namespace prpart::server {

namespace {

void append_res(std::string& out, const ResourceVec& r) {
  out += ' ';
  out += std::to_string(r.clbs);
  out += ' ';
  out += std::to_string(r.brams);
  out += ' ';
  out += std::to_string(r.dsps);
}

std::uint64_t fnv1a64(const std::string& bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string canonical_design_string(const Design& design) {
  std::string out = "design ";
  out += json::escape(design.name());
  out += "\nstatic";
  append_res(out, design.static_base());
  out += '\n';

  // Modules sorted by name, modes sorted by name within each module.
  std::vector<const Module*> modules;
  for (const Module& m : design.modules()) modules.push_back(&m);
  std::sort(modules.begin(), modules.end(),
            [](const Module* a, const Module* b) { return a->name < b->name; });
  for (const Module* m : modules) {
    out += "module ";
    out += json::escape(m->name);
    out += '\n';
    std::vector<const Mode*> modes;
    for (const Mode& mode : m->modes) modes.push_back(&mode);
    std::sort(modes.begin(), modes.end(),
              [](const Mode* a, const Mode* b) { return a->name < b->name; });
    for (const Mode* mode : modes) {
      out += "mode ";
      out += json::escape(mode->name);
      append_res(out, mode->area);
      out += '\n';
    }
  }

  // Configurations sorted by name; each configuration's (module, mode)
  // choices sorted by module name and written by NAME, so the canonical
  // form is independent of the design's internal module numbering.
  std::vector<const Configuration*> configs;
  for (const Configuration& c : design.configurations()) configs.push_back(&c);
  std::sort(configs.begin(), configs.end(),
            [](const Configuration* a, const Configuration* b) {
              return a->name < b->name;
            });
  for (const Configuration* c : configs) {
    out += "config ";
    out += json::escape(c->name);
    out += '\n';
    std::vector<std::pair<std::string, std::string>> uses;
    for (std::size_t m = 0; m < c->mode_of_module.size(); ++m) {
      const std::uint32_t mode = c->mode_of_module[m];
      if (mode == 0) continue;  // absent module: not part of the identity
      uses.emplace_back(design.modules()[m].name,
                        design.modules()[m].modes[mode - 1].name);
    }
    std::sort(uses.begin(), uses.end());
    for (const auto& [module_name, mode_name] : uses) {
      out += "use ";
      out += json::escape(module_name);
      out += ' ';
      out += json::escape(mode_name);
      out += '\n';
    }
  }
  return out;
}

std::string content_hash(const std::string& bytes) {
  // Two independent FNV lanes (standard offset basis and a second seed)
  // give a 128-bit digest; collisions need both 64-bit lanes to collide.
  const std::uint64_t a = fnv1a64(bytes, 0xcbf29ce484222325ULL);
  const std::uint64_t b = fnv1a64(bytes, 0x9e3779b97f4a7c15ULL);
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}

std::string job_cache_key(const Design& design, const std::string& target,
                          const PartitionerOptions& options) {
  std::string key = canonical_design_string(design);
  key += "\ntarget ";
  key += json::escape(target);
  key += "\noptions ";
  key += std::to_string(options.search.max_candidate_sets);
  key += ' ';
  key += std::to_string(options.search.max_first_moves);
  key += ' ';
  key += std::to_string(options.search.max_move_evaluations);
  key += options.search.allow_static_promotion ? " promo" : " nopromo";
  key += ' ';
  key += std::to_string(options.search.keep_alternatives);
  key += ' ';
  key += std::to_string(options.max_partition_modes);
  // Weighted searches change the objective; the server never sets weights,
  // but guard the key against a future caller that does.
  if (options.search.pair_weights) {
    key += " weights";
    for (const auto& row : *options.search.pair_weights)
      for (const std::uint32_t w : row) {
        key += ' ';
        key += std::to_string(w);
      }
  }
  return content_hash(key);
}

}  // namespace prpart::server
