#include "server/protocol.hpp"

#include <algorithm>
#include <vector>

#include "util/status.hpp"

namespace prpart::server {

namespace {

json::Value resources_json(const ResourceVec& r) {
  json::Value v = json::Value::object();
  v.set("clbs", json::Value(static_cast<std::uint64_t>(r.clbs)));
  v.set("brams", json::Value(static_cast<std::uint64_t>(r.brams)));
  v.set("dsps", json::Value(static_cast<std::uint64_t>(r.dsps)));
  return v;
}

/// "Module:Mode" qualified label — mode names alone need not be unique
/// across modules.
std::string qualified_label(const Design& design, std::size_t global_id) {
  const ModeRef ref = design.mode_ref(global_id);
  return design.modules()[ref.module].name + ":" +
         design.mode_label(global_id);
}

/// A base partition as a sorted list of qualified mode labels. Label order
/// (not mode-id order) keeps the encoding identical for designs that differ
/// only in module/mode declaration order.
std::vector<std::string> partition_labels(const Design& design,
                                          const BasePartition& partition) {
  std::vector<std::string> labels;
  for (const std::size_t id : partition.modes.bits())
    labels.push_back(qualified_label(design, id));
  std::sort(labels.begin(), labels.end());
  return labels;
}

json::Value labels_json(const std::vector<std::string>& labels) {
  json::Value arr = json::Value::array();
  for (const std::string& l : labels) arr.push_back(json::Value(l));
  return arr;
}

json::Value scheme_json(const Design& design,
                        const std::vector<BasePartition>& partitions,
                        const PartitionScheme& scheme,
                        const SchemeEvaluation& eval) {
  json::Value v = json::Value::object();
  v.set("fits", json::Value(eval.fits));
  v.set("total_frames", json::Value(eval.total_frames));
  v.set("worst_frames", json::Value(eval.worst_frames));
  v.set("resources", resources_json(eval.total_resources));

  // Regions sorted by their member-label lists (with frames as tie-break),
  // so the rendering has one canonical form per semantic scheme.
  struct RegionRow {
    std::vector<std::vector<std::string>> members;
    std::uint64_t frames = 0;
  };
  std::vector<RegionRow> rows;
  for (std::size_t r = 0; r < scheme.regions.size(); ++r) {
    RegionRow row;
    for (const std::size_t member : scheme.regions[r].members)
      row.members.push_back(partition_labels(design, partitions[member]));
    std::sort(row.members.begin(), row.members.end());
    if (r < eval.regions.size()) row.frames = eval.regions[r].frames;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const RegionRow& a,
                                         const RegionRow& b) {
    if (a.members != b.members) return a.members < b.members;
    return a.frames < b.frames;
  });
  json::Value regions = json::Value::array();
  for (const RegionRow& row : rows) {
    json::Value region = json::Value::object();
    region.set("frames", json::Value(row.frames));
    json::Value members = json::Value::array();
    for (const auto& labels : row.members) members.push_back(labels_json(labels));
    region.set("partitions", members);
    regions.push_back(std::move(region));
  }
  v.set("regions", regions);

  std::vector<std::vector<std::string>> static_rows;
  for (const std::size_t member : scheme.static_members)
    static_rows.push_back(partition_labels(design, partitions[member]));
  std::sort(static_rows.begin(), static_rows.end());
  json::Value statics = json::Value::array();
  for (const auto& labels : static_rows) statics.push_back(labels_json(labels));
  v.set("static", statics);
  return v;
}

json::Value baseline_json(const SchemeSummary& summary) {
  json::Value v = json::Value::object();
  v.set("fits", json::Value(summary.eval.fits));
  v.set("total_frames", json::Value(summary.eval.total_frames));
  v.set("worst_frames", json::Value(summary.eval.worst_frames));
  v.set("resources", resources_json(summary.eval.total_resources));
  return v;
}

std::uint32_t parse_res_component(const json::Value& v) {
  const std::uint64_t raw = v.as_u64();
  if (raw > UINT32_MAX) throw ParseError("budget component out of range");
  return static_cast<std::uint32_t>(raw);
}

/// Rejects request fields outside `known`, mirroring Args::check_known on
/// the CLI.
template <std::size_t N>
void check_known_fields(const json::Value& doc, const char* (&known)[N]) {
  for (const auto& [key, value] : doc.members()) {
    (void)value;
    if (std::find_if(std::begin(known), std::end(known), [&](const char* k) {
          return key == k;
        }) == std::end(known))
      throw ParseError("unknown request field '" + key + "'");
  }
}

/// The design/target/effort/timeout core shared by partition and simulate
/// requests (the known-field check stays with each request type).
void parse_partition_fields(const json::Value& doc, PartitionRequest& p) {
  p.options = default_partitioner_options();
  p.design_xml = doc.at("design_xml").as_string();
  if (p.design_xml.empty()) throw ParseError("design_xml must not be empty");
  if (const json::Value* device = doc.find("device")) {
    p.device = device->as_string();
    if (p.device.empty()) throw ParseError("device must not be empty");
  }
  if (const json::Value* budget = doc.find("budget")) {
    const auto& items = budget->items();
    if (items.size() != 3)
      throw ParseError("budget must be a [clbs, brams, dsps] triple");
    p.budget = ResourceVec{parse_res_component(items[0]),
                           parse_res_component(items[1]),
                           parse_res_component(items[2])};
  }
  if (!p.device.empty() && p.budget)
    throw ParseError("device and budget are mutually exclusive");
  if (const json::Value* v = doc.find("candidate_sets"))
    p.options.search.max_candidate_sets = v->as_u64();
  if (const json::Value* v = doc.find("evals"))
    p.options.search.max_move_evaluations = v->as_u64();
  if (const json::Value* v = doc.find("threads"))
    p.options.search.threads = static_cast<unsigned>(v->as_u64());
  if (const json::Value* v = doc.find("timeout_ms")) p.timeout_ms = v->as_u64();
}

}  // namespace

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::Infeasible: return "infeasible";
    case ErrorCode::Timeout: return "timeout";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

std::string PartitionRequest::target_string() const {
  if (!device.empty()) return "device " + device;
  if (budget)
    return "budget " + std::to_string(budget->clbs) + "," +
           std::to_string(budget->brams) + "," + std::to_string(budget->dsps);
  return "auto";
}

std::string SimulateParams::cache_string() const {
  return "simulate steps=" + std::to_string(steps) +
         " seed=" + std::to_string(seed) +
         " prefetch=" + (prefetch ? "1" : "0") +
         " uniform=" + (uniform ? "1" : "0") +
         " arrival=" + std::to_string(inter_arrival_ns) +
         " floorplan=" + (floorplan ? "1" : "0");
}

std::string FloorplanParams::cache_string() const {
  return "floorplan top_k=" + std::to_string(top_k) +
         " strategy=" + (first_fit ? "first-fit" : "best-fit") +
         " anneal=" + (anneal ? "1" : "0") +
         " anneal_seed=" + std::to_string(anneal_seed);
}

FloorplanRerankOptions FloorplanParams::rerank_options() const {
  FloorplanRerankOptions opt;
  opt.top_k = top_k;
  opt.placement.strategy =
      first_fit ? PlacementStrategy::FirstFit : PlacementStrategy::BestFit;
  opt.placement.use_annealer = anneal;
  opt.placement.annealing.seed = anneal_seed;
  return opt;
}

PartitionerOptions default_partitioner_options() {
  PartitionerOptions opt;
  opt.search.max_candidate_sets = 48;
  opt.search.max_move_evaluations = 2'000'000;
  return opt;
}

Request parse_request(const std::string& line) {
  const json::Value doc = json::parse(line);
  if (!doc.is_object()) throw ParseError("request must be a JSON object");

  Request req;
  if (const json::Value* id = doc.find("id")) req.id = id->as_string();

  const std::string& type = doc.at("type").as_string();
  if (type == "stats") {
    req.type = Request::Type::Stats;
    return req;
  }
  if (type == "ping") {
    req.type = Request::Type::Ping;
    return req;
  }
  if (type == "metrics") {
    req.type = Request::Type::Metrics;
    static const char* known[] = {"type", "id", "format"};
    check_known_fields(doc, known);
    if (const json::Value* format = doc.find("format")) {
      const std::string& f = format->as_string();
      if (f == "text")
        req.metrics_text = true;
      else if (f != "json")
        throw ParseError("format must be 'json' or 'text'");
    }
    return req;
  }
  if (type == "analyze") {
    req.type = Request::Type::Analyze;
    AnalyzeRequest& a = req.analyze;
    a.id = req.id;
    static const char* known[] = {"type", "id", "design_xml", "device",
                                  "budget"};
    for (const auto& [key, value] : doc.members()) {
      (void)value;
      if (std::find_if(std::begin(known), std::end(known), [&](const char* k) {
            return key == k;
          }) == std::end(known))
        throw ParseError("unknown request field '" + key + "'");
    }
    a.design_xml = doc.at("design_xml").as_string();
    if (a.design_xml.empty()) throw ParseError("design_xml must not be empty");
    if (const json::Value* device = doc.find("device")) {
      a.device = device->as_string();
      if (a.device.empty()) throw ParseError("device must not be empty");
    }
    if (const json::Value* budget = doc.find("budget")) {
      const auto& items = budget->items();
      if (items.size() != 3)
        throw ParseError("budget must be a [clbs, brams, dsps] triple");
      a.budget = ResourceVec{parse_res_component(items[0]),
                             parse_res_component(items[1]),
                             parse_res_component(items[2])};
    }
    if (!a.device.empty() && a.budget)
      throw ParseError("device and budget are mutually exclusive");
    return req;
  }
  if (type == "simulate") {
    req.type = Request::Type::Simulate;
    SimulateRequest& s = req.simulate;
    s.partition.id = req.id;
    static const char* known[] = {
        "type",    "id",         "design_xml", "device",
        "budget",  "candidate_sets", "evals",  "threads",
        "timeout_ms", "steps",   "seed",       "prefetch",
        "uniform", "inter_arrival_ns", "floorplan"};
    check_known_fields(doc, known);
    parse_partition_fields(doc, s.partition);
    if (const json::Value* v = doc.find("steps")) {
      s.params.steps = v->as_u64();
      if (s.params.steps == 0) throw ParseError("steps must be positive");
    }
    if (const json::Value* v = doc.find("seed")) s.params.seed = v->as_u64();
    if (const json::Value* v = doc.find("prefetch"))
      s.params.prefetch = v->as_bool();
    if (const json::Value* v = doc.find("uniform"))
      s.params.uniform = v->as_bool();
    if (const json::Value* v = doc.find("inter_arrival_ns"))
      s.params.inter_arrival_ns = v->as_u64();
    if (const json::Value* v = doc.find("floorplan"))
      s.params.floorplan = v->as_bool();
    return req;
  }
  if (type == "floorplan") {
    req.type = Request::Type::Floorplan;
    FloorplanRequest& f = req.floorplan;
    f.partition.id = req.id;
    static const char* known[] = {
        "type",   "id",     "design_xml",     "device",
        "budget", "candidate_sets", "evals",  "threads",
        "timeout_ms", "top_k", "strategy", "anneal", "anneal_seed"};
    check_known_fields(doc, known);
    parse_partition_fields(doc, f.partition);
    if (const json::Value* v = doc.find("top_k")) {
      f.params.top_k = v->as_u64();
      if (f.params.top_k == 0) throw ParseError("top_k must be positive");
    }
    if (const json::Value* v = doc.find("strategy")) {
      const std::string& s = v->as_string();
      if (s == "first-fit")
        f.params.first_fit = true;
      else if (s == "best-fit")
        f.params.first_fit = false;
      else
        throw ParseError("strategy must be 'first-fit' or 'best-fit'");
    }
    if (const json::Value* v = doc.find("anneal"))
      f.params.anneal = v->as_bool();
    if (const json::Value* v = doc.find("anneal_seed"))
      f.params.anneal_seed = v->as_u64();
    return req;
  }
  if (type != "partition") throw ParseError("unknown request type '" + type + "'");

  req.type = Request::Type::Partition;
  PartitionRequest& p = req.partition;
  p.id = req.id;

  // Unknown fields fail loudly, mirroring Args::check_known on the CLI.
  static const char* known[] = {"type",    "id",      "design_xml",
                                "device",  "budget",  "candidate_sets",
                                "evals",   "threads", "timeout_ms"};
  check_known_fields(doc, known);
  parse_partition_fields(doc, p);
  return req;
}

json::Value partition_result_json(const Design& design,
                                  const PartitionerResult& result,
                                  const std::string& device_name,
                                  const ResourceVec& budget) {
  json::Value v = json::Value::object();
  v.set("design", json::Value(design.name()));
  v.set("feasible", json::Value(result.feasible));
  v.set("device",
        device_name.empty() ? json::Value() : json::Value(device_name));
  v.set("budget", resources_json(budget));
  if (result.feasible) {
    json::Value proposed = scheme_json(design, result.base_partitions,
                                       result.proposed.scheme,
                                       result.proposed.eval);
    proposed.set("from_search", json::Value(result.proposed_from_search));
    v.set("proposed", std::move(proposed));
  } else {
    v.set("proposed", json::Value());
    v.set("lower_bound",
          resources_json(design.largest_configuration_area() +
                         design.static_base()));
  }
  json::Value baselines = json::Value::object();
  baselines.set("modular", baseline_json(result.modular));
  baselines.set("single_region", baseline_json(result.single_region));
  baselines.set("static", baseline_json(result.static_impl));
  v.set("baselines", baselines);

  // Deterministic core of the stats only: units_replayed and the cache
  // numbers vary with thread interleaving and would break the byte-identity
  // contract between runs with different --threads.
  json::Value stats = json::Value::object();
  stats.set("move_evaluations", json::Value(result.stats.move_evaluations));
  stats.set("candidate_sets",
            json::Value(static_cast<std::uint64_t>(result.stats.candidate_sets)));
  stats.set("greedy_runs",
            json::Value(static_cast<std::uint64_t>(result.stats.greedy_runs)));
  stats.set("states_recorded", json::Value(result.stats.states_recorded));
  stats.set("units",
            json::Value(static_cast<std::uint64_t>(result.stats.units)));
  stats.set("units_pruned",
            json::Value(static_cast<std::uint64_t>(result.stats.units_pruned)));
  stats.set("bound_gap_sum", json::Value(result.stats.bound_gap_sum));
  stats.set("bound_lb_sum", json::Value(result.stats.bound_lb_sum));
  stats.set("bound_best_sum", json::Value(result.stats.bound_best_sum));
  stats.set("kernel_evaluations",
            json::Value(result.stats.kernel_evaluations));
  stats.set("signature_collapsed_configs",
            json::Value(result.stats.signature_collapsed_configs));
  stats.set("budget_exhausted", json::Value(result.stats.budget_exhausted));
  v.set("stats", stats);
  return v;
}

json::Value floorplan_result_json(const Design& design,
                                  const PartitionerResult& result,
                                  const FloorplanRerank& rerank,
                                  const std::string& device_name,
                                  const ResourceVec& budget) {
  json::Value v = json::Value::object();
  v.set("design", json::Value(design.name()));
  v.set("feasible", json::Value(rerank.any_feasible));
  v.set("device",
        device_name.empty() ? json::Value() : json::Value(device_name));
  v.set("budget", resources_json(budget));
  v.set("candidates",
        json::Value(static_cast<std::uint64_t>(rerank.ranked.size())));
  v.set("vetoed", json::Value(static_cast<std::uint64_t>(rerank.vetoed_count)));
  v.set("overturned", json::Value(rerank.overturned));
  v.set("winner_source",
        rerank.any_feasible
            ? json::Value(static_cast<std::uint64_t>(rerank.winner_source))
            : json::Value());

  // Candidates in placement-true rank order (vetoed candidates trail).
  // Rectangles are listed in scheme-region order; region indices, rows and
  // columns are all deterministic, so the rendering is byte-identical for
  // every thread count the search ran with.
  json::Value ranked = json::Value::array();
  for (const FloorplanCandidate& cand : rerank.ranked) {
    json::Value row = json::Value::object();
    row.set("source_index",
            json::Value(static_cast<std::uint64_t>(cand.source_index)));
    row.set("vetoed", json::Value(cand.vetoed));
    row.set("stage", json::Value(std::string(to_string(cand.plan.stage))));
    row.set("estimated_total", json::Value(cand.estimated_total));
    if (!cand.vetoed) {
      row.set("placement_total", json::Value(cand.placement_total));
      row.set("placement_worst", json::Value(cand.placement_worst));
      row.set("waste_frames", json::Value(cand.plan.stats.waste_frames));
      json::Value rects = json::Value::array();
      for (std::size_t r = 0; r < cand.plan.placements.size(); ++r) {
        const RegionPlacement& p = cand.plan.placements[r];
        json::Value rect = json::Value::object();
        rect.set("region", json::Value(static_cast<std::uint64_t>(r)));
        rect.set("row", json::Value(static_cast<std::uint64_t>(p.row)));
        rect.set("height", json::Value(static_cast<std::uint64_t>(p.height)));
        rect.set("col", json::Value(static_cast<std::uint64_t>(p.col)));
        rect.set("width", json::Value(static_cast<std::uint64_t>(p.width)));
        rect.set("frames", json::Value(cand.plan.placed_frames[r]));
        rects.push_back(std::move(rect));
      }
      row.set("placements", std::move(rects));
    } else {
      json::Value diags = json::Value::array();
      for (const analysis::Diagnostic& d : cand.plan.verdict.diagnostics) {
        json::Value item = json::Value::object();
        item.set("severity",
                 json::Value(std::string(analysis::to_string(d.severity))));
        item.set("code", json::Value(d.code));
        item.set("message", json::Value(d.message));
        if (!d.fixit.empty()) item.set("fixit", json::Value(d.fixit));
        diags.push_back(std::move(item));
      }
      row.set("diagnostics", std::move(diags));
    }
    ranked.push_back(std::move(row));
  }
  v.set("ranked", std::move(ranked));

  if (rerank.any_feasible) {
    // The canonical scheme rendering of the placement-true winner; its
    // region/total/worst frame counts are the placed values.
    const FloorplanCandidate& winner = rerank.ranked.front();
    json::Value scheme = scheme_json(design, result.base_partitions,
                                     winner.scheme, winner.eval);
    scheme.set("from_search", json::Value(result.proposed_from_search));
    v.set("winner", std::move(scheme));
  } else {
    v.set("winner", json::Value());
  }
  return v;
}

SimulateSetup simulate_setup(std::size_t configs, const SimulateParams& params) {
  require(configs >= 2, "simulation needs at least two configurations");
  // The chain is sampled before the trace so the trace consumes the Rng
  // stream after it: one seed pins both.
  Rng rng(params.seed);
  MarkovChain env = MarkovChain::random(rng, configs);
  if (params.uniform)
    return SimulateSetup{std::move(env), sim::uniform_pair_trace(configs),
                         "uniform"};
  sim::TransitionTrace trace = sim::markov_trace(env, rng, params.steps);
  return SimulateSetup{std::move(env), std::move(trace), "markov"};
}

json::Value simulate_result_json(const Design& design,
                                 const std::string& device_name,
                                 const ResourceVec& budget,
                                 const SimulateParams& params,
                                 const std::string& trace_source,
                                 std::uint64_t trace_transitions,
                                 const std::vector<SimulatedScheme>& schemes) {
  json::Value v = json::Value::object();
  v.set("design", json::Value(design.name()));
  v.set("device",
        device_name.empty() ? json::Value() : json::Value(device_name));
  v.set("budget", resources_json(budget));

  json::Value trace = json::Value::object();
  trace.set("source", json::Value(trace_source));
  trace.set("transitions", json::Value(trace_transitions));
  trace.set("seed", json::Value(params.seed));
  v.set("trace", trace);

  json::Value options = json::Value::object();
  options.set("prefetch", json::Value(params.prefetch));
  options.set("inter_arrival_ns", json::Value(params.inter_arrival_ns));
  options.set("floorplan", json::Value(params.floorplan));
  v.set("options", options);

  json::Value rows = json::Value::array();
  for (const SimulatedScheme& s : schemes) {
    const sim::SimulationResult& r = s.result;
    json::Value row = json::Value::object();
    row.set("label", json::Value(s.label));
    row.set("total_frames", json::Value(s.total_frames));
    row.set("worst_frames", json::Value(s.worst_frames));
    row.set("transitions", json::Value(r.transitions));
    row.set("frames_loaded", json::Value(r.frames_loaded));
    row.set("region_loads", json::Value(r.region_loads));
    row.set("prefetched_frames", json::Value(r.prefetched_frames));
    row.set("useful_prefetches", json::Value(r.useful_prefetches));
    row.set("wasted_prefetches", json::Value(r.wasted_prefetches));
    row.set("total_latency_ns", json::Value(r.total_latency_ns));
    row.set("p50_latency_ns", json::Value(r.p50_latency_ns));
    row.set("p95_latency_ns", json::Value(r.p95_latency_ns));
    row.set("p99_latency_ns", json::Value(r.p99_latency_ns));
    row.set("max_latency_ns", json::Value(r.max_latency_ns));
    row.set("makespan_ns", json::Value(r.makespan_ns));
    // Deterministic despite being a double: simulated time over simulated
    // transitions, fixed %.17g rendering.
    row.set("transitions_per_second", json::Value(r.transitions_per_second));
    rows.push_back(std::move(row));
  }
  v.set("schemes", rows);
  return v;
}

std::string ok_response(const std::string& id, const std::string& result_json) {
  return "{\"id\":" + json::escape(id) + ",\"ok\":true,\"result\":" +
         result_json + "}";
}

std::string error_response(const std::string& id, ErrorCode code,
                           const std::string& message) {
  json::Value err = json::Value::object();
  err.set("code", json::Value(std::string(error_code_name(code))));
  err.set("message", json::Value(message));
  return "{\"id\":" + json::escape(id) + ",\"ok\":false,\"error\":" +
         err.dump() + "}";
}

std::string queued_response(const std::string& id, std::size_t position,
                            std::uint64_t eta_ms) {
  json::Value q = json::Value::object();
  q.set("position", json::Value(static_cast<std::uint64_t>(position)));
  q.set("eta_ms", json::Value(eta_ms));
  return "{\"id\":" + json::escape(id) + ",\"queued\":" + q.dump() + "}";
}

json::Value metrics_json(const StatsSnapshot& snapshot,
                         const MetricsExtra& extra) {
  json::Value v = json::Value::object();
  json::Value srv = json::Value::object();
  srv.set("io_mode", json::Value(extra.io_mode));
  srv.set("connections", json::Value(extra.connections));
  srv.set("connections_total", json::Value(extra.connections_total));
  srv.set("admission_depth", json::Value(extra.admission_depth));
  v.set("server", srv);
  v.set("jobs", snapshot.to_json());
  json::Value store = json::Value::object();
  store.set("ram_entries", json::Value(extra.ram_entries));
  store.set("ram_evictions", json::Value(extra.ram_evictions));
  store.set("disk_enabled", json::Value(extra.disk_enabled));
  store.set("disk_entries", json::Value(extra.disk_entries));
  store.set("disk_bytes", json::Value(extra.disk_bytes));
  store.set("disk_hits", json::Value(extra.disk_hits));
  store.set("disk_writes", json::Value(extra.disk_writes));
  store.set("disk_evictions", json::Value(extra.disk_evictions));
  v.set("store", store);
  return v;
}

namespace {

/// Flattens the numeric/boolean leaves of the metrics document into
/// exposition lines. Strings (io_mode, simd_tier) become `# key value`
/// comments so the text form still carries them.
void append_metric_lines(const json::Value& node, const std::string& prefix,
                         std::string& out) {
  for (const auto& [key, value] : node.members()) {
    const std::string path = prefix.empty() ? key : prefix + "_" + key;
    if (value.is_object()) {
      append_metric_lines(value, path, out);
    } else if (value.is_bool()) {
      out += "prpart_" + path + " " + (value.as_bool() ? "1" : "0") + "\n";
    } else if (value.is_number()) {
      out += "prpart_" + path + " " + value.dump() + "\n";
    } else if (value.is_string()) {
      out += "# prpart_" + path + " " + value.as_string() + "\n";
    }
  }
}

}  // namespace

std::string metrics_text(const StatsSnapshot& snapshot,
                         const MetricsExtra& extra) {
  std::string out;
  append_metric_lines(metrics_json(snapshot, extra), "", out);
  return out;
}

}  // namespace prpart::server
