#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "core/search.hpp"
#include "util/json.hpp"
#include "util/thread_annotations.hpp"

namespace prpart::server {

/// Exact-count latency histogram with logarithmic buckets: every sample is
/// counted (no reservoir), and a percentile is an O(buckets) cumulative
/// scan — no sort, no allocation — so a metrics scrape stays cheap no
/// matter how many jobs the server has seen. Values are bucketed to a
/// power-of-two range split into 8 linear sub-buckets, bounding the
/// reported quantile's relative error at 1/8th of its magnitude.
///
/// Not synchronised: ServerStats guards it with its own mutex.
class LatencyHistogram {
 public:
  void record(std::uint64_t value_us) { ++counts_[index_of(value_us)]; }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t c : counts_) sum += c;
    return sum;
  }

  /// Value at quantile p in [0, 1]: the representative (midpoint) of the
  /// bucket holding the sample of rank ceil(p * total). 0 when empty.
  std::uint64_t percentile(double p) const;

 private:
  static constexpr unsigned kSubBits = 3;          ///< 8 sub-buckets/octave
  static constexpr unsigned kSub = 1u << kSubBits;
  /// Buckets 0..7 hold exact values 0..7; bucket (b*8 + s) for b >= 1
  /// covers [ (8+s) << (b-1), (8+s+1) << (b-1) ).
  static constexpr std::size_t kBuckets =
      kSub * (64 - kSubBits + 1);  // 496: covers the full uint64 range

  static std::size_t index_of(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;
    const std::uint64_t sub = (v >> shift) & (kSub - 1);
    return static_cast<std::size_t>((msb - kSubBits + 1) * kSub + sub);
  }

  static std::uint64_t lower_bound_of(std::size_t index) {
    if (index < kSub) return index;
    const std::uint64_t block = index / kSub;     // >= 1
    const std::uint64_t sub = index % kSub;
    return (kSub + sub) << (block - 1);
  }

  static std::uint64_t width_of(std::size_t index) {
    return index < kSub ? 1 : std::uint64_t{1} << (index / kSub - 1);
  }

  std::array<std::uint64_t, kBuckets> counts_{};
};

/// One consistent view of the serving counters, taken under the stats lock.
struct StatsSnapshot {
  std::uint64_t accepted = 0;        ///< jobs admitted to the queue
  std::uint64_t rejected = 0;        ///< jobs refused by admission control
  std::uint64_t completed = 0;       ///< jobs finished with an ok response
  std::uint64_t infeasible = 0;      ///< jobs answered `infeasible`
  std::uint64_t timed_out = 0;       ///< jobs cancelled by their deadline
  std::uint64_t failed = 0;          ///< bad_request / internal failures
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t queued_notices = 0;  ///< interim `queued` responses sent
  std::size_t queue_depth = 0;       ///< jobs waiting at snapshot time
  std::size_t in_flight = 0;         ///< jobs executing at snapshot time
  std::uint64_t latency_count = 0;   ///< completed-job latency samples
  std::uint64_t p50_latency_us = 0;  ///< submit -> response, cache hits incl.
  std::uint64_t p99_latency_us = 0;
  // Cumulative search-effort counters over every executed (non-cached)
  // partitioning job: how much work the allocation search did and how much
  // the branch-and-bound pruning saved.
  std::uint64_t search_units = 0;
  std::uint64_t search_units_pruned = 0;
  std::uint64_t search_move_evaluations = 0;
  std::uint64_t search_full_evaluations = 0;
  std::uint64_t search_moves_rescored = 0;
  std::uint64_t search_kernel_evaluations = 0;
  std::uint64_t search_signature_collapsed_configs = 0;
  // Cumulative simulate-job counters: replays served, transitions replayed
  // and critical-path frames loaded across them.
  std::uint64_t simulations = 0;
  std::uint64_t simulated_transitions = 0;
  std::uint64_t simulated_frames = 0;
  // Cumulative floorplan-stage counters: veto/re-rank passes run (floorplan
  // jobs plus simulate jobs with floorplan=true), schemes floorplanned,
  // schemes vetoed, and passes where the placement-true winner differed
  // from the Eq. 10 winner.
  std::uint64_t floorplans = 0;
  std::uint64_t floorplan_candidates = 0;
  std::uint64_t floorplan_vetoes = 0;
  std::uint64_t floorplan_overturns = 0;

  json::Value to_json() const;
  /// One-line rendering for the periodic server log.
  std::string log_line() const;
};

/// Internally synchronised serving counters plus an exact latency histogram
/// feeding the p50/p99 estimates. Everything here is observability only: no
/// decision in the serving path reads it back.
class ServerStats {
 public:
  void job_accepted();
  void job_rejected();
  void job_completed(std::uint64_t latency_us);
  void job_infeasible(std::uint64_t latency_us);
  void job_timed_out();
  void job_failed();
  void cache_hit(std::uint64_t latency_us);
  void cache_miss();
  /// One interim `queued` backpressure notice was sent to a client.
  void job_queued_notice();
  /// Folds one executed job's search stats into the cumulative counters.
  void search_finished(const SearchStats& stats);
  /// Folds one simulate job's replay into the cumulative counters.
  void simulation_finished(std::uint64_t transitions, std::uint64_t frames);
  /// Folds one veto/re-rank pass into the cumulative counters.
  void floorplan_finished(std::size_t candidates, std::size_t vetoed,
                          bool overturned);

  /// Queue depth and in-flight count are owned by the scheduler; it reports
  /// them at snapshot time.
  StatsSnapshot snapshot(std::size_t queue_depth, std::size_t in_flight) const;

 private:
  void record_latency(std::uint64_t latency_us) PRPART_REQUIRES(mutex_);

  /// Low in the lock hierarchy (lock_order.hpp): counters are folded in
  /// with no scheduler lock held, so stats can never extend — or deadlock
  /// against — the admission/dequeue critical sections.
  mutable Mutex mutex_{lock_order::Level::kServerStats, "server.stats"};
  std::uint64_t accepted_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t infeasible_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t timed_out_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t failed_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t cache_hits_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t cache_misses_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t queued_notices_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t latency_count_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_units_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_units_pruned_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_move_evaluations_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_full_evaluations_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_moves_rescored_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_kernel_evaluations_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_signature_collapsed_configs_ PRPART_GUARDED_BY(mutex_) =
      0;
  std::uint64_t simulations_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t simulated_transitions_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t simulated_frames_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t floorplans_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t floorplan_candidates_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t floorplan_vetoes_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t floorplan_overturns_ PRPART_GUARDED_BY(mutex_) = 0;
  LatencyHistogram latencies_ PRPART_GUARDED_BY(mutex_);
};

}  // namespace prpart::server
