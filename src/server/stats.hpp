#pragma once

#include <cstdint>
#include <vector>

#include "core/search.hpp"
#include "util/json.hpp"
#include "util/thread_annotations.hpp"

namespace prpart::server {

/// One consistent view of the serving counters, taken under the stats lock.
struct StatsSnapshot {
  std::uint64_t accepted = 0;        ///< jobs admitted to the queue
  std::uint64_t rejected = 0;        ///< jobs refused by admission control
  std::uint64_t completed = 0;       ///< jobs finished with an ok response
  std::uint64_t infeasible = 0;      ///< jobs answered `infeasible`
  std::uint64_t timed_out = 0;       ///< jobs cancelled by their deadline
  std::uint64_t failed = 0;          ///< bad_request / internal failures
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t queue_depth = 0;       ///< jobs waiting at snapshot time
  std::size_t in_flight = 0;         ///< jobs executing at snapshot time
  std::uint64_t latency_count = 0;   ///< completed-job latency samples
  std::uint64_t p50_latency_us = 0;  ///< submit -> response, cache hits incl.
  std::uint64_t p99_latency_us = 0;
  // Cumulative search-effort counters over every executed (non-cached)
  // partitioning job: how much work the allocation search did and how much
  // the branch-and-bound pruning saved.
  std::uint64_t search_units = 0;
  std::uint64_t search_units_pruned = 0;
  std::uint64_t search_move_evaluations = 0;
  std::uint64_t search_full_evaluations = 0;
  std::uint64_t search_moves_rescored = 0;
  std::uint64_t search_kernel_evaluations = 0;
  std::uint64_t search_signature_collapsed_configs = 0;
  // Cumulative simulate-job counters: replays served, transitions replayed
  // and critical-path frames loaded across them.
  std::uint64_t simulations = 0;
  std::uint64_t simulated_transitions = 0;
  std::uint64_t simulated_frames = 0;
  // Cumulative floorplan-stage counters: veto/re-rank passes run (floorplan
  // jobs plus simulate jobs with floorplan=true), schemes floorplanned,
  // schemes vetoed, and passes where the placement-true winner differed
  // from the Eq. 10 winner.
  std::uint64_t floorplans = 0;
  std::uint64_t floorplan_candidates = 0;
  std::uint64_t floorplan_vetoes = 0;
  std::uint64_t floorplan_overturns = 0;

  json::Value to_json() const;
  /// One-line rendering for the periodic server log.
  std::string log_line() const;
};

/// Internally synchronised serving counters plus a bounded reservoir of the
/// most recent job latencies for the p50/p99 estimates. Everything here is
/// observability only: no decision in the serving path reads it back.
class ServerStats {
 public:
  void job_accepted();
  void job_rejected();
  void job_completed(std::uint64_t latency_us);
  void job_infeasible(std::uint64_t latency_us);
  void job_timed_out();
  void job_failed();
  void cache_hit(std::uint64_t latency_us);
  void cache_miss();
  /// Folds one executed job's search stats into the cumulative counters.
  void search_finished(const SearchStats& stats);
  /// Folds one simulate job's replay into the cumulative counters.
  void simulation_finished(std::uint64_t transitions, std::uint64_t frames);
  /// Folds one veto/re-rank pass into the cumulative counters.
  void floorplan_finished(std::size_t candidates, std::size_t vetoed,
                          bool overturned);

  /// Queue depth and in-flight count are owned by the scheduler; it reports
  /// them at snapshot time.
  StatsSnapshot snapshot(std::size_t queue_depth, std::size_t in_flight) const;

 private:
  void record_latency(std::uint64_t latency_us) PRPART_REQUIRES(mutex_);

  /// Last kReservoir latencies; percentile estimates sort a copy.
  static constexpr std::size_t kReservoir = 4096;

  /// Low in the lock hierarchy (lock_order.hpp): counters are folded in
  /// with no scheduler lock held, so stats can never extend — or deadlock
  /// against — the admission/dequeue critical sections.
  mutable Mutex mutex_{lock_order::Level::kServerStats, "server.stats"};
  std::uint64_t accepted_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t infeasible_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t timed_out_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t failed_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t cache_hits_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t cache_misses_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t latency_count_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_units_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_units_pruned_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_move_evaluations_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_full_evaluations_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_moves_rescored_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_kernel_evaluations_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t search_signature_collapsed_configs_ PRPART_GUARDED_BY(mutex_) =
      0;
  std::uint64_t simulations_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t simulated_transitions_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t simulated_frames_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t floorplans_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t floorplan_candidates_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t floorplan_vetoes_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t floorplan_overturns_ PRPART_GUARDED_BY(mutex_) = 0;
  /// ring buffer of size <= kReservoir
  std::vector<std::uint64_t> latencies_ PRPART_GUARDED_BY(mutex_);
  std::size_t latency_next_ PRPART_GUARDED_BY(mutex_) = 0;
};

}  // namespace prpart::server
