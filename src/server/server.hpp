#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <ostream>
#include <string>
#include <thread>

#include "device/device.hpp"
#include "server/cache.hpp"
#include "server/protocol.hpp"
#include "server/stats.hpp"
#include "util/cancel.hpp"
#include "util/socket.hpp"
#include "util/thread_annotations.hpp"

namespace prpart {
struct EvalScratch;  // core/eval_kernel.hpp
class WorkerPool;    // util/parallel_for.hpp
}  // namespace prpart

namespace prpart::server {

struct ServerOptions {
  /// Bind address is always loopback (the protocol is trusted-client);
  /// port 0 picks an ephemeral port, read back with Server::port().
  std::uint16_t port = 0;
  /// Scheduler worker threads: how many partition jobs execute at once.
  unsigned workers = 2;
  /// Admission control: jobs waiting beyond this depth are rejected with
  /// `overloaded` instead of queueing unboundedly.
  std::size_t max_queue = 16;
  /// Deadline for jobs that do not carry their own timeout_ms; 0 = none.
  std::uint64_t default_timeout_ms = 0;
  /// Result-cache capacity in entries; 0 disables caching.
  std::size_t cache_entries = 256;
  /// Worker threads *inside* one job's region-allocation search (the
  /// existing parallel_for pool), used when the request does not pin its
  /// own `threads`. Kept at 1 by default so K scheduler workers do not
  /// multiply into K x hardware_concurrency search threads.
  unsigned job_threads = 1;
  /// Nullable log sink plus the period of the stats log line (0 = off).
  std::ostream* log = nullptr;
  std::uint64_t log_interval_ms = 0;
};

/// The `prpart serve` engine: a TCP front end multiplexing the
/// deterministic partitioning engine across concurrent clients.
///
///   * one accept thread, one handler thread per connection, `workers`
///     scheduler threads draining a bounded job queue;
///   * admission control rejects with `overloaded` when the queue is full
///     or the server is draining;
///   * per-job cooperative timeouts via CancelToken threaded through
///     SearchOptions (deadline runs from admission, so queue wait counts);
///   * a content-addressed result cache serving byte-identical responses
///     for repeated submissions;
///   * stop() drains gracefully: stops accepting, finishes queued and
///     in-flight jobs, flushes responses, then joins every thread.
///
/// start()/stop() are not thread-safe against each other; everything the
/// spawned threads touch is internally synchronised. The destructor stops
/// the server if still running, so tests can boot it in-process and rely on
/// scope exit.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and spawns the accept, worker and logger threads.
  /// Throws SocketError when the port cannot be bound.
  void start();

  /// Bound port (valid after start()).
  std::uint16_t port() const { return listener_.port(); }

  /// Graceful drain; idempotent. Safe to call from a signal-driven main
  /// loop or test teardown.
  void stop();

  /// Live counters (also served over the wire as a `stats` request).
  StatsSnapshot stats_snapshot() const;

 private:
  struct Job {
    Job(PartitionRequest req, Design parsed, std::string key,
        std::int64_t submitted)
        : request(std::move(req)),
          design(std::move(parsed)),
          cache_key(std::move(key)),
          submit_ns(submitted) {}

    PartitionRequest request;
    /// Set for `simulate` jobs: after the partition, replay this workload
    /// against the proposed scheme and answer with the simulate payload.
    std::optional<SimulateParams> simulate;
    /// Set for `floorplan` jobs: after the partition, floorplan the top-K
    /// enumerated schemes and answer with the re-ranked payload.
    std::optional<FloorplanParams> floorplan;
    Design design;
    std::string cache_key;
    std::int64_t submit_ns;
    CancelToken cancel;
    std::promise<std::string> response;  ///< the full response line
  };

  struct Connection {
    TcpStream stream;
    std::thread thread;
    std::atomic<bool> done{false};  ///< lets the accept loop reap the thread
  };

  void accept_loop();
  /// One job worker. Owns the worker's persistent execution state — a
  /// WorkerPool of job_threads threads and a warm EvalScratch — and reuses
  /// both across every job it runs, so a server in steady state spawns no
  /// threads and performs no kernel allocations per request (§4e). Pools
  /// are per-worker (never shared): WorkerPool::run serves one runner at a
  /// time.
  void worker_loop();
  void logger_loop();
  void handle_connection(Connection* conn);
  /// Parses and dispatches one request line; never throws.
  std::string handle_request(const std::string& line);
  std::string handle_partition(PartitionRequest request);
  std::string handle_simulate(SimulateRequest request);
  std::string handle_floorplan(FloorplanRequest request);
  std::string handle_analyze(const AnalyzeRequest& request);
  /// Shared admission path of partition, simulate and floorplan jobs:
  /// pre-checks, cache lookup, queue admission, response wait.
  std::string admit_job(PartitionRequest request,
                        std::optional<SimulateParams> simulate,
                        std::optional<FloorplanParams> floorplan);
  /// Runs one job on this worker's persistent pool + scratch.
  void execute_job(Job& job, WorkerPool& pool, EvalScratch& scratch);
  std::string stats_response(const std::string& id) const;
  void log_line(const std::string& line);

  const ServerOptions options_;
  const DeviceLibrary library_;
  ResultCache cache_;
  ServerStats stats_;

  TcpListener listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::thread logger_thread_;

  // Job queue (admission control + scheduler handoff). Near-leaf in the
  // lock hierarchy (lock_order.hpp): the queue critical sections are pure
  // queue manipulation — stats, cache and log sit outside them.
  mutable Mutex queue_mutex_{lock_order::Level::kServerQueue, "server.queue"};
  CondVar queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_ PRPART_GUARDED_BY(queue_mutex_);
  std::size_t in_flight_ PRPART_GUARDED_BY(queue_mutex_) = 0;
  bool draining_ PRPART_GUARDED_BY(queue_mutex_) = false;

  // Connection registry, so stop() can unblock handler threads.
  Mutex conns_mutex_{lock_order::Level::kServerConns, "server.conns"};
  std::list<std::unique_ptr<Connection>> conns_ PRPART_GUARDED_BY(conns_mutex_);

  // Lifecycle. Outermost level: held across the logger's periodic sleep.
  Mutex lifecycle_mutex_{lock_order::Level::kServerLifecycle,
                         "server.lifecycle"};
  CondVar logger_cv_;
  bool started_ PRPART_GUARDED_BY(lifecycle_mutex_) = false;
  std::atomic<bool> stopping_{false};  ///< read lock-free by the accept loop
  bool stopped_ PRPART_GUARDED_BY(lifecycle_mutex_) = false;

  // Leaf: a log line may be emitted while holding anything.
  Mutex log_mutex_{lock_order::Level::kServerLog, "server.log"};
};

}  // namespace prpart::server
