#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <ostream>
#include <string>
#include <thread>

#include "device/device.hpp"
#include "server/cache.hpp"
#include "server/protocol.hpp"
#include "server/reactor.hpp"
#include "server/stats.hpp"
#include "server/store.hpp"
#include "util/cancel.hpp"
#include "util/socket.hpp"
#include "util/thread_annotations.hpp"

namespace prpart {
struct EvalScratch;  // core/eval_kernel.hpp
class WorkerPool;    // util/parallel_for.hpp
}  // namespace prpart

namespace prpart::server {

struct ServerOptions {
  /// Bind address is always loopback (the protocol is trusted-client);
  /// port 0 picks an ephemeral port, read back with Server::port().
  std::uint16_t port = 0;
  /// Scheduler worker threads: how many partition jobs execute at once.
  unsigned workers = 2;
  /// Admission control: beyond this depth the queue is in the *soft* band —
  /// jobs are still admitted but the client gets an interim `queued` notice
  /// with its position and ETA. The hard reject sits at `high_watermark`.
  std::size_t max_queue = 16;
  /// Queue depth at which admission hard-rejects with `overloaded`;
  /// 0 derives 8 * max_queue. Set equal to max_queue to restore the
  /// pre-soft-band behaviour (reject as soon as max_queue is reached).
  std::size_t high_watermark = 0;
  /// Deadline for jobs that do not carry their own timeout_ms; 0 = none.
  std::uint64_t default_timeout_ms = 0;
  /// RAM result-cache capacity in entries; 0 disables caching.
  std::size_t cache_entries = 256;
  /// Directory of the persistent result store; empty disables it. RAM
  /// evictions spill here, lookups fall back here, and a graceful stop
  /// flushes here so a restarted server warm-starts its working set.
  std::string store_dir;
  /// On-disk store capacity in entries (files); 0 disables the disk layer.
  std::size_t store_entries = 4096;
  /// Worker threads *inside* one job's region-allocation search (the
  /// existing parallel_for pool), used when the request does not pin its
  /// own `threads`. Kept at 1 by default so K scheduler workers do not
  /// multiply into K x hardware_concurrency search threads.
  unsigned job_threads = 1;
  /// Serve I/O mode. The default is the epoll reactor: one event-loop
  /// thread owns every connection and `io_workers` admission threads parse
  /// and dispatch framed request lines. `legacy_io` restores the
  /// thread-per-connection front end (the pre-reactor baseline, also what
  /// bench_serve compares against).
  bool legacy_io = false;
  unsigned io_workers = 2;
  /// Per-connection cap on pipelined requests awaiting a final response;
  /// at the cap the reactor stops reading the connection (TCP
  /// backpressure) until a response retires a slot.
  std::size_t max_inflight_per_conn = 64;
  /// Nullable log sink plus the period of the stats log line (0 = off).
  std::ostream* log = nullptr;
  std::uint64_t log_interval_ms = 0;
};

/// The `prpart serve` engine: a TCP front end multiplexing the
/// deterministic partitioning engine across concurrent clients.
///
///   * a non-blocking epoll reactor owning every connection (or, with
///     legacy_io, one handler thread per connection), `workers` scheduler
///     threads draining a bounded job queue;
///   * pipelining: clients may stream many newline-delimited requests per
///     connection; responses come back as each job finishes (possibly out
///     of order) and are matched by `id`;
///   * graded admission control: a full queue first degrades to `queued`
///     notices (position + ETA), and only past `high_watermark` — or while
///     draining — rejects with `overloaded`;
///   * per-job cooperative timeouts via CancelToken threaded through
///     SearchOptions (deadline runs from admission, so queue wait counts);
///   * a two-level content-addressed result store (RAM LRU spilling to an
///     on-disk segment directory) serving byte-identical responses for
///     repeated submissions, across restarts when store_dir is set;
///   * stop() drains gracefully: stops accepting and reading, finishes
///     queued and in-flight jobs, flushes responses and the disk store,
///     then joins every thread.
///
/// start()/stop() are not thread-safe against each other; everything the
/// spawned threads touch is internally synchronised. The destructor stops
/// the server if still running, so tests can boot it in-process and rely on
/// scope exit.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and spawns the reactor (or accept), admission,
  /// worker and logger threads. Throws SocketError when the port cannot be
  /// bound.
  void start();

  /// Bound port (valid after start()).
  std::uint16_t port() const { return bound_port_; }

  /// Graceful drain; idempotent. Safe to call from a signal-driven main
  /// loop or test teardown.
  void stop();

  /// Live counters (also served over the wire as a `stats` request).
  StatsSnapshot stats_snapshot() const;

 private:
  /// Receives exactly one final response line. Invoked synchronously for
  /// requests answered inline (errors, cache hits, rejections) and from a
  /// scheduler worker for everything that went through the queue.
  using Deliver = std::function<void(std::string&&)>;

  struct Job {
    Job(PartitionRequest req, Design parsed, std::string key,
        std::int64_t submitted)
        : request(std::move(req)),
          design(std::move(parsed)),
          cache_key(std::move(key)),
          submit_ns(submitted) {}

    PartitionRequest request;
    /// Set for `simulate` jobs: after the partition, replay this workload
    /// against the proposed scheme and answer with the simulate payload.
    std::optional<SimulateParams> simulate;
    /// Set for `floorplan` jobs: after the partition, floorplan the top-K
    /// enumerated schemes and answer with the re-ranked payload.
    std::optional<FloorplanParams> floorplan;
    Design design;
    std::string cache_key;
    /// Request-line cache key (id blanked); empty when the line was not
    /// eligible. A successful job stores its payload under it so repeat
    /// submissions of the same line skip parsing entirely.
    std::string line_key;
    std::int64_t submit_ns;
    CancelToken cancel;
    Deliver deliver;  ///< called exactly once with the full response line
  };

  struct Connection {
    TcpStream stream;
    std::thread thread;
    std::atomic<bool> done{false};  ///< lets the accept loop reap the thread
  };

  void accept_loop();
  /// One admission thread (reactor mode): pops framed lines, probes the
  /// request-line cache, parses and dispatches. Keeps the reactor thread
  /// free for pure I/O.
  void io_worker_loop();
  /// One framed line from connection `token`: the fast path (request-line
  /// cache) or the full parse/dispatch path, responses posted back through
  /// the reactor.
  void handle_line(std::uint64_t token, std::string line);
  /// One job worker. Owns the worker's persistent execution state — a
  /// WorkerPool of job_threads threads and a warm EvalScratch — and reuses
  /// both across every job it runs, so a server in steady state spawns no
  /// threads and performs no kernel allocations per request (§4e). Pools
  /// are per-worker (never shared): WorkerPool::run serves one runner at a
  /// time.
  void worker_loop();
  void logger_loop();
  void handle_connection(Connection* conn);
  /// Parses and dispatches one request line; never throws. `deliver` gets
  /// the final response (synchronously or later from a worker); `notice`
  /// gets at most one interim `queued` line before the final.
  void handle_request(const std::string& line, std::string line_key,
                      Deliver deliver, Deliver notice);
  std::string handle_analyze(const AnalyzeRequest& request);
  /// Shared admission path of partition, simulate and floorplan jobs:
  /// pre-checks, result-store lookup, queue admission. Calls `deliver`
  /// exactly once (inline for pre-check errors, store hits and rejections;
  /// from a worker otherwise) and `notice` at most once, after the queue
  /// lock is released, when the job landed in the soft band.
  void admit_job(PartitionRequest request,
                 std::optional<SimulateParams> simulate,
                 std::optional<FloorplanParams> floorplan,
                 std::string line_key, Deliver deliver, Deliver notice);
  /// Runs one job on this worker's persistent pool + scratch.
  void execute_job(Job& job, WorkerPool& pool, EvalScratch& scratch);
  std::string stats_response(const std::string& id) const;
  std::string metrics_response(const Request& request) const;
  std::size_t high_watermark() const {
    return options_.high_watermark != 0 ? options_.high_watermark
                                        : 8 * options_.max_queue;
  }
  void log_line(const std::string& line);

  const ServerOptions options_;
  const DeviceLibrary library_;
  /// Two-level result store: canonical design/job hash -> payload.
  ResultStore store_;
  /// Request-line fast path (reactor mode only): the raw request line with
  /// the id blanked -> payload. Warm pipelined submissions skip JSON
  /// parsing, design parsing and hashing. Same lock level as the semantic
  /// cache (kResultCache) — the two are only ever probed sequentially.
  ResultCache line_cache_;
  ServerStats stats_;

  TcpListener listener_;  ///< legacy mode only; the reactor owns its own
  std::uint16_t bound_port_ = 0;
  std::unique_ptr<Reactor> reactor_;
  std::thread accept_thread_;
  std::vector<std::thread> io_workers_;
  std::vector<std::thread> workers_;
  std::thread logger_thread_;

  // Admission handoff (reactor mode): framed lines queued by the reactor
  // thread, drained by the io workers. Sits between the connection
  // registries and the stats lock in the hierarchy (lock_order.hpp).
  mutable Mutex admission_mutex_{lock_order::Level::kServerAdmission,
                                 "server.admission"};
  CondVar admission_cv_;
  std::deque<std::pair<std::uint64_t, std::string>> admission_
      PRPART_GUARDED_BY(admission_mutex_);
  bool admission_closed_ PRPART_GUARDED_BY(admission_mutex_) = false;

  // Job queue (admission control + scheduler handoff). Near-leaf in the
  // lock hierarchy (lock_order.hpp): the queue critical sections are pure
  // queue manipulation — stats, cache and log sit outside them.
  mutable Mutex queue_mutex_{lock_order::Level::kServerQueue, "server.queue"};
  CondVar queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_ PRPART_GUARDED_BY(queue_mutex_);
  std::size_t in_flight_ PRPART_GUARDED_BY(queue_mutex_) = 0;
  bool draining_ PRPART_GUARDED_BY(queue_mutex_) = false;

  /// EWMA of job execution time, feeding the `queued` notice ETA. Relaxed
  /// atomic: the estimate is advisory.
  std::atomic<std::uint64_t> exec_ewma_us_{0};

  // Connection registry (legacy mode), so stop() can unblock handler
  // threads.
  mutable Mutex conns_mutex_{lock_order::Level::kServerConns, "server.conns"};
  std::list<std::unique_ptr<Connection>> conns_ PRPART_GUARDED_BY(conns_mutex_);
  std::atomic<std::uint64_t> legacy_conns_total_{0};

  // Lifecycle. Outermost level: held across the logger's periodic sleep.
  Mutex lifecycle_mutex_{lock_order::Level::kServerLifecycle,
                         "server.lifecycle"};
  CondVar logger_cv_;
  bool started_ PRPART_GUARDED_BY(lifecycle_mutex_) = false;
  std::atomic<bool> stopping_{false};  ///< read lock-free by the accept loop
  bool stopped_ PRPART_GUARDED_BY(lifecycle_mutex_) = false;

  // Leaf: a log line may be emitted while holding anything.
  Mutex log_mutex_{lock_order::Level::kServerLog, "server.log"};
};

}  // namespace prpart::server
