#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "server/cache.hpp"
#include "util/thread_annotations.hpp"

namespace prpart::server {

/// On-disk segment directory backing the persistent result store: one file
/// per cache key (`<key>.res`, payload bytes verbatim, written to a temp
/// name and renamed so readers never observe a torn entry). The in-memory
/// index is a bounded LRU over the directory; opening an existing directory
/// warm-starts the index from the files already on disk (oldest first, so
/// recency survives restarts at mtime granularity).
///
/// Internally synchronised. Sits directly below the RAM cache in the lock
/// hierarchy (lock_order.hpp, kDiskStoreIndex): the cache's eviction sink
/// calls save() while holding the cache mutex.
class DiskStore {
 public:
  /// An empty `dir` or zero `max_entries` disables the store entirely.
  DiskStore(std::string dir, std::size_t max_entries);

  bool enabled() const { return !dir_.empty() && max_entries_ > 0; }

  /// Reads the payload for `key` and refreshes its recency; nullopt when
  /// absent (or the file vanished underneath the index).
  std::optional<std::string> load(const std::string& key);

  /// Writes/refreshes `key`, evicting (unlinking) the least recently used
  /// entries beyond capacity. Write errors are swallowed after noting the
  /// failure: the disk layer is an opportunistic accelerator and must never
  /// take down the serving path.
  void save(const std::string& key, const std::string& payload);

  struct Stats {
    std::uint64_t hits = 0;        ///< loads served from disk
    std::uint64_t misses = 0;      ///< loads that found nothing
    std::uint64_t writes = 0;      ///< files written (spills + refreshes)
    std::uint64_t evictions = 0;   ///< files unlinked by the LRU cap
    std::uint64_t write_errors = 0;
    std::size_t entries = 0;       ///< files currently indexed
    std::uint64_t bytes = 0;       ///< payload bytes currently indexed
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::uint64_t bytes = 0;
  };

  std::string path_of(const std::string& key) const;
  void evict_beyond_cap() PRPART_REQUIRES(mutex_);

  const std::string dir_;
  const std::size_t max_entries_;
  mutable Mutex mutex_{lock_order::Level::kDiskStoreIndex,
                       "server.disk_store"};
  std::list<Entry> lru_ PRPART_GUARDED_BY(mutex_);  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      PRPART_GUARDED_BY(mutex_);
  std::uint64_t hits_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t writes_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t write_errors_ PRPART_GUARDED_BY(mutex_) = 0;
  std::uint64_t bytes_ PRPART_GUARDED_BY(mutex_) = 0;
};

/// The two-level persistent result store: the RAM LRU (ResultCache) in
/// front, the disk segment directory behind it. Evictions spill to disk,
/// disk hits are promoted back to RAM, and flush() (called by the server's
/// graceful drain) spills everything still resident so a restarted server
/// warm-starts with the full working set. Payload bytes pass through both
/// layers verbatim, preserving the cache-hit byte-identity contract.
class ResultStore {
 public:
  ResultStore(std::size_t ram_entries, std::string disk_dir,
              std::size_t disk_entries);

  /// RAM first, then disk (with promotion). The caller counts one logical
  /// cache hit either way — which layer served it only shows in metrics.
  std::optional<std::string> lookup(const std::string& key);

  void store(const std::string& key, const std::string& payload);

  /// Spills every RAM-resident entry to disk. Idempotent; no-op when the
  /// disk layer is disabled.
  void flush();

  bool disk_enabled() const { return disk_.enabled(); }

  ResultCache::Stats ram_stats() const { return ram_.stats(); }
  DiskStore::Stats disk_stats() const { return disk_.stats(); }

 private:
  ResultCache ram_;
  DiskStore disk_;
};

}  // namespace prpart::server
