#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/socket.hpp"
#include "util/thread_annotations.hpp"

namespace prpart::server {

/// The serve path's non-blocking event loop: one thread owns the listening
/// socket, a wake pipe and every client connection, registered
/// edge-triggered with epoll. Connections carry incremental read/write
/// buffers with newline framing; complete request lines are handed to the
/// `on_line` callback (on the reactor thread — it must only enqueue), and
/// responses come back cross-thread through post_final/post_notice.
///
/// Backpressure is structural: a connection with `max_inflight` outstanding
/// requests stops being read (and framed) until a final response retires
/// one, so a pipelining client is throttled by TCP itself instead of a
/// server-side buffer growing without bound.
///
/// Lifecycle (driven by Server::stop): shutdown_input() closes the
/// listener and stops reading, finish() flushes every outbox and joins.
class Reactor {
 public:
  struct Options {
    std::size_t max_inflight = 64;  ///< per-connection outstanding cap
    std::size_t max_line = 64u << 20;
  };

  /// `on_line(token, line)` receives each framed request; the token routes
  /// the eventual post_final/post_notice back to the connection.
  using LineHandler = std::function<void(std::uint64_t, std::string)>;

  Reactor(TcpListener listener, Options options, LineHandler on_line);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  void start();

  /// Stops accepting and reading: the listener closes, every connection's
  /// undelivered buffered bytes are dropped, already-framed lines keep
  /// flowing to their responses. Idempotent; safe from any thread.
  void shutdown_input();

  /// Flushes every pending response, closes all connections and joins the
  /// reactor thread. Call after the last post_final has been issued.
  void finish();

  /// Queues the final response for a request (retires one in-flight slot
  /// and resumes a paused connection). Thread-safe; a line posted to a
  /// connection that is already gone is dropped.
  void post_final(std::uint64_t token, std::string line);

  /// Queues an interim line (`queued` backpressure notice): written in
  /// order with the other posts but retires nothing.
  void post_notice(std::uint64_t token, std::string line);

  std::uint64_t connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_total() const {
    return total_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    TcpStream stream;
    std::string inbuf;        ///< bytes read, not yet framed
    std::size_t scan_from = 0;  ///< inbuf offset where the '\n' scan resumes
    std::string outbuf;       ///< response bytes not yet written
    std::size_t out_from = 0; ///< outbuf offset of the first unwritten byte
    std::size_t inflight = 0; ///< framed lines without a final response
    bool read_ready = false;  ///< edge-triggered readiness latches
    bool write_ready = true;  ///< a fresh socket is writable until EAGAIN
    bool peer_eof = false;    ///< orderly shutdown or reset observed
    bool dead = false;        ///< write side failed; discard further output
  };

  struct Post {
    std::uint64_t token = 0;
    std::string line;
    bool final = false;
  };

  void loop();
  void handle_accepts();
  void pump(std::uint64_t token, Conn& conn);
  void frame_lines(std::uint64_t token, Conn& conn);
  void flush_writes(Conn& conn);
  void drain_posts();
  /// Closes and forgets a connection when fully retired (no in-flight
  /// responses, nothing left to write, or dead).
  void maybe_close(std::uint64_t token, Conn& conn);
  void close_conn(std::uint64_t token);

  const Options options_;
  const LineHandler on_line_;
  TcpListener listener_;
  WakePipe wake_;
  Epoll epoll_;
  std::thread thread_;

  // The registry mutex guards the token -> connection map's *structure*
  // (insert/erase/size); the Conn contents are only ever touched by the
  // reactor thread. Metrics threads lock it to count connections.
  mutable Mutex conns_mutex_{lock_order::Level::kReactorConns,
                             "reactor.conns"};
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_
      PRPART_GUARDED_BY(conns_mutex_);
  std::uint64_t next_token_ = 1;  ///< reactor thread only

  // Cross-thread response handoff: posters enqueue and wake, the reactor
  // drains. Deliberately a separate (higher) level from the registry so a
  // poster never touches connection state.
  Mutex posts_mutex_{lock_order::Level::kReactorOutbox, "reactor.outbox"};
  std::deque<Post> posts_ PRPART_GUARDED_BY(posts_mutex_);

  std::atomic<bool> input_shutdown_{false};
  std::atomic<bool> finishing_{false};
  std::atomic<std::uint64_t> open_connections_{0};
  std::atomic<std::uint64_t> total_connections_{0};
};

}  // namespace prpart::server
