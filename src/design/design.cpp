#include "design/design.hpp"

#include <set>
#include <unordered_set>

#include "util/status.hpp"

namespace prpart {

Design::Design(std::string name, ResourceVec static_base,
               std::vector<Module> modules,
               std::vector<Configuration> configurations)
    : name_(std::move(name)),
      static_base_(static_base),
      modules_(std::move(modules)),
      configurations_(std::move(configurations)) {
  validate();
  index_modes();
}

void Design::validate() const {
  if (modules_.empty()) throw DesignError("design has no modules");
  if (configurations_.empty())
    throw DesignError("design has no configurations");

  std::unordered_set<std::string> module_names;
  for (const Module& m : modules_) {
    if (m.name.empty()) throw DesignError("module with empty name");
    if (!module_names.insert(m.name).second)
      throw DesignError("duplicate module name '" + m.name + "'");
    if (m.modes.empty())
      throw DesignError("module '" + m.name + "' has no modes");
    std::unordered_set<std::string> mode_names;
    for (const Mode& mode : m.modes) {
      if (mode.name.empty())
        throw DesignError("module '" + m.name + "' has a mode with empty name");
      if (!mode_names.insert(mode.name).second)
        throw DesignError("duplicate mode name '" + mode.name +
                          "' in module '" + m.name + "'");
    }
  }

  std::set<std::vector<std::uint32_t>> seen;
  for (const Configuration& c : configurations_) {
    if (c.mode_of_module.size() != modules_.size())
      throw DesignError("configuration '" + c.name + "' specifies " +
                        std::to_string(c.mode_of_module.size()) +
                        " modules, design has " +
                        std::to_string(modules_.size()));
    bool any = false;
    for (std::size_t m = 0; m < modules_.size(); ++m) {
      const std::uint32_t mode = c.mode_of_module[m];
      if (mode > modules_[m].modes.size())
        throw DesignError("configuration '" + c.name + "' uses mode " +
                          std::to_string(mode) + " of module '" +
                          modules_[m].name + "' which has only " +
                          std::to_string(modules_[m].modes.size()) + " modes");
      any = any || mode != 0;
    }
    if (!any)
      throw DesignError("configuration '" + c.name + "' contains no modules");
    if (!seen.insert(c.mode_of_module).second)
      throw DesignError("configuration '" + c.name +
                        "' duplicates an earlier configuration");
  }
}

void Design::index_modes() {
  module_first_column_.resize(modules_.size());
  std::size_t col = 0;
  for (std::size_t m = 0; m < modules_.size(); ++m) {
    module_first_column_[m] = col;
    for (std::size_t k = 0; k < modules_[m].modes.size(); ++k) {
      column_to_ref_.push_back(
          {static_cast<std::uint32_t>(m), static_cast<std::uint32_t>(k + 1)});
      mode_area_.push_back(modules_[m].modes[k].area);
      mode_label_.push_back(&modules_[m].modes[k].name);
      ++col;
    }
  }

  config_modes_.reserve(configurations_.size());
  for (const Configuration& c : configurations_) {
    DynBitset bits(mode_count());
    for (std::size_t m = 0; m < modules_.size(); ++m) {
      const std::uint32_t mode = c.mode_of_module[m];
      if (mode != 0)
        bits.set(global_mode_id(static_cast<std::uint32_t>(m), mode));
    }
    config_modes_.push_back(std::move(bits));
  }
}

std::size_t Design::global_mode_id(std::uint32_t module,
                                   std::uint32_t mode) const {
  require(module < modules_.size(), "module index out of range");
  require(mode >= 1 && mode <= modules_[module].modes.size(),
          "mode index out of range");
  return module_first_column_[module] + mode - 1;
}

ModeRef Design::mode_ref(std::size_t global_id) const {
  require(global_id < column_to_ref_.size(), "global mode id out of range");
  return column_to_ref_[global_id];
}

const ResourceVec& Design::mode_area(std::size_t global_id) const {
  require(global_id < mode_area_.size(), "global mode id out of range");
  return mode_area_[global_id];
}

const std::string& Design::mode_label(std::size_t global_id) const {
  require(global_id < mode_label_.size(), "global mode id out of range");
  return *mode_label_[global_id];
}

const DynBitset& Design::config_modes(std::size_t c) const {
  require(c < config_modes_.size(), "configuration index out of range");
  return config_modes_[c];
}

ResourceVec Design::config_area(std::size_t c) const {
  ResourceVec area;
  for (std::size_t bit : config_modes(c).bits()) area += mode_area_[bit];
  return area;
}

ResourceVec Design::largest_configuration_area() const {
  ResourceVec best;
  for (std::size_t c = 0; c < configurations_.size(); ++c)
    best = elementwise_max(best, config_area(c));
  return best;
}

ResourceVec Design::full_static_area() const {
  ResourceVec total;
  for (const ResourceVec& a : mode_area_) total += a;
  return total;
}

bool Design::mode_used(std::size_t global_id) const {
  require(global_id < mode_count(), "global mode id out of range");
  for (const DynBitset& row : config_modes_)
    if (row.test(global_id)) return true;
  return false;
}

}  // namespace prpart
