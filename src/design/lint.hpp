#pragma once

#include <string>
#include <vector>

#include "design/design.hpp"

namespace prpart {

enum class LintSeverity { Info, Warning };

/// One finding of the design linter.
struct LintIssue {
  LintSeverity severity = LintSeverity::Warning;
  /// Stable machine-readable code, e.g. "dead-mode".
  std::string code;
  std::string message;
};

const char* to_string(LintSeverity s);

/// Static checks on a (structurally valid) design description that catch
/// the mistakes we saw users make with the tool-flow input format. None of
/// these block partitioning; hard errors are raised by Design's own
/// validation instead.
///
/// Checks:
///  * dead-mode       - a mode that appears in no configuration (it will
///                      get no base partition and never be implemented);
///  * unused-module   - a module absent from every configuration;
///  * always-on-mode  - a mode present in every configuration (a candidate
///                      for static implementation; info);
///  * zero-area-mode  - a mode with no resources that is not named like the
///                      paper's explicit "none" placeholder;
///  * duplicate-modes - two modes of one module with identical areas;
///  * oversized-mode  - a single mode larger than the largest library
///                      device (the design cannot be implemented);
///  * single-config   - only one configuration (nothing to reconfigure).
std::vector<LintIssue> lint_design(const Design& design);

/// Renders issues one per line ("warning[dead-mode]: ...").
std::string render_lint(const std::vector<LintIssue>& issues);

}  // namespace prpart
