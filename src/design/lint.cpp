#include "design/lint.hpp"

#include <algorithm>
#include <cctype>

#include "device/device.hpp"

namespace prpart {

const char* to_string(LintSeverity s) {
  return s == LintSeverity::Info ? "info" : "warning";
}

namespace {

bool looks_like_none(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return lower.find("none") != std::string::npos ||
         lower.find("off") != std::string::npos ||
         lower.find("bypass") != std::string::npos;
}

}  // namespace

std::vector<LintIssue> lint_design(const Design& design) {
  std::vector<LintIssue> issues;
  const auto& modules = design.modules();
  const auto& configs = design.configurations();

  // Per-mode usage counts.
  for (std::size_t m = 0; m < modules.size(); ++m) {
    bool module_used = false;
    for (std::size_t k = 1; k <= modules[m].modes.size(); ++k) {
      const Mode& mode = modules[m].modes[k - 1];
      std::size_t uses = 0;
      for (const Configuration& c : configs)
        if (c.mode_of_module[m] == k) ++uses;
      module_used = module_used || uses > 0;

      if (uses == 0)
        issues.push_back({LintSeverity::Warning, "dead-mode",
                          "mode '" + mode.name + "' of module '" +
                              modules[m].name +
                              "' appears in no configuration and will never "
                              "be implemented"});
      else if (uses == configs.size() && configs.size() > 1)
        issues.push_back({LintSeverity::Info, "always-on-mode",
                          "mode '" + mode.name + "' of module '" +
                              modules[m].name +
                              "' is active in every configuration; consider "
                              "implementing it statically"});

      if (mode.area.is_zero() && !looks_like_none(mode.name) && uses > 0)
        issues.push_back({LintSeverity::Warning, "zero-area-mode",
                          "mode '" + mode.name + "' of module '" +
                              modules[m].name +
                              "' has no resources; if it models an absent "
                              "module, prefer omitting the module from the "
                              "configuration (mode 0)"});
    }
    if (!module_used)
      issues.push_back({LintSeverity::Warning, "unused-module",
                        "module '" + modules[m].name +
                            "' is absent from every configuration"});

    for (std::size_t a = 0; a < modules[m].modes.size(); ++a)
      for (std::size_t b = a + 1; b < modules[m].modes.size(); ++b)
        if (modules[m].modes[a].area == modules[m].modes[b].area &&
            !modules[m].modes[a].area.is_zero())
          issues.push_back(
              {LintSeverity::Info, "duplicate-modes",
               "modes '" + modules[m].modes[a].name + "' and '" +
                   modules[m].modes[b].name + "' of module '" +
                   modules[m].name + "' have identical resource estimates"});
  }

  // Oversized modes: nothing in the family can host them.
  const ResourceVec largest = DeviceLibrary::virtex5().devices().back()
                                  .capacity();
  for (std::size_t g = 0; g < design.mode_count(); ++g) {
    if (!design.mode_area(g).fits_in(largest))
      issues.push_back({LintSeverity::Warning, "oversized-mode",
                        "mode '" + design.mode_label(g) +
                            "' exceeds the largest library device (" +
                            design.mode_area(g).to_string() + ")"});
  }

  if (configs.size() < 2)
    issues.push_back({LintSeverity::Info, "single-config",
                      "only one configuration: the design never "
                      "reconfigures"});

  return issues;
}

std::string render_lint(const std::vector<LintIssue>& issues) {
  std::string out;
  for (const LintIssue& i : issues)
    out += std::string(to_string(i.severity)) + "[" + i.code + "]: " +
           i.message + "\n";
  return out;
}

}  // namespace prpart
