#pragma once

#include <string>

#include "design/design.hpp"

namespace prpart {

/// Reads a design from the XML input format of the proposed tool flow
/// (Fig. 2: "design files ... a list of valid configurations ... in XML
/// format"):
///
///   <design name="example">
///     <static clbs="90" brams="8" dsps="0"/>
///     <module name="A">
///       <mode name="A1" clbs="100" brams="0" dsps="2"/>
///       <mode name="A2" clbs="250" brams="1" dsps="4"/>
///     </module>
///     <configurations>
///       <configuration name="c1">
///         <use module="A" mode="A1"/>
///       </configuration>
///     </configurations>
///   </design>
///
/// Modules omitted from a <configuration> are absent (mode 0). Resource
/// attributes default to 0 when missing.
Design design_from_xml(const std::string& text);

/// Serialises a design back to the same format; round-trips exactly.
std::string design_to_xml(const Design& design);

}  // namespace prpart
