#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "design/design.hpp"
#include "xml/xml.hpp"

namespace prpart {

/// Source positions of the design elements in the XML document they were
/// parsed from. Lets the analyzer point every diagnostic at the offending
/// `<module>`/`<mode>`/`<configuration>` in the input file. Positions are
/// unknown (line 0) for designs built programmatically.
struct DesignSpans {
  xml::Span root;
  /// Span of each <module> element, by module name.
  std::map<std::string, xml::Span> modules;
  /// Span of each <mode> element, by (module name, mode name).
  std::map<std::pair<std::string, std::string>, xml::Span> modes;
  /// Span of each <configuration> element, in declaration order.
  std::vector<xml::Span> configurations;

  xml::Span module_span(const std::string& module) const;
  xml::Span mode_span(const std::string& module, const std::string& mode) const;
  xml::Span configuration_span(std::size_t index) const;
};

/// A design together with the source spans of its elements.
struct ParsedDesign {
  Design design;
  DesignSpans spans;
};

/// Reads a design from the XML input format of the proposed tool flow
/// (Fig. 2: "design files ... a list of valid configurations ... in XML
/// format"):
///
///   <design name="example">
///     <static clbs="90" brams="8" dsps="0"/>
///     <module name="A">
///       <mode name="A1" clbs="100" brams="0" dsps="2"/>
///       <mode name="A2" clbs="250" brams="1" dsps="4"/>
///     </module>
///     <configurations>
///       <configuration name="c1">
///         <use module="A" mode="A1"/>
///       </configuration>
///     </configurations>
///   </design>
///
/// Modules omitted from a <configuration> are absent (mode 0). Resource
/// attributes default to 0 when missing.
Design design_from_xml(const std::string& text);

/// Like design_from_xml, but also returns the source span of every module,
/// mode and configuration element.
ParsedDesign design_from_xml_with_spans(const std::string& text);

/// Builds a design from an already-parsed element tree, recording element
/// spans into `spans` when non-null. Throws ParseError on the first schema
/// problem (strict; the analysis front end does its own tolerant walk over
/// the same tree before calling this).
Design design_from_element(const xml::Element& root,
                           DesignSpans* spans = nullptr);

/// Serialises a design back to the same format; round-trips exactly.
std::string design_to_xml(const Design& design);

}  // namespace prpart
