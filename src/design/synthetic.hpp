#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "design/design.hpp"
#include "util/rng.hpp"

namespace prpart {

/// Circuit class of a synthetic design (§V: "an equal number of
/// logic-intensive, memory-intensive, DSP-intensive and DSP-and-memory-
/// intensive circuits").
enum class CircuitClass : std::uint8_t {
  Logic,
  Memory,
  Dsp,
  DspAndMemory,
};

const char* to_string(CircuitClass c);

/// Parameters of the synthetic design generator, defaulted to the paper's
/// evaluation setup (§V).
struct SyntheticOptions {
  /// Modules per design: "Designs are generated containing 2-6 modules".
  std::uint32_t min_modules = 2;
  std::uint32_t max_modules = 6;
  /// Modes per module: "each with a number of modes varying from 2 to 4".
  std::uint32_t min_modes = 2;
  std::uint32_t max_modes = 4;
  /// CLBs per mode: "Each mode can use 25 to 4000 CLBs".
  std::uint32_t min_clbs = 25;
  std::uint32_t max_clbs = 4000;
  /// Static region per design: "90 CLBs and 8 BRAMs, based on our custom
  /// ICAP controller and associated logic".
  ResourceVec static_base{90, 8, 0};
  /// Probability that a module is absent (mode 0) from a given random
  /// configuration; exercises the paper's §IV-D optional-module path.
  double absence_probability = 0.1;
  /// Keep sampling distinct random configurations beyond full mode
  /// coverage until at least this many exist. 0 (the default) reproduces
  /// the paper's rule exactly — stop as soon as every mode is utilised.
  /// Larger values model deeply adaptive systems (hundreds of operating
  /// configurations over the same modules), the population the serve-scale
  /// evaluation benches target.
  std::size_t min_configurations = 0;
  /// If true (default), regenerate any design whose minimum implementation
  /// (single-region lower bound) does not fit the largest library device;
  /// the paper's sweep implicitly contains only implementable designs.
  bool ensure_family_feasible = true;
  /// Cap on the largest-device capacity used for the feasibility retry.
  ResourceVec family_capacity{30720, 456, 384};
};

/// A generated design together with its generation metadata.
struct SyntheticDesign {
  Design design;
  CircuitClass circuit_class;
  std::uint64_t seed;
};

/// Generates one synthetic design of the given class, deterministically from
/// `rng`. Configurations are generated randomly "until every mode present in
/// the design is utilised at least once" (§V).
SyntheticDesign generate_synthetic(Rng& rng, CircuitClass circuit_class,
                                   const SyntheticOptions& options = {});

/// Generates `count` designs with equal numbers of the four classes
/// (round-robin), seeded from `seed`. Design i is reproducible in isolation:
/// it uses an Rng seeded with (seed, i).
std::vector<SyntheticDesign> generate_synthetic_suite(
    std::uint64_t seed, std::size_t count, const SyntheticOptions& options = {});

}  // namespace prpart
