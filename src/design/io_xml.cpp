#include "design/io_xml.hpp"

#include "util/status.hpp"
#include "util/strings.hpp"
#include "xml/xml.hpp"

namespace prpart {

namespace {

ResourceVec read_resources(const xml::Element& e) {
  auto get = [&](const char* key) -> std::uint32_t {
    const std::string* v = e.find_attr(key);
    return v ? static_cast<std::uint32_t>(parse_u64(*v)) : 0u;
  };
  return {get("clbs"), get("brams"), get("dsps")};
}

void write_resources(xml::Element& e, const ResourceVec& r) {
  e.set_attr("clbs", std::to_string(r.clbs));
  e.set_attr("brams", std::to_string(r.brams));
  e.set_attr("dsps", std::to_string(r.dsps));
}

}  // namespace

xml::Span DesignSpans::module_span(const std::string& module) const {
  const auto it = modules.find(module);
  return it != modules.end() ? it->second : root;
}

xml::Span DesignSpans::mode_span(const std::string& module,
                                 const std::string& mode) const {
  const auto it = modes.find({module, mode});
  return it != modes.end() ? it->second : module_span(module);
}

xml::Span DesignSpans::configuration_span(std::size_t index) const {
  return index < configurations.size() ? configurations[index] : root;
}

Design design_from_element(const xml::Element& root, DesignSpans* spans) {
  if (root.name() != "design")
    throw ParseError("expected <design> root element, got <" + root.name() +
                         ">",
                     root.span().line, root.span().column);
  if (spans) spans->root = root.span();
  const std::string name = root.has_attr("name") ? root.attr("name") : "design";

  ResourceVec static_base;
  if (const xml::Element* s = root.find_child("static"))
    static_base = read_resources(*s);

  std::vector<Module> modules;
  for (const xml::Element* m : root.children_named("module")) {
    Module mod;
    mod.name = m->attr("name");
    if (spans) spans->modules.emplace(mod.name, m->span());
    for (const xml::Element* mode : m->children_named("mode")) {
      mod.modes.push_back(Mode{mode->attr("name"), read_resources(*mode)});
      if (spans)
        spans->modes.emplace(std::make_pair(mod.name, mod.modes.back().name),
                             mode->span());
    }
    modules.push_back(std::move(mod));
  }

  auto module_index = [&](const std::string& mname) -> std::size_t {
    for (std::size_t i = 0; i < modules.size(); ++i)
      if (modules[i].name == mname) return i;
    throw ParseError("configuration references unknown module '" + mname + "'");
  };
  auto mode_index = [&](std::size_t mi, const std::string& mode) -> std::uint32_t {
    for (std::size_t k = 0; k < modules[mi].modes.size(); ++k)
      if (modules[mi].modes[k].name == mode)
        return static_cast<std::uint32_t>(k + 1);
    throw ParseError("module '" + modules[mi].name + "' has no mode '" + mode +
                     "'");
  };

  std::vector<Configuration> configurations;
  const xml::Element& configs = root.child("configurations");
  for (const xml::Element* c : configs.children_named("configuration")) {
    Configuration conf;
    conf.name = c->has_attr("name")
                    ? c->attr("name")
                    : "Conf" + std::to_string(configurations.size() + 1);
    if (spans) spans->configurations.push_back(c->span());
    conf.mode_of_module.assign(modules.size(), 0);
    for (const xml::Element* use : c->children_named("use")) {
      const std::size_t mi = module_index(use->attr("module"));
      if (conf.mode_of_module[mi] != 0)
        throw ParseError("configuration '" + conf.name +
                         "' assigns module '" + modules[mi].name + "' twice");
      conf.mode_of_module[mi] = mode_index(mi, use->attr("mode"));
    }
    configurations.push_back(std::move(conf));
  }

  return Design(name, static_base, std::move(modules),
                std::move(configurations));
}

Design design_from_xml(const std::string& text) {
  return design_from_element(*xml::parse(text));
}

ParsedDesign design_from_xml_with_spans(const std::string& text) {
  const auto root = xml::parse(text);
  DesignSpans spans;
  Design design = design_from_element(*root, &spans);
  return {std::move(design), std::move(spans)};
}

std::string design_to_xml(const Design& design) {
  xml::Element root("design");
  root.set_attr("name", design.name());

  if (!design.static_base().is_zero()) {
    xml::Element& s = root.add_child("static");
    write_resources(s, design.static_base());
  }

  for (const Module& m : design.modules()) {
    xml::Element& me = root.add_child("module");
    me.set_attr("name", m.name);
    for (const Mode& mode : m.modes) {
      xml::Element& ke = me.add_child("mode");
      ke.set_attr("name", mode.name);
      write_resources(ke, mode.area);
    }
  }

  xml::Element& configs = root.add_child("configurations");
  for (const Configuration& c : design.configurations()) {
    xml::Element& ce = configs.add_child("configuration");
    ce.set_attr("name", c.name);
    for (std::size_t m = 0; m < c.mode_of_module.size(); ++m) {
      if (c.mode_of_module[m] == 0) continue;
      xml::Element& use = ce.add_child("use");
      use.set_attr("module", design.modules()[m].name);
      use.set_attr("mode",
                   design.modules()[m].modes[c.mode_of_module[m] - 1].name);
    }
  }

  return "<?xml version=\"1.0\"?>\n" + root.to_string();
}

}  // namespace prpart
