#include "design/synthetic.hpp"

#include <algorithm>
#include <set>

#include "util/status.hpp"

namespace prpart {

const char* to_string(CircuitClass c) {
  switch (c) {
    case CircuitClass::Logic: return "logic";
    case CircuitClass::Memory: return "memory";
    case CircuitClass::Dsp: return "dsp";
    case CircuitClass::DspAndMemory: return "dsp+memory";
  }
  return "?";
}

namespace {

/// Secondary resources scale with the mode's CLB count, with class-dependent
/// intensity; ranges are clamped so the largest config of any design can fit
/// the biggest family device (§V generates only implementable designs).
ResourceVec sample_mode_area(Rng& rng, CircuitClass cls, std::uint32_t clbs) {
  auto span = [&](std::uint32_t lo, std::uint32_t hi, std::uint32_t cap) {
    lo = std::min(lo, cap);
    hi = std::min(std::max(hi, lo), cap);
    return static_cast<std::uint32_t>(rng.uniform(lo, hi));
  };
  std::uint32_t brams = 0;
  std::uint32_t dsps = 0;
  const bool memory_heavy =
      cls == CircuitClass::Memory || cls == CircuitClass::DspAndMemory;
  const bool dsp_heavy =
      cls == CircuitClass::Dsp || cls == CircuitClass::DspAndMemory;
  if (memory_heavy)
    brams = span(std::max(1u, clbs / 250), std::max(1u, clbs / 90), 48);
  else
    brams = span(0, clbs / 500, 4);
  if (dsp_heavy)
    dsps = span(std::max(1u, clbs / 200), std::max(1u, clbs / 70), 48);
  else
    dsps = span(0, clbs / 400, 4);
  return {clbs, brams, dsps};
}

std::vector<Module> sample_modules(Rng& rng, CircuitClass cls,
                                   const SyntheticOptions& opt) {
  const auto nmodules = static_cast<std::uint32_t>(
      rng.uniform(opt.min_modules, opt.max_modules));
  std::vector<Module> modules;
  modules.reserve(nmodules);
  for (std::uint32_t m = 0; m < nmodules; ++m) {
    Module mod;
    mod.name = "M" + std::to_string(m + 1);
    const auto nmodes =
        static_cast<std::uint32_t>(rng.uniform(opt.min_modes, opt.max_modes));
    for (std::uint32_t k = 0; k < nmodes; ++k) {
      const auto clbs =
          static_cast<std::uint32_t>(rng.uniform(opt.min_clbs, opt.max_clbs));
      mod.modes.push_back(Mode{mod.name + "." + std::to_string(k + 1),
                               sample_mode_area(rng, cls, clbs)});
    }
    modules.push_back(std::move(mod));
  }
  return modules;
}

/// Random configurations until every mode appears at least once (§V).
std::vector<Configuration> sample_configurations(
    Rng& rng, const std::vector<Module>& modules,
    const SyntheticOptions& opt) {
  std::vector<std::vector<bool>> used(modules.size());
  std::size_t unused = 0;
  for (std::size_t m = 0; m < modules.size(); ++m) {
    used[m].assign(modules[m].modes.size(), false);
    unused += modules[m].modes.size();
  }

  std::set<std::vector<std::uint32_t>> seen;
  std::vector<Configuration> configs;
  std::size_t stale_attempts = 0;

  // Beyond full coverage, keep sampling only while min_configurations asks
  // for more; a duplicate-sample budget bounds the tail in case the design's
  // distinct-configuration space is smaller than the request.
  std::size_t padding_attempts = 0;
  while (unused > 0 || (configs.size() < opt.min_configurations &&
                        padding_attempts < 64 * opt.min_configurations)) {
    if (unused == 0) ++padding_attempts;
    std::vector<std::uint32_t> choice(modules.size(), 0);
    // After too many rejected samples (duplicate or empty), force progress
    // by pinning one still-unused mode; keeps generation deterministic and
    // guarantees termination.
    std::size_t pinned = modules.size();
    if (stale_attempts > 16) {
      for (std::size_t m = 0; m < modules.size() && pinned == modules.size();
           ++m)
        for (std::size_t k = 0; k < used[m].size(); ++k)
          if (!used[m][k]) {
            pinned = m;
            choice[m] = static_cast<std::uint32_t>(k + 1);
            break;
          }
    }
    for (std::size_t m = 0; m < modules.size(); ++m) {
      if (m == pinned) continue;
      if (rng.chance(opt.absence_probability)) continue;  // mode 0: absent
      choice[m] = static_cast<std::uint32_t>(
          rng.uniform(1, modules[m].modes.size()));
    }
    const bool empty =
        std::all_of(choice.begin(), choice.end(),
                    [](std::uint32_t v) { return v == 0; });
    if (empty || !seen.insert(choice).second) {
      ++stale_attempts;
      continue;
    }
    stale_attempts = 0;
    for (std::size_t m = 0; m < modules.size(); ++m) {
      if (choice[m] != 0 && !used[m][choice[m] - 1]) {
        used[m][choice[m] - 1] = true;
        --unused;
      }
    }
    Configuration c;
    c.name = "Conf" + std::to_string(configs.size() + 1);
    c.mode_of_module = std::move(choice);
    configs.push_back(std::move(c));
  }
  return configs;
}

/// Lower bound on implementation area: one region holding the largest
/// configuration, tile-rounded, plus the raw static base (§IV-C).
bool family_feasible(const Design& d, const ResourceVec& family_capacity) {
  // Tile rounding only increases the requirement, so the raw check is a
  // conservative necessary condition; the exact check happens at
  // partitioning time.
  ResourceVec need = d.largest_configuration_area() + d.static_base();
  return need.fits_in(family_capacity);
}

}  // namespace

SyntheticDesign generate_synthetic(Rng& rng, CircuitClass circuit_class,
                                   const SyntheticOptions& options) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::vector<Module> modules = sample_modules(rng, circuit_class, options);
    std::vector<Configuration> configs =
        sample_configurations(rng, modules, options);
    Design d("synthetic-" + std::string(to_string(circuit_class)),
             options.static_base, std::move(modules), std::move(configs));
    if (!options.ensure_family_feasible ||
        family_feasible(d, options.family_capacity))
      return SyntheticDesign{std::move(d), circuit_class, 0};
  }
  throw DesignError(
      "synthetic generator failed to produce a family-feasible design after "
      "100 attempts; loosen SyntheticOptions");
}

std::vector<SyntheticDesign> generate_synthetic_suite(
    std::uint64_t seed, std::size_t count, const SyntheticOptions& options) {
  static constexpr CircuitClass kClasses[] = {
      CircuitClass::Logic, CircuitClass::Memory, CircuitClass::Dsp,
      CircuitClass::DspAndMemory};
  std::vector<SyntheticDesign> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Per-design seeding: design i is reproducible without generating the
    // first i-1 designs.
    Rng rng(seed * 0x9e3779b97f4a7c15ull + i);
    SyntheticDesign d =
        generate_synthetic(rng, kClasses[i % 4], options);
    d.seed = seed * 0x9e3779b97f4a7c15ull + i;
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace prpart
