#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/resources.hpp"
#include "util/bitset.hpp"

namespace prpart {

/// One mode of a module: a mutually-exclusive implementation alternative
/// (e.g. the high-pass vs low-pass variants of a filter, §III-A).
struct Mode {
  std::string name;
  ResourceVec area;
};

/// A processing unit of the PR system with one or more modes. A module with
/// a single mode models the paper's "one-off" modules (§IV-D).
struct Module {
  std::string name;
  std::vector<Mode> modes;
};

/// Identifies a mode globally: module index + 1-based mode index.
/// Mode index 0 is reserved for "module absent" (the paper's mode 0).
struct ModeRef {
  std::uint32_t module = 0;
  std::uint32_t mode = 0;  // 1-based; 0 = absent

  constexpr bool operator==(const ModeRef&) const = default;
};

/// A valid operating configuration: one mode choice per module (0 = the
/// module is absent from this configuration).
struct Configuration {
  std::string name;
  std::vector<std::uint32_t> mode_of_module;  // size = number of modules
};

/// A complete partial-reconfiguration design description: static logic,
/// modules with modes, and the set of valid configurations. This is the
/// designer-facing input of the proposed tool flow (Fig. 2).
///
/// The class also owns the global mode numbering used by the partitioner:
/// every (module, mode>=1) pair is assigned a dense column id, in module
/// then mode order; mode 0 gets no column (§IV-D).
class Design {
 public:
  Design(std::string name, ResourceVec static_base, std::vector<Module> modules,
         std::vector<Configuration> configurations);

  const std::string& name() const { return name_; }
  /// Fixed static logic (ICAP controller, processor, ...) that is always on
  /// the fabric. Counted raw (not tile-rounded) against the budget.
  const ResourceVec& static_base() const { return static_base_; }
  const std::vector<Module>& modules() const { return modules_; }
  const std::vector<Configuration>& configurations() const {
    return configurations_;
  }

  /// Total number of global mode columns.
  std::size_t mode_count() const { return mode_area_.size(); }

  /// Dense column id of (module, 1-based mode).
  std::size_t global_mode_id(std::uint32_t module, std::uint32_t mode) const;
  /// Inverse of global_mode_id.
  ModeRef mode_ref(std::size_t global_id) const;
  const ResourceVec& mode_area(std::size_t global_id) const;
  /// Human-readable label, e.g. "Filter1" (the mode's own name).
  const std::string& mode_label(std::size_t global_id) const;

  /// Set of global mode ids used by configuration `c`.
  const DynBitset& config_modes(std::size_t c) const;
  /// Raw area of configuration `c` = element-wise sum of its modes.
  ResourceVec config_area(std::size_t c) const;

  /// Element-wise max over configurations of config_area: the raw size of a
  /// single region able to hold every configuration (the paper's minimum
  /// feasible implementation, §IV-C).
  ResourceVec largest_configuration_area() const;

  /// Element-wise sum of every mode of every module: the fully static
  /// implementation (Table IV row "Static").
  ResourceVec full_static_area() const;

  /// True when the mode appears in at least one configuration. Modes that
  /// never appear are dead: they get a column but no base partition.
  bool mode_used(std::size_t global_id) const;

 private:
  void validate() const;
  void index_modes();

  std::string name_;
  ResourceVec static_base_;
  std::vector<Module> modules_;
  std::vector<Configuration> configurations_;

  // Derived indexes.
  std::vector<std::size_t> module_first_column_;
  std::vector<ModeRef> column_to_ref_;
  std::vector<ResourceVec> mode_area_;
  std::vector<const std::string*> mode_label_;
  std::vector<DynBitset> config_modes_;
};

}  // namespace prpart
