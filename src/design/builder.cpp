#include "design/builder.hpp"

#include "util/status.hpp"

namespace prpart {

DesignBuilder& DesignBuilder::static_base(ResourceVec area) {
  static_base_ = area;
  return *this;
}

DesignBuilder& DesignBuilder::module(const std::string& name,
                                     std::vector<Mode> modes) {
  modules_.push_back(Module{name, std::move(modes)});
  return *this;
}

DesignBuilder& DesignBuilder::configuration(
    const std::vector<std::pair<std::string, std::string>>& choices) {
  return configuration("Conf" + std::to_string(configurations_.size() + 1),
                       choices);
}

DesignBuilder& DesignBuilder::configuration(
    std::string config_name,
    const std::vector<std::pair<std::string, std::string>>& choices) {
  Configuration c;
  c.name = std::move(config_name);
  c.mode_of_module.assign(modules_.size(), 0);
  for (const auto& [module_name, mode_name] : choices) {
    bool found_module = false;
    for (std::size_t m = 0; m < modules_.size(); ++m) {
      if (modules_[m].name != module_name) continue;
      found_module = true;
      if (c.mode_of_module[m] != 0)
        throw DesignError("configuration '" + c.name +
                          "' mentions module '" + module_name + "' twice");
      bool found_mode = false;
      for (std::size_t k = 0; k < modules_[m].modes.size(); ++k) {
        if (modules_[m].modes[k].name == mode_name) {
          c.mode_of_module[m] = static_cast<std::uint32_t>(k + 1);
          found_mode = true;
          break;
        }
      }
      if (!found_mode)
        throw DesignError("module '" + module_name + "' has no mode '" +
                          mode_name + "'");
      break;
    }
    if (!found_module)
      throw DesignError("unknown module '" + module_name +
                        "' in configuration '" + c.name + "'");
  }
  configurations_.push_back(std::move(c));
  return *this;
}

Design DesignBuilder::build() const {
  return Design(name_, static_base_, modules_, configurations_);
}

}  // namespace prpart
