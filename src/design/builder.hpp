#pragma once

#include <string>
#include <utility>
#include <vector>

#include "design/design.hpp"

namespace prpart {

/// Fluent construction of Design objects; the examples and tests use this
/// instead of hand-assembling the raw vectors.
///
///   Design d = DesignBuilder("example")
///       .static_base({90, 8, 0})
///       .module("A", {{"A1", {100, 0, 0}}, {"A2", {200, 0, 4}}})
///       .module("B", {{"B1", {300, 2, 0}}, {"B2", {50, 0, 0}}})
///       .configuration({{"A", "A1"}, {"B", "B1"}})
///       .configuration({{"A", "A2"}, {"B", "B2"}})
///       .build();
class DesignBuilder {
 public:
  explicit DesignBuilder(std::string name) : name_(std::move(name)) {}

  DesignBuilder& static_base(ResourceVec area);

  DesignBuilder& module(const std::string& name, std::vector<Mode> modes);

  /// Adds a configuration given (module name, mode name) pairs; modules not
  /// mentioned are absent (mode 0). Unknown names throw DesignError.
  DesignBuilder& configuration(
      const std::vector<std::pair<std::string, std::string>>& choices);

  /// Same, with an explicit configuration name.
  DesignBuilder& configuration(
      std::string config_name,
      const std::vector<std::pair<std::string, std::string>>& choices);

  /// Validates and produces the Design. The builder is left unchanged, so
  /// variants can be built by adding further configurations.
  Design build() const;

 private:
  std::string name_;
  ResourceVec static_base_{};
  std::vector<Module> modules_;
  std::vector<Configuration> configurations_;
};

}  // namespace prpart
